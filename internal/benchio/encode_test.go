package benchio

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

func sample() *core.Dataset {
	return &core.Dataset{
		Labels:  []string{"H-A", "S-A", "H-B"},
		Metrics: []string{"M1", "M2"},
		Rows:    [][]float64{{1, 2.5}, {3.25, -4e-3}, {0, 7}},
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds := sample()
	got, err := EncodeDataset(ds).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Labels, ds.Labels) ||
		!reflect.DeepEqual(got.Metrics, ds.Metrics) ||
		!reflect.DeepEqual(got.Rows, ds.Rows) {
		t.Errorf("round trip mutated the dataset: %+v", got)
	}

	bad := DatasetJSON{Labels: []string{"only-one"}, Metrics: []string{"M"}, Rows: [][]float64{{1}}}
	if _, err := bad.Dataset(); err == nil {
		t.Error("single-row dataset accepted")
	}
}

func TestObservationsJSONRoundTrip(t *testing.T) {
	om := &core.ObservationMatrix{
		Labels:     []string{"H-A", "S-A"},
		Metrics:    []string{"M1", "M2"},
		NodeOffset: 3,
		Cells: [][][][]float64{
			{{{1, 2}, {3, 4}}, {{5, 6}, {7, 8}}},
			{{{9, 10}, {11, 12}}, {{13, 14}, {15, 16}}},
		},
	}
	got, err := EncodeObservations(om).Observations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, om) {
		t.Errorf("round trip mutated the matrix: %+v", got)
	}

	// Canonical bytes are deterministic across encodes.
	a, err := MarshalCanonical(EncodeObservations(om))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCanonical(EncodeObservations(om))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("observation encoding is not deterministic")
	}

	bad := EncodeObservations(om)
	bad.Labels = bad.Labels[:1]
	if _, err := bad.Observations(); err == nil {
		t.Error("label/cell mismatch accepted")
	}
}

// TestMarshalCanonicalDeterministic pins the property the result cache
// depends on: equal values marshal to identical bytes.
func TestMarshalCanonicalDeterministic(t *testing.T) {
	a, err := MarshalCanonical(EncodeDataset(sample()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCanonical(EncodeDataset(sample()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("equal values marshaled to different bytes")
	}
	if a[len(a)-1] != '\n' {
		t.Error("canonical form lacks trailing newline")
	}
}
