package benchio

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// DatasetJSON is the wire form of a core.Dataset: the labeled
// workload×metric matrix without the non-serializable measurement and
// suite back-references.
type DatasetJSON struct {
	Labels  []string    `json:"labels"`
	Metrics []string    `json:"metrics"`
	Rows    [][]float64 `json:"rows"`
}

// EncodeDataset projects a dataset onto its wire form.
func EncodeDataset(ds *core.Dataset) DatasetJSON {
	return DatasetJSON{Labels: ds.Labels, Metrics: ds.Metrics, Rows: ds.Rows}
}

// Dataset converts the wire form back into a core.Dataset (validated).
func (d DatasetJSON) Dataset() (*core.Dataset, error) {
	ds := &core.Dataset{Labels: d.Labels, Metrics: d.Metrics, Rows: d.Rows}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ObservationsJSON is the wire form of a core.ObservationMatrix: the raw
// per-cell metric vectors of a (possibly partial) characterization grid.
// It is the result body of a characterize-only ("observations" mode) job
// — what a shard worker returns to its coordinator. Field order is fixed,
// so identical matrices encode to identical bytes.
type ObservationsJSON struct {
	Labels     []string `json:"labels"`
	Metrics    []string `json:"metrics"`
	NodeOffset int      `json:"node_offset"`
	// Cells is indexed [workload][run][node] → metric vector.
	Cells [][][][]float64 `json:"cells"`
}

// EncodeObservations projects an observation matrix onto its wire form.
func EncodeObservations(om *core.ObservationMatrix) ObservationsJSON {
	return ObservationsJSON{
		Labels:     om.Labels,
		Metrics:    om.Metrics,
		NodeOffset: om.NodeOffset,
		Cells:      om.Cells,
	}
}

// Observations converts the wire form back (validated).
func (o ObservationsJSON) Observations() (*core.ObservationMatrix, error) {
	om := &core.ObservationMatrix{
		Labels:     o.Labels,
		Metrics:    o.Metrics,
		Cells:      o.Cells,
		NodeOffset: o.NodeOffset,
	}
	if err := om.Validate(); err != nil {
		return nil, err
	}
	return om, nil
}

// RepresentativeJSON is the wire form of one selected workload.
type RepresentativeJSON struct {
	Cluster     int    `json:"cluster"`
	Workload    string `json:"workload"`
	Index       int    `json:"index"`
	ClusterSize int    `json:"cluster_size"`
}

// AnalysisJSON is the wire form of a core.Analysis: everything a service
// client needs from the §V–§VI result, in a stable, deterministic layout.
// Field order (and therefore the marshaled byte stream) is fixed, so
// identical analyses encode to identical bytes — the property the
// content-addressed result cache relies on.
type AnalysisJSON struct {
	Dataset DatasetJSON `json:"dataset"`

	NumPCs   int     `json:"num_pcs"`
	Variance float64 `json:"variance_retained"`

	BestK        int     `json:"best_k"`
	BIC          float64 `json:"bic"`
	Inertia      float64 `json:"inertia"`
	Assign       []int   `json:"assign"`
	ClusterSizes []int   `json:"cluster_sizes"`

	NearestReps        []RepresentativeJSON `json:"nearest_reps"`
	FarthestReps       []RepresentativeJSON `json:"farthest_reps"`
	NearestMaxLinkage  float64              `json:"nearest_max_linkage"`
	FarthestMaxLinkage float64              `json:"farthest_max_linkage"`

	// Subset is the farthest-from-centroid representative set — the
	// paper's released subset policy.
	Subset []string `json:"subset"`
}

// EncodeAnalysis projects an analysis onto its wire form.
func EncodeAnalysis(an *core.Analysis) *AnalysisJSON {
	reps := func(in []core.Representative) []RepresentativeJSON {
		out := make([]RepresentativeJSON, len(in))
		for i, r := range in {
			out[i] = RepresentativeJSON{
				Cluster: r.Cluster, Workload: r.Workload,
				Index: r.Index, ClusterSize: r.ClusterSize,
			}
		}
		return out
	}
	return &AnalysisJSON{
		Dataset:            EncodeDataset(an.Dataset),
		NumPCs:             an.NumPCs,
		Variance:           an.Variance,
		BestK:              an.KBest.K,
		BIC:                an.KBest.BIC,
		Inertia:            an.KBest.Inertia,
		Assign:             an.KBest.Assign,
		ClusterSizes:       an.KBest.Sizes,
		NearestReps:        reps(an.NearestReps),
		FarthestReps:       reps(an.FarthestReps),
		NearestMaxLinkage:  an.NearestMaxLinkage,
		FarthestMaxLinkage: an.FarthestMaxLinkage,
		Subset:             an.SubsetNames(),
	}
}

// MarshalCanonical renders v as indented JSON with a trailing newline.
// encoding/json emits struct fields in declaration order and formats
// floats deterministically, so for the fixed-layout types in this package
// equal values always produce identical bytes.
func MarshalCanonical(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchio: marshal: %w", err)
	}
	return append(data, '\n'), nil
}
