// Package benchio is the shared emitter for the end-to-end pipeline
// benchmark artifact (BENCH_pipeline.json), used by both the go-test
// harness (bench_pipeline_test.go) and cmd/bdbench -bench so the schema
// and the sequential/parallel divergence check cannot drift apart.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Variant is one timed pipeline configuration.
type Variant struct {
	SecondsPerOp float64 `json:"seconds_per_op"`
	Iterations   int     `json:"iterations"`
	Parallelism  int     `json:"parallelism"`
	BestK        int     `json:"best_k"`
	// Subset is the representative workload set the variant produced;
	// used for the divergence check, not serialized.
	Subset []string `json:"-"`
}

// DistVariant is one distributed-mode (bdcoord over bdservd workers)
// timing row: the CI-scale grid coordinated across Workers in-process
// daemons, with ThrottledWorkers of them artificially slowed by
// CellDelayMS per grid cell. ResultHash is the merged content hash —
// identical across all rows by the coordinator's determinism guarantee.
type DistVariant struct {
	SecondsPerOp     float64 `json:"seconds_per_op"`
	Iterations       int     `json:"iterations"`
	Workers          int     `json:"workers"`
	ThrottledWorkers int     `json:"throttled_workers,omitempty"`
	CellDelayMS      int     `json:"cell_delay_ms,omitempty"`
	ResultHash       string  `json:"result_hash"`
}

// Report is the BENCH_pipeline.json schema.
type Report struct {
	Benchmark  string             `json:"benchmark"`
	Scale      string             `json:"scale"`
	GOOS       string             `json:"goos"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    map[string]Variant `json:"results"`
	Speedup    float64            `json:"speedup"`
	Identical  bool               `json:"identical_output"`
	// DistributedScale and Distributed are written by the bdcoord bench
	// harness (bench_dist_test.go); the single-process rows above are
	// untouched when it runs.
	DistributedScale string                 `json:"distributed_scale,omitempty"`
	Distributed      map[string]DistVariant `json:"distributed,omitempty"`
	// TracingOverheadPct is the relative cost of running the sequential
	// pipeline under a live flight recorder versus untraced, in percent
	// (written by WriteTracingOverhead; acceptance is <2%).
	TracingOverheadPct float64 `json:"tracing_overhead_pct,omitempty"`
}

// Identical reports whether the two variants produced the same analysis
// (same chosen K and the same representative subset, element-wise).
func Identical(seq, par Variant) bool {
	if seq.BestK != par.BestK || len(seq.Subset) != len(par.Subset) {
		return false
	}
	for i, n := range seq.Subset {
		if par.Subset[i] != n {
			return false
		}
	}
	return true
}

// Write checks the sequential/parallel pair for divergence and writes
// BENCH_pipeline.json (in the current working directory). A divergence is
// an error: identical seeds must yield identical output at any
// Parallelism.
func Write(benchmark, scale string, seq, par Variant) error {
	if !Identical(seq, par) {
		return fmt.Errorf("benchio: sequential and parallel pipelines diverged: K %d vs %d, subsets %v vs %v",
			seq.BestK, par.BestK, seq.Subset, par.Subset)
	}
	rep := readReport()
	rep.Benchmark = benchmark
	rep.Scale = scale
	rep.GOOS = runtime.GOOS
	rep.NumCPU = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if rep.Results == nil {
		rep.Results = map[string]Variant{}
	}
	rep.Results["sequential"] = seq
	rep.Results["parallel"] = par
	rep.Speedup = seq.SecondsPerOp / par.SecondsPerOp
	rep.Identical = true
	return writeReport(rep)
}

// WriteDistributed merges the distributed-mode rows into
// BENCH_pipeline.json, preserving the single-process rows. All rows must
// carry the same merged result hash — a divergence means the
// work-stealing merge broke determinism, which is an error here exactly
// as output divergence is in Write.
func WriteDistributed(scale string, rows map[string]DistVariant) error {
	var hash string
	for name, v := range rows {
		if v.ResultHash == "" {
			return fmt.Errorf("benchio: distributed row %q has no result hash", name)
		}
		if hash == "" {
			hash = v.ResultHash
		} else if v.ResultHash != hash {
			return fmt.Errorf("benchio: distributed rows diverged: %q hashed %s, others %s", name, v.ResultHash, hash)
		}
	}
	rep := readReport()
	rep.DistributedScale = scale
	rep.Distributed = rows
	return writeReport(rep)
}

// WriteTracingOverhead merges the traced-sequential row into
// BENCH_pipeline.json alongside the untraced rows and records the
// relative cost of span collection. Tracing is strictly observational,
// so a diverged analysis is an error exactly as in Write.
func WriteTracingOverhead(seq, traced Variant) error {
	if !Identical(seq, traced) {
		return fmt.Errorf("benchio: tracing changed the analysis: K %d vs %d, subsets %v vs %v",
			seq.BestK, traced.BestK, seq.Subset, traced.Subset)
	}
	rep := readReport()
	if rep.Results == nil {
		rep.Results = map[string]Variant{}
	}
	rep.Results["sequential"] = seq
	rep.Results["traced"] = traced
	rep.TracingOverheadPct = (traced.SecondsPerOp - seq.SecondsPerOp) / seq.SecondsPerOp * 100
	return writeReport(rep)
}

// readReport loads the existing artifact so partial writers (Write,
// WriteDistributed) preserve each other's sections; a missing or broken
// file starts fresh (a decode error discards any partially decoded
// fields rather than resurrecting them into the rewritten artifact).
func readReport() Report {
	var rep Report
	data, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		return Report{}
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}
	}
	return rep
}

func writeReport(rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644)
}
