// Package benchio is the shared emitter for the end-to-end pipeline
// benchmark artifact (BENCH_pipeline.json), used by both the go-test
// harness (bench_pipeline_test.go) and cmd/bdbench -bench so the schema
// and the sequential/parallel divergence check cannot drift apart.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Variant is one timed pipeline configuration.
type Variant struct {
	SecondsPerOp float64 `json:"seconds_per_op"`
	Iterations   int     `json:"iterations"`
	Parallelism  int     `json:"parallelism"`
	BestK        int     `json:"best_k"`
	// Subset is the representative workload set the variant produced;
	// used for the divergence check, not serialized.
	Subset []string `json:"-"`
}

// Report is the BENCH_pipeline.json schema.
type Report struct {
	Benchmark  string             `json:"benchmark"`
	Scale      string             `json:"scale"`
	GOOS       string             `json:"goos"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    map[string]Variant `json:"results"`
	Speedup    float64            `json:"speedup"`
	Identical  bool               `json:"identical_output"`
}

// Identical reports whether the two variants produced the same analysis
// (same chosen K and the same representative subset, element-wise).
func Identical(seq, par Variant) bool {
	if seq.BestK != par.BestK || len(seq.Subset) != len(par.Subset) {
		return false
	}
	for i, n := range seq.Subset {
		if par.Subset[i] != n {
			return false
		}
	}
	return true
}

// Write checks the sequential/parallel pair for divergence and writes
// BENCH_pipeline.json (in the current working directory). A divergence is
// an error: identical seeds must yield identical output at any
// Parallelism.
func Write(benchmark, scale string, seq, par Variant) error {
	if !Identical(seq, par) {
		return fmt.Errorf("benchio: sequential and parallel pipelines diverged: K %d vs %d, subsets %v vs %v",
			seq.BestK, par.BestK, seq.Subset, par.Subset)
	}
	rep := Report{
		Benchmark:  benchmark,
		Scale:      scale,
		GOOS:       runtime.GOOS,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    map[string]Variant{"sequential": seq, "parallel": par},
		Speedup:    seq.SecondsPerOp / par.SecondsPerOp,
		Identical:  true,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644)
}
