package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/num/mat"
	"repro/internal/rng"
)

// blobs places k well-separated Gaussian blobs of size each in dims
// dimensions and returns the points plus ground-truth assignment.
func blobs(seed uint64, k, size, dims int) (*mat.Dense, []int) {
	r := rng.New(seed)
	pts := mat.NewDense(k*size, dims)
	truth := make([]int, k*size)
	for c := 0; c < k; c++ {
		center := make([]float64, dims)
		for j := range center {
			center[j] = float64(c*20) + r.NormFloat64()
		}
		for i := 0; i < size; i++ {
			row := c*size + i
			truth[row] = c
			for j := 0; j < dims; j++ {
				pts.Set(row, j, center[j]+r.NormFloat64()*0.3)
			}
		}
	}
	return pts, truth
}

func TestRunValidation(t *testing.T) {
	pts, _ := blobs(1, 2, 3, 2)
	if _, err := Run(pts, 0, Config{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(pts, 7, Config{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestRecoverBlobs(t *testing.T) {
	pts, truth := blobs(2, 3, 10, 4)
	res, err := Run(pts, 3, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth blob must map to exactly one cluster.
	m := map[int]int{}
	for i, tc := range truth {
		c := res.Assign[i]
		if prev, ok := m[tc]; ok && prev != c {
			t.Fatalf("blob %d split across clusters", tc)
		}
		m[tc] = c
	}
	if len(m) != 3 {
		t.Fatalf("blobs merged: %v", m)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pts, _ := blobs(3, 4, 8, 3)
	a, err := Run(pts, 4, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, 4, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestK1SingleCluster(t *testing.T) {
	pts, _ := blobs(4, 2, 5, 2)
	res, err := Run(pts, 1, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 produced multiple clusters")
		}
	}
	if res.Sizes[0] != 10 {
		t.Errorf("size = %d, want 10", res.Sizes[0])
	}
}

func TestKEqualsNZeroInertia(t *testing.T) {
	pts, _ := blobs(5, 2, 3, 2)
	res, err := Run(pts, 6, Config{Seed: 2, Restarts: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n inertia = %v, want ~0", res.Inertia)
	}
}

func TestNoEmptyClusters(t *testing.T) {
	pts, _ := blobs(6, 3, 10, 3)
	res, err := Run(pts, 5, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes {
		if s == 0 {
			t.Errorf("cluster %d is empty", c)
		}
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	pts, _ := blobs(7, 3, 15, 4)
	best, all, err := BestK(pts, 1, 8, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("len(all) = %d, want 8", len(all))
	}
	if best.K != 3 {
		for _, r := range all {
			t.Logf("K=%d BIC=%.2f inertia=%.2f", r.K, r.BIC, r.Inertia)
		}
		t.Errorf("BIC chose K=%d, want 3", best.K)
	}
}

func TestBestKValidation(t *testing.T) {
	pts, _ := blobs(8, 2, 3, 2)
	if _, _, err := BestK(pts, 0, 3, Config{}); err == nil {
		t.Error("kMin=0 accepted")
	}
	if _, _, err := BestK(pts, 3, 2, Config{}); err == nil {
		t.Error("kMax<kMin accepted")
	}
	// kMax > n should clamp, not error.
	if _, _, err := BestK(pts, 1, 100, Config{Seed: 1}); err != nil {
		t.Errorf("kMax>n errored: %v", err)
	}
}

func TestNearestAndFarthestRepresentatives(t *testing.T) {
	pts, _ := blobs(9, 2, 10, 2)
	res, err := Run(pts, 2, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	near := res.NearestToCenter(pts)
	far := res.FarthestFromCenter(pts)
	for c := 0; c < 2; c++ {
		if near[c] < 0 || far[c] < 0 {
			t.Fatalf("representative missing for cluster %d", c)
		}
		if res.Assign[near[c]] != c || res.Assign[far[c]] != c {
			t.Errorf("representative not in its own cluster")
		}
		dn := mat.Distance(pts.Row(near[c]), res.Centers.Row(c))
		df := mat.Distance(pts.Row(far[c]), res.Centers.Row(c))
		if dn > df+1e-12 {
			t.Errorf("nearest (%v) farther than farthest (%v)", dn, df)
		}
		// Check true extremality over the cluster members.
		for _, i := range res.Members(c) {
			d := mat.Distance(pts.Row(i), res.Centers.Row(c))
			if d < dn-1e-12 {
				t.Errorf("point %d closer than nearest representative", i)
			}
			if d > df+1e-12 {
				t.Errorf("point %d farther than farthest representative", i)
			}
		}
	}
}

func TestMembersPartition(t *testing.T) {
	pts, _ := blobs(10, 3, 5, 2)
	res, err := Run(pts, 3, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < res.K; c++ {
		ms := res.Members(c)
		total += len(ms)
		for _, i := range ms {
			if res.Assign[i] != c {
				t.Errorf("member %d of cluster %d has assignment %d", i, c, res.Assign[i])
			}
		}
	}
	if total != 15 {
		t.Errorf("members cover %d points, want 15", total)
	}
}

func TestBICFormulaK1(t *testing.T) {
	// Hand-check the BIC formula on a trivial 1-cluster dataset.
	pts := mat.FromRows([][]float64{{0}, {2}})
	res, err := Run(pts, 1, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Center = 1, inertia = 2, sigma² = 2/(2-1) = 2.
	// l = -R/2·log(2π) - R·d/2·log(σ²) - (R-K)/2 + R·log(R) - R·log(R)
	R, d, sigma2 := 2.0, 1.0, 2.0
	want := -R/2*math.Log(2*math.Pi) - R*d/2*math.Log(sigma2) - (R-1)/2
	want -= (1 + d) / 2 * math.Log(R) // p_j = K + dK = 2
	if math.Abs(res.BIC-want) > 1e-9 {
		t.Errorf("BIC = %v, want %v", res.BIC, want)
	}
}

// Property: every point is assigned to its nearest center (Lloyd fixed
// point invariant).
func TestQuickAssignmentsAreNearest(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, d := 8+r.Intn(20), 1+r.Intn(4)
		pts := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				pts.Set(i, j, r.NormFloat64())
			}
		}
		k := 1 + r.Intn(4)
		if k > n {
			k = n
		}
		res, err := Run(pts, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			have := mat.SquaredDistance(pts.Row(i), res.Centers.Row(res.Assign[i]))
			for c := 0; c < k; c++ {
				if mat.SquaredDistance(pts.Row(i), res.Centers.Row(c)) < have-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: inertia never increases when K increases (with enough restarts
// the optimum is monotone; we tolerate tiny slack for local minima).
func TestQuickInertiaMonotoneInK(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, d := 12+r.Intn(12), 2
		pts := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				pts.Set(i, j, r.NormFloat64())
			}
		}
		prev := math.Inf(1)
		for k := 1; k <= 5; k++ {
			res, err := Run(pts, k, Config{Seed: seed, Restarts: 12})
			if err != nil {
				return false
			}
			if res.Inertia > prev*1.05+1e-9 {
				return false
			}
			prev = res.Inertia
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: sizes sum to n and match Assign.
func TestQuickSizesConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(20)
		pts := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, 0, r.NormFloat64())
			pts.Set(i, 1, r.NormFloat64())
		}
		k := 1 + r.Intn(5)
		if k > n {
			k = n
		}
		res, err := Run(pts, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
			counts[a]++
		}
		for c := range counts {
			if counts[c] != res.Sizes[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
