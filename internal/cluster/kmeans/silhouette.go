package kmeans

import (
	"math"

	"repro/internal/num/mat"
)

// Silhouette computes the mean silhouette coefficient of a clustering:
// for each point, (b−a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b is the smallest mean distance to another
// cluster. Values near 1 indicate well-separated clusters; values near 0
// indicate overlapping ones.
//
// The paper selects K with BIC; silhouette is the most common alternative
// in the workload-subsetting literature (cf. Yi et al.'s evaluation of
// subsetting approaches, cited as [7]), and this implementation lets the
// two criteria be compared on the same clustering.
//
// Singleton clusters contribute silhouette 0 by the standard convention.
// A clustering with K < 2 scores 0.
func Silhouette(points *mat.Dense, res *Result) float64 {
	n, _ := points.Dims()
	if res.K < 2 || n < 2 {
		return 0
	}
	// Pairwise mean distances per point to each cluster.
	total := 0.0
	for i := 0; i < n; i++ {
		own := res.Assign[i]
		if res.Sizes[own] <= 1 {
			continue // silhouette 0
		}
		sums := make([]float64, res.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[res.Assign[j]] += mat.Distance(points.Row(i), points.Row(j))
		}
		a := sums[own] / float64(res.Sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < res.K; c++ {
			if c == own || res.Sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(res.Sizes[c]); m < b {
				b = m
			}
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}

// BestKSilhouette scans K in [kMin, kMax] (kMin ≥ 2) and returns the
// clustering with the highest mean silhouette, plus all per-K results
// with their silhouettes.
func BestKSilhouette(points *mat.Dense, kMin, kMax int, cfg Config) (*Result, []float64, error) {
	if kMin < 2 {
		kMin = 2
	}
	_, all, err := BestK(points, kMin, kMax, cfg)
	if err != nil {
		return nil, nil, err
	}
	scores := make([]float64, len(all))
	var best *Result
	bestScore := math.Inf(-1)
	for i, r := range all {
		scores[i] = Silhouette(points, r)
		if scores[i] > bestScore {
			bestScore = scores[i]
			best = r
		}
	}
	return best, scores, nil
}
