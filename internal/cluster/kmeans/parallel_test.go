package kmeans

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/num/mat"
)

func gaussianBlobs(seed int64, perBlob int, centers [][]float64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := len(centers[0])
	m := mat.NewDense(perBlob*len(centers), d)
	for b, c := range centers {
		for i := 0; i < perBlob; i++ {
			for j := 0; j < d; j++ {
				m.Set(b*perBlob+i, j, c[j]+rng.NormFloat64()*0.3)
			}
		}
	}
	return m
}

// TestRunParallelismInvariant asserts Run yields an identical Result at
// every Parallelism setting: per-restart RNGs and the deterministic
// best-pick make goroutine scheduling invisible.
func TestRunParallelismInvariant(t *testing.T) {
	pts := gaussianBlobs(11, 12, [][]float64{{0, 0}, {6, 6}, {-5, 7}})
	base := Config{Restarts: 8, Seed: 3, Parallelism: 1}
	want, err := Run(pts, 3, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		cfg := base
		cfg.Parallelism = par
		got, err := Run(pts, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Assign, want.Assign) ||
			got.Inertia != want.Inertia ||
			got.BIC != want.BIC ||
			!reflect.DeepEqual(got.Sizes, want.Sizes) {
			t.Fatalf("Parallelism=%d diverged from sequential result", par)
		}
	}
}

// TestBestKParallelismInvariant asserts the BIC-driven K scan picks the
// same K with identical per-K results at any Parallelism.
func TestBestKParallelismInvariant(t *testing.T) {
	pts := gaussianBlobs(12, 10, [][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}})
	base := Config{Restarts: 4, Seed: 9, Parallelism: 1}
	wantBest, wantAll, err := BestK(pts, 1, 8, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		cfg := base
		cfg.Parallelism = par
		best, all, err := BestK(pts, 1, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if best.K != wantBest.K || best.BIC != wantBest.BIC {
			t.Fatalf("Parallelism=%d best K=%d BIC=%v, want K=%d BIC=%v",
				par, best.K, best.BIC, wantBest.K, wantBest.BIC)
		}
		if len(all) != len(wantAll) {
			t.Fatalf("Parallelism=%d returned %d results, want %d", par, len(all), len(wantAll))
		}
		for i := range all {
			if all[i].K != wantAll[i].K || all[i].Inertia != wantAll[i].Inertia ||
				all[i].BIC != wantAll[i].BIC ||
				!reflect.DeepEqual(all[i].Assign, wantAll[i].Assign) {
				t.Fatalf("Parallelism=%d K=%d result diverged", par, all[i].K)
			}
		}
	}
}

// TestAssignmentsExactlyNearest asserts the final exact pass leaves every
// point with its true nearest center under the direct squared distance
// (the cached-norm trick is only used inside Lloyd iterations).
func TestAssignmentsExactlyNearest(t *testing.T) {
	pts := gaussianBlobs(13, 15, [][]float64{{0, 0, 0}, {5, 5, 5}})
	res, err := Run(pts, 2, Config{Restarts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := pts.Dims()
	for i := 0; i < n; i++ {
		best, bestD := -1, 0.0
		for c := 0; c < res.K; c++ {
			dd := mat.SquaredDistance(pts.Row(i), res.Centers.Row(c))
			if best < 0 || dd < bestD {
				best, bestD = c, dd
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], best)
		}
	}
}
