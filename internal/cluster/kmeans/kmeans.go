// Package kmeans implements Lloyd's K-means with k-means++ seeding and the
// Bayesian Information Criterion in the Pelleg–Moore X-means formulation
// that the paper uses to pick K (§VI-A, Equations 1–3).
package kmeans

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/num/mat"
	"repro/internal/rng"
)

// Result is a fitted K-means clustering.
type Result struct {
	K          int
	Assign     []int      // cluster index per point
	Centers    *mat.Dense // K×dims
	Sizes      []int      // points per cluster
	Inertia    float64    // sum of squared distances to assigned centers
	Iterations int        // Lloyd iterations until convergence
	BIC        float64    // Pelleg–Moore BIC score of this clustering
}

// Config controls the algorithm.
type Config struct {
	MaxIterations int    // Lloyd iteration cap (default 100)
	Restarts      int    // independent seedings, best inertia wins (default 8)
	Seed          uint64 // RNG seed for k-means++ (deterministic)
	// Parallelism bounds concurrent restarts in Run and concurrent K
	// values in BestK (0 = GOMAXPROCS). Results are identical at every
	// setting: each restart has its own seed-derived RNG and the winner is
	// picked deterministically (lowest inertia, ties broken by the lowest
	// restart index / lowest K).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Restarts <= 0 {
		c.Restarts = 8
	}
	return c
}

// parallelism resolves a Parallelism setting against GOMAXPROCS and an
// upper bound on useful workers.
func parallelism(p, bound int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > bound {
		p = bound
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run clusters the rows of points into k clusters. Restarts execute
// concurrently (bounded by Config.Parallelism), each with its own
// seed-derived RNG; the winner is the lowest inertia with ties broken by
// the lowest restart index, so the result is deterministic for a fixed
// Config.Seed at any parallelism.
func Run(points *mat.Dense, k int, cfg Config) (*Result, error) {
	n, _ := points.Dims()
	if k < 1 {
		return nil, fmt.Errorf("kmeans: k=%d must be ≥ 1", k)
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: k=%d exceeds point count %d", k, n)
	}
	cfg = cfg.withDefaults()

	// Squared point norms are shared read-only by every restart: the
	// assignment loop computes ‖x−c‖² as ‖x‖²+‖c‖²−2x·c.
	xnorm := make([]float64, n)
	for i := 0; i < n; i++ {
		xnorm[i] = mat.Dot(points.Row(i), points.Row(i))
	}

	results := make([]*Result, cfg.Restarts)
	runRestart := func(r int) {
		rg := rng.New(cfg.Seed + uint64(r)*0x9E3779B97F4A7C15)
		results[r] = runOnce(points, xnorm, k, cfg.MaxIterations, rg)
	}
	if par := parallelism(cfg.Parallelism, cfg.Restarts); par <= 1 {
		for r := 0; r < cfg.Restarts; r++ {
			runRestart(r)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for r := 0; r < cfg.Restarts; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runRestart(r)
			}(r)
		}
		wg.Wait()
	}

	best := results[0]
	for _, res := range results[1:] {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	best.BIC = BIC(points, best)
	return best, nil
}

func runOnce(points *mat.Dense, xnorm []float64, k, maxIter int, rg *rng.RNG) *Result {
	n, d := points.Dims()
	centers := seedPlusPlus(points, k, rg)
	cnorm := make([]float64, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		changed := false
		for c := 0; c < k; c++ {
			cnorm[c] = mat.Dot(centers.Row(c), centers.Row(c))
		}
		for i := 0; i < n; i++ {
			row := points.Row(i)
			bestC, bestD := -1, math.Inf(1)
			for c := 0; c < k; c++ {
				// ‖x‖²+‖c‖²−2x·c: one dot product instead of a full
				// difference-and-square pass per candidate center.
				dd := xnorm[i] + cnorm[c] - 2*mat.Dot(row, centers.Row(c))
				if dd < bestD {
					bestD = dd
					bestC = c
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		sums := mat.NewDense(k, d)
		counts := make([]int, k)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for j := 0; j < d; j++ {
				sums.Set(c, j, sums.At(c, j)+points.At(i, j))
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty-cluster repair: reseed at the point farthest from
				// its assigned center.
				fi, fd := 0, -1.0
				for i := 0; i < n; i++ {
					dd := mat.SquaredDistance(points.Row(i), centers.Row(assign[i]))
					if dd > fd {
						fd = dd
						fi = i
					}
				}
				centers.SetRow(c, points.Row(fi))
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				centers.Set(c, j, sums.At(c, j)*inv)
			}
		}
	}
	// Final exact pass: recompute assignments with the direct squared
	// distance, so reported results are free of the cached-norm
	// formulation's cancellation error and every point provably sits with
	// its nearest center. A rounding-induced flip can only happen when a
	// point is within cancellation error of equidistant; if such flips
	// would empty a cluster that Lloyd's repair kept populated, keep the
	// Lloyd assignment wholesale — downstream consumers (representative
	// selection) require clusters to stay non-empty, and either
	// assignment differs only by ~1e-12 in inertia.
	exact := make([]int, n)
	exactSizes := make([]int, k)
	for i := 0; i < n; i++ {
		row := points.Row(i)
		bestC, bestD := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			dd := mat.SquaredDistance(row, centers.Row(c))
			if dd < bestD {
				bestD = dd
				bestC = c
			}
		}
		exact[i] = bestC
		exactSizes[bestC]++
	}
	lloydSizes := make([]int, k)
	for _, c := range assign {
		lloydSizes[c]++
	}
	adopt := true
	for c := 0; c < k; c++ {
		if lloydSizes[c] > 0 && exactSizes[c] == 0 {
			adopt = false
			break
		}
	}
	if adopt {
		assign = exact
	}
	inertia := 0.0
	sizes := make([]int, k)
	for i := 0; i < n; i++ {
		inertia += mat.SquaredDistance(points.Row(i), centers.Row(assign[i]))
		sizes[assign[i]]++
	}
	return &Result{
		K:          k,
		Assign:     assign,
		Centers:    centers,
		Sizes:      sizes,
		Inertia:    inertia,
		Iterations: iters,
	}
}

// seedPlusPlus selects k initial centers with the k-means++ D² weighting.
func seedPlusPlus(points *mat.Dense, k int, rg *rng.RNG) *mat.Dense {
	n, d := points.Dims()
	centers := mat.NewDense(k, d)
	first := int(rg.Uint64n(uint64(n)))
	centers.SetRow(0, points.Row(first))

	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = mat.SquaredDistance(points.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var pick int
		if total == 0 {
			// All points coincide with chosen centers; pick uniformly.
			pick = int(rg.Uint64n(uint64(n)))
		} else {
			r := rg.Float64() * total
			cum := 0.0
			pick = n - 1
			for i, v := range d2 {
				cum += v
				if cum >= r {
					pick = i
					break
				}
			}
		}
		centers.SetRow(c, points.Row(pick))
		for i := 0; i < n; i++ {
			dd := mat.SquaredDistance(points.Row(i), centers.Row(c))
			if dd < d2[i] {
				d2[i] = dd
			}
		}
	}
	return centers
}

// BIC computes the Bayesian Information Criterion of a clustering using
// the Pelleg–Moore formulation the paper reproduces as Equations 1–3:
//
//	BIC(D,K) = l(D|K) − (p_j/2)·log(R)
//
// with l(D|K) the maximum log-likelihood under an identical spherical
// Gaussian per cluster, R the number of points, and p_j = K + d·K the
// parameter count (K class probabilities − 1 plus K d-dimensional
// centroids; the paper states p_j = K + dK).
func BIC(points *mat.Dense, res *Result) float64 {
	n, d := points.Dims()
	R := float64(n)
	K := float64(res.K)
	dd := float64(d)

	// σ² — average variance of the Euclidean distance from each point to
	// its cluster center (Equation 3), with the R−K maximum-likelihood
	// denominator.
	denom := R - K
	if denom <= 0 {
		denom = 1
	}
	sigma2 := res.Inertia / denom
	if sigma2 <= 0 {
		// Degenerate (all points at centers): substitute a tiny variance
		// so the log-likelihood stays finite and strongly favorable.
		sigma2 = 1e-12
	}

	// l(D|K) — Equation 2, summed per cluster.
	l := 0.0
	for i := 0; i < res.K; i++ {
		Ri := float64(res.Sizes[i])
		if Ri == 0 {
			continue
		}
		l += -Ri/2*math.Log(2*math.Pi) -
			Ri*dd/2*math.Log(sigma2) -
			(Ri-K)/2 +
			Ri*math.Log(Ri) -
			Ri*math.Log(R)
	}

	pj := K + dd*K
	return l - pj/2*math.Log(R)
}

// BestK runs K-means for every K in [kMin, kMax] and returns the result
// with the highest BIC, plus the per-K results (in K order) for
// reporting. The K scan executes concurrently, bounded by
// Config.Parallelism; the winner is picked by scanning the per-K results
// in K order (strictly higher BIC wins, so ties keep the lowest K),
// making the choice identical at any parallelism.
func BestK(points *mat.Dense, kMin, kMax int, cfg Config) (*Result, []*Result, error) {
	n, _ := points.Dims()
	if kMin < 1 || kMax < kMin {
		return nil, nil, fmt.Errorf("kmeans: invalid K range [%d,%d]", kMin, kMax)
	}
	if kMax > n {
		kMax = n
	}
	nk := kMax - kMin + 1
	all := make([]*Result, nk)
	errs := make([]error, nk)

	if par := parallelism(cfg.Parallelism, nk); par <= 1 {
		for i := 0; i < nk; i++ {
			all[i], errs[i] = Run(points, kMin+i, cfg)
		}
	} else {
		// The K goroutines carry the parallelism; restarts inside each Run
		// stay serial to avoid oversubscription.
		inner := cfg
		inner.Parallelism = 1
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i := 0; i < nk; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				all[i], errs[i] = Run(points, kMin+i, inner)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	best := all[0]
	for _, res := range all[1:] {
		if res.BIC > best.BIC {
			best = res
		}
	}
	return best, all, nil
}

// NearestToCenter returns, per cluster, the index of the point closest to
// the cluster centroid — the paper's first representative-selection policy.
func (r *Result) NearestToCenter(points *mat.Dense) []int {
	reps := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range best {
		best[c] = math.Inf(1)
		reps[c] = -1
	}
	n, _ := points.Dims()
	for i := 0; i < n; i++ {
		c := r.Assign[i]
		d := mat.SquaredDistance(points.Row(i), r.Centers.Row(c))
		if d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}

// FarthestFromCenter returns, per cluster, the index of the point farthest
// from the cluster centroid — the paper's second ("boundary") policy,
// which it finds superior (§VI-B).
func (r *Result) FarthestFromCenter(points *mat.Dense) []int {
	reps := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range best {
		best[c] = -1
		reps[c] = -1
	}
	n, _ := points.Dims()
	for i := 0; i < n; i++ {
		c := r.Assign[i]
		d := mat.SquaredDistance(points.Row(i), r.Centers.Row(c))
		if d > best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}

// Members returns the point indices assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}
