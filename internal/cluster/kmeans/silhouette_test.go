package kmeans

import (
	"testing"
	"testing/quick"

	"repro/internal/num/mat"
	"repro/internal/rng"
)

func TestSilhouetteHighForSeparatedBlobs(t *testing.T) {
	pts, _ := blobs(41, 3, 10, 3)
	res, err := Run(pts, 3, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(pts, res); s < 0.8 {
		t.Errorf("silhouette = %v, want > 0.8 for well-separated blobs", s)
	}
}

func TestSilhouetteLowForOverSplit(t *testing.T) {
	pts, _ := blobs(42, 2, 12, 3)
	good, err := Run(pts, 2, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	oversplit, err := Run(pts, 8, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sg, so := Silhouette(pts, good), Silhouette(pts, oversplit)
	if sg <= so {
		t.Errorf("silhouette true-K %v should exceed over-split %v", sg, so)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	pts, _ := blobs(43, 2, 5, 2)
	res, err := Run(pts, 1, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(pts, res); s != 0 {
		t.Errorf("K=1 silhouette = %v, want 0", s)
	}
}

func TestBestKSilhouetteRecoversTrueK(t *testing.T) {
	pts, _ := blobs(44, 3, 12, 4)
	best, scores, err := BestKSilhouette(pts, 2, 8, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 7 {
		t.Fatalf("scores has %d entries, want 7", len(scores))
	}
	if best.K != 3 {
		t.Errorf("silhouette chose K=%d, want 3 (scores %v)", best.K, scores)
	}
}

// Property: silhouette is always in [-1, 1].
func TestQuickSilhouetteBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(20)
		pts := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, 0, r.NormFloat64())
			pts.Set(i, 1, r.NormFloat64())
		}
		k := 2 + r.Intn(4)
		if k > n {
			k = n
		}
		res, err := Run(pts, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		s := Silhouette(pts, res)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
