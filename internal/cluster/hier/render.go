package hier

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws the dendrogram as ASCII art in the style of Fig. 1: one
// leaf per line, ordered so that merged clusters are adjacent, with each
// merge's linkage distance annotated. width controls the horizontal
// resolution of the distance axis.
func (d *Dendrogram) Render(width int) string {
	if width < 20 {
		width = 20
	}
	order := d.LeafOrder()
	pos := make(map[int]int, len(order)) // leaf ID -> display row
	for row, leaf := range order {
		pos[leaf] = row
	}

	maxDist := 0.0
	for _, m := range d.Merges {
		if m.Distance > maxDist {
			maxDist = m.Distance
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}

	labelWidth := 0
	label := func(i int) string {
		if d.Labels != nil {
			return d.Labels[i]
		}
		return fmt.Sprintf("leaf-%d", i)
	}
	for i := 0; i < d.N; i++ {
		if l := len(label(i)); l > labelWidth {
			labelWidth = l
		}
	}

	// Each display row holds a horizontal bar from the leaf label out to
	// the column where its current cluster last merged.
	grid := make([][]byte, d.N)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width+1))
	}
	col := func(dist float64) int {
		c := int(dist / maxDist * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Track, per cluster ID, its representative row (middle of its span)
	// and the column it extends to.
	type node struct{ row, col int }
	nodes := make(map[int]node, d.N+len(d.Merges))
	for i := 0; i < d.N; i++ {
		nodes[i] = node{row: pos[i], col: 0}
	}
	var annotations []string
	for i, m := range d.Merges {
		a, b := nodes[m.A], nodes[m.B]
		c := col(m.Distance)
		// Horizontal segments from each child's current column to c.
		for _, ch := range []node{a, b} {
			for x := ch.col; x <= c; x++ {
				if grid[ch.row][x] == ' ' {
					grid[ch.row][x] = '-'
				}
			}
		}
		// Vertical connector at column c.
		lo, hi := a.row, b.row
		if lo > hi {
			lo, hi = hi, lo
		}
		for y := lo; y <= hi; y++ {
			grid[y][c] = '|'
		}
		grid[a.row][c] = '+'
		grid[b.row][c] = '+'
		mid := (a.row + b.row) / 2
		nodes[d.N+i] = node{row: mid, col: c}
		annotations = append(annotations, fmt.Sprintf("  merge %2d: dist %6.3f  (%s + %s)",
			i+1, m.Distance, d.clusterName(m.A), d.clusterName(m.B)))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s 0%s%.3g\n", labelWidth, "linkage distance →", strings.Repeat(" ", width-6), maxDist)
	for row, leaf := range order {
		fmt.Fprintf(&b, "%*s %s\n", labelWidth, label(leaf), string(grid[row]))
	}
	b.WriteString("\n")
	for _, a := range annotations {
		b.WriteString(a)
		b.WriteByte('\n')
	}
	return b.String()
}

func (d *Dendrogram) clusterName(id int) string {
	if id < d.N {
		if d.Labels != nil {
			return d.Labels[id]
		}
		return fmt.Sprintf("leaf-%d", id)
	}
	return fmt.Sprintf("cluster-%d", id-d.N+1)
}

// LeafOrder returns the leaves in dendrogram display order: a recursive
// traversal of the final merge tree, which keeps every cluster's leaves
// contiguous.
func (d *Dendrogram) LeafOrder() []int {
	if len(d.Merges) == 0 {
		out := make([]int, d.N)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Roots: clusters that are never referenced as children (normally
	// just the final merge).
	child := make(map[int]bool)
	for _, m := range d.Merges {
		child[m.A] = true
		child[m.B] = true
	}
	var roots []int
	for i := 0; i < d.N+len(d.Merges); i++ {
		if !child[i] {
			roots = append(roots, i)
		}
	}
	sort.Ints(roots)
	var order []int
	for _, r := range roots {
		order = append(order, d.leaves(r)...)
	}
	return order
}
