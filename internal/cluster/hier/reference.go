package hier

import (
	"fmt"
	"math"

	"repro/internal/num/mat"
)

// clusterReference is the original O(n³) agglomerative implementation: a
// full n×n distance matrix with a global minimum scan per merge step. It
// is retained as the oracle the nearest-neighbor-chain Cluster is tested
// against (the two must produce identical dendrograms whenever pairwise
// distances are distinct) and is not used on any production path.
func clusterReference(points *mat.Dense, linkage Linkage) (*Dendrogram, error) {
	n, _ := points.Dims()
	if n < 2 {
		return nil, fmt.Errorf("hier: need at least 2 points, got %d", n)
	}

	// Pairwise distance matrix between active clusters, indexed by
	// cluster slot. Slot i initially holds leaf i. Lance–Williams updates
	// keep it consistent after merges.
	type slot struct {
		id   int // cluster ID (leaf or internal)
		size int
		live bool
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i] = slot{id: i, size: 1, live: true}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := mat.Distance(points.Row(i), points.Row(j))
			if linkage == Ward {
				// Ward works on squared distances internally; we convert
				// back when reporting so all linkages share units.
				d = d * d
			}
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	dend := &Dendrogram{N: n, Merges: make([]Merge, 0, n-1)}
	nextID := n

	for step := 0; step < n-1; step++ {
		// Find the closest live pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !slots[i].live {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !slots[j].live {
					continue
				}
				if dist[i][j] < best {
					best = dist[i][j]
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			return nil, fmt.Errorf("hier: internal error: no live pair at step %d", step)
		}

		si, sj := slots[bi].size, slots[bj].size
		reported := best
		if linkage == Ward {
			reported = math.Sqrt(best)
		}
		dend.Merges = append(dend.Merges, Merge{
			A:        slots[bi].id,
			B:        slots[bj].id,
			Distance: reported,
			Size:     si + sj,
		})

		// Lance–Williams update of distances from the merged cluster
		// (stored in slot bi) to every other live slot.
		for k := 0; k < n; k++ {
			if !slots[k].live || k == bi || k == bj {
				continue
			}
			dik, djk := dist[bi][k], dist[bj][k]
			var d float64
			switch linkage {
			case Single:
				d = math.Min(dik, djk)
			case Complete:
				d = math.Max(dik, djk)
			case Average:
				d = (float64(si)*dik + float64(sj)*djk) / float64(si+sj)
			case Ward:
				sk := float64(slots[k].size)
				tot := float64(si+sj) + sk
				d = ((float64(si)+sk)*dik + (float64(sj)+sk)*djk - sk*best) / tot
			default:
				return nil, fmt.Errorf("hier: unknown linkage %v", linkage)
			}
			dist[bi][k] = d
			dist[k][bi] = d
		}
		slots[bi].id = nextID
		slots[bi].size = si + sj
		slots[bj].live = false
		nextID++
	}
	return dend, nil
}
