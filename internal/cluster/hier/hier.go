// Package hier implements agglomerative hierarchical clustering with the
// linkage strategies used for workload similarity analysis (paper §III-D,
// §V-A: Euclidean distance, single linkage, dendrogram reading).
package hier

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/num/mat"
)

// Linkage selects how the distance between two clusters is computed from
// pairwise point distances.
type Linkage int

const (
	// Single linkage: distance between the closest pair (the paper's
	// choice, following Phansalkar et al.).
	Single Linkage = iota
	// Complete linkage: distance between the farthest pair.
	Complete
	// Average linkage (UPGMA): mean pairwise distance.
	Average
	// Ward linkage: merge cost in within-cluster variance.
	Ward
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step. Clusters are identified by ID:
// IDs 0..n-1 are the original points (leaves); merge i creates cluster
// n+i from children A and B at the given linkage Distance.
type Merge struct {
	A, B     int
	Distance float64
	Size     int // number of leaves in the merged cluster
}

// Dendrogram is the full merge history of n points: exactly n-1 merges.
type Dendrogram struct {
	N      int
	Merges []Merge
	Labels []string // optional, len N when set
}

// condensed is a flat upper-triangular pairwise distance store over n
// items: entry (i,j), i<j, lives at row-major triangular offset. It holds
// half the memory of a full matrix and is cache-friendlier to scan.
type condensed struct {
	n int
	d []float64
}

func newCondensed(n int) *condensed {
	return &condensed{n: n, d: make([]float64, n*(n-1)/2)}
}

func (c *condensed) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts after rows 0..i-1, which hold (n-1)+(n-2)+...+(n-i)
	// entries.
	return i*(c.n-1) - i*(i-1)/2 + (j - i - 1)
}

func (c *condensed) at(i, j int) float64     { return c.d[c.idx(i, j)] }
func (c *condensed) set(i, j int, v float64) { c.d[c.idx(i, j)] = v }

// Cluster performs agglomerative clustering of the rows of points using
// Euclidean distance and the given linkage, via the nearest-neighbor-chain
// algorithm over a condensed triangular distance store: O(n²) time and
// n(n-1)/2 distance entries, versus the O(n³)/full-matrix naive scan. All
// four linkages are Lance–Williams reducible, so the chain's local merges
// produce the same dendrogram as the global greedy algorithm whenever
// pairwise minimum distances are distinct; merges are re-sorted into
// nondecreasing distance order and relabeled afterwards so cluster IDs
// match the greedy numbering. Results are fully deterministic (nearest-
// neighbor ties prefer the chain predecessor, then the smallest index),
// but when distinct merges share exactly equal distances the chain may
// legally emit them in a different order than the greedy scan's
// smallest-index-pair rule — both are valid dendrograms of the same
// heights.
func Cluster(points *mat.Dense, linkage Linkage) (*Dendrogram, error) {
	n, _ := points.Dims()
	if n < 2 {
		return nil, fmt.Errorf("hier: need at least 2 points, got %d", n)
	}
	switch linkage {
	case Single, Complete, Average, Ward:
	default:
		return nil, fmt.Errorf("hier: unknown linkage %v", linkage)
	}

	dist := newCondensed(n)
	for i := 0; i < n; i++ {
		ri := points.Row(i)
		for j := i + 1; j < n; j++ {
			d := mat.Distance(ri, points.Row(j))
			if linkage == Ward {
				// Ward works on squared distances internally; we convert
				// back when reporting so all linkages share units.
				d = d * d
			}
			dist.set(i, j, d)
		}
	}

	// A cluster is identified by its smallest leaf index; merging a<b
	// stores the union at a. size/active are indexed the same way.
	size := make([]int, n)
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}

	type rawMerge struct {
		a, b int // cluster representatives, a < b
		d    float64
	}
	raw := make([]rawMerge, 0, n-1)
	chain := make([]int, 0, n)
	remaining := n

	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		a := chain[len(chain)-1]
		prev := -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		// Nearest active neighbor of a; ties prefer the chain predecessor
		// (required for termination), then the smallest index.
		b, best := -1, math.Inf(1)
		for k := 0; k < n; k++ {
			if !active[k] || k == a {
				continue
			}
			if d := dist.at(a, k); d < best {
				best = d
				b = k
			}
		}
		if prev >= 0 && dist.at(a, prev) == best {
			b = prev
		}
		if b != prev {
			chain = append(chain, b)
			continue
		}

		// a and b are reciprocal nearest neighbors: merge them.
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		raw = append(raw, rawMerge{a: x, b: y, d: best})
		sx, sy := size[x], size[y]
		for k := 0; k < n; k++ {
			if !active[k] || k == x || k == y {
				continue
			}
			dxk, dyk := dist.at(x, k), dist.at(y, k)
			var d float64
			switch linkage {
			case Single:
				d = math.Min(dxk, dyk)
			case Complete:
				d = math.Max(dxk, dyk)
			case Average:
				d = (float64(sx)*dxk + float64(sy)*dyk) / float64(sx+sy)
			case Ward:
				sk := float64(size[k])
				tot := float64(sx+sy) + sk
				d = ((float64(sx)+sk)*dxk + (float64(sy)+sk)*dyk - sk*best) / tot
			}
			dist.set(x, k, d)
		}
		size[x] = sx + sy
		active[y] = false
		remaining--
		chain = chain[:len(chain)-2]
	}

	// The chain emits merges out of distance order (it follows local
	// reciprocal pairs, not the global minimum). Reducibility guarantees
	// every child merge has distance ≤ its parent's, so a stable sort by
	// distance yields a valid greedy-order history; relabel cluster IDs to
	// match (merge i creates cluster n+i, child A has the smaller minimum
	// leaf).
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].d < raw[j].d })

	dend := &Dendrogram{N: n, Merges: make([]Merge, 0, n-1)}
	id := make([]int, n) // current dendrogram ID of the cluster rooted at each representative
	csize := make([]int, n)
	for i := range id {
		id[i] = i
		csize[i] = 1
	}
	for i, rm := range raw {
		reported := rm.d
		if linkage == Ward {
			reported = math.Sqrt(reported)
		}
		sz := csize[rm.a] + csize[rm.b]
		dend.Merges = append(dend.Merges, Merge{
			A:        id[rm.a],
			B:        id[rm.b],
			Distance: reported,
			Size:     sz,
		})
		id[rm.a] = n + i
		csize[rm.a] = sz
	}
	return dend, nil
}

// SetLabels attaches leaf labels for rendering. len(labels) must equal N.
func (d *Dendrogram) SetLabels(labels []string) error {
	if len(labels) != d.N {
		return fmt.Errorf("hier: %d labels for %d leaves", len(labels), d.N)
	}
	d.Labels = append([]string(nil), labels...)
	return nil
}

// leaves returns the leaf IDs under cluster id, in discovery order.
func (d *Dendrogram) leaves(id int) []int {
	if id < d.N {
		return []int{id}
	}
	m := d.Merges[id-d.N]
	return append(d.leaves(m.A), d.leaves(m.B)...)
}

// Leaves returns the leaf indices under the cluster with the given ID
// (0..N-1 are leaves; N+i is the cluster created by merge i).
func (d *Dendrogram) Leaves(id int) []int {
	if id < 0 || id >= d.N+len(d.Merges) {
		panic(fmt.Sprintf("hier: cluster id %d out of range", id))
	}
	return d.leaves(id)
}

// Cut cuts the dendrogram at the given distance: merges with
// Distance ≤ cut are applied, yielding flat cluster assignments.
// Returns one cluster index per leaf, numbered 0..k-1 in order of first
// appearance, plus k.
func (d *Dendrogram) Cut(cut float64) ([]int, int) {
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range d.Merges {
		if m.Distance <= cut {
			id := d.N + i
			parent[find(m.A)] = id
			parent[find(m.B)] = id
		}
	}
	assign := make([]int, d.N)
	index := map[int]int{}
	for i := 0; i < d.N; i++ {
		root := find(i)
		k, ok := index[root]
		if !ok {
			k = len(index)
			index[root] = k
		}
		assign[i] = k
	}
	return assign, len(index)
}

// CutK cuts the dendrogram to produce exactly k flat clusters (by undoing
// the k-1 most expensive merges). k must be in [1, N].
func (d *Dendrogram) CutK(k int) []int {
	if k < 1 || k > d.N {
		panic(fmt.Sprintf("hier: CutK k=%d out of range [1,%d]", k, d.N))
	}
	// Apply the first N-k merges in merge order (they are produced in
	// nondecreasing distance order for monotone linkages; for safety we
	// sort by distance).
	order := make([]int, len(d.Merges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return d.Merges[order[a]].Distance < d.Merges[order[b]].Distance
	})
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, mi := range order[:d.N-k] {
		m := d.Merges[mi]
		id := d.N + mi
		parent[find(m.A)] = id
		parent[find(m.B)] = id
	}
	assign := make([]int, d.N)
	index := map[int]int{}
	for i := 0; i < d.N; i++ {
		root := find(i)
		c, ok := index[root]
		if !ok {
			c = len(index)
			index[root] = c
		}
		assign[i] = c
	}
	return assign
}

// CopheneticDistance returns the linkage distance at which leaves a and b
// first join the same cluster.
func (d *Dendrogram) CopheneticDistance(a, b int) float64 {
	if a == b {
		return 0
	}
	// Walk merges in order; track cluster membership with union-find.
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range d.Merges {
		id := d.N + i
		parent[find(m.A)] = id
		parent[find(m.B)] = id
		if find(a) == find(b) {
			return m.Distance
		}
	}
	return math.Inf(1)
}

// FirstIterationPairs returns the merges that combine two leaves directly
// — the "first clustering iteration" pairs the paper analyzes in
// Observations 1–2 (e.g. "80% of clusters consist of workloads that are
// based on the same software stack").
func (d *Dendrogram) FirstIterationPairs() []Merge {
	var out []Merge
	for _, m := range d.Merges {
		if m.A < d.N && m.B < d.N {
			out = append(out, m)
		}
	}
	return out
}

// CopheneticCorrelation measures how faithfully the dendrogram preserves
// the original pairwise distances: the Pearson correlation between the
// Euclidean distances of the points and their cophenetic distances.
// Values near 1 mean the hierarchy is a good summary of the geometry.
func (d *Dendrogram) CopheneticCorrelation(points *mat.Dense) float64 {
	n, _ := points.Dims()
	if n != d.N || n < 3 {
		return 0
	}
	var orig, coph []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			orig = append(orig, mat.Distance(points.Row(i), points.Row(j)))
			coph = append(coph, d.CopheneticDistance(i, j))
		}
	}
	return pearson(orig, coph)
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// MaxPairwiseCophenetic returns the largest cophenetic distance among the
// given leaves — the "maximal linkage distance" column of Table V.
func (d *Dendrogram) MaxPairwiseCophenetic(leaves []int) float64 {
	max := 0.0
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if c := d.CopheneticDistance(leaves[i], leaves[j]); c > max {
				max = c
			}
		}
	}
	return max
}
