package hier

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/num/mat"
)

// twoBlobs builds two well-separated clusters of points in 2D.
func twoBlobs(rng *rand.Rand, nA, nB int) *mat.Dense {
	m := mat.NewDense(nA+nB, 2)
	for i := 0; i < nA; i++ {
		m.Set(i, 0, rng.NormFloat64()*0.1)
		m.Set(i, 1, rng.NormFloat64()*0.1)
	}
	for i := 0; i < nB; i++ {
		m.Set(nA+i, 0, 10+rng.NormFloat64()*0.1)
		m.Set(nA+i, 1, 10+rng.NormFloat64()*0.1)
	}
	return m
}

func TestClusterRejectsSinglePoint(t *testing.T) {
	if _, err := Cluster(mat.NewDense(1, 2), Single); err == nil {
		t.Error("expected error for single point")
	}
}

func TestMergeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := twoBlobs(rng, 3, 4)
	d, err := Cluster(pts, Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 6 {
		t.Errorf("merges = %d, want n-1 = 6", len(d.Merges))
	}
	if d.Merges[len(d.Merges)-1].Size != 7 {
		t.Errorf("final merge size = %d, want 7", d.Merges[len(d.Merges)-1].Size)
	}
}

func TestTwoBlobsSeparate(t *testing.T) {
	for _, linkage := range []Linkage{Single, Complete, Average, Ward} {
		rng := rand.New(rand.NewSource(2))
		pts := twoBlobs(rng, 5, 5)
		d, err := Cluster(pts, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		assign := d.CutK(2)
		// All of blob A in one cluster, all of blob B in the other.
		for i := 1; i < 5; i++ {
			if assign[i] != assign[0] {
				t.Errorf("%v: blob A split: %v", linkage, assign)
				break
			}
		}
		for i := 6; i < 10; i++ {
			if assign[i] != assign[5] {
				t.Errorf("%v: blob B split: %v", linkage, assign)
				break
			}
		}
		if assign[0] == assign[5] {
			t.Errorf("%v: blobs merged: %v", linkage, assign)
		}
	}
}

func TestFinalMergeIsLargestForSingleLinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoBlobs(rng, 5, 5)
	d, err := Cluster(pts, Single)
	if err != nil {
		t.Fatal(err)
	}
	last := d.Merges[len(d.Merges)-1].Distance
	if last < 9 {
		t.Errorf("final merge distance = %v, want ≈ blob separation (~14)", last)
	}
}

func TestCutDistanceZeroGivesNClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := twoBlobs(rng, 3, 3)
	d, err := Cluster(pts, Single)
	if err != nil {
		t.Fatal(err)
	}
	_, k := d.Cut(-1)
	if k != 6 {
		t.Errorf("Cut(-1) clusters = %d, want 6", k)
	}
	_, k = d.Cut(math.Inf(1))
	if k != 1 {
		t.Errorf("Cut(inf) clusters = %d, want 1", k)
	}
}

func TestCutKBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := twoBlobs(rng, 2, 2)
	d, _ := Cluster(pts, Single)
	if got := d.CutK(1); !allEqual(got) {
		t.Errorf("CutK(1) = %v, want single cluster", got)
	}
	if got := d.CutK(4); !allDistinct(got) {
		t.Errorf("CutK(n) = %v, want all singletons", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("CutK(0) did not panic")
		}
	}()
	d.CutK(0)
}

func allEqual(xs []int) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

func allDistinct(xs []int) bool {
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

func TestCopheneticDistance(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}})
	d, err := Cluster(pts, Single)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CopheneticDistance(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("cophenetic(0,1) = %v, want 1", got)
	}
	if got := d.CopheneticDistance(0, 2); math.Abs(got-9) > 1e-12 {
		t.Errorf("cophenetic(0,2) = %v, want 9 (single linkage)", got)
	}
	if got := d.CopheneticDistance(2, 2); got != 0 {
		t.Errorf("cophenetic(x,x) = %v, want 0", got)
	}
}

func TestFirstIterationPairs(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {0.1, 0}, {5, 0}, {5.1, 0}, {100, 0}})
	d, err := Cluster(pts, Single)
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.FirstIterationPairs()
	if len(pairs) != 2 {
		t.Fatalf("first-iteration pairs = %d, want 2 (%v)", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.A >= d.N || p.B >= d.N {
			t.Errorf("pair %v has non-leaf child", p)
		}
	}
}

func TestMaxPairwiseCophenetic(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}})
	d, _ := Cluster(pts, Single)
	if got := d.MaxPairwiseCophenetic([]int{0, 1, 2}); math.Abs(got-9) > 1e-12 {
		t.Errorf("MaxPairwiseCophenetic = %v, want 9", got)
	}
	if got := d.MaxPairwiseCophenetic([]int{0, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("MaxPairwiseCophenetic = %v, want 1", got)
	}
}

func TestLeavesUnderCluster(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}})
	d, _ := Cluster(pts, Single)
	// First merge joins 0 and 1; its cluster ID is N+0 = 3.
	l := d.Leaves(3)
	if len(l) != 2 {
		t.Fatalf("Leaves(3) = %v, want 2 leaves", l)
	}
	all := d.Leaves(4)
	if len(all) != 3 {
		t.Fatalf("Leaves(root) = %v, want 3 leaves", all)
	}
}

func TestSetLabelsValidates(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 0}})
	d, _ := Cluster(pts, Single)
	if err := d.SetLabels([]string{"a"}); err == nil {
		t.Error("expected error for wrong label count")
	}
	if err := d.SetLabels([]string{"a", "b"}); err != nil {
		t.Errorf("SetLabels: %v", err)
	}
}

func TestRenderContainsLabels(t *testing.T) {
	pts := mat.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}})
	d, _ := Cluster(pts, Single)
	if err := d.SetLabels([]string{"H-Sort", "S-Sort", "H-Grep"}); err != nil {
		t.Fatal(err)
	}
	out := d.Render(40)
	for _, want := range []string{"H-Sort", "S-Sort", "H-Grep", "merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestLeafOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := twoBlobs(rng, 4, 3)
	d, _ := Cluster(pts, Average)
	order := d.LeafOrder()
	if len(order) != 7 || !allDistinct(order) {
		t.Errorf("LeafOrder = %v, want permutation of 0..6", order)
	}
}

func TestLinkageString(t *testing.T) {
	for l, want := range map[Linkage]string{Single: "single", Complete: "complete", Average: "average", Ward: "ward"} {
		if l.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(l), l.String(), want)
		}
	}
}

// Property: single/complete/average linkage merge distances are
// nondecreasing (monotone hierarchy).
func TestQuickMonotoneMerges(t *testing.T) {
	for _, linkage := range []Linkage{Single, Complete, Average} {
		linkage := linkage
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(15)
			pts := mat.NewDense(n, 3)
			for i := 0; i < n; i++ {
				for j := 0; j < 3; j++ {
					pts.Set(i, j, rng.NormFloat64())
				}
			}
			d, err := Cluster(pts, linkage)
			if err != nil {
				return false
			}
			for i := 1; i < len(d.Merges); i++ {
				if d.Merges[i].Distance < d.Merges[i-1].Distance-1e-9 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%v: %v", linkage, err)
		}
	}
}

// Property: cophenetic distance under single linkage never exceeds the
// Euclidean distance between the two points (single linkage merges via
// the minimum gap, which is at most the direct distance).
func TestQuickSingleLinkageCopheneticBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		pts := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, 0, rng.NormFloat64())
			pts.Set(i, 1, rng.NormFloat64())
		}
		d, err := Cluster(pts, Single)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.CopheneticDistance(i, j) > mat.Distance(pts.Row(i), pts.Row(j))+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: CutK(k) always produces exactly k clusters covering all leaves.
func TestQuickCutKCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		pts := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			pts.Set(i, 0, rng.NormFloat64())
			pts.Set(i, 1, rng.NormFloat64())
		}
		d, err := Cluster(pts, Average)
		if err != nil {
			return false
		}
		for k := 1; k <= n; k++ {
			assign := d.CutK(k)
			seen := map[int]bool{}
			for _, c := range assign {
				seen[c] = true
			}
			if len(seen) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCopheneticCorrelation(t *testing.T) {
	// Well-separated blobs: hierarchy faithfully preserves geometry.
	rng := rand.New(rand.NewSource(11))
	pts := twoBlobs(rng, 6, 6)
	d, err := Cluster(pts, Average)
	if err != nil {
		t.Fatal(err)
	}
	if c := d.CopheneticCorrelation(pts); c < 0.9 {
		t.Errorf("cophenetic correlation = %v, want > 0.9 for clean blobs", c)
	}
	// Mismatched point count returns 0.
	other := mat.NewDense(3, 2)
	if c := d.CopheneticCorrelation(other); c != 0 {
		t.Errorf("mismatched correlation = %v, want 0", c)
	}
}

// Property: cophenetic correlation is bounded in [-1, 1].
func TestQuickCopheneticCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		pts := mat.NewDense(n, 3)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				pts.Set(i, j, rng.NormFloat64())
			}
		}
		d, err := Cluster(pts, Single)
		if err != nil {
			return false
		}
		c := d.CopheneticCorrelation(pts)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
