package hier

import (
	"math/rand"
	"testing"

	"repro/internal/num/mat"
)

// randomPoints builds an n×d matrix of standard normal coordinates.
// Random real coordinates have pairwise-distinct distances almost surely,
// which is the regime where the NN-chain and greedy algorithms must agree
// exactly.
func randomPoints(rng *rand.Rand, n, d int) *mat.Dense {
	m := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func dendrogramsEqual(t *testing.T, linkage Linkage, got, want *Dendrogram) {
	t.Helper()
	if got.N != want.N || len(got.Merges) != len(want.Merges) {
		t.Fatalf("%v: shape mismatch: N=%d/%d merges=%d/%d",
			linkage, got.N, want.N, len(got.Merges), len(want.Merges))
	}
	for i := range got.Merges {
		g, w := got.Merges[i], want.Merges[i]
		if g.A != w.A || g.B != w.B || g.Size != w.Size {
			t.Fatalf("%v: merge %d structure differs: got %+v want %+v", linkage, i, g, w)
		}
		// The two algorithms evaluate the same Lance–Williams updates in a
		// different order, so distances may differ by accumulated rounding.
		diff := g.Distance - w.Distance
		if diff < 0 {
			diff = -diff
		}
		tol := 1e-9 * (1 + w.Distance)
		if diff > tol {
			t.Fatalf("%v: merge %d distance differs: got %v want %v", linkage, i, g.Distance, w.Distance)
		}
	}
}

// TestNNChainMatchesReference checks that the production NN-chain Cluster
// reproduces the seed implementation's dendrogram (kept as
// clusterReference) on random matrices for all four linkages.
func TestNNChainMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, linkage := range []Linkage{Single, Complete, Average, Ward} {
		for trial := 0; trial < 20; trial++ {
			n := 2 + rng.Intn(40)
			d := 1 + rng.Intn(6)
			pts := randomPoints(rng, n, d)

			got, err := Cluster(pts, linkage)
			if err != nil {
				t.Fatalf("%v n=%d: %v", linkage, n, err)
			}
			want, err := clusterReference(pts, linkage)
			if err != nil {
				t.Fatalf("%v n=%d reference: %v", linkage, n, err)
			}
			dendrogramsEqual(t, linkage, got, want)
		}
	}
}

// TestNNChainMonotoneMerges asserts the relabeled merge history is in
// nondecreasing distance order, which downstream Cut/CutK rely on.
func TestNNChainMonotoneMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, linkage := range []Linkage{Single, Complete, Average, Ward} {
		pts := randomPoints(rng, 33, 4)
		d, err := Cluster(pts, linkage)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(d.Merges); i++ {
			if d.Merges[i].Distance < d.Merges[i-1].Distance {
				t.Fatalf("%v: merge %d distance %v < previous %v",
					linkage, i, d.Merges[i].Distance, d.Merges[i-1].Distance)
			}
		}
	}
}

// TestNNChainDuplicatePoints exercises the tied-distance path (duplicate
// points make many zero distances): the result must still be a valid
// dendrogram with n-1 merges and a full final cluster.
func TestNNChainDuplicatePoints(t *testing.T) {
	for _, linkage := range []Linkage{Single, Complete, Average, Ward} {
		m := mat.NewDense(6, 2)
		for i := 0; i < 6; i++ {
			m.Set(i, 0, float64(i/3)) // two triplets of identical points
			m.Set(i, 1, float64(i/3))
		}
		d, err := Cluster(m, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if len(d.Merges) != 5 {
			t.Fatalf("%v: %d merges, want 5", linkage, len(d.Merges))
		}
		if d.Merges[4].Size != 6 {
			t.Fatalf("%v: final size %d, want 6", linkage, d.Merges[4].Size)
		}
	}
}

func TestClusterRejectsUnknownLinkage(t *testing.T) {
	if _, err := Cluster(mat.NewDense(3, 2), Linkage(99)); err == nil {
		t.Error("unknown linkage accepted")
	}
}

func BenchmarkNNChain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 200, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Single); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 200, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clusterReference(pts, Single); err != nil {
			b.Fatal(err)
		}
	}
}
