package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/64 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformish(t *testing.T) {
	r := New(9)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(4)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("bucket %d frequency %v, want ~0.25", b, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(12)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestSplitIndependent(t *testing.T) {
	r := New(13)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collide %d/64 times", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) = %v not a permutation", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(15)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be roughly twice as frequent as rank 1 under s=1.
	if counts[0] < counts[1] {
		t.Errorf("Zipf rank 0 (%d) less frequent than rank 1 (%d)", counts[0], counts[1])
	}
	if counts[0] < counts[50]*5 {
		t.Errorf("Zipf insufficiently skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for rank, c := range counts {
		if math.Abs(float64(c)/n-0.1) > 0.02 {
			t.Errorf("s=0 rank %d frequency %v, want ~0.1", rank, float64(c)/n)
		}
	}
}

// Property: Uint64n(n) < n for arbitrary n and seeds.
func TestQuickUint64nBound(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Perm always returns a permutation.
func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
