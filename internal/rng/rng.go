// Package rng provides a small, fast, deterministic pseudo-random number
// generator (SplitMix64 seeding a xoshiro256**) used by every stochastic
// component in the repository — trace generation, data synthesis, and
// k-means++ seeding — so a full paper reproduction is a pure function of
// its seeds.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed via
// SplitMix64 (which guarantees a well-mixed nonzero state for any seed,
// including 0).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	// Lemire's nearly-divisionless method is overkill here; simple
	// rejection keeps the distribution exact.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; the polar
// variant avoids trig in the common path).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Split derives a new independent generator from this one; useful for
// giving each simulated core or node its own stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s ≥ 0
// using inverse-CDF on a precomputed table. For repeated sampling use
// NewZipf instead; this helper is for one-off draws in tests.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
