package core

import (
	"fmt"

	"repro/internal/num/stat"
)

// Observations quantifies the paper's §V findings on a completed analysis.
type Observations struct {
	// Observation 1: fraction of first-clustering-iteration pairs whose
	// two workloads run on the same software stack (paper: 80 %).
	FirstIterPairs          int
	SameStackFirstIterPairs int
	SameStackFraction       float64

	// Observation 2: first-iteration pairs implementing the same
	// algorithm on different stacks (paper: only Projection).
	SameAlgorithmCrossStackPairs []string

	// Observation 5: within-stack cohesion — mean pairwise cophenetic
	// distance per stack (Hadoop lower = tighter clustering).
	MeanCopheneticHadoop float64
	MeanCopheneticSpark  float64

	// Observations 6–9 (Fig. 5 companions): per-stack metric means and
	// headline ratios.
	HadoopMeans, SparkMeans []float64 // per Table II metric

	SparkToHadoopL3Miss     float64 // paper: ≈2×
	HadoopToSparkL1IMiss    float64 // paper: ≈1.3×
	HadoopToSparkFetchStall float64 // paper: >1
	SparkToHadoopResStall   float64 // paper: >1
	SparkToHadoopDTLBMiss   float64 // paper: >1
	SparkToHadoopSnoopHit   float64 // paper: >1
	SparkToHadoopSnoopHitE  float64 // paper: >1
	SparkToHadoopSnoopHitM  float64 // paper: >1

	// STLB hit rates (paper: Hadoop 61.48 %, Spark 50.80 %).
	STLBHitRateHadoop float64
	STLBHitRateSpark  float64
}

// metricIdx panics only on programmer error (unknown name), which tests
// cover.
func metricIdx(ds *Dataset, name string) (int, error) {
	for i, m := range ds.Metrics {
		if m == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: dataset has no metric %q", name)
}

// Observe computes the §V observation statistics. The dataset's labels
// must follow the H-/S- prefix convention.
func (a *Analysis) Observe() (*Observations, error) {
	ds := a.Dataset
	obs := &Observations{}

	// --- Dendrogram structure (Observations 1, 2, 5).
	stackOfIdx := func(i int) string { return StackOf(ds.Labels[i]) }
	algoOf := func(i int) string {
		l := ds.Labels[i]
		if len(l) > 2 {
			return l[2:]
		}
		return l
	}
	for _, m := range a.Dendrogram.FirstIterationPairs() {
		obs.FirstIterPairs++
		if stackOfIdx(m.A) == stackOfIdx(m.B) && stackOfIdx(m.A) != "" {
			obs.SameStackFirstIterPairs++
		}
		if algoOf(m.A) == algoOf(m.B) && stackOfIdx(m.A) != stackOfIdx(m.B) {
			obs.SameAlgorithmCrossStackPairs = append(obs.SameAlgorithmCrossStackPairs, algoOf(m.A))
		}
	}
	if obs.FirstIterPairs > 0 {
		obs.SameStackFraction = float64(obs.SameStackFirstIterPairs) / float64(obs.FirstIterPairs)
	}

	var hIdx, sIdx []int
	for i, l := range ds.Labels {
		switch StackOf(l) {
		case "Hadoop":
			hIdx = append(hIdx, i)
		case "Spark":
			sIdx = append(sIdx, i)
		}
	}
	if len(hIdx) == 0 || len(sIdx) == 0 {
		return nil, fmt.Errorf("core: dataset lacks H-/S- labeled workloads for stack observations")
	}
	obs.MeanCopheneticHadoop = a.meanPairwiseCophenetic(hIdx)
	obs.MeanCopheneticSpark = a.meanPairwiseCophenetic(sIdx)

	// --- Per-stack metric means (Fig. 5 data).
	nm := len(ds.Metrics)
	obs.HadoopMeans = make([]float64, nm)
	obs.SparkMeans = make([]float64, nm)
	for j := 0; j < nm; j++ {
		var h, s []float64
		for _, i := range hIdx {
			h = append(h, ds.Rows[i][j])
		}
		for _, i := range sIdx {
			s = append(s, ds.Rows[i][j])
		}
		obs.HadoopMeans[j] = stat.Mean(h)
		obs.SparkMeans[j] = stat.Mean(s)
	}

	ratio := func(num, den float64) float64 {
		if den == 0 {
			return 0
		}
		return num / den
	}
	get := func(name string) (h, s float64, err error) {
		j, err := metricIdx(ds, name)
		if err != nil {
			return 0, 0, err
		}
		return obs.HadoopMeans[j], obs.SparkMeans[j], nil
	}

	type pull struct {
		name string
		out  *float64
		// sparkOverHadoop: true → Spark/Hadoop, false → Hadoop/Spark.
		sparkOverHadoop bool
	}
	pulls := []pull{
		{"L3 MISS", &obs.SparkToHadoopL3Miss, true},
		{"L1I MISS", &obs.HadoopToSparkL1IMiss, false},
		{"FETCH STALL", &obs.HadoopToSparkFetchStall, false},
		{"RESOURCE STALL", &obs.SparkToHadoopResStall, true},
		{"DTLB MISS", &obs.SparkToHadoopDTLBMiss, true},
		{"SNOOP HIT", &obs.SparkToHadoopSnoopHit, true},
		{"SNOOP HITE", &obs.SparkToHadoopSnoopHitE, true},
		{"SNOOP HITM", &obs.SparkToHadoopSnoopHitM, true},
	}
	for _, p := range pulls {
		h, s, err := get(p.name)
		if err != nil {
			return nil, err
		}
		if p.sparkOverHadoop {
			*p.out = ratio(s, h)
		} else {
			*p.out = ratio(h, s)
		}
	}

	// STLB hit rate from the two TLB metrics: hits / (hits + full
	// misses), both per-kilo-instruction so the normalization cancels.
	stlbJ, err := metricIdx(ds, "DATA HIT STLB")
	if err != nil {
		return nil, err
	}
	dtlbJ, err := metricIdx(ds, "DTLB MISS")
	if err != nil {
		return nil, err
	}
	obs.STLBHitRateHadoop = ratio(obs.HadoopMeans[stlbJ], obs.HadoopMeans[stlbJ]+obs.HadoopMeans[dtlbJ])
	obs.STLBHitRateSpark = ratio(obs.SparkMeans[stlbJ], obs.SparkMeans[stlbJ]+obs.SparkMeans[dtlbJ])
	return obs, nil
}

func (a *Analysis) meanPairwiseCophenetic(idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	sum, n := 0.0, 0
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			sum += a.Dendrogram.CopheneticDistance(idx[i], idx[j])
			n++
		}
	}
	return sum / float64(n)
}

// Fig5Metric is one bar of the paper's Figure 5: a PC2-dominant metric
// with the Hadoop mean normalized to the Spark mean.
type Fig5Metric struct {
	Name              string
	Loading           float64 // PC2 factor loading
	HadoopOverSpark   float64
	NegativeDominance bool // metric dominates PC2 negatively (Spark side)
}

// Fig5 selects the metrics that dominate the stack-separating component
// and reports the Hadoop/Spark mean ratio for each, Spark-normalized as
// in the figure. pc is the zero-based component index that separates the
// stacks (see SeparatingPC); frac is the dominance threshold relative to
// the max |loading| (the paper reads Fig. 4 at roughly half the peak).
func (a *Analysis) Fig5(obs *Observations, pc int, frac float64) ([]Fig5Metric, error) {
	pos, neg := a.PCA.DominantLoadings(pc, frac)
	var out []Fig5Metric
	add := func(idx []int, negative bool) {
		for _, m := range idx {
			ratio := 0.0
			if obs.SparkMeans[m] != 0 {
				ratio = obs.HadoopMeans[m] / obs.SparkMeans[m]
			}
			out = append(out, Fig5Metric{
				Name:              a.Dataset.Metrics[m],
				Loading:           a.PCA.Loadings.At(m, pc),
				HadoopOverSpark:   ratio,
				NegativeDominance: negative,
			})
		}
	}
	add(neg, true)
	add(pos, false)
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no dominant loadings on PC%d at threshold %v", pc+1, frac)
	}
	return out, nil
}

// SeparatingPC finds the principal component that best separates the two
// stacks: the one maximizing |mean(H scores) − mean(S scores)| / pooled
// std. The paper identifies PC2 by inspection of Figure 2.
func (a *Analysis) SeparatingPC() int {
	ds := a.Dataset
	bestPC, bestScore := 0, -1.0
	for pc := 0; pc < a.NumPCs; pc++ {
		var h, s []float64
		for i, l := range ds.Labels {
			switch StackOf(l) {
			case "Hadoop":
				h = append(h, a.Scores.At(i, pc))
			case "Spark":
				s = append(s, a.Scores.At(i, pc))
			}
		}
		if len(h) < 2 || len(s) < 2 {
			continue
		}
		pooled := (stat.StdDev(h) + stat.StdDev(s)) / 2
		if pooled == 0 {
			continue
		}
		score := abs(stat.Mean(h)-stat.Mean(s)) / pooled
		if score > bestScore {
			bestScore = score
			bestPC = pc
		}
	}
	return bestPC
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
