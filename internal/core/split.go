package core

import (
	"context"
	"fmt"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/perf"
)

// ObservationMatrix is the raw output of the characterization stage
// before the node/run reduction: one 45-metric vector per grid cell,
// indexed [workload][run][node]. It is the unit of work exchanged between
// a shard coordinator and its workers — a worker measures a sub-grid
// (a workload subset over a node range) and a coordinator re-assembles
// sub-matrices into the full grid, so the split point of the pipeline is
// exactly here: CharacterizeObservationsCtx produces matrices,
// AnalyzeObservationsCtx consumes the re-assembled one.
type ObservationMatrix struct {
	Labels  []string
	Metrics []string
	// Cells[w][run][node] is the metric vector of one grid cell; node
	// indexes are relative to NodeOffset.
	Cells [][][][]float64
	// NodeOffset is the absolute index of Cells' first node column (see
	// cluster.Config.NodeOffset).
	NodeOffset int
}

// Validate checks shape consistency: every workload has the same number
// of runs, every run the same number of nodes, and every cell a vector of
// len(Metrics).
func (om *ObservationMatrix) Validate() error {
	if len(om.Cells) != len(om.Labels) {
		return fmt.Errorf("core: %d cell rows but %d labels", len(om.Cells), len(om.Labels))
	}
	if len(om.Labels) == 0 {
		return fmt.Errorf("core: empty observation matrix")
	}
	if om.NodeOffset < 0 {
		return fmt.Errorf("core: negative node offset %d", om.NodeOffset)
	}
	runs, nodes := len(om.Cells[0]), 0
	if runs > 0 {
		nodes = len(om.Cells[0][0])
	}
	if runs == 0 || nodes == 0 {
		return fmt.Errorf("core: observation matrix has no runs or nodes")
	}
	for w, perRun := range om.Cells {
		if len(perRun) != runs {
			return fmt.Errorf("core: workload %d has %d runs, want %d", w, len(perRun), runs)
		}
		for r, perNode := range perRun {
			if len(perNode) != nodes {
				return fmt.Errorf("core: workload %d run %d has %d nodes, want %d", w, r, len(perNode), nodes)
			}
			for n, vec := range perNode {
				if len(vec) != len(om.Metrics) {
					return fmt.Errorf("core: cell [%d][%d][%d] has %d metrics, want %d",
						w, r, n, len(vec), len(om.Metrics))
				}
			}
		}
	}
	return nil
}

// Runs returns the run-axis extent.
func (om *ObservationMatrix) Runs() int { return len(om.Cells[0]) }

// Nodes returns the node-axis extent.
func (om *ObservationMatrix) Nodes() int { return len(om.Cells[0][0]) }

// Reduce folds the matrix into a Dataset via the canonical node- then
// run-averaging (cluster.ReduceCells), the same arithmetic the fused
// pipeline applies — so analysis of a reduced matrix is bit-identical to
// a direct CharacterizeSuiteCtx + AnalyzeCtx run.
func (om *ObservationMatrix) Reduce() (*Dataset, error) {
	if err := om.Validate(); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(om.Cells))
	for w, perRun := range om.Cells {
		rows[w] = cluster.ReduceCells(perRun)
	}
	return &Dataset{Labels: om.Labels, Metrics: om.Metrics, Rows: rows}, nil
}

// CharacterizeObservationsCtx is the characterize-only half of the
// pipeline: it runs the measurement grid and returns the raw observation
// matrix without reducing or analyzing. Shard workers run this over their
// sub-grid; a single process running it over the full grid and feeding
// the result to AnalyzeObservationsCtx reproduces RunCtx exactly.
func CharacterizeObservationsCtx(ctx context.Context, suite []workloads.Workload, clusterCfg cluster.Config, progress Progress) (*ObservationMatrix, error) {
	progress.stage(StageCharacterize)
	var cp cluster.Progress
	if progress != nil {
		cp = func(done, total int) { progress(StageCharacterize, done, total) }
	}
	cells, err := cluster.CharacterizeCellsCtx(ctx, suite, clusterCfg, cp)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(suite))
	for i, w := range suite {
		labels[i] = w.Name
	}
	return &ObservationMatrix{
		Labels:     labels,
		Metrics:    perf.MetricNames(),
		Cells:      cells,
		NodeOffset: clusterCfg.NodeOffset,
	}, nil
}

// AnalyzeObservationsCtx is the analyze half of the split pipeline: it
// reduces a (re-assembled) observation matrix to the workload×metric
// dataset and runs the §V–§VI statistical pipeline on it.
func AnalyzeObservationsCtx(ctx context.Context, om *ObservationMatrix, cfg AnalysisConfig, progress Progress) (*Analysis, error) {
	ds, err := om.Reduce()
	if err != nil {
		return nil, err
	}
	return AnalyzeCtx(ctx, ds, cfg, progress)
}
