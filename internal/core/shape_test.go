package core

import (
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
)

// TestPaperShapeInvariants is the calibration regression net: a
// moderate-scale full-suite run must reproduce the directional findings
// of the paper (§V Observations). It guards the workload/stack models
// against changes that silently break the reproduction. Skipped with
// -short (takes a few seconds).
func TestPaperShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite characterization")
	}
	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = 1
	ccfg.InstructionsPerCore = 15000
	ccfg.Slices = 48

	ds, err := Characterize(workloads.DefaultConfig(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	obs, err := an.Observe()
	if err != nil {
		t.Fatal(err)
	}

	// Kaiser regime: several PCs, high variance (paper: 8 PCs, 91%).
	if an.NumPCs < 4 || an.NumPCs > 12 {
		t.Errorf("NumPCs = %d, want the paper's regime (≈6-8)", an.NumPCs)
	}
	if an.Variance < 0.8 {
		t.Errorf("retained variance = %v, want ≥ 0.8", an.Variance)
	}

	// Observation 1: most first-iteration merges are same-stack (paper 80%).
	if obs.SameStackFraction < 0.8 {
		t.Errorf("same-stack first-iteration fraction = %v, want ≥ 0.8", obs.SameStackFraction)
	}

	// Observation 5: Hadoop clusters tighter than Spark.
	if obs.MeanCopheneticHadoop >= obs.MeanCopheneticSpark {
		t.Errorf("Hadoop cohesion %v not tighter than Spark %v",
			obs.MeanCopheneticHadoop, obs.MeanCopheneticSpark)
	}

	// Observation 6: Spark suffers more L3 misses.
	if obs.SparkToHadoopL3Miss <= 1 {
		t.Errorf("Spark/Hadoop L3 miss ratio = %v, want > 1", obs.SparkToHadoopL3Miss)
	}

	// Observation 7: Hadoop's shared TLB is more effective.
	if obs.STLBHitRateHadoop <= obs.STLBHitRateSpark {
		t.Errorf("STLB hit rates H=%v S=%v, want Hadoop higher",
			obs.STLBHitRateHadoop, obs.STLBHitRateSpark)
	}
	if obs.SparkToHadoopDTLBMiss <= 1 {
		t.Errorf("Spark/Hadoop DTLB miss ratio = %v, want > 1", obs.SparkToHadoopDTLBMiss)
	}

	// Observation 8: Hadoop frontend-bound, Spark backend-bound.
	if obs.HadoopToSparkL1IMiss <= 1 {
		t.Errorf("Hadoop/Spark L1I miss ratio = %v, want > 1", obs.HadoopToSparkL1IMiss)
	}
	if obs.HadoopToSparkFetchStall <= 1 {
		t.Errorf("Hadoop/Spark fetch stall ratio = %v, want > 1", obs.HadoopToSparkFetchStall)
	}
	if obs.SparkToHadoopResStall <= 1 {
		t.Errorf("Spark/Hadoop resource stall ratio = %v, want > 1", obs.SparkToHadoopResStall)
	}

	// Observation 9: Spark generates more coherence traffic.
	for name, r := range map[string]float64{
		"SNOOP HIT":  obs.SparkToHadoopSnoopHit,
		"SNOOP HITE": obs.SparkToHadoopSnoopHitE,
		"SNOOP HITM": obs.SparkToHadoopSnoopHitM,
	} {
		if r <= 1 {
			t.Errorf("Spark/Hadoop %s ratio = %v, want > 1", name, r)
		}
	}

	// The BIC scan must have an interior structure, not a trivial
	// endpoint choice at KMin.
	if an.KBest.K <= 2 {
		t.Errorf("BIC chose K=%d, want a non-trivial clustering", an.KBest.K)
	}

	// Boundary policy must cover at least the centroid policy's spread.
	if an.FarthestMaxLinkage < an.NearestMaxLinkage-1e-9 {
		t.Errorf("farthest policy covers %v < nearest %v",
			an.FarthestMaxLinkage, an.NearestMaxLinkage)
	}
}

// TestObserveRequiresStackLabels verifies the error path for datasets
// without the H-/S- naming convention.
func TestObserveRequiresStackLabels(t *testing.T) {
	ds := syntheticDataset(4, 10, 31)
	for i := range ds.Labels {
		ds.Labels[i] = "X" + ds.Labels[i][1:]
	}
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Observe(); err == nil {
		t.Error("Observe accepted a dataset without stack prefixes")
	}
}

// TestAnalysisDeterministic: identical datasets and configs yield
// identical clustering and representatives.
func TestAnalysisDeterministic(t *testing.T) {
	ds := syntheticDataset(8, 12, 32)
	a1, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if a1.KBest.K != a2.KBest.K || a1.NumPCs != a2.NumPCs {
		t.Fatal("analysis not deterministic")
	}
	for i := range a1.KBest.Assign {
		if a1.KBest.Assign[i] != a2.KBest.Assign[i] {
			t.Fatal("cluster assignments differ across identical runs")
		}
	}
	for i := range a1.FarthestReps {
		if a1.FarthestReps[i].Workload != a2.FarthestReps[i].Workload {
			t.Fatal("representatives differ across identical runs")
		}
	}
}
