package core

import (
	"sync"
	"time"
)

// StageTimer wraps a Progress callback with per-stage wall-clock
// timing: the pipeline reports stage transitions through Progress (see
// Progress), and the timer closes the previous stage on each
// transition, reporting its duration to observe. Grid workers invoke
// Progress concurrently, so the timer serializes internally; observe is
// called at most once per stage visit, outside the hot per-cell path
// (only transitions pay for it).
//
// Call Finish once the pipeline returns (success or failure) to close
// the stage left open; a timer that never saw a stage reports nothing.
type StageTimer struct {
	mu      sync.Mutex
	next    Progress
	observe func(stage Stage, seconds float64)
	span    func(stage Stage, start, end time.Time)
	current Stage
	started time.Time
}

// NewStageTimer builds a timer forwarding to next (which may be nil)
// and reporting closed-stage durations to observe.
func NewStageTimer(next Progress, observe func(stage Stage, seconds float64)) *StageTimer {
	return &StageTimer{next: next, observe: observe}
}

// OnSpan registers an additional per-stage observer receiving each
// closed stage's wall-clock interval rather than just its duration —
// the hook the tracing layer uses to turn stage transitions into spans.
// Call before the timer's Progress is first invoked.
func (t *StageTimer) OnSpan(fn func(stage Stage, start, end time.Time)) {
	t.mu.Lock()
	t.span = fn
	t.mu.Unlock()
}

// Progress is the wrapped callback; pass the method value wherever a
// core.Progress is expected.
func (t *StageTimer) Progress(stage Stage, done, total int) {
	t.mu.Lock()
	if stage != t.current {
		now := time.Now()
		if t.current != "" {
			if t.observe != nil {
				t.observe(t.current, now.Sub(t.started).Seconds())
			}
			if t.span != nil {
				t.span(t.current, t.started, now)
			}
		}
		t.current, t.started = stage, now
	}
	t.mu.Unlock()
	if t.next != nil {
		t.next(stage, done, total)
	}
}

// Finish closes the currently open stage (if any). Idempotent.
func (t *StageTimer) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.current != "" {
		now := time.Now()
		if t.observe != nil {
			t.observe(t.current, now.Sub(t.started).Seconds())
		}
		if t.span != nil {
			t.span(t.current, t.started, now)
		}
	}
	t.current = ""
}
