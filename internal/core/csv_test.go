package core

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func csvDataset() *Dataset {
	return &Dataset{
		// Labels exercise the CSV quoting paths: commas, double quotes
		// and an embedded newline.
		Labels:  []string{`H-Sort, tuned`, `S-"quoted"`, "H-multi\nline"},
		Metrics: []string{"IPC", "L1I MISS", "METRIC,COMMA", "Z-LAST"},
		Rows: [][]float64{
			{1.25, 0.003, -17, 4e-9},
			{0.5, 123456.789, 0.000125, 2},
			{3, 0, 1e300, -0.25},
		},
	}
}

func TestCSVRoundTripQuotingAndOrder(t *testing.T) {
	ds := csvDataset()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Labels, ds.Labels) {
		t.Errorf("labels round-trip: got %q, want %q", got.Labels, ds.Labels)
	}
	// Metric order must be preserved exactly — column identity is
	// positional through the whole analysis pipeline.
	if !reflect.DeepEqual(got.Metrics, ds.Metrics) {
		t.Errorf("metric order round-trip: got %q, want %q", got.Metrics, ds.Metrics)
	}
	if !reflect.DeepEqual(got.Rows, ds.Rows) {
		t.Errorf("rows round-trip: got %v, want %v", got.Rows, ds.Rows)
	}

	// A second round trip is byte-stable.
	var buf2 bytes.Buffer
	if err := got.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() == 0 {
		t.Fatal("empty second serialization")
	}
}

func TestWriteCSVRejectsNonFinite(t *testing.T) {
	for name, v := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		ds := csvDataset()
		ds.Rows[1][2] = v
		var buf bytes.Buffer
		err := ds.WriteCSV(&buf)
		if err == nil {
			t.Errorf("WriteCSV accepted %s", name)
			continue
		}
		// The pre-scan must fire before anything is emitted — a partial
		// CSV next to an error reads like a complete dataset.
		if buf.Len() != 0 {
			t.Errorf("%s: %d bytes written before the rejection", name, buf.Len())
		}
		// The error should identify the offending workload and metric
		// (labels appear %q-escaped, so match an escape-free fragment).
		if !strings.Contains(err.Error(), "quoted") || !strings.Contains(err.Error(), "METRIC,COMMA") {
			t.Errorf("%s error lacks location: %v", name, err)
		}
	}
}

func TestReadCSVRejectsNonFiniteAndGarbage(t *testing.T) {
	header := "workload,IPC,MISS\n"
	for name, rows := range map[string]string{
		"NaN":       "a,1,NaN\nb,2,3\n",
		"Inf":       "a,1,Inf\nb,2,3\n",
		"-Inf":      "a,1,-Inf\nb,2,3\n",
		"not a num": "a,1,squid\nb,2,3\n",
		"ragged":    "a,1\nb,2,3\n",
	} {
		if _, err := ReadCSV(strings.NewReader(header + rows)); err == nil {
			t.Errorf("ReadCSV accepted %s input", name)
		}
	}

	// Sanity: the well-formed variant parses.
	if _, err := ReadCSV(strings.NewReader(header + "a,1,4\nb,2,3\n")); err != nil {
		t.Errorf("well-formed CSV rejected: %v", err)
	}
}
