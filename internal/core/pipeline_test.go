package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/rng"
)

// fastCluster is a scaled-down cluster configuration for tests.
func fastCluster() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.SlaveNodes = 1
	cfg.InstructionsPerCore = 2500
	cfg.Slices = 10
	return cfg
}

// syntheticDataset builds a dataset with two metric-space blobs labeled
// by stack prefix, so analysis behaviour is testable without simulation.
func syntheticDataset(nPerStack, metrics int, seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{}
	for j := 0; j < metrics; j++ {
		ds.Metrics = append(ds.Metrics, metricName(j))
	}
	algos := []string{"Sort", "Grep", "WordCount", "Kmeans", "PageRank", "Bayes", "Filter", "Union"}
	for i := 0; i < nPerStack; i++ {
		for s, prefix := range []string{"H-", "S-"} {
			row := make([]float64, metrics)
			for j := range row {
				base := float64(s) * 3 // stack separation
				row[j] = base + r.NormFloat64()*0.4 + float64(i%3)*0.2
			}
			ds.Labels = append(ds.Labels, prefix+algos[i%len(algos)])
			ds.Rows = append(ds.Rows, row)
		}
	}
	return ds
}

// metricName maps synthetic columns onto real Table II names so Observe
// works; extra columns get generic names.
func metricName(j int) string {
	names := []string{"L3 MISS", "L1I MISS", "FETCH STALL", "RESOURCE STALL",
		"DTLB MISS", "SNOOP HIT", "SNOOP HITE", "SNOOP HITM", "DATA HIT STLB", "LOAD"}
	if j < len(names) {
		return names[j]
	}
	return "M" + string(rune('A'+j-len(names)))
}

func TestDatasetValidate(t *testing.T) {
	ds := syntheticDataset(4, 10, 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Labels: []string{"a"}, Metrics: []string{"m"}, Rows: [][]float64{{1}, {2}}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched labels accepted")
	}
	bad = &Dataset{Labels: []string{"a", "b"}, Metrics: []string{"m", "n"}, Rows: [][]float64{{1}, {2, 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestAnalyzeSyntheticSeparatesStacks(t *testing.T) {
	ds := syntheticDataset(8, 12, 2)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if an.NumPCs < 1 {
		t.Fatalf("NumPCs = %d", an.NumPCs)
	}
	if an.Variance <= 0 || an.Variance > 1 {
		t.Fatalf("Variance = %v", an.Variance)
	}
	// Two well-separated stacks: K-means at the BIC optimum should not
	// mix them when K == 2.
	if an.KBest.K == 2 {
		byStack := map[string]int{}
		for i, l := range ds.Labels {
			c := an.KBest.Assign[i]
			if prev, ok := byStack[StackOf(l)]; ok && prev != c {
				t.Error("stack split across clusters at K=2")
			}
			byStack[StackOf(l)] = c
		}
	}
	// Representative sets must have one entry per cluster and belong to
	// their clusters.
	if len(an.NearestReps) != an.KBest.K || len(an.FarthestReps) != an.KBest.K {
		t.Fatalf("representative counts %d/%d for K=%d", len(an.NearestReps), len(an.FarthestReps), an.KBest.K)
	}
	for c := 0; c < an.KBest.K; c++ {
		if an.KBest.Assign[an.NearestReps[c].Index] != c {
			t.Errorf("nearest rep of cluster %d not in cluster", c)
		}
		if an.KBest.Assign[an.FarthestReps[c].Index] != c {
			t.Errorf("farthest rep of cluster %d not in cluster", c)
		}
	}
}

func TestFarthestPolicyCoversMoreDiversity(t *testing.T) {
	// The boundary policy should select a representative set with at
	// least the centroid policy's maximal linkage distance (§VI-B).
	ds := syntheticDataset(8, 12, 3)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if an.FarthestMaxLinkage < an.NearestMaxLinkage-1e-9 {
		t.Errorf("farthest policy max linkage %v < nearest %v", an.FarthestMaxLinkage, an.NearestMaxLinkage)
	}
}

func TestAnalyzeValidatesKRange(t *testing.T) {
	ds := syntheticDataset(4, 10, 4)
	cfg := DefaultAnalysis()
	cfg.KMin, cfg.KMax = 5, 2
	if _, err := Analyze(ds, cfg); err == nil {
		t.Error("inverted K range accepted")
	}
}

func TestAnalyzeVarianceThresholdSelection(t *testing.T) {
	ds := syntheticDataset(8, 12, 5)
	cfg := DefaultAnalysis()
	cfg.PCSelection = VarianceThreshold
	cfg.VarianceFrac = 0.99
	an, err := Analyze(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.Variance < 0.99-1e-9 {
		t.Errorf("variance threshold not honored: %v", an.Variance)
	}
}

func TestObserveSynthetic(t *testing.T) {
	ds := syntheticDataset(8, 12, 6)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	obs, err := an.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if obs.FirstIterPairs == 0 {
		t.Fatal("no first-iteration pairs found")
	}
	// Stacks are separated by 3σ in every metric: all first-iteration
	// pairs must be same-stack.
	if obs.SameStackFraction < 0.99 {
		t.Errorf("SameStackFraction = %v, want 1.0 for separated stacks", obs.SameStackFraction)
	}
	if len(obs.HadoopMeans) != len(ds.Metrics) || len(obs.SparkMeans) != len(ds.Metrics) {
		t.Error("per-stack means have wrong length")
	}
}

func TestSeparatingPCOnSynthetic(t *testing.T) {
	// Stack separation dominates the synthetic data, so the separating
	// component must be PC1 (index 0).
	ds := syntheticDataset(8, 12, 7)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if got := an.SeparatingPC(); got != 0 {
		t.Errorf("SeparatingPC = %d, want 0", got)
	}
}

func TestFig5OnSynthetic(t *testing.T) {
	ds := syntheticDataset(8, 12, 8)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	obs, err := an.Observe()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := an.Fig5(obs, an.SeparatingPC(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Fig5 selected no metrics")
	}
	for _, r := range rows {
		if r.Name == "" {
			t.Error("unnamed Fig5 metric")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := syntheticDataset(4, 10, 9)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Labels) != len(ds.Labels) || len(got.Metrics) != len(ds.Metrics) {
		t.Fatalf("round trip shape mismatch")
	}
	for i := range ds.Rows {
		if got.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d: %q vs %q", i, got.Labels[i], ds.Labels[i])
		}
		for j := range ds.Rows[i] {
			if got.Rows[i][j] != ds.Rows[i][j] {
				t.Fatalf("value (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("only,one,row\n")); err == nil {
		t.Error("header-only CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("w,m\na,notanumber\nb,2\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestEndToEndSmallSuite(t *testing.T) {
	// Full pipeline on a 6-workload sub-suite at test scale.
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sub []workloads.Workload
	for _, name := range []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep", "H-Kmeans", "S-Kmeans"} {
		w, err := workloads.ByName(suite, name)
		if err != nil {
			t.Fatal(err)
		}
		sub = append(sub, w)
	}
	ds, err := CharacterizeSuite(sub, fastCluster())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Rows) != 6 || len(ds.Metrics) != 45 {
		t.Fatalf("dataset shape %dx%d, want 6x45", len(ds.Rows), len(ds.Metrics))
	}
	cfg := DefaultAnalysis()
	cfg.KMax = 5
	an, err := Analyze(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.KBest.K < 2 || an.KBest.K > 5 {
		t.Errorf("KBest.K = %d out of scan range", an.KBest.K)
	}
	obs, err := an.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if obs.STLBHitRateHadoop <= 0 || obs.STLBHitRateHadoop > 1 {
		t.Errorf("STLBHitRateHadoop = %v", obs.STLBHitRateHadoop)
	}
	names := an.SubsetNames()
	if len(names) != an.KBest.K {
		t.Errorf("SubsetNames returned %d names for K=%d", len(names), an.KBest.K)
	}
}
