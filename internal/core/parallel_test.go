package core

import (
	"reflect"
	"testing"

	"repro/internal/bigdata/workloads"
)

// TestPipelineParallelismInvariant runs the full pipeline (characterize +
// analyze) sequentially and with parallel workers and asserts the outputs
// are identical: per-cell simulation seeds depend only on grid
// coordinates, and every parallel reduction (restart best-pick, BIC K
// scan) is deterministic.
func TestPipelineParallelismInvariant(t *testing.T) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sub []workloads.Workload
	for _, name := range []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"} {
		w, err := workloads.ByName(suite, name)
		if err != nil {
			t.Fatal(err)
		}
		sub = append(sub, w)
	}

	ccfg := fastCluster()
	ccfg.SlaveNodes = 2
	ccfg.Runs = 2
	acfg := DefaultAnalysis()
	acfg.KMax = 3

	run := func(par int) *Analysis {
		c := ccfg
		c.Parallelism = par
		a := acfg
		a.Parallelism = par
		ds, err := CharacterizeSuite(sub, c)
		if err != nil {
			t.Fatal(err)
		}
		an, err := Analyze(ds, a)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}

	want := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		if !reflect.DeepEqual(got.Dataset.Rows, want.Dataset.Rows) {
			t.Fatalf("Parallelism=%d: characterization metrics diverged", par)
		}
		for i, m := range got.Dataset.Measurements {
			if !reflect.DeepEqual(m.Metrics, want.Dataset.Measurements[i].Metrics) ||
				!reflect.DeepEqual(m.PerNode, want.Dataset.Measurements[i].PerNode) {
				t.Fatalf("Parallelism=%d: measurement %d diverged", par, i)
			}
		}
		if got.KBest.K != want.KBest.K || got.KBest.BIC != want.KBest.BIC {
			t.Fatalf("Parallelism=%d: KBest K=%d BIC=%v, want K=%d BIC=%v",
				par, got.KBest.K, got.KBest.BIC, want.KBest.K, want.KBest.BIC)
		}
		if !reflect.DeepEqual(got.KBest.Assign, want.KBest.Assign) {
			t.Fatalf("Parallelism=%d: K-means assignment diverged", par)
		}
		if !reflect.DeepEqual(got.Dendrogram.Merges, want.Dendrogram.Merges) {
			t.Fatalf("Parallelism=%d: dendrogram diverged", par)
		}
		if !reflect.DeepEqual(got.SubsetNames(), want.SubsetNames()) {
			t.Fatalf("Parallelism=%d: representative subset diverged", par)
		}
	}
}
