package core

import (
	"testing"
)

func TestEvaluateSubsetShape(t *testing.T) {
	ds := syntheticDataset(8, 12, 21)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	q, err := an.EvaluateSubset(an.FarthestReps)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.PerMetricError) != len(ds.Metrics) {
		t.Fatalf("PerMetricError has %d entries, want %d", len(q.PerMetricError), len(ds.Metrics))
	}
	if q.WeightedMeanError < 0 {
		t.Errorf("negative error %v", q.WeightedMeanError)
	}
	if q.MeanApproximationDistance < 0 || q.MaxApproximationDistance < q.MeanApproximationDistance {
		t.Errorf("distance stats inconsistent: mean %v max %v",
			q.MeanApproximationDistance, q.MaxApproximationDistance)
	}
}

func TestEvaluateSubsetPerfectWhenKEqualsN(t *testing.T) {
	ds := syntheticDataset(3, 10, 22)
	cfg := DefaultAnalysis()
	cfg.KMin, cfg.KMax = len(ds.Rows), len(ds.Rows)
	an, err := Analyze(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.KBest.K != len(ds.Rows) {
		t.Skipf("K=%d not n", an.KBest.K)
	}
	q, err := an.EvaluateSubset(an.NearestReps)
	if err != nil {
		t.Fatal(err)
	}
	// Every workload is its own representative: zero error.
	if q.WeightedMeanError > 1e-9 || q.MaxApproximationDistance > 1e-9 {
		t.Errorf("K=n subset should be exact: %+v", q)
	}
}

func TestEvaluateSubsetValidates(t *testing.T) {
	ds := syntheticDataset(6, 10, 23)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.EvaluateSubset(an.FarthestReps[:1]); err == nil && an.KBest.K > 1 {
		t.Error("short representative list accepted")
	}
	bad := append([]Representative(nil), an.FarthestReps...)
	bad[0].Index = 9999
	if _, err := an.EvaluateSubset(bad); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestNearestRepsApproximateBetterOnAverage(t *testing.T) {
	// The centroid policy minimizes distance to members; its mean
	// approximation distance should not exceed the boundary policy's.
	ds := syntheticDataset(8, 12, 24)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	qn, err := an.EvaluateSubset(an.NearestReps)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := an.EvaluateSubset(an.FarthestReps)
	if err != nil {
		t.Fatal(err)
	}
	if qn.MeanApproximationDistance > qf.MeanApproximationDistance+1e-9 {
		t.Errorf("nearest mean distance %v > farthest %v",
			qn.MeanApproximationDistance, qf.MeanApproximationDistance)
	}
}

func TestHierarchicalRepresentatives(t *testing.T) {
	ds := syntheticDataset(8, 12, 25)
	an, err := Analyze(ds, DefaultAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		reps, err := an.HierarchicalRepresentatives(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != k {
			t.Fatalf("k=%d returned %d reps", k, len(reps))
		}
		seen := map[int]bool{}
		total := 0
		for _, r := range reps {
			if r.Index < 0 || r.Workload == "" {
				t.Fatalf("incomplete representative %+v", r)
			}
			if seen[r.Index] {
				t.Fatalf("duplicate representative %+v", r)
			}
			seen[r.Index] = true
			total += r.ClusterSize
		}
		if total != len(ds.Rows) {
			t.Errorf("k=%d cluster sizes sum to %d, want %d", k, total, len(ds.Rows))
		}
	}
	if _, err := an.HierarchicalRepresentatives(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := an.HierarchicalRepresentatives(len(ds.Rows) + 1); err == nil {
		t.Error("k>n accepted")
	}
}
