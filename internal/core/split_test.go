package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
)

func splitTestSuite(t *testing.T, names ...string) []workloads.Workload {
	t.Helper()
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := workloads.Select(suite, names)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// sameAnalysis asserts the split-pipeline analysis reproduces the fused
// one exactly: identical reduced rows and identical clustering outcome.
func sameAnalysis(t *testing.T, got, want *Analysis) {
	t.Helper()
	if !reflect.DeepEqual(got.Dataset.Rows, want.Dataset.Rows) {
		t.Fatal("reduced dataset rows diverged")
	}
	if !reflect.DeepEqual(got.Dataset.Labels, want.Dataset.Labels) {
		t.Fatal("dataset labels diverged")
	}
	if got.KBest.K != want.KBest.K || got.KBest.BIC != want.KBest.BIC {
		t.Fatalf("clustering diverged: K=%d/BIC=%v vs K=%d/BIC=%v",
			got.KBest.K, got.KBest.BIC, want.KBest.K, want.KBest.BIC)
	}
	if !reflect.DeepEqual(got.KBest.Assign, want.KBest.Assign) {
		t.Fatal("cluster assignment diverged")
	}
	if !reflect.DeepEqual(got.FarthestReps, want.FarthestReps) {
		t.Fatal("representative selection diverged")
	}
}

// TestSplitPipelineMatchesFused checks that the characterize-only +
// analyze-observations split reproduces the fused CharacterizeSuiteCtx +
// AnalyzeCtx path exactly.
func TestSplitPipelineMatchesFused(t *testing.T) {
	suite := splitTestSuite(t, "H-Sort", "S-Sort", "H-Grep", "S-Grep")
	ccfg := fastCluster()
	ccfg.SlaveNodes = 2
	ccfg.Runs = 2
	acfg := DefaultAnalysis()
	acfg.KMax = 3

	ds, err := CharacterizeSuiteCtx(context.Background(), suite, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeCtx(context.Background(), ds, acfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	om, err := CharacterizeObservationsCtx(context.Background(), suite, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := om.Validate(); err != nil {
		t.Fatal(err)
	}
	if om.Runs() != 2 || om.Nodes() != 2 {
		t.Fatalf("matrix extents %d runs × %d nodes, want 2×2", om.Runs(), om.Nodes())
	}
	got, err := AnalyzeObservationsCtx(context.Background(), om, acfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, got, want)
}

// TestShardedObservationsMergeBitIdentical splits the grid on both the
// workload and node axes (2 workload chunks × 2 node ranges = 4 shard
// campaigns), re-assembles the observation matrix in canonical cell
// order, and checks the analysis is identical to the unsharded run —
// the determinism argument behind the bdcoord coordinator.
func TestShardedObservationsMergeBitIdentical(t *testing.T) {
	names := []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}
	suite := splitTestSuite(t, names...)
	ccfg := fastCluster()
	ccfg.SlaveNodes = 2
	ccfg.Runs = 2
	acfg := DefaultAnalysis()
	acfg.KMax = 3

	full, err := CharacterizeObservationsCtx(context.Background(), suite, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeObservationsCtx(context.Background(), full, acfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	merged := &ObservationMatrix{
		Labels:  full.Labels,
		Metrics: full.Metrics,
		Cells:   make([][][][]float64, len(suite)),
	}
	for w := range merged.Cells {
		merged.Cells[w] = make([][][]float64, ccfg.Runs)
		for r := range merged.Cells[w] {
			merged.Cells[w][r] = make([][]float64, ccfg.SlaveNodes)
		}
	}
	for _, wRange := range [][2]int{{0, 2}, {2, 4}} {
		for _, nRange := range [][2]int{{0, 1}, {1, 2}} {
			sub := suite[wRange[0]:wRange[1]]
			scfg := ccfg
			scfg.NodeOffset = nRange[0]
			scfg.SlaveNodes = nRange[1] - nRange[0]
			om, err := CharacterizeObservationsCtx(context.Background(), sub, scfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			for wi := range sub {
				for r := 0; r < ccfg.Runs; r++ {
					for n := 0; n < scfg.SlaveNodes; n++ {
						merged.Cells[wRange[0]+wi][r][nRange[0]+n] = om.Cells[wi][r][n]
					}
				}
			}
		}
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Cells, full.Cells) {
		t.Fatal("sharded cells differ from the unsharded grid")
	}
	got, err := AnalyzeObservationsCtx(context.Background(), merged, acfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, got, want)
}

// TestObservationMatrixValidate exercises the shape checks.
func TestObservationMatrixValidate(t *testing.T) {
	om := &ObservationMatrix{
		Labels:  []string{"A", "B"},
		Metrics: []string{"m1", "m2"},
		Cells: [][][][]float64{
			{{{1, 2}}},
			{{{3, 4}}},
		},
	}
	if err := om.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	bad := *om
	bad.Cells = om.Cells[:1]
	if err := bad.Validate(); err == nil {
		t.Error("label/cell count mismatch accepted")
	}
	ragged := &ObservationMatrix{
		Labels:  []string{"A", "B"},
		Metrics: []string{"m1", "m2"},
		Cells: [][][][]float64{
			{{{1, 2}}},
			{{{3, 4}, {5, 6}}},
		},
	}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged node axis accepted")
	}
	short := &ObservationMatrix{
		Labels:  []string{"A"},
		Metrics: []string{"m1", "m2"},
		Cells:   [][][][]float64{{{{1}}}},
	}
	if err := short.Validate(); err == nil {
		t.Error("short metric vector accepted")
	}
	neg := *om
	neg.NodeOffset = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative node offset accepted")
	}
}

// TestNodeOffsetShiftsSeeds: a campaign at NodeOffset k must reproduce
// node columns [k, k+n) of the full grid, and differ from columns [0, n).
func TestNodeOffsetShiftsSeeds(t *testing.T) {
	suite := splitTestSuite(t, "H-Sort")
	ccfg := fastCluster()
	ccfg.SlaveNodes = 2

	full, err := cluster.CharacterizeCellsCtx(context.Background(), suite, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	half := ccfg
	half.NodeOffset, half.SlaveNodes = 1, 1
	shifted, err := cluster.CharacterizeCellsCtx(context.Background(), suite, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shifted[0][0][0], full[0][0][1]) {
		t.Error("NodeOffset=1 did not reproduce node column 1")
	}
	if reflect.DeepEqual(shifted[0][0][0], full[0][0][0]) {
		t.Error("NodeOffset=1 produced node column 0's measurement")
	}
}
