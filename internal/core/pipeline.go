// Package core implements the paper's methodology end to end:
//
//  1. Characterize — run the 32 BigDataBench workloads on the simulated
//     five-node cluster and collect the 45 Table II metrics per workload
//     (§III, §IV).
//  2. Analyze — z-score normalize, PCA with Kaiser's criterion,
//     hierarchical clustering for the similarity study (§V), K-means with
//     BIC-selected K for redundancy removal, and representative selection
//     by both of the paper's policies (§VI).
//
// Each stage is exposed separately so a custom workload suite (or an
// externally measured metric matrix) can be pushed through the same
// analysis — the library's generalization beyond BigDataBench.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/cluster/hier"
	"repro/internal/cluster/kmeans"
	"repro/internal/num/mat"
	"repro/internal/num/pca"
	"repro/internal/perf"
)

// Stage identifies one pipeline stage for progress reporting.
type Stage string

// The pipeline stages, in execution order.
const (
	StageCharacterize Stage = "characterize"
	StagePCA          Stage = "pca"
	StageHierarchical Stage = "hierarchical"
	StageKMeans       Stage = "kmeans"
	StageSelect       Stage = "select"
)

// Progress receives pipeline progress events: every stage transition is
// reported once with done=0, and during StageCharacterize each completed
// grid cell additionally reports (done, total) cell counts. Callbacks may
// arrive from worker goroutines concurrently and must return quickly.
type Progress func(stage Stage, done, total int)

func (p Progress) stage(s Stage) {
	if p != nil {
		p(s, 0, 0)
	}
}

// Dataset is a labeled workload×metric matrix — the output of
// characterization and the input of analysis.
type Dataset struct {
	Labels  []string
	Metrics []string // column names, Table II order for the standard run
	Rows    [][]float64
	// Measurements is set when the dataset came from the simulated
	// cluster (nil when loaded from a CSV).
	Measurements []*cluster.Measurement
	// Suite is the workload definitions behind the rows (nil for CSVs).
	Suite []workloads.Workload
}

// Validate checks the dataset's shape.
func (d *Dataset) Validate() error {
	if len(d.Rows) != len(d.Labels) {
		return fmt.Errorf("core: %d rows but %d labels", len(d.Rows), len(d.Labels))
	}
	if len(d.Rows) < 2 {
		return fmt.Errorf("core: need ≥2 workloads, got %d", len(d.Rows))
	}
	for i, r := range d.Rows {
		if len(r) != len(d.Metrics) {
			return fmt.Errorf("core: row %d has %d metrics, want %d", i, len(r), len(d.Metrics))
		}
	}
	return nil
}

// Matrix returns the dataset as a dense matrix.
func (d *Dataset) Matrix() *mat.Dense { return mat.FromRows(d.Rows) }

// Characterize runs the full suite on the simulated cluster.
func Characterize(suiteCfg workloads.Config, clusterCfg cluster.Config) (*Dataset, error) {
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return nil, err
	}
	return CharacterizeSuite(suite, clusterCfg)
}

// CharacterizeSuite measures an arbitrary workload list.
func CharacterizeSuite(suite []workloads.Workload, clusterCfg cluster.Config) (*Dataset, error) {
	return CharacterizeSuiteCtx(context.Background(), suite, clusterCfg, nil)
}

// CharacterizeSuiteCtx is CharacterizeSuite with cooperative cancellation
// and per-cell progress reporting (see Progress).
func CharacterizeSuiteCtx(ctx context.Context, suite []workloads.Workload, clusterCfg cluster.Config, progress Progress) (*Dataset, error) {
	progress.stage(StageCharacterize)
	var cp cluster.Progress
	if progress != nil {
		cp = func(done, total int) { progress(StageCharacterize, done, total) }
	}
	ms, err := cluster.CharacterizeCtx(ctx, suite, clusterCfg, cp)
	if err != nil {
		return nil, err
	}
	rows, labels := cluster.MetricMatrix(ms)
	return &Dataset{
		Labels:       labels,
		Metrics:      perf.MetricNames(),
		Rows:         rows,
		Measurements: ms,
		Suite:        suite,
	}, nil
}

// PCSelection chooses how many principal components to keep.
type PCSelection int

const (
	// Kaiser keeps components with eigenvalue ≥ 1 (the paper's rule).
	Kaiser PCSelection = iota
	// VarianceThreshold keeps the smallest prefix reaching
	// AnalysisConfig.VarianceFrac of total variance (ablation).
	VarianceThreshold
)

// AnalysisConfig controls the statistical pipeline.
type AnalysisConfig struct {
	PCSelection  PCSelection
	VarianceFrac float64 // used by VarianceThreshold (default 0.9)

	Linkage hier.Linkage // default Single (the paper's choice)

	KMin, KMax int           // BIC scan range (defaults 2..12)
	KMeans     kmeans.Config // seeding configuration

	// Parallelism bounds concurrency in the analysis stage (the BIC K
	// scan and K-means restarts); 0 means GOMAXPROCS. It is forwarded to
	// KMeans.Parallelism unless that is set explicitly. Results are
	// identical at every setting.
	Parallelism int
}

// DefaultAnalysis returns the paper's settings.
func DefaultAnalysis() AnalysisConfig {
	return AnalysisConfig{
		PCSelection:  Kaiser,
		VarianceFrac: 0.9,
		Linkage:      hier.Single,
		KMin:         2,
		KMax:         12,
		KMeans:       kmeans.Config{Restarts: 16, Seed: 7},
	}
}

// Representative is one selected workload.
type Representative struct {
	Cluster     int
	Workload    string
	Index       int // row index in the dataset
	ClusterSize int
}

// Analysis is the full §V–§VI result.
type Analysis struct {
	Dataset *Dataset

	PCA       *pca.Result
	NumPCs    int
	Variance  float64    // fraction retained by NumPCs
	Scores    *mat.Dense // workloads × NumPCs
	ScoreRows [][]float64

	Dendrogram *hier.Dendrogram

	KBest *kmeans.Result
	KAll  []*kmeans.Result

	// Representatives under the two §VI-B policies.
	NearestReps  []Representative
	FarthestReps []Representative
	// MaxLinkage distance among each representative set (Table V col 3).
	NearestMaxLinkage  float64
	FarthestMaxLinkage float64
}

// Analyze runs normalization, PCA, hierarchical clustering, BIC-driven
// K-means and representative selection on a dataset.
func Analyze(ds *Dataset, cfg AnalysisConfig) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), ds, cfg, nil)
}

// AnalyzeCtx is Analyze with cooperative cancellation (checked between
// stages) and stage-transition progress reporting.
func AnalyzeCtx(ctx context.Context, ds *Dataset, cfg AnalysisConfig, progress Progress) (*Analysis, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.KMin == 0 && cfg.KMax == 0 {
		cfg.KMin, cfg.KMax = 2, 12
	}
	if cfg.KMin < 1 || cfg.KMax < cfg.KMin {
		return nil, fmt.Errorf("core: invalid K range [%d,%d]", cfg.KMin, cfg.KMax)
	}
	if cfg.VarianceFrac == 0 {
		cfg.VarianceFrac = 0.9
	}
	if cfg.KMeans.Parallelism == 0 {
		cfg.KMeans.Parallelism = cfg.Parallelism
	}

	progress.stage(StagePCA)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fit, err := pca.Fit(ds.Matrix())
	if err != nil {
		return nil, err
	}
	var numPCs int
	switch cfg.PCSelection {
	case Kaiser:
		numPCs = fit.KaiserComponents()
	case VarianceThreshold:
		numPCs = fit.ComponentsForVariance(cfg.VarianceFrac)
	default:
		return nil, fmt.Errorf("core: unknown PC selection %d", cfg.PCSelection)
	}
	if numPCs > len(ds.Rows) {
		numPCs = len(ds.Rows)
	}
	scores := fit.ScoresK(numPCs)

	progress.stage(StageHierarchical)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dend, err := hier.Cluster(scores, cfg.Linkage)
	if err != nil {
		return nil, err
	}
	if err := dend.SetLabels(ds.Labels); err != nil {
		return nil, err
	}

	progress.stage(StageKMeans)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kmax := cfg.KMax
	if kmax > len(ds.Rows) {
		kmax = len(ds.Rows)
	}
	best, all, err := kmeans.BestK(scores, cfg.KMin, kmax, cfg.KMeans)
	if err != nil {
		return nil, err
	}
	progress.stage(StageSelect)

	an := &Analysis{
		Dataset:    ds,
		PCA:        fit,
		NumPCs:     numPCs,
		Variance:   fit.ExplainedVariance(numPCs),
		Scores:     scores,
		Dendrogram: dend,
		KBest:      best,
		KAll:       all,
	}
	an.ScoreRows = make([][]float64, len(ds.Rows))
	for i := range ds.Rows {
		an.ScoreRows[i] = scores.Row(i)
	}

	near := best.NearestToCenter(scores)
	far := best.FarthestFromCenter(scores)
	for c := 0; c < best.K; c++ {
		an.NearestReps = append(an.NearestReps, Representative{
			Cluster: c, Workload: ds.Labels[near[c]], Index: near[c], ClusterSize: best.Sizes[c],
		})
		an.FarthestReps = append(an.FarthestReps, Representative{
			Cluster: c, Workload: ds.Labels[far[c]], Index: far[c], ClusterSize: best.Sizes[c],
		})
	}
	an.NearestMaxLinkage = dend.MaxPairwiseCophenetic(near)
	an.FarthestMaxLinkage = dend.MaxPairwiseCophenetic(far)
	return an, nil
}

// Run executes the complete paper pipeline with the given configurations.
func Run(suiteCfg workloads.Config, clusterCfg cluster.Config, acfg AnalysisConfig) (*Analysis, error) {
	return RunCtx(context.Background(), suiteCfg, clusterCfg, acfg, nil)
}

// RunCtx is Run with cooperative cancellation and progress reporting
// threaded through both pipeline halves.
func RunCtx(ctx context.Context, suiteCfg workloads.Config, clusterCfg cluster.Config, acfg AnalysisConfig, progress Progress) (*Analysis, error) {
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return nil, err
	}
	ds, err := CharacterizeSuiteCtx(ctx, suite, clusterCfg, progress)
	if err != nil {
		return nil, err
	}
	return AnalyzeCtx(ctx, ds, acfg, progress)
}

// StackOf reports which engine prefix a workload label carries.
func StackOf(label string) string {
	switch {
	case strings.HasPrefix(label, "H-"):
		return "Hadoop"
	case strings.HasPrefix(label, "S-"):
		return "Spark"
	default:
		return ""
	}
}

// SubsetNames returns the representative workload names under the
// farthest-from-centroid policy — the paper's released simulator-version
// subset.
func (a *Analysis) SubsetNames() []string {
	out := make([]string, len(a.FarthestReps))
	for i, r := range a.FarthestReps {
		out[i] = r.Workload
	}
	return out
}
