package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV serializes a dataset as CSV: a header row of "workload" plus
// metric names, then one row per workload. Non-finite metric values are
// rejected — they would silently poison the z-score normalization and
// every downstream distance.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	// Pre-scan before emitting anything: failing mid-stream would leave a
	// truncated but valid-looking CSV behind the error.
	for i, label := range d.Labels {
		for j, v := range d.Rows[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: workload %q metric %q is non-finite (%v)", label, d.Metrics[j], v)
			}
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{"workload"}, d.Metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, label := range d.Labels {
		rec := make([]string, 0, len(d.Metrics)+1)
		rec = append(rec, label)
		for _, v := range d.Rows[i] {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset produced by WriteCSV (or any CSV with the same
// shape: first column workload label, remaining columns numeric metrics).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: reading CSV: %w", err)
	}
	if len(records) < 3 {
		return nil, fmt.Errorf("core: CSV needs a header and ≥2 data rows, got %d rows", len(records))
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("core: CSV header needs ≥2 columns")
	}
	ds := &Dataset{Metrics: append([]string(nil), header[1:]...)}
	for li, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("core: CSV row %d has %d fields, want %d", li+2, len(rec), len(header))
		}
		ds.Labels = append(ds.Labels, rec[0])
		row := make([]float64, len(rec)-1)
		for j, s := range rec[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("core: CSV row %d col %d: %w", li+2, j+2, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: CSV row %d col %d: non-finite value %q", li+2, j+2, s)
			}
			row[j] = v
		}
		ds.Rows = append(ds.Rows, row)
	}
	return ds, ds.Validate()
}
