package core

import (
	"fmt"
	"math"

	"repro/internal/num/stat"
)

// SubsetQuality quantifies how well a representative set stands in for
// the full suite — the property the paper's subsetting is meant to
// preserve ("a well selected subset can reduce workload redundancy while
// keeping representativity", §VI). Two complementary views:
//
//   - WeightedMeanError: each representative stands in for its whole
//     cluster (weight = cluster size); compare the weighted subset mean
//     of every metric against the full-suite mean, as a relative error.
//     This is how a subset is used to predict suite-level behaviour.
//
//   - MeanApproximationDistance: mean z-scored metric-space distance from
//     each workload to its cluster's representative — how far any single
//     workload is from the workload that "speaks for it" (Eeckhout et
//     al.'s interpolation argument, cited in §VI-B).
type SubsetQuality struct {
	WeightedMeanError         float64 // mean over metrics of |subset − suite|/max(|suite|, ε)
	PerMetricError            []float64
	MeanApproximationDistance float64
	MaxApproximationDistance  float64
}

// EvaluateSubset measures the quality of a representative set produced by
// this analysis (either NearestReps or FarthestReps, or any set with one
// representative per cluster).
func (a *Analysis) EvaluateSubset(reps []Representative) (*SubsetQuality, error) {
	if len(reps) != a.KBest.K {
		return nil, fmt.Errorf("core: %d representatives for %d clusters", len(reps), a.KBest.K)
	}
	ds := a.Dataset
	nm := len(ds.Metrics)
	n := len(ds.Rows)

	repOf := make([]int, a.KBest.K)
	for _, r := range reps {
		if r.Cluster < 0 || r.Cluster >= a.KBest.K {
			return nil, fmt.Errorf("core: representative cluster %d out of range", r.Cluster)
		}
		if r.Index < 0 || r.Index >= n {
			return nil, fmt.Errorf("core: representative index %d out of range", r.Index)
		}
		repOf[r.Cluster] = r.Index
	}

	q := &SubsetQuality{PerMetricError: make([]float64, nm)}

	// Weighted subset mean vs full-suite mean, per metric.
	total := 0.0
	for j := 0; j < nm; j++ {
		suiteMean := 0.0
		for i := 0; i < n; i++ {
			suiteMean += ds.Rows[i][j]
		}
		suiteMean /= float64(n)

		subsetMean := 0.0
		for c := 0; c < a.KBest.K; c++ {
			subsetMean += ds.Rows[repOf[c]][j] * float64(a.KBest.Sizes[c])
		}
		subsetMean /= float64(n)

		denom := math.Abs(suiteMean)
		if denom < 1e-12 {
			denom = 1e-12
		}
		e := math.Abs(subsetMean-suiteMean) / denom
		q.PerMetricError[j] = e
		total += e
	}
	q.WeightedMeanError = total / float64(nm)

	// Approximation distance in z-scored metric space.
	zs := stat.ZScoreColumns(ds.Matrix())
	sum, max := 0.0, 0.0
	for i := 0; i < n; i++ {
		rep := repOf[a.KBest.Assign[i]]
		d := 0.0
		for j := 0; j < nm; j++ {
			diff := zs.Normalized.At(i, j) - zs.Normalized.At(rep, j)
			d += diff * diff
		}
		d = math.Sqrt(d)
		sum += d
		if d > max {
			max = d
		}
	}
	q.MeanApproximationDistance = sum / float64(n)
	q.MaxApproximationDistance = max
	return q, nil
}

// HierarchicalRepresentatives selects k representatives from the
// dendrogram instead of from K-means: the tree is cut into k flat
// clusters (the paper's "draw a vertical line" reading of Fig. 1, §VI-B)
// and within each cluster the workload farthest from the cluster's
// centroid in PC space is chosen (the boundary policy the paper prefers).
func (a *Analysis) HierarchicalRepresentatives(k int) ([]Representative, error) {
	n := len(a.Dataset.Rows)
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k=%d out of [1,%d]", k, n)
	}
	assign := a.Dendrogram.CutK(k)

	// Cluster centroids in PC space.
	_, dims := a.Scores.Dims()
	centroids := make([][]float64, k)
	sizes := make([]int, k)
	for c := range centroids {
		centroids[c] = make([]float64, dims)
	}
	for i, c := range assign {
		sizes[c]++
		for j := 0; j < dims; j++ {
			centroids[c][j] += a.Scores.At(i, j)
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(sizes[c])
		}
	}

	reps := make([]Representative, k)
	best := make([]float64, k)
	for c := range reps {
		reps[c] = Representative{Cluster: c, Index: -1}
		best[c] = -1
	}
	for i, c := range assign {
		d := 0.0
		for j := 0; j < dims; j++ {
			diff := a.Scores.At(i, j) - centroids[c][j]
			d += diff * diff
		}
		if d > best[c] {
			best[c] = d
			reps[c] = Representative{
				Cluster:     c,
				Index:       i,
				Workload:    a.Dataset.Labels[i],
				ClusterSize: sizes[c],
			}
		}
	}
	return reps, nil
}
