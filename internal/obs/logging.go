package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds the daemon logger: level is "debug"|"info"|"warn"|
// "error", format is "text"|"json". Both daemons expose these directly
// as -log-level and -log-format.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
}

// IsJobID reports whether s has the exact shape of a job ID (32
// lowercase hex digits) — used to collapse URL paths to bounded metric
// label values and to tag request log lines with the job they touch.
func IsJobID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// knownRoutes bounds the path label cardinality of the HTTP metrics:
// anything else (scans, typos, 404 probes) collapses into "other"
// instead of minting a new series per request.
var knownRoutes = map[string]bool{
	"/healthz":             true,
	"/metrics":             true,
	"/v1/jobs":             true,
	"/v1/jobs/{id}":        true,
	"/v1/jobs/{id}/result": true,
	"/v1/jobs/{id}/events": true,
	"/v1/jobs/{id}/trace":  true,
	"/v1/cache/stats":      true,
	"/v1/workers":          true,
	"/v1/status":           true,
}

// NormalizePath collapses job-ID path segments to "{id}" and unknown
// routes to "other", returning the normalized path plus the job ID (if
// the path named one).
func NormalizePath(p string) (route, jobID string) {
	segs := strings.Split(strings.TrimSuffix(p, "/"), "/")
	for i, s := range segs {
		if IsJobID(s) {
			jobID = s
			segs[i] = "{id}"
		}
	}
	route = strings.Join(segs, "/")
	if route == "" {
		route = "/"
	}
	if !knownRoutes[route] {
		route = "other"
	}
	return route, jobID
}

// statusWriter captures the response status and byte count, passing
// Flush through so wrapped NDJSON event streams keep streaming live.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// LogRequests wraps next with the daemons' request observability: one
// structured log line per request (method, route, status, duration,
// bytes, client, and the job ID when the path names one) plus the
// bd_http_requests_total / bd_http_request_duration_seconds metrics.
// /healthz and /metrics lines log at DEBUG so probes and scrapes don't
// drown the INFO stream.
func LogRequests(next http.Handler, logger *slog.Logger, reg *Registry) http.Handler {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	requests := reg.CounterVec("bd_http_requests_total",
		"HTTP requests served, by method, normalized route and status code.",
		"method", "path", "code")
	duration := reg.HistogramVec("bd_http_request_duration_seconds",
		"HTTP request latency in seconds, by method and normalized route.",
		DefBuckets, "method", "path")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route, jobID := NormalizePath(r.URL.Path)
		requests.With(r.Method, route, fmt.Sprintf("%d", sw.status)).Inc()
		duration.With(r.Method, route).Observe(elapsed.Seconds())
		level := slog.LevelInfo
		if route == "/healthz" || route == "/metrics" {
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.Int64("bytes", sw.bytes),
			slog.String("client", r.RemoteAddr),
		}
		if jobID != "" {
			attrs = append(attrs, slog.String("job", jobID))
		}
		logger.LogAttrs(r.Context(), level, "http request", attrs...)
	})
}

// StartStatsTicker runs a goroutine that logs one INFO "stats" line
// every interval, with collect supplying the line's attributes — the
// periodic fleet summary an operator tails instead of polling JSON
// endpoints. It returns an idempotent stop function; interval <= 0
// disables the ticker (stop is still valid).
func StartStatsTicker(logger *slog.Logger, interval time.Duration, collect func() []slog.Attr) (stop func()) {
	if interval <= 0 || logger == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				logger.LogAttrs(context.Background(), slog.LevelInfo, "stats", collect()...)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
