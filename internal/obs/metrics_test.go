package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines; run under -race this is the data-race proof,
// and the final values prove no update was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bd_test_ops_total", "ops")
	cv := r.CounterVec("bd_test_labeled_total", "labeled ops", "kind")
	g := r.Gauge("bd_test_level", "level")
	h := r.Histogram("bd_test_latency_seconds", "latency", []float64{0.5, 1, 2})

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(kind).Inc()
				g.Add(1)
				h.Observe(float64(i%3) + 0.25) // 0.25, 1.25, 2.25
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if a, b := cv.With("a").Value(), cv.With("b").Value(); a+b != total || a != b {
		t.Errorf("labeled counters a=%d b=%d, want %d each", a, b, total/2)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Each worker observes perWorker/3 values in each of the three
	// ranges, summing to perWorker*(0.25+1.25+2.25)/3 per worker... but
	// perWorker isn't divisible by 3, so just bound the sum instead.
	if sum := h.Sum(); sum < 0.25*total || sum > 2.25*total {
		t.Errorf("histogram sum = %g out of range", sum)
	}
}

// TestConcurrentRender interleaves WriteText with live updates — the
// scrape-during-traffic case that -race must accept.
func TestConcurrentRender(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("bd_test_total", "t", "k")
	h := r.HistogramVec("bd_test_seconds", "t", nil, "k")
	r.GaugeFunc("bd_test_now", "t", func() float64 { return 1 })
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				c.With([]string{"x", "y"}[i%2]).Inc()
				h.With("x").Observe(0.1)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestExpositionGolden pins the exact text exposition bytes: HELP/TYPE
// lines, family and series sort order, cumulative histogram buckets
// with +Inf/sum/count, and label escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.CounterVec("bd_jobs_total", "Jobs by state.", "state")
	jobs.With("done").Add(3)
	jobs.With("failed").Inc()
	r.Gauge("bd_queue_depth", "Queued jobs.").Set(2)
	r.GaugeFunc("bd_workers", "Fleet size.", func() float64 { return 4 })
	h := r.Histogram("bd_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)
	esc := r.CounterVec("bd_escapes_total", "Help with \\ and\nnewline.", "path")
	esc.With("say \"hi\"\\\n").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP bd_escapes_total Help with \\ and\nnewline.
# TYPE bd_escapes_total counter
bd_escapes_total{path="say \"hi\"\\\n"} 1
# HELP bd_jobs_total Jobs by state.
# TYPE bd_jobs_total counter
bd_jobs_total{state="done"} 3
bd_jobs_total{state="failed"} 1
# HELP bd_latency_seconds Latency.
# TYPE bd_latency_seconds histogram
bd_latency_seconds_bucket{le="0.1"} 2
bd_latency_seconds_bucket{le="1"} 3
bd_latency_seconds_bucket{le="+Inf"} 4
bd_latency_seconds_sum 99.6
bd_latency_seconds_count 4
# HELP bd_queue_depth Queued jobs.
# TYPE bd_queue_depth gauge
bd_queue_depth 2
# HELP bd_workers Fleet size.
# TYPE bd_workers gauge
bd_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestReRegistration: same name + same schema returns the same
// instrument; a conflicting schema is a programming error and panics.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bd_x_total", "x")
	b := r.Counter("bd_x_total", "x")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registration returned a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("bd_x_total", "now a gauge")
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("bd_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if ExpositionContentType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("ExpositionContentType = %q", ExpositionContentType)
	}
	if !strings.Contains(rec.Body.String(), "bd_x_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("invalid label name did not panic")
			}
		}()
		r.CounterVec("bd_ok_total", "x", "bad-label")
	}()
}
