package obs

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofHandler returns the net/http/pprof handler set on a private mux
// — the daemons never mount it on the public API mux, only on the
// separate -pprof-addr listener.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprof serves /debug/pprof on its own listener at addr — the
// opt-in -pprof-addr hook on both daemons, off by default. Profiles
// expose heap contents and execution timing, so bind a loopback or
// otherwise trusted address; StartPprof is never reachable through the
// daemons' public port. Returns an idempotent stop function, or an
// error if addr cannot be bound (a typo should fail startup, not hide).
func StartPprof(addr string, logger *slog.Logger) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: PprofHandler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	if logger != nil {
		logger.Info("pprof listening", "addr", ln.Addr().String())
	}
	return func() { srv.Close() }, nil
}
