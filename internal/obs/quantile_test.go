package obs

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Fatalf("%s = %v, want NaN", what, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

// Golden quantiles from a hand-built snapshot: 100 observations spread
// over buckets (0,1](1,2](2,4] as 50/30/20. Cumulative ranks: p50 lands
// exactly at the top of the first bucket, p95 interpolates 3/4 into
// (2,4], p99 interpolates 19/20 into it.
func TestQuantileGolden(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{50, 30, 20},
		Count:  100,
	}
	almost(t, s.Quantile(0.50), 1.0, 1e-9, "p50")
	almost(t, s.Quantile(0.80), 2.0, 1e-9, "p80")
	almost(t, s.Quantile(0.95), 2+2*(15.0/20.0), 1e-9, "p95") // 3.5
	almost(t, s.Quantile(0.99), 2+2*(19.0/20.0), 1e-9, "p99") // 3.9
	almost(t, s.Quantile(1.0), 4.0, 1e-9, "p100")
	// First bucket interpolates from 0.
	almost(t, s.Quantile(0.25), 0.5, 1e-9, "p25")

	qs := s.Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 || qs[0] != 1.0 {
		t.Fatalf("Quantiles = %v", qs)
	}
}

func TestQuantileInfBucketClampsToLastBound(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []uint64{10, 10},
		Inf:    80,
		Count:  100,
	}
	// p99 rank falls above every finite bucket: clamp to the last bound.
	almost(t, s.Quantile(0.99), 2.0, 1e-9, "p99 in +Inf")
}

func TestQuantileEmptyAndInvalid(t *testing.T) {
	var s HistogramSnapshot
	almost(t, s.Quantile(0.5), math.NaN(), 0, "empty")
	full := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{5}, Count: 5}
	almost(t, full.Quantile(0), math.NaN(), 0, "q=0")
	almost(t, full.Quantile(1.5), math.NaN(), 0, "q>1")
	almost(t, full.Quantile(math.NaN()), math.NaN(), 0, "q=NaN")
}

func TestHistogramSnapshotAndMerge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Inf != 1 {
		t.Fatalf("snapshot count=%d inf=%d, want 4/1", s.Count, s.Inf)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("per-bound counts = %v", s.Counts)
	}
	almost(t, s.Sum, 105, 1e-9, "sum")

	var agg HistogramSnapshot
	agg.Merge(s)
	agg.Merge(s)
	if agg.Count != 8 || agg.Inf != 2 || agg.Counts[0] != 2 {
		t.Fatalf("merged = %+v", agg)
	}
	// Mismatched layout is ignored.
	agg.Merge(HistogramSnapshot{Bounds: []float64{9}, Counts: []uint64{3}, Count: 3})
	if agg.Count != 8 {
		t.Fatalf("mismatched merge changed count: %d", agg.Count)
	}
}

func TestReadScalarAndSeries(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "help")
	c.Add(7)
	if v, ok := reg.ReadScalar("t_total"); !ok || v != 7 {
		t.Fatalf("ReadScalar counter = %v,%v", v, ok)
	}
	g := reg.Gauge("t_gauge", "help")
	g.Set(2.5)
	if v, ok := reg.ReadScalar("t_gauge"); !ok || v != 2.5 {
		t.Fatalf("ReadScalar gauge = %v,%v", v, ok)
	}
	reg.GaugeFunc("t_fn", "help", func() float64 { return 11 })
	if v, ok := reg.ReadScalar("t_fn"); !ok || v != 11 {
		t.Fatalf("ReadScalar gauge-func = %v,%v", v, ok)
	}
	cv := reg.CounterVec("t_vec_total", "help", "k")
	cv.With("a").Add(3)
	cv.With("b").Add(4)
	if v, ok := reg.ReadScalar("t_vec_total"); !ok || v != 7 {
		t.Fatalf("ReadScalar vec sum = %v,%v", v, ok)
	}
	if v, ok := reg.ReadScalarSeries("t_vec_total", []string{"b"}); !ok || v != 4 {
		t.Fatalf("ReadScalarSeries = %v,%v", v, ok)
	}
	if _, ok := reg.ReadScalarSeries("t_vec_total", []string{"zzz"}); ok {
		t.Fatal("unknown series should not be ok")
	}
	if _, ok := reg.ReadScalar("t_absent"); ok {
		t.Fatal("unknown family should not be ok")
	}
	reg.Histogram("t_hist", "help", DefBuckets)
	if _, ok := reg.ReadScalar("t_hist"); ok {
		t.Fatal("histogram family should not be readable as scalar")
	}
}

func TestReadHistogramAggregatesSeries(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("t_dur_seconds", "help", []float64{1, 2}, "stage")
	hv.With("a").Observe(0.5)
	hv.With("b").Observe(1.5)
	hv.With("b").Observe(10)
	s, ok := reg.ReadHistogram("t_dur_seconds")
	if !ok || s.Count != 3 || s.Inf != 1 {
		t.Fatalf("ReadHistogram = %+v ok=%v", s, ok)
	}
	if _, ok := reg.ReadHistogram("t_absent"); ok {
		t.Fatal("unknown histogram should not be ok")
	}
	// Empty labeled family still reports its bucket layout.
	reg.HistogramVec("t_empty_seconds", "help", []float64{3, 4}, "k")
	e, ok := reg.ReadHistogram("t_empty_seconds")
	if !ok || e.Count != 0 || len(e.Bounds) != 2 {
		t.Fatalf("empty family = %+v ok=%v", e, ok)
	}
}

func TestVecEachSortedOrder(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("t_each_total", "help", "w", "r")
	cv.With("kmeans", "miss").Add(2)
	cv.With("kmeans", "hit").Add(5)
	cv.With("bayes", "hit").Inc()
	var got [][2]string
	var vals []uint64
	cv.Each(func(labels []string, v uint64) {
		got = append(got, [2]string{labels[0], labels[1]})
		vals = append(vals, v)
	})
	want := [][2]string{{"bayes", "hit"}, {"kmeans", "hit"}, {"kmeans", "miss"}}
	if len(got) != 3 {
		t.Fatalf("Each visited %d series", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if vals[0] != 1 || vals[1] != 5 || vals[2] != 2 {
		t.Fatalf("values = %v", vals)
	}

	hv := reg.HistogramVec("t_each_seconds", "help", []float64{1}, "k")
	hv.With("x").Observe(0.5)
	n := 0
	hv.Each(func(labels []string, snap HistogramSnapshot) {
		n++
		if snap.Count != 1 {
			t.Fatalf("snap count = %d", snap.Count)
		}
	})
	if n != 1 {
		t.Fatalf("histogram Each visited %d", n)
	}
}
