package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Distributed job tracing: the third observability pillar next to the
// metric registry and the structured logs, and like them deliberately
// dependency-free. A trace is the causal tree of spans behind one job —
// job → plan → unit[i] attempt[k] → dispatch/exec/validate → merge on
// the coordinator, with the worker's per-stage spans imported underneath
// the unit that dispatched them. Spans land in a bounded in-memory
// flight recorder (ring per job) and are exported as canonical JSON or
// Chrome trace_event format from GET /v1/jobs/{id}/trace.
//
// Tracing is strictly observational: whether the recorder is nil
// (disabled) or recording, job results are byte-identical — the
// chaostest suite pins that invariant.

// TraceHeader is the HTTP header that propagates trace context from the
// coordinator to a worker on job submission. Its value is
// "<trace-id>;<parent-span-id>" (see FormatTraceParent); the worker
// tags its own spans with the propagated trace ID and parents its job
// span under the coordinator's span, so the imported worker spans nest
// in the coordinator's trace.
const TraceHeader = "X-BD-Trace"

// TraceID derives a job's trace ID. Job IDs are already deterministic
// content hashes of the normalized spec (32 lowercase hex digits), so
// the job ID is used verbatim: resubmitting the same spec lands in the
// same trace identity, and the trace can be found from nothing but the
// job ID.
func TraceID(jobID string) string { return jobID }

// FormatTraceParent encodes trace context for the TraceHeader value.
func FormatTraceParent(traceID, spanID string) string {
	return traceID + ";" + spanID
}

// ParseTraceParent decodes a TraceHeader value. The trace ID must have
// job-ID shape and the span ID must be short and printable — anything
// else is rejected so untrusted header bytes never reach labels, logs
// or the journal.
func ParseTraceParent(s string) (traceID, spanID string, ok bool) {
	i := strings.IndexByte(s, ';')
	if i < 0 {
		return "", "", false
	}
	traceID, spanID = s[:i], s[i+1:]
	if !IsJobID(traceID) || spanID == "" || len(spanID) > 64 {
		return "", "", false
	}
	for j := 0; j < len(spanID); j++ {
		b := spanID[j]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '-', b == '_', b == '.':
		default:
			return "", "", false
		}
	}
	return traceID, spanID, true
}

// SpanEvent is a point-in-time annotation attached to a span (e.g. a
// journal-append on the job span).
type SpanEvent struct {
	Time  time.Time         `json:"time"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one timed node of a trace. Spans with End == Start are
// instant markers (breaker/lease/fleet events) rather than intervals.
type Span struct {
	TraceID string            `json:"trace_id"`
	ID      string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	Service string            `json:"service,omitempty"`
	Worker  string            `json:"worker,omitempty"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []SpanEvent       `json:"events,omitempty"`
}

// Duration is the span's wall-clock extent (zero for instants).
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// TraceExport is the canonical JSON shape served by
// GET /v1/jobs/{id}/trace: the job's spans in completion order plus the
// count of spans the bounded recorder had to drop.
type TraceExport struct {
	JobID        string `json:"job_id"`
	TraceID      string `json:"trace_id"`
	Service      string `json:"service"`
	DroppedSpans int    `json:"dropped_spans"`
	Spans        []Span `json:"spans"`
}

// traceBuf is one job's span ring: bounded at cap spans, oldest dropped
// first (a flight recorder keeps the tail of history, and the tail —
// merge, terminal state — is what a post-mortem needs most).
type traceBuf struct {
	traceID string
	spans   []Span
	start   int // ring read index
	n       int // live count
	dropped int
	lastUse int64 // LRU clock tick
}

// FlightRecorder is the bounded in-memory span store shared by all jobs
// of one process. All methods are nil-receiver safe: a nil recorder is
// the disabled state, and every call site can emit unconditionally.
//
// Bounds: at most maxSpans spans are retained per job (-trace-buffer;
// oldest dropped, counted in DroppedSpans) and at most maxTraces jobs
// are retained (least-recently-used trace evicted), so recorder memory
// is O(maxTraces × maxSpans) regardless of traffic. The job manager
// additionally calls Remove when it evicts a terminal job record, so
// traces are evicted LRU alongside job records.
type FlightRecorder struct {
	service   string
	maxTraces int
	maxSpans  int

	// Sink, when set, receives every span the recorder accepts through a
	// live path (End, Record, Import) — the journal append hook. It is
	// always invoked outside the recorder lock. Replay does not sink.
	Sink func(jobID string, sp Span)

	seq   atomic.Uint64
	nonce string // process-unique span-ID prefix (coordinator vs worker)

	mu     sync.Mutex
	traces map[string]*traceBuf
	clock  int64
}

// NewFlightRecorder builds a recorder for a process (service is the
// span Service tag: "bdservd", "bdcoord", "bdbench"…). maxTraces bounds
// retained jobs, maxSpans the per-job ring.
func NewFlightRecorder(service string, maxTraces, maxSpans int) *FlightRecorder {
	if maxTraces < 1 {
		maxTraces = 1
	}
	if maxSpans < 1 {
		maxSpans = 1
	}
	var b [4]byte
	rand.Read(b[:])
	return &FlightRecorder{
		service:   service,
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		nonce:     hex.EncodeToString(b[:]),
		traces:    make(map[string]*traceBuf),
	}
}

// Enabled reports whether the recorder is live (non-nil).
func (r *FlightRecorder) Enabled() bool { return r != nil }

// Service returns the recorder's span Service tag ("" when disabled).
func (r *FlightRecorder) Service() string {
	if r == nil {
		return ""
	}
	return r.service
}

// NewSpanID allocates a process-unique span ID. IDs are deliberately
// not deterministic (spans carry wall-clock time anyway); the random
// per-process nonce keeps coordinator and worker IDs from colliding
// inside one merged trace.
func (r *FlightRecorder) NewSpanID() string {
	if r == nil {
		return ""
	}
	return r.nonce + "-" + strconv.FormatUint(r.seq.Add(1), 10)
}

// buf returns (creating if needed) the ring for jobID, bumping its LRU
// tick and evicting the least-recently-used trace beyond maxTraces.
// Caller holds r.mu.
func (r *FlightRecorder) buf(jobID, traceID string) *traceBuf {
	r.clock++
	tb := r.traces[jobID]
	if tb == nil {
		tb = &traceBuf{traceID: traceID, spans: make([]Span, 0, 16)}
		r.traces[jobID] = tb
		if len(r.traces) > r.maxTraces {
			worstID, worst := "", int64(1<<62)
			for id, b := range r.traces {
				if id != jobID && b.lastUse < worst {
					worstID, worst = id, b.lastUse
				}
			}
			delete(r.traces, worstID)
		}
	}
	if tb.traceID == "" {
		tb.traceID = traceID
	}
	tb.lastUse = r.clock
	return tb
}

// push appends sp to jobID's ring, dropping the oldest span when full.
// Caller holds r.mu.
func (r *FlightRecorder) push(jobID string, sp Span) {
	tb := r.buf(jobID, sp.TraceID)
	if tb.n < r.maxSpans {
		if len(tb.spans) < r.maxSpans {
			tb.spans = append(tb.spans, sp)
		} else {
			tb.spans[(tb.start+tb.n)%len(tb.spans)] = sp
		}
		tb.n++
		return
	}
	tb.spans[tb.start] = sp
	tb.start = (tb.start + 1) % len(tb.spans)
	tb.dropped++
}

// Record accepts one completed span for jobID, filling in ID and
// Service when unset, and forwards it to Sink.
func (r *FlightRecorder) Record(jobID string, sp Span) {
	if r == nil {
		return
	}
	if sp.ID == "" {
		sp.ID = r.NewSpanID()
	}
	if sp.Service == "" {
		sp.Service = r.service
	}
	r.mu.Lock()
	r.push(jobID, sp)
	sink := r.Sink
	r.mu.Unlock()
	if sink != nil {
		sink(jobID, sp)
	}
}

// Replay re-inserts spans recovered from the journal (no Sink — they
// are already persisted).
func (r *FlightRecorder) Replay(jobID string, spans []Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, sp := range spans {
		r.push(jobID, sp)
	}
	r.mu.Unlock()
}

// Remove drops jobID's trace (called when the job record is evicted).
func (r *FlightRecorder) Remove(jobID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.traces, jobID)
	r.mu.Unlock()
}

// Export snapshots jobID's trace in span-completion order.
func (r *FlightRecorder) Export(jobID string) (TraceExport, bool) {
	if r == nil {
		return TraceExport{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tb := r.traces[jobID]
	if tb == nil {
		return TraceExport{}, false
	}
	r.clock++
	tb.lastUse = r.clock
	out := TraceExport{
		JobID:        jobID,
		TraceID:      tb.traceID,
		Service:      r.service,
		DroppedSpans: tb.dropped,
		Spans:        make([]Span, 0, tb.n),
	}
	for i := 0; i < tb.n; i++ {
		out.Spans = append(out.Spans, tb.spans[(tb.start+i)%len(tb.spans)])
	}
	return out, true
}

// SpanHandle is an in-flight span builder returned by StartSpan. It is
// safe for concurrent annotation; End (idempotent) seals the span into
// the recorder. All methods are nil-receiver safe.
type SpanHandle struct {
	rec   *FlightRecorder
	jobID string

	mu    sync.Mutex
	span  Span
	ended bool
}

// StartSpan opens a span under trace (traceID, parent) for jobID's
// ring. A nil recorder returns a nil handle (all of whose methods
// no-op).
func (r *FlightRecorder) StartSpan(jobID, traceID, parent, name string) *SpanHandle {
	return r.StartSpanID(jobID, traceID, parent, name, "")
}

// StartSpanID is StartSpan with a caller-chosen span ID — used when the
// ID must be known (and referenced by children) before the span ends.
func (r *FlightRecorder) StartSpanID(jobID, traceID, parent, name, id string) *SpanHandle {
	if r == nil {
		return nil
	}
	if id == "" {
		id = r.NewSpanID()
	}
	return &SpanHandle{
		rec:   r,
		jobID: jobID,
		span: Span{
			TraceID: traceID,
			ID:      id,
			Parent:  parent,
			Name:    name,
			Service: r.service,
			Start:   time.Now(),
		},
	}
}

// ID returns the span's ID ("" on a nil handle).
func (h *SpanHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.span.ID
}

// SetAttr sets one span attribute.
func (h *SpanHandle) SetAttr(k, v string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.span.Attrs == nil {
		h.span.Attrs = make(map[string]string, 4)
	}
	h.span.Attrs[k] = v
	h.mu.Unlock()
}

// Annotate attaches a point-in-time event to the (still open) span.
func (h *SpanHandle) Annotate(name string, attrs map[string]string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.ended {
		h.span.Events = append(h.span.Events, SpanEvent{Time: time.Now(), Name: name, Attrs: attrs})
	}
	h.mu.Unlock()
}

// End seals the span (status=ok unless an error status was already
// set) and records it. Idempotent; the handle's internal lock is
// released before the recorder and sink are touched, so End composes
// with any caller lock order.
func (h *SpanHandle) End() { h.end(nil) }

// EndErr is End with status=error and the error message attached when
// err is non-nil.
func (h *SpanHandle) EndErr(err error) { h.end(err) }

func (h *SpanHandle) end(err error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.ended {
		h.mu.Unlock()
		return
	}
	h.ended = true
	if h.span.Attrs == nil {
		h.span.Attrs = make(map[string]string, 2)
	}
	if err != nil {
		h.span.Attrs["status"] = "error"
		h.span.Attrs["error"] = err.Error()
	} else if h.span.Attrs["status"] == "" {
		h.span.Attrs["status"] = "ok"
	}
	h.span.End = time.Now()
	sp := h.span
	h.mu.Unlock()
	h.rec.Record(h.jobID, sp)
}

// TraceContext is the per-job tracing capability a job manager hands
// down (via context) to whatever executes the job. A nil TraceContext
// is the disabled state; every method no-ops.
type TraceContext struct {
	Rec     *FlightRecorder
	JobID   string // recorder key (this process's job ID)
	TraceID string // trace identity (may be propagated from upstream)
	Root    string // parent span ID for top-level child spans
}

// StartSpan opens a span parented under the job's root span.
func (tc *TraceContext) StartSpan(name string) *SpanHandle {
	if tc == nil {
		return nil
	}
	return tc.Rec.StartSpanID(tc.JobID, tc.TraceID, tc.Root, name, "")
}

// StartChild opens a span under an explicit parent span ID.
func (tc *TraceContext) StartChild(parent, name string) *SpanHandle {
	if tc == nil {
		return nil
	}
	return tc.Rec.StartSpanID(tc.JobID, tc.TraceID, parent, name, "")
}

// Instant records a zero-duration marker span (breaker transitions,
// fleet membership changes, …) under the job's root span.
func (tc *TraceContext) Instant(name string, attrs map[string]string) {
	if tc == nil {
		return
	}
	now := time.Now()
	tc.Rec.Record(tc.JobID, Span{
		TraceID: tc.TraceID, Parent: tc.Root, Name: name,
		Start: now, End: now, Attrs: attrs,
	})
}

// RecordInterval records an already-measured span (stage timings,
// queue-wait) under an explicit parent.
func (tc *TraceContext) RecordInterval(parent, name string, start, end time.Time, attrs map[string]string) {
	if tc == nil {
		return
	}
	if parent == "" {
		parent = tc.Root
	}
	tc.Rec.Record(tc.JobID, Span{
		TraceID: tc.TraceID, Parent: parent, Name: name,
		Start: start, End: end, Attrs: attrs,
	})
}

// Import merges spans fetched from a worker's recorder into this trace:
// only spans already tagged with this trace's ID are kept (a worker
// cache hit serves spans from some older, foreign trace — those are the
// other trace's history, not this one's), root spans of the imported
// set are re-parented under parent, and worker/extra attributes are
// stamped on. Imported spans flow through Sink like locally recorded
// ones, so they survive coordinator crash-recovery too.
func (tc *TraceContext) Import(spans []Span, parent, worker string, attrs map[string]string) {
	if tc == nil {
		return
	}
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if sp.TraceID == tc.TraceID {
			ids[sp.ID] = true
		}
	}
	for _, sp := range spans {
		if sp.TraceID != tc.TraceID {
			continue
		}
		if !ids[sp.Parent] {
			sp.Parent = parent
		}
		if sp.Worker == "" {
			sp.Worker = worker
		}
		if len(attrs) > 0 {
			m := make(map[string]string, len(sp.Attrs)+len(attrs))
			for k, v := range sp.Attrs {
				m[k] = v
			}
			for k, v := range attrs {
				if _, dup := m[k]; !dup {
					m[k] = v
				}
			}
			sp.Attrs = m
		}
		tc.Rec.Record(tc.JobID, sp)
	}
}

type traceCtxKey struct{}

// ContextWithTrace attaches tc to ctx (nil tc returns ctx unchanged).
func ContextWithTrace(ctx context.Context, tc *TraceContext) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the attached TraceContext, or nil — which is
// itself a valid (disabled) TraceContext receiver.
func TraceFromContext(ctx context.Context) *TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(*TraceContext)
	return tc
}

// ChromeTrace renders an export in Chrome trace_event JSON (the
// {"traceEvents": […]} envelope) loadable in chrome://tracing and
// Perfetto. Processes are (service, worker) pairs; within a process,
// spans of one unit share a thread lane so parent/child intervals nest
// visually, and instant spans render as markers.
func ChromeTrace(export TraceExport) ([]byte, error) {
	type event struct {
		Name  string         `json:"name"`
		Ph    string         `json:"ph"`
		TS    int64          `json:"ts"`
		Dur   int64          `json:"dur,omitempty"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Scope string         `json:"s,omitempty"`
		Args  map[string]any `json:"args,omitempty"`
	}
	pids := map[string]int{}
	var events []event
	pidOf := func(sp Span) int {
		key := sp.Service + "|" + sp.Worker
		pid, ok := pids[key]
		if !ok {
			pid = len(pids) + 1
			pids[key] = pid
			name := sp.Service
			if sp.Worker != "" {
				name += " " + sp.Worker
			}
			events = append(events, event{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": name},
			})
		}
		return pid
	}
	tidOf := func(sp Span) int {
		if u, err := strconv.Atoi(sp.Attrs["unit"]); err == nil {
			return u + 1
		}
		return 0
	}
	for _, sp := range export.Spans {
		pid, tid := pidOf(sp), tidOf(sp)
		args := map[string]any{"span_id": sp.ID}
		if sp.Parent != "" {
			args["parent_id"] = sp.Parent
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		ev := event{Name: sp.Name, TS: sp.Start.UnixMicro(), PID: pid, TID: tid, Args: args}
		if sp.End.After(sp.Start) {
			ev.Ph = "X"
			if ev.Dur = sp.End.Sub(sp.Start).Microseconds(); ev.Dur == 0 {
				ev.Dur = 1
			}
		} else {
			ev.Ph, ev.Scope = "i", "t"
		}
		events = append(events, ev)
		for _, se := range sp.Events {
			args := map[string]any{"span_id": sp.ID}
			for k, v := range se.Attrs {
				args[k] = v
			}
			events = append(events, event{
				Name: se.Name, Ph: "i", TS: se.Time.UnixMicro(),
				PID: pid, TID: tid, Scope: "t", Args: args,
			})
		}
	}
	return json.Marshal(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// StageStat is one pipeline stage's aggregate in a TraceSummary.
type StageStat struct {
	Name    string
	Seconds float64
	Count   int
}

// WorkerStat aggregates one worker's unit attempts in a TraceSummary.
type WorkerStat struct {
	Worker         string
	Units          int // successful exec spans
	Steals         int // successful execs of units another worker failed first
	Retries        int // failed exec attempts on this worker
	ExecSeconds    float64
	SlowestUnit    int
	SlowestSeconds float64
}

// TraceSummary is the per-stage / per-worker critical-path digest
// behind report -trace.
type TraceSummary struct {
	JobID       string
	TraceID     string
	WallSeconds float64
	Stages      []StageStat
	Workers     []WorkerStat
	TotalUnits  int
	TotalSteals int
	TotalRetry  int
	SlowestUnit int // -1 when no unit spans present
	SlowestSec  float64
	SlowestOn   string
}

// Summarize digests an export: job wall clock, per-stage durations (the
// coordinating process's own stage spans), and per-worker unit /
// steal / retry attribution with the slowest unit called out.
func Summarize(export TraceExport) TraceSummary {
	s := TraceSummary{JobID: export.JobID, TraceID: export.TraceID, SlowestUnit: -1}
	stages := map[string]*StageStat{}
	workers := map[string]*WorkerStat{}
	for _, sp := range export.Spans {
		switch {
		case sp.Name == "job" && sp.Service == export.Service:
			if d := sp.Duration().Seconds(); d > s.WallSeconds {
				s.WallSeconds = d
			}
		case sp.Attrs["kind"] == "stage" && sp.Service == export.Service:
			st := stages[sp.Name]
			if st == nil {
				st = &StageStat{Name: sp.Name}
				stages[sp.Name] = st
			}
			st.Seconds += sp.Duration().Seconds()
			st.Count++
		case sp.Name == "exec" && sp.Worker != "":
			w := workers[sp.Worker]
			if w == nil {
				w = &WorkerStat{Worker: sp.Worker, SlowestUnit: -1}
				workers[sp.Worker] = w
			}
			unit, _ := strconv.Atoi(sp.Attrs["unit"])
			d := sp.Duration().Seconds()
			if sp.Attrs["status"] == "ok" {
				w.Units++
				w.ExecSeconds += d
				if sp.Attrs["stolen"] == "true" {
					w.Steals++
				}
				if d > w.SlowestSeconds {
					w.SlowestSeconds, w.SlowestUnit = d, unit
				}
				if d > s.SlowestSec {
					s.SlowestSec, s.SlowestUnit, s.SlowestOn = d, unit, sp.Worker
				}
			} else {
				w.Retries++
			}
		}
	}
	for _, st := range stages {
		s.Stages = append(s.Stages, *st)
	}
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Seconds > s.Stages[j].Seconds })
	for _, w := range workers {
		s.Workers = append(s.Workers, *w)
		s.TotalUnits += w.Units
		s.TotalSteals += w.Steals
		s.TotalRetry += w.Retries
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// Table renders the summary as the aligned text table report -trace
// prints.
func (s TraceSummary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace %s (job %s)\n", s.TraceID, s.JobID)
	fmt.Fprintf(&b, "wall clock: %.3fs\n", s.WallSeconds)
	if len(s.Stages) > 0 {
		b.WriteString("\nPer-stage:\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  stage\tseconds\tshare")
		for _, st := range s.Stages {
			share := 0.0
			if s.WallSeconds > 0 {
				share = 100 * st.Seconds / s.WallSeconds
			}
			fmt.Fprintf(tw, "  %s\t%.3f\t%.1f%%\n", st.Name, st.Seconds, share)
		}
		tw.Flush()
	}
	if len(s.Workers) > 0 {
		b.WriteString("\nPer-worker:\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  worker\tunits\tsteals\tretries\texec s\tslowest unit")
		for _, w := range s.Workers {
			slow := "-"
			if w.SlowestUnit >= 0 {
				slow = fmt.Sprintf("unit %d (%.3fs)", w.SlowestUnit, w.SlowestSeconds)
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%.3f\t%s\n",
				w.Worker, w.Units, w.Steals, w.Retries, w.ExecSeconds, slow)
		}
		tw.Flush()
		if s.SlowestUnit >= 0 {
			fmt.Fprintf(&b, "\ncritical path: unit %d on %s (%.3fs) · %d units, %d steals, %d retried attempts\n",
				s.SlowestUnit, s.SlowestOn, s.SlowestSec, s.TotalUnits, s.TotalSteals, s.TotalRetry)
		}
	}
	return b.String()
}
