package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for _, bad := range []string{"", "verbose", "trace"} {
		if _, err := ParseLevel(bad); err == nil {
			t.Errorf("ParseLevel(%q) accepted", bad)
		}
	}
	if lvl, err := ParseLevel(" WARN "); err != nil || lvl.String() != "WARN" {
		t.Errorf("ParseLevel(WARN) = %v, %v", lvl, err)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var b strings.Builder
	logger, err := NewLogger(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "job", "abc")
	var line map[string]any
	if err := json.Unmarshal([]byte(b.String()), &line); err != nil {
		t.Fatalf("json format produced non-JSON line %q: %v", b.String(), err)
	}
	if line["msg"] != "hello" || line["job"] != "abc" {
		t.Errorf("json line = %v", line)
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Errorf("unknown format accepted")
	}
	logger, err = NewLogger(&b, "error", "text")
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	logger.Info("suppressed")
	if b.Len() != 0 {
		t.Errorf("level filter failed: %q", b.String())
	}
}

func TestNormalizePath(t *testing.T) {
	id := strings.Repeat("ab", 16)
	cases := []struct{ in, route, job string }{
		{"/v1/jobs", "/v1/jobs", ""},
		{"/v1/jobs/" + id, "/v1/jobs/{id}", id},
		{"/v1/jobs/" + id + "/result", "/v1/jobs/{id}/result", id},
		{"/v1/jobs/" + id + "/events", "/v1/jobs/{id}/events", id},
		{"/healthz", "/healthz", ""},
		{"/metrics", "/metrics", ""},
		{"/v1/cache/stats", "/v1/cache/stats", ""},
		{"/v1/workers", "/v1/workers", ""},
		{"/", "/", ""},                         // root is unknown…
		{"/admin/../etc/passwd", "other", ""},  // …and scans collapse
		{"/v1/jobs/not-a-job-id", "other", ""}, // bad IDs don't mint series
	}
	for _, c := range cases {
		route, job := NormalizePath(c.in)
		wantRoute := c.route
		if c.in == "/" {
			wantRoute = "other"
		}
		if route != wantRoute || job != c.job {
			t.Errorf("NormalizePath(%q) = (%q, %q), want (%q, %q)", c.in, route, job, wantRoute, c.job)
		}
	}
	if IsJobID(strings.Repeat("AB", 16)) {
		t.Errorf("uppercase hex accepted as job ID")
	}
	if !IsJobID(strings.Repeat("0f", 16)) {
		t.Errorf("valid job ID rejected")
	}
}

// TestLogRequests exercises the middleware end to end: metrics series
// with normalized routes, job-ID tagging on the log line, and DEBUG
// demotion of probe endpoints.
func TestLogRequests(t *testing.T) {
	var logBuf strings.Builder
	logger, err := NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	})
	srv := httptest.NewServer(LogRequests(inner, logger, reg))
	defer srv.Close()

	id := strings.Repeat("1a", 16)
	for _, p := range []string{"/healthz", "/v1/jobs/" + id, "/totally/unknown"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if got := reg.CounterVec("bd_http_requests_total", "", "method", "path", "code").
		With("GET", "/v1/jobs/{id}", "404").Value(); got != 1 {
		t.Errorf("job-route counter = %d, want 1", got)
	}
	if got := reg.CounterVec("bd_http_requests_total", "", "method", "path", "code").
		With("GET", "other", "200").Value(); got != 1 {
		t.Errorf("other-route counter = %d, want 1", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"job":"`+id+`"`) {
		t.Errorf("log lines missing job ID:\n%s", logs)
	}
	// /healthz logs at DEBUG; the INFO logger must not emit it.
	if strings.Contains(logs, "/healthz") {
		t.Errorf("healthz logged at INFO:\n%s", logs)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `bd_http_request_duration_seconds_count{method="GET",path="/healthz"} 1`) {
		t.Errorf("duration histogram missing:\n%s", b.String())
	}
}
