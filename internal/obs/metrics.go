// Package obs is the shared, dependency-free observability layer of
// both daemons: a metrics registry (atomic counters, gauges and
// fixed-bucket histograms) that renders the Prometheus text exposition
// format, structured slog logging setup, an HTTP middleware tying
// request logs and metrics together, and a periodic stats ticker.
//
// The registry deliberately implements only what the daemons need — no
// summaries, no exemplars, no push — so it stays a few hundred lines
// with zero third-party imports. Metric families are created once and
// cheap to update from hot paths: counters and gauges are single
// atomics, histogram observation is one atomic add per bucket plus a
// CAS for the sum.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable, but counters obtained through a Registry are what /metrics
// renders.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets (upper
// bounds in increasing order; an implicit +Inf bucket catches the rest).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bound, non-cumulative; render accumulates
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets spans request-scale latencies: 5ms–10s.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// WideBuckets spans job/stage-scale latencies: 10ms–10min.
var WideBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// series is one (label values → value) instance within a family.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is one named metric: a type, a label schema and its series.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values with a byte that cannot appear in them
// unescaped-ambiguously; 0x00 is fine for an internal map key.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		s.c = &Counter{}
	case "gauge":
		s.g = &Gauge{}
	case "histogram":
		s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds))}
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and renders them as Prometheus text
// exposition. All methods are safe for concurrent use. Registering the
// same name twice returns the existing family when the type and label
// schema match, and panics otherwise — a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "counter", nil, nil).get(nil).c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Repeated calls with equal values return the same counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "gauge", nil, nil).get(nil).g
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// GaugeFunc registers a gauge whose value is computed by fn at render
// time — the natural fit for instantaneous states the owner already
// tracks (queue depth, live-job counts, fleet size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.family(name, help, "gauge", nil, nil).get(nil)
	s.fn = fn
}

// GaugeFuncVec is a labeled family of render-time-computed gauges.
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec registers (or finds) a labeled gauge-func family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{r.family(name, help, "gauge", labels, nil)}
}

// Register binds fn to the series at the given label values.
func (v *GaugeFuncVec) Register(fn func() float64, values ...string) {
	v.f.get(values).fn = fn
}

// Histogram registers (or finds) an unlabeled histogram over the given
// bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.family(name, help, "histogram", nil, bounds).get(nil).h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.family(name, help, "histogram", labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// RegisterProcessMetrics adds the process-level gauges both daemons
// expose: goroutine count and uptime.
func RegisterProcessMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("bd_process_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("bd_go_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4). Families are sorted by name and series by label
// values, so the output is deterministic for golden tests.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.h != nil:
				writeHistogram(&b, f, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.values), formatFloat(s.fn()))
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, s.values), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.values), formatFloat(s.g.Value()))
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, an
// explicit +Inf bucket, then sum and count.
func writeHistogram(b *strings.Builder, f *family, s *series) {
	cum := uint64(0)
	for i, bound := range s.h.bounds {
		cum += s.h.counts[i].Load()
		le := formatFloat(bound)
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(append(f.labels, "le"), append(s.values, le)), cum)
	}
	total := s.h.Count()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(append(f.labels, "le"), append(s.values, "+Inf")), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values), formatFloat(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.values), total)
}

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format the registry renders. Declared once here and set
// only by Handler, so every daemon's /metrics advertises the identical
// header.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the rendered registry — the body of GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		r.WriteText(w)
	})
}

func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		ok := b == '_' || b == ':' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') ||
			(i > 0 && b >= '0' && b <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
