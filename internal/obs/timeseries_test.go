package obs

import (
	"sync"
	"testing"
	"time"
)

func tsDefs() []SeriesDef {
	return []SeriesDef{
		{Name: "depth", Kind: KindLevel, Family: "t_depth"},
		{Name: "rate", Kind: KindRate, Family: "t_done_total"},
		{Name: "hit_ratio", Kind: KindRatio, Family: "t_hits_total", DenFamily: "t_req_total"},
		{Name: "p95", Kind: KindQuantile, Family: "t_lat_seconds", Q: 0.95},
	}
}

func TestSamplerKinds(t *testing.T) {
	reg := NewRegistry()
	depth := reg.Gauge("t_depth", "h")
	done := reg.Counter("t_done_total", "h")
	hits := reg.Counter("t_hits_total", "h")
	req := reg.Counter("t_req_total", "h")
	lat := reg.Histogram("t_lat_seconds", "h", []float64{1, 2, 4})

	s := NewSampler(reg, time.Second, 10*time.Second, tsDefs())
	now := time.Unix(1000, 0)

	depth.Set(3)
	s.SampleNow(now) // first tick: rate and ratio unprimed -> 0

	done.Add(10)
	hits.Add(8)
	req.Add(10)
	for i := 0; i < 20; i++ {
		lat.Observe(1.5)
	}
	now = now.Add(2 * time.Second)
	s.SampleNow(now)

	// Idle tick: ratio must carry, rate must drop to 0.
	now = now.Add(time.Second)
	s.SampleNow(now)

	w := s.Window()
	if w.Capacity != 10 {
		t.Fatalf("capacity = %d, want 10", w.Capacity)
	}
	get := func(name string) SeriesWindow {
		sw := w.Find(name)
		if sw == nil {
			t.Fatalf("series %q missing", name)
		}
		return *sw
	}
	d := get("depth")
	if len(d.Points) != 3 || d.Last() != 3 {
		t.Fatalf("depth = %v", d.Points)
	}
	r := get("rate")
	if r.Points[0] != 0 || r.Points[1] != 5 || r.Points[2] != 0 {
		t.Fatalf("rate = %v, want [0 5 0]", r.Points)
	}
	h := get("hit_ratio")
	if h.Points[0] != 0 || h.Points[1] != 0.8 || h.Points[2] != 0.8 {
		t.Fatalf("hit_ratio = %v, want [0 0.8 0.8]", h.Points)
	}
	p := get("p95")
	if p.Points[0] != 0 || p.Points[2] < 1 || p.Points[2] > 2 {
		t.Fatalf("p95 = %v, want [0 .. (1,2]]", p.Points)
	}
	if w.Find("absent") != nil {
		t.Fatal("Find(absent) should be nil")
	}
}

// The ring must stay at fixed capacity no matter how many samples land:
// the acceptance criterion for "bounded, no growth over a long run".
func TestSamplerRingBounded(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_done_total", "h")
	reg.Gauge("t_depth", "h")
	reg.Counter("t_hits_total", "h")
	reg.Counter("t_req_total", "h")
	reg.Histogram("t_lat_seconds", "h", []float64{1})

	s := NewSampler(reg, time.Second, 5*time.Second, tsDefs())
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		c.Inc()
		now = now.Add(time.Second)
		s.SampleNow(now)
	}
	w := s.Window()
	for _, sw := range w.Series {
		if len(sw.Points) != 5 {
			t.Fatalf("series %q holds %d points, want 5", sw.Name, len(sw.Points))
		}
	}
	// Internal rings never grew past construction capacity.
	s.mu.Lock()
	for _, rg := range s.rings {
		if len(rg.points) != 5 || cap(rg.points) != 5 {
			t.Fatalf("ring %q len/cap = %d/%d", rg.def.Name, len(rg.points), cap(rg.points))
		}
	}
	s.mu.Unlock()
	// Rate settled at 1/s once primed.
	r := w.Find("rate")
	if r.Last() != 1 {
		t.Fatalf("steady rate = %v, want 1", r.Last())
	}
}

func TestSamplerCounterResetYieldsZeroRate(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("t_depth", "h")
	reg.Counter("t_hits_total", "h")
	reg.Counter("t_req_total", "h")
	reg.Histogram("t_lat_seconds", "h", []float64{1})
	c := reg.Counter("t_done_total", "h")
	s := NewSampler(reg, time.Second, 4*time.Second, tsDefs())
	now := time.Unix(0, 0)
	c.Add(100)
	s.SampleNow(now)
	// Simulate a reset by sampling against a fresh registry value that is
	// lower than the last raw reading: swap in a new sampler read path is
	// not possible, so drive the same effect through the ratio branch
	// guard — a raw < lastRaw must clamp the rate to 0. The counter can't
	// go down, so rebuild sampler state directly.
	s.mu.Lock()
	for _, rg := range s.rings {
		if rg.def.Kind == KindRate {
			rg.lastRaw = 1e9 // as if the process restarted mid-window
		}
	}
	s.mu.Unlock()
	s.SampleNow(now.Add(time.Second))
	w := s.Window()
	r := w.Find("rate")
	if r.Last() != 0 {
		t.Fatalf("rate after reset = %v, want 0", r.Last())
	}
}

// Window() while Start()'s goroutine samples — the -race half of the
// acceptance criterion.
func TestSamplerConcurrentWindow(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_done_total", "h")
	g := reg.Gauge("t_depth", "h")
	reg.Counter("t_hits_total", "h")
	reg.Counter("t_req_total", "h")
	reg.Histogram("t_lat_seconds", "h", []float64{1})

	s := NewSampler(reg, time.Millisecond, 50*time.Millisecond, tsDefs())
	stop := s.Start()
	defer stop()
	if again := s.Start(); again == nil {
		t.Fatal("second Start returned nil stop")
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.Set(float64(j))
				w := s.Window()
				for _, sw := range w.Series {
					if len(sw.Points) > w.Capacity {
						t.Errorf("series %q exceeded capacity: %d > %d", sw.Name, len(sw.Points), w.Capacity)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	stop()
	stop() // idempotent
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(NewRegistry(), 0, 0, []SeriesDef{{Name: "x", Kind: KindLevel, Family: "f"}})
	if s.Interval() != 5*time.Second {
		t.Fatalf("default interval = %v", s.Interval())
	}
	if got := len(s.rings[0].points); got != 120 {
		t.Fatalf("default capacity = %d, want 120", got)
	}
	// Tiny window still yields a usable ring.
	s2 := NewSampler(NewRegistry(), time.Minute, time.Second, []SeriesDef{{Name: "x", Kind: KindLevel, Family: "f"}})
	if got := len(s2.rings[0].points); got != 2 {
		t.Fatalf("min capacity = %d, want 2", got)
	}
}
