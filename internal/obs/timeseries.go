// Time-series sampler: the in-daemon trailing window behind /v1/status.
// A Sampler snapshots selected registry families on a fixed tick into
// per-series ring buffers of fixed capacity — counters become rates,
// gauges levels, counter pairs ratios and histograms estimated
// quantiles — so every daemon carries its own recent history (default
// ten minutes) with zero external storage and strictly bounded memory:
// all rings are allocated once, at construction.
package obs

import (
	"math"
	"sync"
	"time"
)

// SampleKind says how a SeriesDef turns registry reads into points.
type SampleKind string

const (
	// KindLevel records the family's current value as-is (gauges).
	KindLevel SampleKind = "level"
	// KindRate records the per-second increase of a counter family since
	// the previous tick (0 on the first tick and on counter resets).
	KindRate SampleKind = "rate"
	// KindRatio records delta(numerator)/delta(denominator) between
	// ticks — e.g. cache hits over hits+misses. Ticks with no denominator
	// movement repeat the previous ratio, so idle periods draw flat.
	KindRatio SampleKind = "ratio"
	// KindQuantile records an estimated quantile of a histogram family
	// (aggregated across its series); 0 while the histogram is empty.
	KindQuantile SampleKind = "quantile"
)

// SeriesDef selects one registry family (or pair) to sample.
type SeriesDef struct {
	// Name is the exported series name in the window (e.g. "queue_depth").
	Name string
	// Kind selects the sampling transform.
	Kind SampleKind
	// Family is the registry family to read. Labels, when non-nil,
	// selects one series by exact label values; nil sums the family.
	Family string
	Labels []string
	// DenFamily/DenLabels are the denominator for KindRatio. The
	// numerator (Family) must be a subset of it per tick for the ratio to
	// stay in [0,1], but nothing enforces that.
	DenFamily string
	DenLabels []string
	// Q is the quantile for KindQuantile (e.g. 0.95).
	Q float64
}

// ring is one bounded series: a fixed circular buffer of points.
type ring struct {
	def    SeriesDef
	points []float64 // capacity fixed at construction
	head   int       // next write slot
	n      int       // valid points, <= len(points)

	primed    bool    // a previous raw sample exists (rate/ratio)
	lastRaw   float64 // previous cumulative numerator
	lastDen   float64 // previous cumulative denominator
	lastRatio float64 // carried ratio for idle ticks
}

func (rg *ring) push(v float64) {
	rg.points[rg.head] = v
	rg.head = (rg.head + 1) % len(rg.points)
	if rg.n < len(rg.points) {
		rg.n++
	}
}

// ordered copies the ring oldest-first.
func (rg *ring) ordered() []float64 {
	out := make([]float64, rg.n)
	start := rg.head - rg.n
	if start < 0 {
		start += len(rg.points)
	}
	for i := 0; i < rg.n; i++ {
		out[i] = rg.points[(start+i)%len(rg.points)]
	}
	return out
}

// Sampler drives the rings: SampleNow reads every def from the registry
// and appends one point per series. Start runs that on a fixed tick.
// All methods are safe for concurrent use.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu     sync.Mutex
	rings  []*ring
	last   time.Time // time of the most recent sample
	ticks  uint64
	stopMu sync.Mutex
	stopCh chan struct{}
}

// NewSampler builds a sampler over reg: one ring of capacity
// window/interval (minimum 2) per def. interval <= 0 defaults to 5s,
// window <= 0 to 10 minutes.
func NewSampler(reg *Registry, interval, window time.Duration, defs []SeriesDef) *Sampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if window <= 0 {
		window = 10 * time.Minute
	}
	capacity := int(window / interval)
	if capacity < 2 {
		capacity = 2
	}
	s := &Sampler{reg: reg, interval: interval}
	for _, d := range defs {
		s.rings = append(s.rings, &ring{def: d, points: make([]float64, capacity)})
	}
	return s
}

// Interval returns the sampling tick.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the sampling goroutine and returns an idempotent stop
// function. Starting an already started sampler returns a no-op stop.
func (s *Sampler) Start() (stop func()) {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	if s.stopCh != nil {
		return func() {}
	}
	done := make(chan struct{})
	s.stopCh = done
	go func() {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				s.SampleNow(now)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// SampleNow takes one sample of every series at the given time (exported
// for tests and deterministic snapshots; Start calls it on the tick).
func (s *Sampler) SampleNow(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := s.interval.Seconds()
	if !s.last.IsZero() {
		if dt := now.Sub(s.last).Seconds(); dt > 0 {
			elapsed = dt
		}
	}
	for _, rg := range s.rings {
		rg.push(s.sampleLocked(rg, elapsed))
	}
	s.last = now
	s.ticks++
}

func (s *Sampler) sampleLocked(rg *ring, elapsed float64) float64 {
	switch rg.def.Kind {
	case KindLevel:
		v, _ := s.read(rg.def.Family, rg.def.Labels)
		return sanitize(v)
	case KindRate:
		raw, _ := s.read(rg.def.Family, rg.def.Labels)
		rate := 0.0
		if rg.primed && raw >= rg.lastRaw && elapsed > 0 {
			rate = (raw - rg.lastRaw) / elapsed
		}
		rg.lastRaw, rg.primed = raw, true
		return sanitize(rate)
	case KindRatio:
		num, _ := s.read(rg.def.Family, rg.def.Labels)
		den, _ := s.read(rg.def.DenFamily, rg.def.DenLabels)
		ratio := rg.lastRatio
		if rg.primed && den > rg.lastDen && num >= rg.lastRaw {
			ratio = (num - rg.lastRaw) / (den - rg.lastDen)
		}
		rg.lastRaw, rg.lastDen, rg.primed = num, den, true
		rg.lastRatio = sanitize(ratio)
		return rg.lastRatio
	case KindQuantile:
		h, ok := s.reg.ReadHistogram(rg.def.Family)
		if !ok || h.Count == 0 {
			return 0
		}
		return sanitize(h.Quantile(rg.def.Q))
	}
	return 0
}

func (s *Sampler) read(family string, labels []string) (float64, bool) {
	if labels != nil {
		return s.reg.ReadScalarSeries(family, labels)
	}
	return s.reg.ReadScalar(family)
}

// sanitize keeps NaN/Inf out of the rings: the window marshals to JSON,
// which has no encoding for either.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// SeriesWindow is one exported series: points oldest-first, at most the
// ring capacity of them.
type SeriesWindow struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Points []float64 `json:"points"`
}

// Last returns the newest point (0 when empty).
func (w SeriesWindow) Last() float64 {
	if len(w.Points) == 0 {
		return 0
	}
	return w.Points[len(w.Points)-1]
}

// Window is the sampler's exported trailing window, embedded in
// /v1/status responses.
type Window struct {
	IntervalSeconds float64        `json:"interval_seconds"`
	Capacity        int            `json:"capacity"`
	End             time.Time      `json:"end,omitempty"` // time of the newest sample
	Series          []SeriesWindow `json:"series"`
}

// Find returns the named series, or nil.
func (w *Window) Find(name string) *SeriesWindow {
	if w == nil {
		return nil
	}
	for i := range w.Series {
		if w.Series[i].Name == name {
			return &w.Series[i]
		}
	}
	return nil
}

// Window snapshots the trailing window: a deep copy, safe to marshal
// while sampling continues.
func (s *Sampler) Window() Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := Window{IntervalSeconds: s.interval.Seconds(), End: s.last}
	for _, rg := range s.rings {
		w.Capacity = len(rg.points)
		w.Series = append(w.Series, SeriesWindow{
			Name:   rg.def.Name,
			Kind:   string(rg.def.Kind),
			Points: rg.ordered(),
		})
	}
	return w
}
