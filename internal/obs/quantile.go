package obs

import (
	"math"
	"sort"
)

// HistogramSnapshot is a point-in-time aggregate of one or more
// histograms sharing a bucket layout: the raw material for estimated
// quantiles on /v1/status, /v1/workers and the stats ticker. Counts are
// per-bound and non-cumulative, mirroring Histogram's internal storage;
// Inf holds the observations above the last finite bound.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Inf    uint64
	Count  uint64
	Sum    float64
}

// Snapshot captures the histogram's current buckets. The snapshot is not
// atomic with respect to concurrent Observe calls — individual loads are —
// which is fine for estimation: a quantile over a window that is off by a
// few in-flight observations is still a quantile.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	var below uint64
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		below += s.Counts[i]
	}
	if s.Count > below {
		s.Inf = s.Count - below
	}
	return s
}

// Merge adds o into s (for aggregating a labeled family into one
// estimate). Bucket layouts must match; an empty s adopts o's layout.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if s.Bounds == nil {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Inf, s.Count, s.Sum = o.Inf, o.Count, o.Sum
		return
	}
	if len(s.Counts) != len(o.Counts) {
		return // incompatible layouts: keep what we have
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Inf += o.Inf
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the fixed
// buckets, Prometheus histogram_quantile style: find the bucket the rank
// lands in and interpolate linearly inside it. Observations in the +Inf
// bucket clamp to the last finite bound (the estimate cannot exceed what
// the buckets resolve). An empty histogram returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			return lower + (upper-lower)*(rank-cum)/float64(c)
		}
		cum = next
	}
	// Rank fell in the implicit +Inf bucket.
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantiles estimates several quantiles in one pass-per-quantile — the
// p50/p95/p99 triple every status surface renders.
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}

// ReadScalar reads the current value of a counter or gauge family: the
// sum across all its series (gauge-funcs are invoked). ok is false for
// unknown names and histogram families. This is the sampler's read path,
// so it takes the same locks as WriteText and never allocates per series.
func (r *Registry) ReadScalar(name string) (float64, bool) {
	return r.readScalar(name, nil)
}

// ReadScalarSeries reads one series of a labeled counter or gauge family
// by exact label values.
func (r *Registry) ReadScalarSeries(name string, labelValues []string) (float64, bool) {
	return r.readScalar(name, labelValues)
}

func (r *Registry) readScalar(name string, labelValues []string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.typ == "histogram" {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if labelValues != nil {
		s, ok := f.series[seriesKey(labelValues)]
		if !ok {
			return 0, false
		}
		return scalarValue(s), true
	}
	var sum float64
	for _, s := range f.series {
		sum += scalarValue(s)
	}
	return sum, true
}

func scalarValue(s *series) float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return s.g.Value()
	}
	return 0
}

// ReadHistogram aggregates a histogram family — every series merged —
// into one snapshot. ok is false for unknown or non-histogram names.
func (r *Registry) ReadHistogram(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.typ != "histogram" {
		return HistogramSnapshot{}, false
	}
	var agg HistogramSnapshot
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.series {
		agg.Merge(s.h.Snapshot())
	}
	if agg.Bounds == nil {
		agg.Bounds = f.bounds
	}
	return agg, true
}

// Each visits every series of the family in deterministic (sorted label
// value) order with its current count — how status surfaces turn a
// labeled counter family into a table without re-parsing /metrics text.
func (v *CounterVec) Each(fn func(labelValues []string, value uint64)) {
	for _, s := range v.f.sortedSeries() {
		fn(s.values, s.c.Value())
	}
}

// Each visits every series of the family in deterministic order with a
// point-in-time snapshot.
func (v *HistogramVec) Each(fn func(labelValues []string, snap HistogramSnapshot)) {
	for _, s := range v.f.sortedSeries() {
		fn(s.values, s.h.Snapshot())
	}
}

// sortedSeries returns the family's series sorted by label values — a
// copy, so callers iterate without holding the family lock.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.Unlock()
	return out
}
