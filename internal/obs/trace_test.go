package obs

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	jobID := strings.Repeat("ab", 16) // 32 hex chars: job-ID shape
	v := FormatTraceParent(TraceID(jobID), "aabbccdd-17")
	traceID, spanID, ok := ParseTraceParent(v)
	if !ok || traceID != jobID || spanID != "aabbccdd-17" {
		t.Fatalf("round trip failed: %q → (%q, %q, %v)", v, traceID, spanID, ok)
	}
}

func TestTraceParentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"no-separator",
		"shortid;span",                          // trace ID not job-ID shaped
		strings.Repeat("ab", 16) + ";",          // empty span ID
		strings.Repeat("ab", 16) + ";has space", // bad span charset
		strings.Repeat("ab", 16) + ";" + strings.Repeat("x", 65), // too long
		strings.Repeat("AB", 16) + ";span",                       // uppercase trace ID
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want rejected", s)
		}
	}
}

func TestNilRecorderSafety(t *testing.T) {
	var r *FlightRecorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Record("j", Span{})
	r.Replay("j", []Span{{}})
	r.Remove("j")
	if _, ok := r.Export("j"); ok {
		t.Error("nil recorder exported a trace")
	}
	h := r.StartSpan("j", "t", "", "job")
	if h != nil {
		t.Fatal("nil recorder returned a non-nil handle")
	}
	h.SetAttr("k", "v")
	h.Annotate("e", nil)
	h.End()
	h.EndErr(nil)
	if h.ID() != "" {
		t.Error("nil handle has an ID")
	}
	var tc *TraceContext
	tc.Instant("x", nil)
	tc.RecordInterval("", "x", time.Now(), time.Now(), nil)
	tc.Import(nil, "", "", nil)
	if s := tc.StartSpan("x"); s != nil {
		t.Error("nil trace context returned a non-nil handle")
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	r := NewFlightRecorder("test", 4, 3)
	for i := 0; i < 10; i++ {
		r.Record("job", Span{TraceID: "tr", Name: "s" + strconv.Itoa(i)})
	}
	export, ok := r.Export("job")
	if !ok {
		t.Fatal("no export")
	}
	if len(export.Spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(export.Spans))
	}
	if export.DroppedSpans != 7 {
		t.Errorf("dropped %d, want 7", export.DroppedSpans)
	}
	// The ring keeps the tail of history.
	for i, want := range []string{"s7", "s8", "s9"} {
		if export.Spans[i].Name != want {
			t.Errorf("span %d is %q, want %q", i, export.Spans[i].Name, want)
		}
	}
}

func TestFlightRecorderLRUTraceEviction(t *testing.T) {
	r := NewFlightRecorder("test", 2, 8)
	r.Record("a", Span{TraceID: "ta"})
	r.Record("b", Span{TraceID: "tb"})
	// Touch a so b is the LRU trace when c arrives.
	r.Export("a")
	r.Record("c", Span{TraceID: "tc"})
	if _, ok := r.Export("b"); ok {
		t.Error("LRU trace b survived eviction")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := r.Export(id); !ok {
			t.Errorf("trace %s was evicted, want kept", id)
		}
	}
}

func TestSpanHandleLifecycle(t *testing.T) {
	r := NewFlightRecorder("test", 1, 16)
	sunk := 0
	r.Sink = func(jobID string, sp Span) { sunk++ }
	h := r.StartSpan("job", "tr", "root", "unit")
	h.SetAttr("unit", "3")
	h.Annotate("note", map[string]string{"k": "v"})
	h.End()
	h.End() // idempotent
	export, _ := r.Export("job")
	if len(export.Spans) != 1 || sunk != 1 {
		t.Fatalf("recorded %d spans, sank %d, want 1 and 1", len(export.Spans), sunk)
	}
	sp := export.Spans[0]
	if sp.Name != "unit" || sp.Parent != "root" || sp.TraceID != "tr" || sp.Service != "test" {
		t.Errorf("span fields wrong: %+v", sp)
	}
	if sp.Attrs["status"] != "ok" || sp.Attrs["unit"] != "3" {
		t.Errorf("span attrs wrong: %v", sp.Attrs)
	}
	if len(sp.Events) != 1 || sp.Events[0].Name != "note" {
		t.Errorf("span events wrong: %v", sp.Events)
	}
	if sp.End.Before(sp.Start) {
		t.Error("span ends before it starts")
	}

	he := r.StartSpan("job", "tr", "root", "failing")
	he.EndErr(context.DeadlineExceeded)
	export, _ = r.Export("job")
	sp = export.Spans[1]
	if sp.Attrs["status"] != "error" || sp.Attrs["error"] == "" {
		t.Errorf("error span attrs wrong: %v", sp.Attrs)
	}
}

func TestReplayDoesNotSink(t *testing.T) {
	r := NewFlightRecorder("test", 1, 16)
	sunk := 0
	r.Sink = func(string, Span) { sunk++ }
	r.Replay("job", []Span{{TraceID: "tr", Name: "a"}, {TraceID: "tr", Name: "b"}})
	if sunk != 0 {
		t.Errorf("replay sank %d spans, want 0", sunk)
	}
	export, _ := r.Export("job")
	if len(export.Spans) != 2 {
		t.Errorf("replayed %d spans, want 2", len(export.Spans))
	}
}

func TestImportFiltersAndReparents(t *testing.T) {
	r := NewFlightRecorder("coord", 4, 32)
	tc := &TraceContext{Rec: r, JobID: "job", TraceID: "mytrace", Root: "rootspan"}
	worker := []Span{
		{TraceID: "mytrace", ID: "w1", Parent: "upstream", Name: "job", Service: "bdservd"},
		{TraceID: "mytrace", ID: "w2", Parent: "w1", Name: "characterize", Service: "bdservd"},
		{TraceID: "foreign", ID: "w3", Parent: "", Name: "job", Service: "bdservd"},
	}
	tc.Import(worker, "execspan", "http://w:1", map[string]string{"unit": "2"})
	export, _ := r.Export("job")
	if len(export.Spans) != 2 {
		t.Fatalf("imported %d spans, want 2 (foreign trace filtered)", len(export.Spans))
	}
	byID := map[string]Span{}
	for _, sp := range export.Spans {
		byID[sp.ID] = sp
	}
	if byID["w1"].Parent != "execspan" {
		t.Errorf("imported root parent %q, want re-parented to execspan", byID["w1"].Parent)
	}
	if byID["w2"].Parent != "w1" {
		t.Errorf("imported child parent %q, want preserved w1", byID["w2"].Parent)
	}
	for id, sp := range byID {
		if sp.Worker != "http://w:1" || sp.Attrs["unit"] != "2" {
			t.Errorf("span %s missing worker/unit stamps: worker=%q attrs=%v", id, sp.Worker, sp.Attrs)
		}
	}
}

func TestTraceContextFromContext(t *testing.T) {
	if tc := TraceFromContext(context.Background()); tc != nil {
		t.Fatal("empty context yielded a trace context")
	}
	want := &TraceContext{JobID: "j"}
	ctx := ContextWithTrace(context.Background(), want)
	if got := TraceFromContext(ctx); got != want {
		t.Fatal("trace context did not round-trip through context")
	}
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFromContext(ctx2) != nil {
		t.Fatal("nil trace context was attached")
	}
}

func TestChromeTraceShape(t *testing.T) {
	now := time.Unix(1700000000, 0)
	export := TraceExport{
		JobID: "job", TraceID: "tr", Service: "bdcoord",
		Spans: []Span{
			{TraceID: "tr", ID: "a", Name: "job", Service: "bdcoord", Start: now, End: now.Add(time.Second)},
			{TraceID: "tr", ID: "b", Parent: "a", Name: "exec", Service: "bdcoord",
				Start: now, End: now.Add(500 * time.Millisecond), Attrs: map[string]string{"unit": "2"}},
			{TraceID: "tr", ID: "c", Parent: "a", Name: "worker-join", Service: "bdcoord", Start: now, End: now},
			{TraceID: "tr", ID: "d", Parent: "b", Name: "characterize", Service: "bdservd",
				Worker: "http://w:1", Start: now, End: now.Add(400 * time.Millisecond)},
		},
	}
	data, err := ChromeTrace(export)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	var complete, instant, meta int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 1 {
				t.Errorf("complete event %s has dur %d, want ≥1", ev.Name, ev.Dur)
			}
		case "i":
			instant++
		case "M":
			meta++
			continue
		}
		pids[ev.PID] = true
	}
	if complete != 3 || instant != 1 {
		t.Errorf("got %d complete + %d instant events, want 3 + 1", complete, instant)
	}
	// Two processes: the coordinator and the worker, each with a name.
	if len(pids) != 2 || meta != 2 {
		t.Errorf("got %d pids and %d process_name records, want 2 and 2", len(pids), meta)
	}
	// The exec span's unit lane: tid = unit+1.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "exec" && ev.TID != 3 {
			t.Errorf("exec span tid %d, want 3 (unit 2 + 1)", ev.TID)
		}
	}
}

func TestSummarize(t *testing.T) {
	now := time.Unix(1700000000, 0)
	export := TraceExport{
		JobID: "job", TraceID: "tr", Service: "bdcoord",
		Spans: []Span{
			{Name: "job", Service: "bdcoord", Start: now, End: now.Add(10 * time.Second)},
			{Name: "characterize", Service: "bdcoord", Start: now, End: now.Add(8 * time.Second),
				Attrs: map[string]string{"kind": "stage"}},
			{Name: "exec", Worker: "http://a:1", Start: now, End: now.Add(4 * time.Second),
				Attrs: map[string]string{"unit": "0", "status": "ok"}},
			{Name: "exec", Worker: "http://a:1", Start: now, End: now.Add(time.Second),
				Attrs: map[string]string{"unit": "1", "status": "error"}},
			{Name: "exec", Worker: "http://b:1", Start: now, End: now.Add(2 * time.Second),
				Attrs: map[string]string{"unit": "1", "status": "ok", "stolen": "true"}},
		},
	}
	s := Summarize(export)
	if s.WallSeconds != 10 {
		t.Errorf("wall %v, want 10", s.WallSeconds)
	}
	if len(s.Stages) != 1 || s.Stages[0].Name != "characterize" || s.Stages[0].Seconds != 8 {
		t.Errorf("stages wrong: %+v", s.Stages)
	}
	if s.TotalUnits != 2 || s.TotalSteals != 1 || s.TotalRetry != 1 {
		t.Errorf("totals units=%d steals=%d retries=%d, want 2/1/1", s.TotalUnits, s.TotalSteals, s.TotalRetry)
	}
	if s.SlowestUnit != 0 || s.SlowestOn != "http://a:1" {
		t.Errorf("critical path unit %d on %s, want unit 0 on http://a:1", s.SlowestUnit, s.SlowestOn)
	}
	table := s.Table()
	for _, want := range []string{"Per-stage", "Per-worker", "characterize", "http://a:1", "critical path"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary table missing %q:\n%s", want, table)
		}
	}
}

func TestNormalizePathKnowsTraceRoute(t *testing.T) {
	route, jobID := NormalizePath("/v1/jobs/0123456789abcdef0123456789abcdef/trace")
	if route != "/v1/jobs/{id}/trace" {
		t.Errorf("NormalizePath trace route → %q, want /v1/jobs/{id}/trace", route)
	}
	if jobID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("NormalizePath trace route job ID → %q", jobID)
	}
}
