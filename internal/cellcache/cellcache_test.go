package cellcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestRoundTrip(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	s, err := Open(t.TempDir(), 0, 0, mx)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2, 3}, {4, 5, 6}}
	s.PutCell("w", key(1), want)
	got, ok := s.GetCell("w", key(1), 2, 3)
	if !ok {
		t.Fatal("stored column missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, ok := s.GetCell("w", key(2), 2, 3); ok {
		t.Fatal("absent key hit")
	}
	if h, m, st := mx.Hits.Value(), mx.Misses.Value(), mx.Stores.Value(); h != 1 || m != 1 || st != 1 {
		t.Fatalf("hits/misses/stores = %d/%d/%d, want 1/1/1", h, m, st)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../" + strings.Repeat("a", 61), strings.Repeat("a", 63),
	} {
		s.PutCell("w", k, [][]float64{{1}})
		if _, ok := s.GetCell("w", k, 1, 1); ok {
			t.Errorf("invalid key %q served a column", k)
		}
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("invalid keys reached the filesystem: %d entries", len(ents))
	}
}

// TestCorruptEntryDeletedNotServed pins the corruption blind-spot fix:
// a truncated or wrong-shape entry must be deleted, counted, and
// reported as a miss — never promoted.
func TestCorruptEntryDeletedNotServed(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	dir := t.TempDir()
	s, err := Open(dir, 0, 0, mx)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data string
	}{
		{"truncated", `[[1.0, 2.`},
		{"wrong-runs", `[[1,2]]`},        // one run where two are expected
		{"wrong-metrics", `[[1],[2,3]]`}, // second run has two metrics, want one
		{"not-an-array", `{"a":1}`},
	}
	for i, c := range cases {
		k := key(100 + i)
		if err := os.WriteFile(s.path(k), []byte(c.data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.GetCell("w", k, 2, 1); ok {
			t.Errorf("%s: corrupt entry served", c.name)
		}
		if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt entry not deleted", c.name)
		}
	}
	if got := mx.Corrupt.Value(); got != uint64(len(cases)) {
		t.Fatalf("corruption counter %d, want %d", got, len(cases))
	}
	if got := mx.Misses.Value(); got != uint64(len(cases)) {
		t.Fatalf("corrupt reads counted %d misses, want %d", got, len(cases))
	}
}

func TestEvictionBoundsEntries(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	s, err := Open(t.TempDir(), 8, 0, mx)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct mtimes make the oldest-first order deterministic enough to
	// assert the newest entries survive.
	for i := 0; i < sweepEvery+8; i++ {
		s.PutCell("w", key(i), [][]float64{{float64(i)}})
		if i%16 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	s.sweep()
	if n := s.Len(); n > 8 {
		t.Fatalf("store holds %d entries after sweep, want <= 8", n)
	}
	if mx.Evicted.Value() == 0 {
		t.Fatal("eviction sweep counted nothing")
	}
	// The most recently written column must still be resident.
	if _, ok := s.GetCell("w", key(sweepEvery+7), 1, 1); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestPutFailureIsSilent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.dir = filepath.Join(dir, "missing")
	s.PutCell("w", key(1), [][]float64{{1}}) // must not panic
	if _, ok := s.GetCell("w", key(1), 1, 1); ok {
		t.Fatal("failed Put served a column")
	}
}

func TestPerWorkloadAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	mx := NewMetrics(reg)
	s, err := Open(t.TempDir(), 0, 0, mx)
	if err != nil {
		t.Fatal(err)
	}
	s.PutCell("kmeans", key(1), [][]float64{{1}})
	s.GetCell("kmeans", key(1), 1, 1) // hit
	s.GetCell("kmeans", key(2), 1, 1) // miss
	s.GetCell("kmeans", key(1), 1, 1) // hit
	s.GetCell("bayes", key(3), 1, 1)  // miss
	s.GetCell("", key(1), 1, 1)       // hit, attributed to "unknown"

	st := s.Stats()
	if st.Hits != 3 || st.Misses != 2 || st.Stores != 1 {
		t.Fatalf("stats hits/misses/stores = %d/%d/%d", st.Hits, st.Misses, st.Stores)
	}
	if len(st.ByWorkload) != 3 {
		t.Fatalf("by-workload rows = %d, want 3: %+v", len(st.ByWorkload), st.ByWorkload)
	}
	// Sorted by workload name: bayes, kmeans, unknown.
	rows := st.ByWorkload
	if rows[0].Workload != "bayes" || rows[0].Misses != 1 || rows[0].HitRatio != 0 {
		t.Fatalf("bayes row = %+v", rows[0])
	}
	if rows[1].Workload != "kmeans" || rows[1].Hits != 2 || rows[1].Misses != 1 {
		t.Fatalf("kmeans row = %+v", rows[1])
	}
	if got, want := rows[1].HitRatio, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("kmeans hit ratio = %v, want %v", got, want)
	}
	if rows[2].Workload != "unknown" || rows[2].Hits != 1 {
		t.Fatalf("unknown row = %+v", rows[2])
	}
	if st.Entries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("entries/disk = %d/%d", st.Entries, st.DiskBytes)
	}
}

func TestOpenRegistersCapacityGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), 0, 0, NewMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	s.PutCell("w", key(1), [][]float64{{1, 2}})
	if v, ok := reg.ReadScalar("bd_cellcache_entries"); !ok || v != 1 {
		t.Fatalf("bd_cellcache_entries = %v,%v", v, ok)
	}
	if v, ok := reg.ReadScalar("bd_cellcache_disk_bytes"); !ok || v <= 0 {
		t.Fatalf("bd_cellcache_disk_bytes = %v,%v", v, ok)
	}
}

func TestMaxAgeSweep(t *testing.T) {
	dir := t.TempDir()
	mx := NewMetrics(obs.NewRegistry())
	s, err := Open(dir, 0, time.Hour, mx)
	if err != nil {
		t.Fatal(err)
	}
	s.PutCell("w", key(1), [][]float64{{1}})
	s.PutCell("w", key(2), [][]float64{{2}})
	// Age one entry past the bound by rewinding its mtime.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.path(key(1)), old, old); err != nil {
		t.Fatal(err)
	}
	s.sweep()
	if _, ok := s.GetCell("w", key(1), 1, 1); ok {
		t.Fatal("expired entry survived the age sweep")
	}
	if _, ok := s.GetCell("w", key(2), 1, 1); !ok {
		t.Fatal("fresh entry was evicted")
	}
	if mx.Evicted.Value() != 1 {
		t.Fatalf("evicted = %d, want 1", mx.Evicted.Value())
	}

	// Reopening with an age bound sweeps immediately.
	if err := os.Chtimes(s.path(key(2)), old, old); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0, time.Hour, NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 0 {
		t.Fatalf("reopen with max-age left %d entries, want 0", n)
	}
}
