package cellcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestRoundTrip(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	s, err := Open(t.TempDir(), 0, mx)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2, 3}, {4, 5, 6}}
	s.PutCell(key(1), want)
	got, ok := s.GetCell(key(1), 2, 3)
	if !ok {
		t.Fatal("stored column missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, ok := s.GetCell(key(2), 2, 3); ok {
		t.Fatal("absent key hit")
	}
	if h, m, st := mx.Hits.Value(), mx.Misses.Value(), mx.Stores.Value(); h != 1 || m != 1 || st != 1 {
		t.Fatalf("hits/misses/stores = %d/%d/%d, want 1/1/1", h, m, st)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../" + strings.Repeat("a", 61), strings.Repeat("a", 63),
	} {
		s.PutCell(k, [][]float64{{1}})
		if _, ok := s.GetCell(k, 1, 1); ok {
			t.Errorf("invalid key %q served a column", k)
		}
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("invalid keys reached the filesystem: %d entries", len(ents))
	}
}

// TestCorruptEntryDeletedNotServed pins the corruption blind-spot fix:
// a truncated or wrong-shape entry must be deleted, counted, and
// reported as a miss — never promoted.
func TestCorruptEntryDeletedNotServed(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	dir := t.TempDir()
	s, err := Open(dir, 0, mx)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data string
	}{
		{"truncated", `[[1.0, 2.`},
		{"wrong-runs", `[[1,2]]`},        // one run where two are expected
		{"wrong-metrics", `[[1],[2,3]]`}, // second run has two metrics, want one
		{"not-an-array", `{"a":1}`},
	}
	for i, c := range cases {
		k := key(100 + i)
		if err := os.WriteFile(s.path(k), []byte(c.data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.GetCell(k, 2, 1); ok {
			t.Errorf("%s: corrupt entry served", c.name)
		}
		if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt entry not deleted", c.name)
		}
	}
	if got := mx.Corrupt.Value(); got != uint64(len(cases)) {
		t.Fatalf("corruption counter %d, want %d", got, len(cases))
	}
	if got := mx.Misses.Value(); got != uint64(len(cases)) {
		t.Fatalf("corrupt reads counted %d misses, want %d", got, len(cases))
	}
}

func TestEvictionBoundsEntries(t *testing.T) {
	mx := NewMetrics(obs.NewRegistry())
	s, err := Open(t.TempDir(), 8, mx)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct mtimes make the oldest-first order deterministic enough to
	// assert the newest entries survive.
	for i := 0; i < sweepEvery+8; i++ {
		s.PutCell(key(i), [][]float64{{float64(i)}})
		if i%16 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	s.sweep()
	if n := s.Len(); n > 8 {
		t.Fatalf("store holds %d entries after sweep, want <= 8", n)
	}
	if mx.Evicted.Value() == 0 {
		t.Fatal("eviction sweep counted nothing")
	}
	// The most recently written column must still be resident.
	if _, ok := s.GetCell(key(sweepEvery+7), 1, 1); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestPutFailureIsSilent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.dir = filepath.Join(dir, "missing")
	s.PutCell(key(1), [][]float64{{1}}) // must not panic
	if _, ok := s.GetCell(key(1), 1, 1); ok {
		t.Fatal("failed Put served a column")
	}
}
