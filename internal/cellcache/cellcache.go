// Package cellcache is the content-addressed cell store behind the
// cell-level result cache: one JSON file per workload×node *column* of
// the characterization grid (the per-run metric vectors of one workload
// on one absolute node), keyed by the full SHA-256 of the column's
// canonical cell-key spec (see cluster.CellKey).
//
// Two deployments share this store. A bdservd worker keeps one under its
// -data-dir and consults it inside the measurement grid, so overlapping
// suites recompute only the columns they do not share. A bdcoord
// coordinator keeps a second, shared one fed by every finished unit, so
// a fully-cached unit is assembled coordinator-side and never dispatched
// at all.
//
// The determinism contract of the grid extends to the cache: a cached
// column is exactly the vectors a recomputation would produce, so cached
// and recomputed results are byte-identical. Entries that fail to parse
// or have the wrong shape are deleted on read and counted as corruption —
// a corrupt file can only ever cost a recompute, never serve bad cells.
package cellcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fsio"
	"repro/internal/obs"
)

// DefaultMaxEntries bounds the store when the caller does not: at one
// file per workload×node column, 4096 entries cover ~93 full 44-workload
// paper grids before eviction starts.
const DefaultMaxEntries = 4096

// sweepEvery is how many stores may land between eviction sweeps. The
// bound is enforced in batches — a directory listing per store would turn
// every Put into O(entries).
const sweepEvery = 64

// Metrics is the counter storage behind the bd_cellcache_* families.
type Metrics struct {
	Hits    *obs.Counter
	Misses  *obs.Counter
	Stores  *obs.Counter
	Corrupt *obs.Counter
	Evicted *obs.Counter
}

// NewMetrics registers the cell-cache counters on reg. Register at most
// once per registry: bdservd wires the worker-local store's metrics,
// bdcoord the coordinator-shared store's.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Hits: reg.Counter("bd_cellcache_hits_total",
			"Cell-cache lookups served from the store (one per workload×node column)."),
		Misses: reg.Counter("bd_cellcache_misses_total",
			"Cell-cache lookups that found no usable entry."),
		Stores: reg.Counter("bd_cellcache_stores_total",
			"Columns written to the cell cache."),
		Corrupt: reg.Counter("bd_cellcache_corrupt_total",
			"Cell-cache entries deleted because they failed to parse or had the wrong shape."),
		Evicted: reg.Counter("bd_cellcache_evicted_total",
			"Cell-cache entries removed by the max-entries eviction sweep."),
	}
}

// Store is an on-disk cell cache. All methods are safe for concurrent
// use; reads and writes go straight to the filesystem (the grid hot path
// holds no store-wide lock), only the eviction sweep serializes.
type Store struct {
	dir string
	max int
	mx  *Metrics

	mu     sync.Mutex // guards sinceSweep and the sweep itself
	sinceS int
}

// Open creates (if needed) and opens a cell store rooted at dir, bounded
// to maxEntries files (<=0 uses DefaultMaxEntries). mx may be nil, in
// which case counters land on a private registry nothing renders.
func Open(dir string, maxEntries int, mx *Metrics) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: creating store dir: %w", err)
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if mx == nil {
		mx = NewMetrics(obs.NewRegistry())
	}
	return &Store{dir: dir, max: maxEntries, mx: mx}, nil
}

// validKey reports whether key has the exact shape of a cell key — 64
// lowercase hex digits, the full SHA-256 of the canonical cell-key spec.
// Keys become file names, so anything else must never reach the
// filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// GetCell returns the cached per-run metric vectors for one column, or
// ok=false on a miss. The entry is validated — JSON parse plus the exact
// runs×metrics shape — *before* it is served: a truncated or corrupted
// file is deleted and counted, then reported as a miss, so it costs a
// recompute instead of poisoning a confidently-hashed result.
func (s *Store) GetCell(key string, runs, metrics int) ([][]float64, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.mx.Misses.Inc()
		return nil, false
	}
	var vecs [][]float64
	if err := json.Unmarshal(data, &vecs); err != nil {
		s.corrupt(key)
		return nil, false
	}
	if len(vecs) != runs {
		s.corrupt(key)
		return nil, false
	}
	for _, v := range vecs {
		if len(v) != metrics {
			s.corrupt(key)
			return nil, false
		}
	}
	s.mx.Hits.Inc()
	return vecs, true
}

func (s *Store) corrupt(key string) {
	os.Remove(s.path(key))
	s.mx.Corrupt.Inc()
	s.mx.Misses.Inc()
}

// PutCell stores one column's per-run metric vectors. Failures are
// deliberately swallowed: the cache is an accelerator, and a column that
// fails to persist only costs a future recompute. The write is atomic
// and fsynced (fsio), so no torn entry can ever be read back.
func (s *Store) PutCell(key string, vecs [][]float64) {
	if !validKey(key) || len(vecs) == 0 {
		return
	}
	data, err := json.Marshal(vecs)
	if err != nil {
		return
	}
	if err := fsio.WriteFileSync(s.path(key), data, 0o644); err != nil {
		return
	}
	s.mx.Stores.Inc()
	s.maybeSweep()
}

// maybeSweep enforces the max-entries bound every sweepEvery stores:
// list the directory and delete the oldest (by mtime) entries beyond
// capacity. Recently used entries survive — GetCell does not bump mtime,
// so this is write-recency eviction: the working set of the most recent
// campaigns stays resident, which is exactly the overlap the cache is
// for.
func (s *Store) maybeSweep() {
	s.mu.Lock()
	s.sinceS++
	if s.sinceS < sweepEvery {
		s.mu.Unlock()
		return
	}
	s.sinceS = 0
	s.mu.Unlock()
	s.sweep()
}

func (s *Store) sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil || len(ents) <= s.max {
		return
	}
	type entry struct {
		name string
		mod  int64
	}
	files := make([]entry, 0, len(ents))
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{e.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i < len(files)-s.max; i++ {
		if os.Remove(filepath.Join(s.dir, files[i].name)) == nil {
			s.mx.Evicted.Inc()
		}
	}
}

// Len counts the store's current entries (a directory listing — for
// tests and render-time gauges, not hot paths).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	return len(ents)
}
