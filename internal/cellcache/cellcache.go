// Package cellcache is the content-addressed cell store behind the
// cell-level result cache: one JSON file per workload×node *column* of
// the characterization grid (the per-run metric vectors of one workload
// on one absolute node), keyed by the full SHA-256 of the column's
// canonical cell-key spec (see cluster.CellKey).
//
// Two deployments share this store. A bdservd worker keeps one under its
// -data-dir and consults it inside the measurement grid, so overlapping
// suites recompute only the columns they do not share. A bdcoord
// coordinator keeps a second, shared one fed by every finished unit, so
// a fully-cached unit is assembled coordinator-side and never dispatched
// at all.
//
// The determinism contract of the grid extends to the cache: a cached
// column is exactly the vectors a recomputation would produce, so cached
// and recomputed results are byte-identical. Entries that fail to parse
// or have the wrong shape are deleted on read and counted as corruption —
// a corrupt file can only ever cost a recompute, never serve bad cells.
//
// Lookups carry the workload name purely for attribution: the
// bd_cellcache_requests_total{workload,result} family and the
// per-workload hit-ratio table on /v1/status, the signal sweep planners
// use to see which workloads actually share cells across campaigns.
// Label cardinality is bounded by the resolved workload registry — names
// reach here only after spec normalization resolved them.
package cellcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fsio"
	"repro/internal/obs"
)

// DefaultMaxEntries bounds the store when the caller does not: at one
// file per workload×node column, 4096 entries cover ~93 full 44-workload
// paper grids before eviction starts.
const DefaultMaxEntries = 4096

// sweepEvery is how many stores may land between eviction sweeps. The
// bound is enforced in batches — a directory listing per store would turn
// every Put into O(entries).
const sweepEvery = 64

// Metrics is the counter storage behind the bd_cellcache_* families.
type Metrics struct {
	Hits    *obs.Counter
	Misses  *obs.Counter
	Stores  *obs.Counter
	Corrupt *obs.Counter
	Evicted *obs.Counter
	// Requests attributes every lookup to its workload:
	// bd_cellcache_requests_total{workload,result="hit"|"miss"}.
	Requests *obs.CounterVec

	reg *obs.Registry // for the per-store gauge-funcs Open registers
}

// NewMetrics registers the cell-cache counters on reg. Register at most
// once per registry: bdservd wires the worker-local store's metrics,
// bdcoord the coordinator-shared store's.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Hits: reg.Counter("bd_cellcache_hits_total",
			"Cell-cache lookups served from the store (one per workload×node column)."),
		Misses: reg.Counter("bd_cellcache_misses_total",
			"Cell-cache lookups that found no usable entry."),
		Stores: reg.Counter("bd_cellcache_stores_total",
			"Columns written to the cell cache."),
		Corrupt: reg.Counter("bd_cellcache_corrupt_total",
			"Cell-cache entries deleted because they failed to parse or had the wrong shape."),
		Evicted: reg.Counter("bd_cellcache_evicted_total",
			"Cell-cache entries removed by the max-entries or max-age eviction sweep."),
		Requests: reg.CounterVec("bd_cellcache_requests_total",
			"Cell-cache lookups by workload and result (hit, miss); cardinality bounded by the resolved workload registry.",
			"workload", "result"),
		reg: reg,
	}
}

// Store is an on-disk cell cache. All methods are safe for concurrent
// use; reads and writes go straight to the filesystem (the grid hot path
// holds no store-wide lock), only the eviction sweep serializes.
type Store struct {
	dir    string
	max    int
	maxAge time.Duration // 0 = no age bound
	mx     *Metrics

	mu     sync.Mutex // guards sinceSweep and the sweep itself
	sinceS int
}

// Open creates (if needed) and opens a cell store rooted at dir, bounded
// to maxEntries files (<=0 uses DefaultMaxEntries). maxAge > 0 adds an
// age bound: entries whose file mtime is older are garbage-collected by
// the same sweep that enforces the entry count (and once immediately at
// open, so a restart reclaims a long-idle cache without waiting for
// writes). mx may be nil, in which case counters land on a private
// registry nothing renders; when it carries a live registry, Open also
// registers the bd_cellcache_entries / bd_cellcache_disk_bytes
// gauge-funcs over this store.
func Open(dir string, maxEntries int, maxAge time.Duration, mx *Metrics) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: creating store dir: %w", err)
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxAge < 0 {
		maxAge = 0
	}
	if mx == nil {
		mx = NewMetrics(obs.NewRegistry())
	}
	s := &Store{dir: dir, max: maxEntries, maxAge: maxAge, mx: mx}
	if mx.reg != nil {
		mx.reg.GaugeFunc("bd_cellcache_entries",
			"Cell-cache entries currently on disk (render-time directory listing).",
			func() float64 { return float64(s.Len()) })
		mx.reg.GaugeFunc("bd_cellcache_disk_bytes",
			"Bytes the cell cache currently occupies on disk.",
			func() float64 { return float64(s.DiskBytes()) })
	}
	if maxAge > 0 {
		s.sweep()
	}
	return s, nil
}

// validKey reports whether key has the exact shape of a cell key — 64
// lowercase hex digits, the full SHA-256 of the canonical cell-key spec.
// Keys become file names, so anything else must never reach the
// filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// workloadLabel bounds the attribution label: lookups that arrive
// without a workload name (none should) collapse into one series.
func workloadLabel(workload string) string {
	if workload == "" {
		return "unknown"
	}
	return workload
}

// GetCell returns the cached per-run metric vectors for one column, or
// ok=false on a miss. The entry is validated — JSON parse plus the exact
// runs×metrics shape — *before* it is served: a truncated or corrupted
// file is deleted and counted, then reported as a miss, so it costs a
// recompute instead of poisoning a confidently-hashed result. workload
// is attribution only (per-workload hit/miss counters); it never affects
// what is served.
func (s *Store) GetCell(workload, key string, runs, metrics int) ([][]float64, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.miss(workload)
		return nil, false
	}
	var vecs [][]float64
	if err := json.Unmarshal(data, &vecs); err != nil {
		s.corrupt(workload, key)
		return nil, false
	}
	if len(vecs) != runs {
		s.corrupt(workload, key)
		return nil, false
	}
	for _, v := range vecs {
		if len(v) != metrics {
			s.corrupt(workload, key)
			return nil, false
		}
	}
	s.mx.Hits.Inc()
	s.mx.Requests.With(workloadLabel(workload), "hit").Inc()
	return vecs, true
}

func (s *Store) miss(workload string) {
	s.mx.Misses.Inc()
	s.mx.Requests.With(workloadLabel(workload), "miss").Inc()
}

func (s *Store) corrupt(workload, key string) {
	os.Remove(s.path(key))
	s.mx.Corrupt.Inc()
	s.miss(workload)
}

// PutCell stores one column's per-run metric vectors. Failures are
// deliberately swallowed: the cache is an accelerator, and a column that
// fails to persist only costs a future recompute. The write is atomic
// and fsynced (fsio), so no torn entry can ever be read back. workload
// is attribution only.
func (s *Store) PutCell(workload, key string, vecs [][]float64) {
	if !validKey(key) || len(vecs) == 0 {
		return
	}
	data, err := json.Marshal(vecs)
	if err != nil {
		return
	}
	if err := fsio.WriteFileSync(s.path(key), data, 0o644); err != nil {
		return
	}
	s.mx.Stores.Inc()
	s.maybeSweep()
}

// maybeSweep enforces the max-entries (and max-age) bound every
// sweepEvery stores: list the directory and delete the oldest (by mtime)
// entries beyond capacity, plus any entry older than the age bound.
// Recently used entries survive — GetCell does not bump mtime, so this
// is write-recency eviction: the working set of the most recent
// campaigns stays resident, which is exactly the overlap the cache is
// for.
func (s *Store) maybeSweep() {
	s.mu.Lock()
	s.sinceS++
	if s.sinceS < sweepEvery {
		s.mu.Unlock()
		return
	}
	s.sinceS = 0
	s.mu.Unlock()
	s.sweep()
}

func (s *Store) sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type entry struct {
		name string
		mod  int64
	}
	files := make([]entry, 0, len(ents))
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{e.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	// Oldest-first: everything beyond capacity goes, and with an age
	// bound configured so does everything written before the cutoff.
	var cutoff int64
	if s.maxAge > 0 {
		cutoff = time.Now().Add(-s.maxAge).UnixNano()
	}
	for i, f := range files {
		overCap := i < len(files)-s.max
		expired := cutoff != 0 && f.mod < cutoff
		if !overCap && !expired {
			break // sorted by mtime: nothing later can be expired either
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			s.mx.Evicted.Inc()
		}
	}
}

// Len counts the store's current entries (a directory listing — for
// tests and render-time gauges, not hot paths).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	return len(ents)
}

// DiskBytes sums the store's current on-disk size (render-time only).
func (s *Store) DiskBytes() int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// WorkloadStats is one row of the per-workload attribution table.
type WorkloadStats struct {
	Workload string  `json:"workload"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// Stats is the store's point-in-time JSON snapshot: capacity and usage,
// the global counters, and the per-workload hit/miss table (sorted by
// workload name). Served inside /v1/status.
type Stats struct {
	Entries       int             `json:"entries"`
	DiskBytes     int64           `json:"disk_bytes"`
	MaxEntries    int             `json:"max_entries"`
	MaxAgeSeconds float64         `json:"max_age_seconds,omitempty"`
	Hits          uint64          `json:"hits"`
	Misses        uint64          `json:"misses"`
	Stores        uint64          `json:"stores"`
	Corrupt       uint64          `json:"corrupt"`
	Evicted       uint64          `json:"evicted"`
	HitRatio      float64         `json:"hit_ratio"`
	ByWorkload    []WorkloadStats `json:"by_workload,omitempty"`
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	st := Stats{
		Entries:       s.Len(),
		DiskBytes:     s.DiskBytes(),
		MaxEntries:    s.max,
		MaxAgeSeconds: s.maxAge.Seconds(),
		Hits:          s.mx.Hits.Value(),
		Misses:        s.mx.Misses.Value(),
		Stores:        s.mx.Stores.Value(),
		Corrupt:       s.mx.Corrupt.Value(),
		Evicted:       s.mx.Evicted.Value(),
	}
	st.HitRatio = ratio(st.Hits, st.Misses)
	byName := map[string]*WorkloadStats{}
	s.mx.Requests.Each(func(labels []string, value uint64) {
		if len(labels) != 2 {
			return
		}
		w := byName[labels[0]]
		if w == nil {
			w = &WorkloadStats{Workload: labels[0]}
			byName[w.Workload] = w
		}
		switch labels[1] {
		case "hit":
			w.Hits += value
		case "miss":
			w.Misses += value
		}
	})
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := byName[n]
		w.HitRatio = ratio(w.Hits, w.Misses)
		st.ByWorkload = append(st.ByWorkload, *w)
	}
	return st
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
