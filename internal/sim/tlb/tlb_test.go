package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func newSmall() *Hierarchy {
	return New(
		Config{Name: "ITLB", Entries: 8, Ways: 2},
		Config{Name: "DTLB", Entries: 8, Ways: 2},
		Config{Name: "STLB", Entries: 32, Ways: 4},
		30,
	)
}

func page(n uint64) uint64 { return n << PageBits }

func TestConfigValidate(t *testing.T) {
	if err := (Config{Name: "bad", Entries: 0, Ways: 1}).Validate(); err == nil {
		t.Error("zero entries accepted")
	}
	if err := (Config{Name: "bad", Entries: 6, Ways: 2}).Validate(); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	it, dt, st := WestmereConfig()
	for _, c := range []Config{it, dt, st} {
		if err := c.Validate(); err != nil {
			t.Errorf("Westmere config %q invalid: %v", c.Name, err)
		}
	}
}

func TestColdMissWalksAndFills(t *testing.T) {
	h := newSmall()
	r := h.TranslateD(page(5))
	if r.L1Hit || r.STLBHit || r.WalkCycles != 30 {
		t.Fatalf("cold translate = %+v, want walk of 30 cycles", r)
	}
	r = h.TranslateD(page(5))
	if !r.L1Hit {
		t.Fatalf("second translate = %+v, want L1 hit", r)
	}
	if h.DStats.Walks != 1 || h.DStats.L1Hits != 1 || h.DStats.WalkCycles != 30 {
		t.Errorf("DStats = %+v", h.DStats)
	}
}

func TestSamePageDifferentOffsets(t *testing.T) {
	h := newSmall()
	h.TranslateD(page(7))
	if r := h.TranslateD(page(7) + 4095); !r.L1Hit {
		t.Error("same-page access missed")
	}
	if r := h.TranslateD(page(8)); r.L1Hit {
		t.Error("next-page access hit L1 cold")
	}
}

func TestSTLBHitAfterL1Eviction(t *testing.T) {
	h := newSmall()
	// L1 DTLB: 4 sets × 2 ways. Pages 0, 4, 8 map to set 0.
	h.TranslateD(page(0))
	h.TranslateD(page(4))
	h.TranslateD(page(8)) // evicts page 0 from L1 DTLB, but STLB (8 sets) holds it
	r := h.TranslateD(page(0))
	if !r.STLBHit {
		t.Fatalf("translate after L1 eviction = %+v, want STLB hit", r)
	}
	if h.DStats.STLBHits != 1 {
		t.Errorf("STLBHits = %d, want 1", h.DStats.STLBHits)
	}
}

func TestInstructionAndDataSeparateL1(t *testing.T) {
	h := newSmall()
	h.TranslateI(page(3))
	// Data stream should not see the ITLB entry at L1... but the STLB is
	// shared, so it hits there.
	r := h.TranslateD(page(3))
	if r.L1Hit {
		t.Error("DTLB hit on a page only the ITLB translated")
	}
	if !r.STLBHit {
		t.Error("shared STLB should hold the page")
	}
	if h.IStats.Walks != 1 || h.DStats.STLBHits != 1 {
		t.Errorf("IStats=%+v DStats=%+v", h.IStats, h.DStats)
	}
}

func TestMissAccessorHelpers(t *testing.T) {
	s := Stats{Accesses: 10, L1Hits: 6, STLBHits: 3, Walks: 1}
	if MissesAllLevels(s) != 1 {
		t.Errorf("MissesAllLevels = %d, want 1", MissesAllLevels(s))
	}
	if L1Misses(s) != 4 {
		t.Errorf("L1Misses = %d, want 4", L1Misses(s))
	}
}

// Property: accesses = L1 hits + STLB hits + walks.
func TestQuickStatsConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := newSmall()
		const n = 500
		for i := 0; i < n; i++ {
			p := page(uint64(r.Intn(100)))
			if r.Bool(0.2) {
				h.TranslateI(p)
			} else {
				h.TranslateD(p)
			}
		}
		tot := func(s Stats) bool { return s.L1Hits+s.STLBHits+s.Walks == s.Accesses }
		return tot(h.IStats) && tot(h.DStats) &&
			h.IStats.Accesses+h.DStats.Accesses == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a working set within L1 capacity never walks after warmup.
func TestQuickSmallWorkingSetNoWalks(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := newSmall() // L1 DTLB 8 entries, use 4 pages spread over sets
		pages := []uint64{page(0), page(1), page(2), page(3)}
		for _, p := range pages {
			h.TranslateD(p)
		}
		walksAfterWarmup := h.DStats.Walks
		for i := 0; i < 200; i++ {
			h.TranslateD(pages[r.Intn(len(pages))])
		}
		return h.DStats.Walks == walksAfterWarmup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: walk cycles = walks × configured cost.
func TestQuickWalkCycleAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := newSmall()
		for i := 0; i < 300; i++ {
			h.TranslateD(page(uint64(r.Intn(500))))
		}
		return h.DStats.WalkCycles == 30*h.DStats.Walks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
