// Package tlb models the two-level TLB of the paper's Xeon E5645
// (Table III): 4-way 64-entry L1 ITLB and DTLB, and a 4-way 512-entry
// unified second-level TLB (STLB) shared between instruction and data
// translations. A miss in both levels triggers a page walk whose cycles
// are accounted (ITLB_CYCLE / DTLB_CYCLE metrics).
package tlb

import "fmt"

// PageBits is log2 of the 4 KiB page size.
const PageBits = 12

// Config describes one TLB level's geometry.
type Config struct {
	Name    string
	Entries int
	Ways    int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %q: invalid geometry %+v", c.Name, c)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type entry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

type level struct {
	sets    [][]entry
	setMask uint64
	clock   uint64
}

func newLevel(cfg Config) *level {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nsets)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &level{sets: sets, setMask: uint64(nsets - 1)}
}

func (l *level) lookup(vpn uint64) bool {
	set := vpn & l.setMask
	l.clock++
	for i := range l.sets[set] {
		e := &l.sets[set][i]
		if e.valid && e.vpn == vpn {
			e.lru = l.clock
			return true
		}
	}
	return false
}

func (l *level) fill(vpn uint64) {
	set := vpn & l.setMask
	l.clock++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range l.sets[set] {
		e := &l.sets[set][i]
		if !e.valid {
			victim = i
			oldest = 0
			break
		}
		if e.lru < oldest {
			oldest = e.lru
			victim = i
		}
	}
	l.sets[set][victim] = entry{vpn: vpn, valid: true, lru: l.clock}
}

// Stats aggregates translation outcomes for one access stream (I or D).
type Stats struct {
	Accesses   uint64
	L1Hits     uint64
	STLBHits   uint64 // L1 miss that hit the shared L2 TLB
	Walks      uint64 // missed both levels
	WalkCycles uint64
}

// Hierarchy is a split-L1 + shared-STLB TLB system for one core.
type Hierarchy struct {
	itlb, dtlb, stlb *level
	walkCycles       uint64
	IStats, DStats   Stats
}

// WestmereConfig returns the Table III TLB geometry.
func WestmereConfig() (itlb, dtlb, stlb Config) {
	itlb = Config{Name: "ITLB", Entries: 64, Ways: 4}
	dtlb = Config{Name: "DTLB", Entries: 64, Ways: 4}
	stlb = Config{Name: "STLB", Entries: 512, Ways: 4}
	return
}

// New builds a TLB hierarchy. walkCycles is the page-walk cost charged on
// a full miss (both levels).
func New(itlb, dtlb, stlb Config, walkCycles uint64) *Hierarchy {
	return &Hierarchy{
		itlb:       newLevel(itlb),
		dtlb:       newLevel(dtlb),
		stlb:       newLevel(stlb),
		walkCycles: walkCycles,
	}
}

// Reset returns the hierarchy to its post-New state (all entries invalid,
// statistics zeroed) so one allocation can serve many simulation runs.
func (h *Hierarchy) Reset() {
	for _, l := range []*level{h.itlb, h.dtlb, h.stlb} {
		for _, set := range l.sets {
			for i := range set {
				set[i] = entry{}
			}
		}
		l.clock = 0
	}
	h.IStats = Stats{}
	h.DStats = Stats{}
}

// Result reports one translation's outcome.
type Result struct {
	L1Hit      bool
	STLBHit    bool
	WalkCycles uint64 // nonzero only on full miss
}

// TranslateI translates an instruction-fetch address.
func (h *Hierarchy) TranslateI(addr uint64) Result {
	return h.translate(addr, h.itlb, &h.IStats)
}

// TranslateD translates a data address.
func (h *Hierarchy) TranslateD(addr uint64) Result {
	return h.translate(addr, h.dtlb, &h.DStats)
}

func (h *Hierarchy) translate(addr uint64, l1 *level, st *Stats) Result {
	vpn := addr >> PageBits
	st.Accesses++
	if l1.lookup(vpn) {
		st.L1Hits++
		return Result{L1Hit: true}
	}
	if h.stlb.lookup(vpn) {
		st.STLBHits++
		l1.fill(vpn)
		return Result{STLBHit: true}
	}
	st.Walks++
	st.WalkCycles += h.walkCycles
	h.stlb.fill(vpn)
	l1.fill(vpn)
	return Result{WalkCycles: h.walkCycles}
}

// MissesAllLevels returns, for the given stream stats, the count the paper's
// ITLB_MISS / DTLB_MISS metrics use: misses in all levels of the TLB
// (i.e., page walks).
func MissesAllLevels(s Stats) uint64 { return s.Walks }

// L1Misses returns misses at the first level (STLB hits + walks).
func L1Misses(s Stats) uint64 { return s.STLBHits + s.Walks }
