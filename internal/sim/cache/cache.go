// Package cache models set-associative write-back caches with true LRU
// replacement and MESI line states, matching the Table III hierarchy of
// the paper's Xeon E5645: split 32 KB L1I/L1D, 256 KB private unified L2,
// and a 12 MB shared L3 per socket.
package cache

import "fmt"

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the MESI letter.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Line is one cache line's tag state.
type Line struct {
	Tag   uint64
	State State
	lru   uint64 // larger = more recently used
}

// Config describes a cache's geometry.
type Config struct {
	Name  string
	SizeB int // total bytes
	Ways  int
	LineB int // line size in bytes
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	lines := c.SizeB / c.LineB
	if lines*c.LineB != c.SizeB {
		return fmt.Errorf("cache %q: size %d not a multiple of line size %d", c.Name, c.SizeB, c.LineB)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	return nil
}

// Stats aggregates a cache's access counters.
type Stats struct {
	Hits, Misses    uint64
	Evictions       uint64
	DirtyWritebacks uint64
	Invalidations   uint64
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg      Config
	sets     [][]Line
	nsets    uint64
	setMask  uint64 // nsets-1 when nsets is a power of two, else 0
	lineBits uint
	clock    uint64
	stats    Stats
}

// New builds a cache from cfg. It panics on invalid geometry, since
// configurations are compile-time constants in this repository.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeB / cfg.LineB
	nsets := lines / cfg.Ways
	sets := make([][]Line, nsets)
	backing := make([]Line, lines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	lb := uint(0)
	for 1<<lb < cfg.LineB {
		lb++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		nsets:    uint64(nsets),
		lineBits: lb,
	}
	if nsets&(nsets-1) == 0 {
		c.setMask = uint64(nsets - 1)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset returns the cache to its post-New state: all lines invalid, the
// LRU clock rewound and the counters zeroed. A reset cache behaves
// identically to a freshly constructed one, which lets simulation workers
// reuse a cache across runs instead of reallocating it.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = Line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return len(c.sets) }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineBits
	// Modulo set indexing: the paper's 12 MB L3 has 12288 sets, which is
	// not a power of two. The full block address is kept as the tag,
	// which is simple and unambiguous. Power-of-two set counts (every L1
	// and L2) take the mask fast path — index is on the hot path of each
	// simulated memory access.
	if c.setMask != 0 {
		return blk & c.setMask, blk
	}
	return blk % c.nsets, blk
}

// Lookup probes for addr without modifying replacement state or counters.
// It returns the line's state (Invalid if absent).
func (c *Cache) Lookup(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State != Invalid && l.Tag == tag {
			return l.State
		}
	}
	return Invalid
}

// Access performs a demand access for addr. If the line is present it is
// promoted to MRU and (for writes) upgraded to Modified; hit=true is
// returned. Otherwise hit=false and the caller is responsible for filling
// via Fill after consulting the next level.
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State != Invalid && l.Tag == tag {
			l.lru = c.clock
			if write {
				l.State = Modified
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	Addr  uint64
	State State
	Valid bool
}

// Fill installs addr with the given state, evicting the LRU line if the
// set is full. The evicted line (if any) is returned so the caller can
// propagate write-backs and maintain inclusion.
func (c *Cache) Fill(addr uint64, st State) Evicted {
	set, tag := c.index(addr)
	c.clock++
	// Prefer an invalid way.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State == Invalid {
			victim = i
			break
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = i
		}
	}
	l := &c.sets[set][victim]
	var ev Evicted
	if l.State != Invalid {
		ev = Evicted{Addr: l.Tag << c.lineBits, State: l.State, Valid: true}
		c.stats.Evictions++
		if l.State == Modified {
			c.stats.DirtyWritebacks++
		}
	}
	l.Tag = tag
	l.State = st
	l.lru = c.clock
	return ev
}

// Invalidate removes addr if present, returning its prior state. Used by
// snoops (RFO from another core) and inclusion enforcement.
func (c *Cache) Invalidate(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State != Invalid && l.Tag == tag {
			st := l.State
			l.State = Invalid
			c.stats.Invalidations++
			return st
		}
	}
	return Invalid
}

// Downgrade moves addr to Shared if present in E or M state (snoop read
// hit), returning the prior state.
func (c *Cache) Downgrade(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State != Invalid && l.Tag == tag {
			st := l.State
			if st == Exclusive || st == Modified {
				l.State = Shared
			}
			return st
		}
	}
	return Invalid
}

// MarkDirty sets addr's line to Modified if present (write-back received
// from an inner level under inclusion), returning whether it was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.State != Invalid && l.Tag == tag {
			l.State = Modified
			return true
		}
	}
	return false
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineB }
