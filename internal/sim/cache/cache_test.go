package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func small() *Cache {
	// 4 sets × 2 ways × 64B lines = 512B.
	return New(Config{Name: "t", SizeB: 512, Ways: 2, LineB: 64})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeB: 0, Ways: 1, LineB: 64},
		{Name: "notmult", SizeB: 100, Ways: 1, LineB: 64},
		{Name: "ways", SizeB: 512, Ways: 3, LineB: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v unexpectedly valid", c)
		}
	}
	good := Config{Name: "ok", SizeB: 32 * 1024, Ways: 8, LineB: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v invalid: %v", good, err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{Name: "bad", SizeB: 100, Ways: 3, LineB: 7})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x1000, Exclusive)
	if !c.Access(0x1000, false) {
		t.Fatal("access after fill missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := small()
	c.Access(0x1000, false)
	c.Fill(0x1000, Exclusive)
	if !c.Access(0x103F, false) {
		t.Error("access within same 64B line missed")
	}
	if c.Access(0x1040, false) {
		t.Error("access to next line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways
	// Three addresses mapping to set 0: block addresses 0, 4, 8 (stride = sets*lineB).
	a, b, d := uint64(0), uint64(4*64), uint64(8*64)
	c.Access(a, false)
	c.Fill(a, Exclusive)
	c.Access(b, false)
	c.Fill(b, Exclusive)
	// Touch a to make b the LRU.
	c.Access(a, false)
	ev := c.Fill(d, Exclusive)
	if !ev.Valid || ev.Addr != b {
		t.Errorf("evicted %+v, want addr %#x", ev, b)
	}
	if c.Lookup(a) == Invalid {
		t.Error("recently used line evicted")
	}
	if c.Lookup(b) != Invalid {
		t.Error("LRU line still present")
	}
}

func TestWriteUpgradesToModified(t *testing.T) {
	c := small()
	c.Access(0x2000, false)
	c.Fill(0x2000, Exclusive)
	c.Access(0x2000, true)
	if st := c.Lookup(0x2000); st != Modified {
		t.Errorf("state after write = %v, want M", st)
	}
}

func TestDirtyWritebackCounted(t *testing.T) {
	c := small()
	addrs := []uint64{0, 4 * 64, 8 * 64} // all set 0
	c.Fill(addrs[0], Modified)
	c.Fill(addrs[1], Exclusive)
	ev := c.Fill(addrs[2], Exclusive) // evicts addrs[0] (LRU, dirty)
	if !ev.Valid || ev.State != Modified {
		t.Fatalf("evicted = %+v, want modified line", ev)
	}
	if c.Stats().DirtyWritebacks != 1 {
		t.Errorf("DirtyWritebacks = %d, want 1", c.Stats().DirtyWritebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x3000, Shared)
	if st := c.Invalidate(0x3000); st != Shared {
		t.Errorf("Invalidate returned %v, want S", st)
	}
	if c.Lookup(0x3000) != Invalid {
		t.Error("line present after invalidate")
	}
	if st := c.Invalidate(0x3000); st != Invalid {
		t.Errorf("second Invalidate returned %v, want I", st)
	}
	if c.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", c.Stats().Invalidations)
	}
}

func TestDowngrade(t *testing.T) {
	c := small()
	c.Fill(0x4000, Modified)
	if st := c.Downgrade(0x4000); st != Modified {
		t.Errorf("Downgrade returned prior %v, want M", st)
	}
	if st := c.Lookup(0x4000); st != Shared {
		t.Errorf("state after downgrade = %v, want S", st)
	}
	if st := c.Downgrade(0x9999000); st != Invalid {
		t.Errorf("Downgrade of absent line = %v, want I", st)
	}
}

func TestLookupDoesNotPerturb(t *testing.T) {
	c := small()
	a, b, d := uint64(0), uint64(4*64), uint64(8*64)
	c.Fill(a, Exclusive)
	c.Fill(b, Exclusive)
	// Lookup of a must NOT refresh it; a stays LRU and is evicted.
	c.Lookup(a)
	ev := c.Fill(d, Exclusive)
	if !ev.Valid || ev.Addr != a {
		t.Errorf("evicted %+v, want addr %#x (Lookup must not touch LRU)", ev, a)
	}
	s := c.Stats()
	if s.Hits != 0 && s.Misses != 0 {
		t.Error("Lookup perturbed hit/miss counters")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

// Property: working sets that fit in the cache never miss after warmup.
func TestQuickNoCapacityMissWhenFits(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(Config{Name: "q", SizeB: 4096, Ways: 4, LineB: 64})
		// 64 lines capacity; use 32 distinct lines.
		lines := make([]uint64, 32)
		for i := range lines {
			lines[i] = uint64(i) * 64
		}
		// Warm up.
		for _, a := range lines {
			if !c.Access(a, false) {
				c.Fill(a, Exclusive)
			}
		}
		// Random accesses must all hit.
		for i := 0; i < 500; i++ {
			a := lines[r.Intn(len(lines))]
			if !c.Access(a, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals accesses.
func TestQuickCounterConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := small()
		const n = 300
		for i := 0; i < n; i++ {
			a := uint64(r.Intn(64)) * 64
			if !c.Access(a, r.Bool(0.3)) {
				c.Fill(a, Exclusive)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and never holds two copies of the same line.
func TestQuickOccupancyInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(Config{Name: "q", SizeB: 1024, Ways: 2, LineB: 64})
		present := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			a := uint64(r.Intn(128)) * 64
			if !c.Access(a, false) {
				ev := c.Fill(a, Exclusive)
				if ev.Valid {
					if !present[ev.Addr] {
						return false // evicted something we never inserted
					}
					delete(present, ev.Addr)
				}
				if present[a] {
					return false // duplicate fill without eviction
				}
				present[a] = true
			} else if !present[a] {
				return false // hit on a line we don't believe present
			}
		}
		return len(present) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
