// Package branch models a gshare direction predictor with a global history
// register and a table of 2-bit saturating counters, plus the
// executed-vs-retired branch accounting the paper's BR_EXE_TO_RE metric
// needs: mispredictions cause wrong-path work whose branches execute but
// never retire.
package branch

import "fmt"

// Predictor is a gshare branch direction predictor.
type Predictor struct {
	historyBits uint
	history     uint64
	table       []uint8 // 2-bit saturating counters

	// Stats.
	Retired      uint64 // conditional branches retired
	Mispredicted uint64
}

// New builds a predictor with 2^historyBits counters. historyBits must be
// in [1, 24].
func New(historyBits uint) *Predictor {
	if historyBits < 1 || historyBits > 24 {
		panic(fmt.Sprintf("branch: historyBits %d out of [1,24]", historyBits))
	}
	return &Predictor{
		historyBits: historyBits,
		table:       make([]uint8, 1<<historyBits),
	}
}

func (p *Predictor) index(pc uint64) uint64 {
	mask := uint64(1)<<p.historyBits - 1
	return ((pc >> 2) ^ p.history) & mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and returns
// whether the prediction was correct. Counters saturate at [0,3]; history
// shifts in the outcome.
func (p *Predictor) Update(pc uint64, taken bool) (correct bool) {
	idx := p.index(pc)
	pred := p.table[idx] >= 2
	correct = pred == taken
	if taken {
		if p.table[idx] < 3 {
			p.table[idx]++
		}
	} else {
		if p.table[idx] > 0 {
			p.table[idx]--
		}
	}
	p.history = (p.history << 1) & (uint64(1)<<p.historyBits - 1)
	if taken {
		p.history |= 1
	}
	p.Retired++
	if !correct {
		p.Mispredicted++
	}
	return correct
}

// Reset returns the predictor to its post-New state: cleared history,
// weakly-not-taken counters and zeroed statistics.
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.table {
		p.table[i] = 0
	}
	p.Retired = 0
	p.Mispredicted = 0
}

// MissRatio returns mispredicted/retired, or 0 before any branch retires.
func (p *Predictor) MissRatio() float64 {
	if p.Retired == 0 {
		return 0
	}
	return float64(p.Mispredicted) / float64(p.Retired)
}
