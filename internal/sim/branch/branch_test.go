package branch

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(12)
	pc := uint64(0x400000)
	miss := 0
	for i := 0; i < 1000; i++ {
		if !p.Update(pc, true) {
			miss++
		}
	}
	// The global history register perturbs the index for the first
	// ~historyBits updates, so allow a short warmup.
	if miss > 20 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	// T,N,T,N... is perfectly predictable with global history.
	p := New(12)
	pc := uint64(0x400100)
	miss := 0
	for i := 0; i < 2000; i++ {
		if !p.Update(pc, i%2 == 0) {
			miss++
		}
	}
	// Allow warmup mispredictions only.
	if miss > 100 {
		t.Errorf("alternating branch mispredicted %d/2000 times", miss)
	}
}

func TestRandomBranchesMispredictHalf(t *testing.T) {
	p := New(12)
	r := rng.New(1)
	const n = 20000
	for i := 0; i < n; i++ {
		p.Update(uint64(r.Intn(64))<<2+0x1000, r.Bool(0.5))
	}
	ratio := p.MissRatio()
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("random branches miss ratio = %v, want ≈0.5", ratio)
	}
}

func TestBiasedBranchesMispredictLess(t *testing.T) {
	p := New(12)
	r := rng.New(2)
	const n = 20000
	for i := 0; i < n; i++ {
		p.Update(uint64(r.Intn(64))<<2+0x1000, r.Bool(0.95))
	}
	if ratio := p.MissRatio(); ratio > 0.15 {
		t.Errorf("95%%-biased branches miss ratio = %v, want < 0.15", ratio)
	}
}

func TestMissRatioEmptyIsZero(t *testing.T) {
	if got := New(8).MissRatio(); got != 0 {
		t.Errorf("MissRatio with no branches = %v, want 0", got)
	}
}

func TestPredictDoesNotTrain(t *testing.T) {
	p := New(8)
	before := p.table[p.index(0x1000)]
	for i := 0; i < 10; i++ {
		p.Predict(0x1000)
	}
	if p.table[p.index(0x1000)] != before || p.Retired != 0 {
		t.Error("Predict modified predictor state")
	}
}

// Property: Mispredicted ≤ Retired, and MissRatio ∈ [0,1].
func TestQuickCounterInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := New(10)
		for i := 0; i < 500; i++ {
			p.Update(uint64(r.Intn(256))<<2, r.Bool(r.Float64()))
		}
		return p.Mispredicted <= p.Retired && p.MissRatio() >= 0 && p.MissRatio() <= 1 && p.Retired == 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Update returns correct==true exactly when Predict beforehand
// matched the outcome.
func TestQuickUpdateConsistentWithPredict(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := New(10)
		for i := 0; i < 300; i++ {
			pc := uint64(r.Intn(128)) << 2
			taken := r.Bool(0.5)
			pred := p.Predict(pc)
			correct := p.Update(pc, taken)
			if correct != (pred == taken) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
