// Package event defines the hardware event vocabulary shared between the
// microarchitecture simulator (which produces ground-truth counts) and the
// perf layer (which samples them through simulated PMCs and derives the
// paper's 45 metrics).
//
// The set mirrors the ~50 Westmere events the paper programs through MSRs
// (§IV-C: "We collect more than 50 events (some metrics require multiple
// events)").
package event

import "fmt"

// ID identifies one countable hardware event.
type ID int

// The event catalog. Order is stable; Count arrays are indexed by ID.
const (
	// Retirement and cycles.
	InstRetired  ID = iota
	InstKernel      // instructions retired in ring 0
	UopsRetired     // micro-ops retired
	UopsExecuted    // micro-ops executed (incl. wrong path)
	Cycles          // core clock cycles

	// Instruction mix (retired).
	Loads
	Stores
	Branches
	IntOps
	FPX87Ops
	SSEFPOps

	// Branch execution.
	BranchesExecuted // executed incl. wrong path
	BranchMisses

	// L1 instruction cache.
	L1IMiss
	L1IHit

	// L2 (private, unified).
	L2Miss
	L2Hit

	// L3 (shared, per socket).
	L3Miss
	L3Hit

	// Load source breakdown (demand loads).
	LoadHitLFB
	LoadHitL2
	LoadHitSibling // another core's private cache (cross-core forward)
	LoadHitL3      // unshared line in L3
	LoadLLCMiss

	// TLBs.
	ITLBMiss
	ITLBWalkCycles
	DTLBMiss
	DTLBWalkCycles
	DataHitSTLB // L1 DTLB misses that hit the shared second-level TLB

	// Pipeline stall cycle attribution.
	FetchStallCycles
	ILDStallCycles
	DecoderStallCycles
	RATStallCycles
	ResourceStallCycles
	UopsExeCycles   // cycles with ≥1 µop executing
	UopsStallCycles // cycles with no µop executing

	// Offcore requests (leaving the core's private hierarchy).
	OffcoreData
	OffcoreCode
	OffcoreRFO
	OffcoreWB

	// Snoop responses observed on the coherence interconnect.
	SnoopHit
	SnoopHitE
	SnoopHitM

	// Memory-level parallelism bookkeeping: MLPWeighted accumulates the
	// number of outstanding misses integrated over cycles with ≥1 miss
	// outstanding; MLPCycles counts those cycles. MLP = weighted/cycles.
	MLPWeighted
	MLPCycles

	// Memory accesses (loads+stores) for operation-intensity ratios.
	MemAccesses

	NumEvents // sentinel: number of events
)

var names = [NumEvents]string{
	InstRetired:         "INST_RETIRED",
	InstKernel:          "INST_RETIRED.KERNEL",
	UopsRetired:         "UOPS_RETIRED",
	UopsExecuted:        "UOPS_EXECUTED",
	Cycles:              "CPU_CLK_UNHALTED",
	Loads:               "MEM_INST_RETIRED.LOADS",
	Stores:              "MEM_INST_RETIRED.STORES",
	Branches:            "BR_INST_RETIRED.ALL",
	IntOps:              "ARITH.INT",
	FPX87Ops:            "FP_COMP_OPS_EXE.X87",
	SSEFPOps:            "FP_COMP_OPS_EXE.SSE_FP",
	BranchesExecuted:    "BR_INST_EXEC.ALL",
	BranchMisses:        "BR_MISP_RETIRED.ALL",
	L1IMiss:             "L1I.MISSES",
	L1IHit:              "L1I.HITS",
	L2Miss:              "L2_RQSTS.MISS",
	L2Hit:               "L2_RQSTS.HIT",
	L3Miss:              "LLC.MISSES",
	L3Hit:               "LLC.HITS",
	LoadHitLFB:          "MEM_LOAD_RETIRED.HIT_LFB",
	LoadHitL2:           "MEM_LOAD_RETIRED.L2_HIT",
	LoadHitSibling:      "MEM_LOAD_RETIRED.OTHER_CORE_L2_HIT_HITM",
	LoadHitL3:           "MEM_LOAD_RETIRED.LLC_UNSHARED_HIT",
	LoadLLCMiss:         "MEM_LOAD_RETIRED.LLC_MISS",
	ITLBMiss:            "ITLB_MISSES.ANY",
	ITLBWalkCycles:      "ITLB_MISSES.WALK_CYCLES",
	DTLBMiss:            "DTLB_MISSES.ANY",
	DTLBWalkCycles:      "DTLB_MISSES.WALK_CYCLES",
	DataHitSTLB:         "DTLB_MISSES.STLB_HIT",
	FetchStallCycles:    "ILD_STALL.IQ_FULL", // fetch-side stall proxy
	ILDStallCycles:      "ILD_STALL.ANY",
	DecoderStallCycles:  "DECODER_STALL",
	RATStallCycles:      "RAT_STALLS.ANY",
	ResourceStallCycles: "RESOURCE_STALLS.ANY",
	UopsExeCycles:       "UOPS_EXECUTED.CORE_ACTIVE_CYCLES",
	UopsStallCycles:     "UOPS_EXECUTED.CORE_STALL_CYCLES",
	OffcoreData:         "OFFCORE_REQUESTS.DEMAND_READ_DATA",
	OffcoreCode:         "OFFCORE_REQUESTS.DEMAND_READ_CODE",
	OffcoreRFO:          "OFFCORE_REQUESTS.DEMAND_RFO",
	OffcoreWB:           "OFFCORE_REQUESTS.WRITEBACK",
	SnoopHit:            "SNOOP_RESPONSE.HIT",
	SnoopHitE:           "SNOOP_RESPONSE.HITE",
	SnoopHitM:           "SNOOP_RESPONSE.HITM",
	MLPWeighted:         "OFFCORE_OUTSTANDING.WEIGHTED_CYCLES",
	MLPCycles:           "OFFCORE_OUTSTANDING.ACTIVE_CYCLES",
	MemAccesses:         "MEM_INST_RETIRED.ANY",
}

// String returns the perf-style event mnemonic.
func (id ID) String() string {
	if id < 0 || id >= NumEvents {
		return fmt.Sprintf("EVENT(%d)", int(id))
	}
	return names[id]
}

// Counts is a fixed-size event-count vector indexed by ID.
type Counts [NumEvents]uint64

// Add accumulates other into c.
func (c *Counts) Add(other *Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Sub returns c - other element-wise (for slice deltas). Underflow panics,
// since counts are monotone within a run.
func (c *Counts) Sub(other *Counts) Counts {
	var out Counts
	for i := range c {
		if c[i] < other[i] {
			panic(fmt.Sprintf("event: count %v went backwards (%d < %d)", ID(i), c[i], other[i]))
		}
		out[i] = c[i] - other[i]
	}
	return out
}

// Get returns the count for id.
func (c *Counts) Get(id ID) uint64 { return c[id] }

// Inc adds n to event id.
func (c *Counts) Inc(id ID, n uint64) { c[id] += n }

// All returns the list of all event IDs in catalog order.
func All() []ID {
	out := make([]ID, NumEvents)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}
