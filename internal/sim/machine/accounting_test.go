package machine

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim/event"
)

// TestOffcoreClassification checks that the four offcore request classes
// are attributed correctly: data reads, code reads, RFOs, and dirty
// write-backs.
func TestOffcoreClassification(t *testing.T) {
	m := tiny(t)
	// Core 0: a load (offcore data read), a store to a different line
	// (offcore RFO), then enough conflicting loads to evict the dirty
	// line from the small L2 (offcore write-back). Code addresses jump
	// across a range far beyond the 1 KB L1I/4 KB L2 to force offcore
	// code reads.
	var ins []Instr
	ins = append(ins, Instr{PC: 0x100000, Kind: KindLoad, Addr: 0x40000, Uops: 1})
	ins = append(ins, Instr{PC: 0x200000, Kind: KindStore, Addr: 0x80000, Uops: 1})
	// Evict: the tiny L2 is 4 KB/8-way → 8 sets; lines mapping to the
	// same set as 0x80000 (set index (0x80000>>6)%8 = 0).
	for i := 1; i <= 16; i++ {
		addr := uint64(0x80000) + uint64(i)*8*64 // same set, different tags
		ins = append(ins, Instr{PC: 0x300000 + uint64(i)*4096, Kind: KindLoad, Addr: addr, Uops: 1})
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.OffcoreData) == 0 {
		t.Error("no offcore data reads")
	}
	if f.Get(event.OffcoreRFO) == 0 {
		t.Error("no offcore RFOs")
	}
	if f.Get(event.OffcoreCode) == 0 {
		t.Error("no offcore code reads")
	}
	if f.Get(event.OffcoreWB) == 0 {
		t.Error("no offcore write-backs after dirty eviction")
	}
}

// TestMLPRecorded checks that overlapping long-latency misses register
// memory-level parallelism above 1.
func TestMLPRecorded(t *testing.T) {
	m := tiny(t)
	// Independent loads to distinct far-apart lines: all miss to memory
	// and overlap in the MSHRs.
	var ins []Instr
	for i := 0; i < 64; i++ {
		ins = append(ins, Instr{PC: 0x1000 + uint64(i%8)*4, Kind: KindLoad,
			Addr: uint64(0x100000) + uint64(i)*64*1024, Uops: 1})
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.MLPCycles) == 0 {
		t.Fatal("no MLP cycles recorded")
	}
	mlp := float64(f.Get(event.MLPWeighted)) / float64(f.Get(event.MLPCycles))
	if mlp <= 1.0 {
		t.Errorf("MLP = %v, want > 1 for independent overlapping misses", mlp)
	}
}

// TestUopsAreCallerProvided documents the contract that the machine
// retires exactly the µops the instruction carries (the trace layer, not
// the machine, decides kernel paths' µop expansion).
func TestUopsAreCallerProvided(t *testing.T) {
	m := tiny(t)
	ins := []Instr{{PC: 0, Kind: KindInt, Uops: 3, Kernel: true}}
	res := run(t, m, map[int][]Instr{0: ins}, 10)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.UopsRetired) != 3 {
		t.Errorf("UopsRetired = %d, want 3", f.Get(event.UopsRetired))
	}
}

// TestCrossSocketTransferCounted: a read served by the remote socket
// counts a snoop response and leaves both L3s holding the line.
func TestCrossSocketTransfer(t *testing.T) {
	m := tiny(t) // 2 sockets × 2 cores: cores 0,1 on socket 0; 2,3 on socket 1
	addr := uint64(0x70000)
	perCore := map[int][]Instr{
		0: {{PC: 0x100, Kind: KindLoad, Addr: addr, Uops: 1}},
		2: {{PC: 0x200, Kind: KindLoad, Addr: addr, Uops: 1}},
	}
	run(t, m, perCore, 10)
	blk := m.block(addr)
	if m.sockets[0].l3.Lookup(blk) == 0 {
		t.Error("socket 0 L3 lost the line")
	}
	if m.sockets[1].l3.Lookup(blk) == 0 {
		t.Error("socket 1 L3 did not cache the remotely fetched line")
	}
}

// TestRemoteRFOInvalidatesBothL3s: after a store from the other socket,
// the first socket must hold no copy anywhere.
func TestRemoteRFOInvalidatesBothL3s(t *testing.T) {
	m := tiny(t)
	addr := uint64(0x70000)
	perCore := map[int][]Instr{
		0: {{PC: 0x100, Kind: KindLoad, Addr: addr, Uops: 1}},
		2: {{PC: 0x200, Kind: KindStore, Addr: addr, Uops: 1}},
	}
	run(t, m, perCore, 10)
	blk := m.block(addr)
	if st := m.sockets[0].l3.Lookup(blk); st != 0 {
		t.Errorf("socket 0 L3 still holds the line in state %v after remote RFO", st)
	}
	if st := m.cores[0].l2.Lookup(blk); st != 0 {
		t.Errorf("core 0 L2 still holds the line in state %v after remote RFO", st)
	}
}

// TestQuickNoSharingNoSnoops: cores touching disjoint code AND data
// ranges must never produce snoop responses or sibling hits. (Shared
// code alone legitimately snoops — real text segments are shared.)
func TestQuickNoSharingNoSnoops(t *testing.T) {
	m := tiny(t)
	r := rng.New(5)
	perCore := map[int][]Instr{}
	for c := 0; c < 4; c++ {
		base := uint64(c+1) << 24
		codeBase := uint64(c+1) << 20
		ins := make([]Instr, 400)
		for i := range ins {
			k := KindLoad
			if r.Bool(0.3) {
				k = KindStore
			}
			ins[i] = Instr{PC: codeBase + uint64(r.Intn(256))*4, Kind: k,
				Addr: base + uint64(r.Intn(1<<16))&^7, Uops: 1}
		}
		perCore[c] = ins
	}
	res := run(t, m, perCore, 500)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.SnoopHit)+f.Get(event.SnoopHitE)+f.Get(event.SnoopHitM) != 0 {
		t.Error("snoop responses on disjoint working sets")
	}
	if f.Get(event.LoadHitSibling) != 0 {
		t.Error("sibling hits on disjoint working sets")
	}
}
