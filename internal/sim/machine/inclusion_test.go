package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim/cache"
)

// TestQuickL3Inclusion verifies the inclusive-hierarchy invariant after
// arbitrary multicore runs: every block present in a core's private L2
// must also be present in its socket's L3, and the socket directory must
// exactly reflect L2 presence.
func TestQuickL3Inclusion(t *testing.T) {
	cfg := Westmere()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	cfg.L1I.SizeB = 1 << 10
	cfg.L1D.SizeB = 1 << 10
	cfg.L2.SizeB = 2 << 10
	cfg.L3.SizeB = 8 << 10 // tiny L3 to force back-invalidations

	f := func(seed uint64) bool {
		m, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		sources := make([]Source, 4)
		for c := 0; c < 4; c++ {
			ins := make([]Instr, 600)
			for i := range ins {
				k := KindLoad
				if r.Bool(0.3) {
					k = KindStore
				}
				ins[i] = Instr{
					PC:   uint64(r.Intn(512)) * 4,
					Kind: k,
					// Narrow address range so cores contend and L3 sets
					// overflow.
					Addr: uint64(r.Intn(1<<15)) &^ 7,
					Uops: 1,
				}
			}
			sources[c] = &SliceSource{Instrs: ins}
		}
		if _, err := m.Run(sources, 600, 2); err != nil {
			return false
		}

		// Check inclusion and directory consistency over the address
		// range used.
		for blk := uint64(0); blk < 1<<15; blk += 64 {
			for _, c := range m.cores {
				st := c.l2.Lookup(blk)
				s := m.sockets[c.sock]
				if st != cache.Invalid {
					if s.l3.Lookup(blk) == cache.Invalid {
						t.Logf("block %#x in core %d L2 (%v) but not in socket %d L3", blk, c.id, st, c.sock)
						return false
					}
					if s.dir[blk]&(1<<uint(c.id)) == 0 {
						t.Logf("block %#x in core %d L2 but missing from directory", blk, c.id)
						return false
					}
				} else if s.dir[blk]&(1<<uint(c.id)) != 0 {
					t.Logf("directory claims core %d holds %#x but its L2 does not", c.id, blk)
					return false
				}
				// L1D inclusion within the private hierarchy.
				if c.l1d.Lookup(blk) != cache.Invalid && st == cache.Invalid {
					t.Logf("block %#x in core %d L1D but not L2", blk, c.id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickSingleWriterInvariant: a block in Modified state in one core's
// L2 must not be valid in any other core's private cache.
func TestQuickSingleWriterInvariant(t *testing.T) {
	cfg := Westmere()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	cfg.L2.SizeB = 4 << 10
	cfg.L3.SizeB = 32 << 10

	f := func(seed uint64) bool {
		m, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		sources := make([]Source, 4)
		for c := 0; c < 4; c++ {
			ins := make([]Instr, 400)
			for i := range ins {
				k := KindLoad
				if r.Bool(0.5) {
					k = KindStore
				}
				// Small shared range: heavy contention.
				ins[i] = Instr{PC: uint64(r.Intn(64)) * 4, Kind: k, Addr: uint64(r.Intn(1<<12)) &^ 7, Uops: 1}
			}
			sources[c] = &SliceSource{Instrs: ins}
		}
		if _, err := m.Run(sources, 400, 1); err != nil {
			return false
		}
		for blk := uint64(0); blk < 1<<12; blk += 64 {
			writer := -1
			for _, c := range m.cores {
				if c.l2.Lookup(blk) == cache.Modified {
					if writer >= 0 {
						t.Logf("block %#x modified in cores %d and %d", blk, writer, c.id)
						return false
					}
					writer = c.id
				}
			}
			if writer < 0 {
				continue
			}
			for _, c := range m.cores {
				if c.id == writer {
					continue
				}
				if c.l2.Lookup(blk) != cache.Invalid || c.l1d.Lookup(blk) != cache.Invalid {
					t.Logf("block %#x modified in core %d but valid in core %d", blk, writer, c.id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
