package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim/event"
)

// tiny returns a 2-socket, 2-cores-per-socket machine with small caches so
// tests exercise evictions cheaply.
func tiny(t *testing.T) *Machine {
	t.Helper()
	cfg := Westmere()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	cfg.L1I.SizeB = 1 << 10
	cfg.L1D.SizeB = 1 << 10
	cfg.L2.SizeB = 4 << 10
	cfg.L3.SizeB = 32 << 10
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// run executes the given instruction slices, one per core (missing cores
// get empty streams).
func run(t *testing.T, m *Machine, perCore map[int][]Instr, max int) *RunResult {
	t.Helper()
	sources := make([]Source, len(m.cores))
	for i := range sources {
		sources[i] = &SliceSource{Instrs: perCore[i]}
	}
	res, err := m.Run(sources, max, 4)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func loads(addrs []uint64, pc uint64) []Instr {
	out := make([]Instr, len(addrs))
	for i, a := range addrs {
		out[i] = Instr{PC: pc, Kind: KindLoad, Addr: a, Uops: 1}
	}
	return out
}

func TestWestmereConfigValid(t *testing.T) {
	if err := Westmere().Validate(); err != nil {
		t.Fatal(err)
	}
	if Westmere().Cores() != 12 {
		t.Errorf("Cores = %d, want 12", Westmere().Cores())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := Westmere()
	cfg.Sockets = 0
	if err := cfg.Validate(); err == nil {
		t.Error("0 sockets accepted")
	}
	cfg = Westmere()
	cfg.Sockets = 4
	cfg.CoresPerSocket = 6
	if err := cfg.Validate(); err == nil {
		t.Error("24 cores accepted (directory bitmask is 16 bits)")
	}
	cfg = Westmere()
	cfg.L1I.LineB = 32
	if err := cfg.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestRunValidation(t *testing.T) {
	m := tiny(t)
	if _, err := m.Run([]Source{&SliceSource{}}, 10, 1); err == nil {
		t.Error("wrong source count accepted")
	}
	srcs := make([]Source, 4)
	for i := range srcs {
		srcs[i] = &SliceSource{}
	}
	if _, err := m.Run(srcs, 0, 1); err == nil {
		t.Error("zero instruction budget accepted")
	}
}

func TestInstructionCountsRetired(t *testing.T) {
	m := tiny(t)
	res := run(t, m, map[int][]Instr{0: loads([]uint64{0, 64, 128}, 0x1000)}, 100)
	final := res.Snapshots[len(res.Snapshots)-1]
	if final.Get(event.InstRetired) != 3 {
		t.Errorf("InstRetired = %d, want 3", final.Get(event.InstRetired))
	}
	if final.Get(event.Loads) != 3 {
		t.Errorf("Loads = %d, want 3", final.Get(event.Loads))
	}
	if res.Instructions != 3 {
		t.Errorf("Instructions = %d, want 3", res.Instructions)
	}
}

func TestColdLoadsMissThenHit(t *testing.T) {
	m := tiny(t)
	// Two accesses to the same line: first misses everywhere, second hits L1D.
	res := run(t, m, map[int][]Instr{0: loads([]uint64{0x4000, 0x4000}, 0x100)}, 100)
	final := res.Snapshots[len(res.Snapshots)-1]
	if final.Get(event.LoadLLCMiss) != 1 {
		t.Errorf("LoadLLCMiss = %d, want 1", final.Get(event.LoadLLCMiss))
	}
	if final.Get(event.OffcoreData) != 1 {
		t.Errorf("OffcoreData = %d, want 1", final.Get(event.OffcoreData))
	}
}

func TestKernelModeCounted(t *testing.T) {
	m := tiny(t)
	ins := []Instr{
		{PC: 0x1000, Kind: KindInt, Uops: 1, Kernel: true},
		{PC: 0x1004, Kind: KindInt, Uops: 1},
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	final := res.Snapshots[len(res.Snapshots)-1]
	if final.Get(event.InstKernel) != 1 {
		t.Errorf("InstKernel = %d, want 1", final.Get(event.InstKernel))
	}
}

func TestInstructionMixCounted(t *testing.T) {
	m := tiny(t)
	ins := []Instr{
		{PC: 0, Kind: KindInt, Uops: 1},
		{PC: 4, Kind: KindFP, Uops: 1},
		{PC: 8, Kind: KindSSE, Uops: 1},
		{PC: 12, Kind: KindBranch, Taken: true, Uops: 1},
		{PC: 16, Kind: KindStore, Addr: 0x9000, Uops: 1},
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	checks := map[event.ID]uint64{
		event.IntOps: 1, event.FPX87Ops: 1, event.SSEFPOps: 1,
		event.Branches: 1, event.Stores: 1, event.MemAccesses: 1,
	}
	for id, want := range checks {
		if got := f.Get(id); got != want {
			t.Errorf("%v = %d, want %d", id, got, want)
		}
	}
}

func TestSnoopHitMOnSharedModifiedLine(t *testing.T) {
	m := tiny(t)
	addr := uint64(0x8000)
	// Core 0 writes the line (Modified); core 1 then reads it.
	perCore := map[int][]Instr{
		0: {{PC: 0x100, Kind: KindStore, Addr: addr, Uops: 1}},
		1: {{PC: 0x200, Kind: KindLoad, Addr: addr, Uops: 1}},
	}
	res := run(t, m, perCore, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.SnoopHitM) == 0 {
		t.Error("no SNOOP_HITM after cross-core read of modified line")
	}
	if f.Get(event.LoadHitSibling) == 0 {
		t.Error("no sibling-cache load hit recorded")
	}
}

func TestSnoopHitEOnCleanExclusiveLine(t *testing.T) {
	m := tiny(t)
	addr := uint64(0x8000)
	perCore := map[int][]Instr{
		0: {{PC: 0x100, Kind: KindLoad, Addr: addr, Uops: 1}},
		1: {{PC: 0x200, Kind: KindLoad, Addr: addr, Uops: 1}},
	}
	res := run(t, m, perCore, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.SnoopHitE) == 0 {
		t.Error("no SNOOP_HITE after cross-core read of exclusive line")
	}
}

func TestRFOInvalidatesOtherCopy(t *testing.T) {
	m := tiny(t)
	addr := uint64(0x8000)
	// Core 0 loads (E), core 1 stores: must invalidate core 0's copy.
	perCore := map[int][]Instr{
		0: {{PC: 0x100, Kind: KindLoad, Addr: addr, Uops: 1}},
		1: {{PC: 0x200, Kind: KindStore, Addr: addr, Uops: 1}},
	}
	run(t, m, perCore, 100)
	if st := m.cores[0].l2.Lookup(m.block(addr)); st != 0 /* Invalid */ {
		t.Errorf("core 0 L2 state after remote RFO = %v, want Invalid", st)
	}
}

func TestL1IHitsDominateForTightLoop(t *testing.T) {
	m := tiny(t)
	ins := make([]Instr, 500)
	for i := range ins {
		ins[i] = Instr{PC: 0x4000 + uint64(i%16)*4, Kind: KindInt, Uops: 1}
	}
	res := run(t, m, map[int][]Instr{0: ins}, 1000)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.L1IHit) < 490 {
		t.Errorf("L1IHit = %d, want ≥490 for a 1-line loop", f.Get(event.L1IHit))
	}
}

func TestBranchMispredictsAccounted(t *testing.T) {
	m := tiny(t)
	r := rng.New(3)
	ins := make([]Instr, 2000)
	for i := range ins {
		ins[i] = Instr{PC: 0x4000 + uint64(r.Intn(64))*4, Kind: KindBranch, Taken: r.Bool(0.5), Uops: 1}
	}
	res := run(t, m, map[int][]Instr{0: ins}, 4000)
	f := res.Snapshots[len(res.Snapshots)-1]
	misses := f.Get(event.BranchMisses)
	if misses < 400 {
		t.Errorf("BranchMisses = %d, want ≈1000 for random branches", misses)
	}
	if f.Get(event.BranchesExecuted) <= f.Get(event.Branches) {
		t.Error("executed branches should exceed retired after mispredicts")
	}
	if f.Get(event.FetchStallCycles) == 0 {
		t.Error("mispredicts should produce fetch stalls")
	}
}

func TestCyclesAdvance(t *testing.T) {
	m := tiny(t)
	ins := make([]Instr, 100)
	for i := range ins {
		ins[i] = Instr{PC: uint64(i) * 4, Kind: KindInt, Uops: 2}
	}
	res := run(t, m, map[int][]Instr{0: ins}, 200)
	f := res.Snapshots[len(res.Snapshots)-1]
	cycles := f.Get(event.Cycles)
	// 100 instructions × 2 µops / width 4 = 50 base cycles minimum.
	if cycles < 50 {
		t.Errorf("Cycles = %d, want ≥ 50", cycles)
	}
	if f.Get(event.UopsRetired) != 200 {
		t.Errorf("UopsRetired = %d, want 200", f.Get(event.UopsRetired))
	}
}

func TestResourceStallFromDependentLoad(t *testing.T) {
	m := tiny(t)
	ins := []Instr{
		{PC: 0, Kind: KindLoad, Addr: 0x100000, Uops: 1},
		{PC: 4, Kind: KindInt, Uops: 1, Dependent: true},
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.ResourceStallCycles) == 0 {
		t.Error("dependent use of a memory-latency load produced no resource stall")
	}
}

func TestLFBHitOnBackToBackMisses(t *testing.T) {
	m := tiny(t)
	// Two loads to the same line: the first misses to memory, the second
	// arrives while the fill is outstanding.
	ins := []Instr{
		{PC: 0, Kind: KindLoad, Addr: 0x200000, Uops: 1},
		{PC: 4, Kind: KindLoad, Addr: 0x200008, Uops: 1},
	}
	res := run(t, m, map[int][]Instr{0: ins}, 100)
	f := res.Snapshots[len(res.Snapshots)-1]
	if f.Get(event.LoadHitLFB) != 1 {
		t.Errorf("LoadHitLFB = %d, want 1", f.Get(event.LoadHitLFB))
	}
}

func TestSnapshotsMonotone(t *testing.T) {
	m := tiny(t)
	r := rng.New(9)
	perCore := map[int][]Instr{}
	for c := 0; c < 4; c++ {
		ins := make([]Instr, 800)
		for i := range ins {
			ins[i] = Instr{
				PC:   uint64(r.Intn(4096)) * 4,
				Kind: KindLoad, Addr: uint64(r.Intn(1 << 20)),
				Uops: 1,
			}
		}
		perCore[c] = ins
	}
	res := run(t, m, perCore, 1000)
	if len(res.Snapshots) < 2 {
		t.Fatalf("snapshots = %d, want ≥ 2", len(res.Snapshots))
	}
	for i := 1; i < len(res.Snapshots); i++ {
		prev, cur := res.Snapshots[i-1], res.Snapshots[i]
		for id := 0; id < int(event.NumEvents); id++ {
			if cur[id] < prev[id] {
				t.Fatalf("event %v decreased between slices %d and %d", event.ID(id), i-1, i)
			}
		}
	}
}

// Property: conservation laws hold for arbitrary random streams —
// loads+stores = mem accesses, L1I hits+misses = instructions fetched,
// load source breakdown ≤ loads, stall attributions ≤ cycles.
func TestQuickConservation(t *testing.T) {
	cfg := Westmere()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 2
	cfg.L1I.SizeB = 1 << 10
	cfg.L1D.SizeB = 1 << 10
	cfg.L2.SizeB = 4 << 10
	cfg.L3.SizeB = 32 << 10

	f := func(seed uint64) bool {
		m, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		sources := make([]Source, 2)
		for c := 0; c < 2; c++ {
			ins := make([]Instr, 400)
			for i := range ins {
				k := KindInt
				switch r.Intn(5) {
				case 0:
					k = KindLoad
				case 1:
					k = KindStore
				case 2:
					k = KindBranch
				}
				ins[i] = Instr{
					PC:        uint64(r.Intn(2048)) * 4,
					Kind:      k,
					Addr:      uint64(r.Intn(1 << 18)),
					Taken:     r.Bool(0.5),
					Kernel:    r.Bool(0.2),
					Uops:      uint8(1 + r.Intn(3)),
					Complex:   r.Bool(0.1),
					Dependent: r.Bool(0.3),
				}
			}
			sources[c] = &SliceSource{Instrs: ins}
		}
		res, err := m.Run(sources, 500, 3)
		if err != nil {
			return false
		}
		f := res.Snapshots[len(res.Snapshots)-1]
		if f.Get(event.Loads)+f.Get(event.Stores) != f.Get(event.MemAccesses) {
			return false
		}
		if f.Get(event.L1IHit)+f.Get(event.L1IMiss) != f.Get(event.InstRetired) {
			return false
		}
		srcSum := f.Get(event.LoadHitLFB) + f.Get(event.LoadHitL2) +
			f.Get(event.LoadHitSibling) + f.Get(event.LoadHitL3) + f.Get(event.LoadLLCMiss)
		if srcSum > f.Get(event.Loads) {
			return false
		}
		if f.Get(event.InstKernel) > f.Get(event.InstRetired) {
			return false
		}
		cycles := f.Get(event.Cycles)
		if f.Get(event.UopsStallCycles) > cycles {
			return false
		}
		if f.Get(event.UopsExeCycles)+f.Get(event.UopsStallCycles) > cycles+1 {
			return false
		}
		return f.Get(event.BranchMisses) <= f.Get(event.Branches)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — identical configs and streams produce identical
// final snapshots.
func TestQuickDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func() event.Counts {
			cfg := Westmere()
			cfg.Sockets = 1
			cfg.CoresPerSocket = 2
			cfg.L2.SizeB = 4 << 10
			cfg.L3.SizeB = 32 << 10
			m, _ := New(cfg)
			r := rng.New(seed)
			sources := make([]Source, 2)
			for c := 0; c < 2; c++ {
				ins := make([]Instr, 300)
				for i := range ins {
					ins[i] = Instr{
						PC:   uint64(r.Intn(1024)) * 4,
						Kind: KindLoad, Addr: uint64(r.Intn(1 << 16)),
						Uops: 1,
					}
				}
				sources[c] = &SliceSource{Instrs: ins}
			}
			res, _ := m.Run(sources, 300, 2)
			return res.Snapshots[len(res.Snapshots)-1]
		}
		return mk() == mk()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
