package machine

import (
	"fmt"
	"math/bits"

	"repro/internal/sim/branch"
	"repro/internal/sim/cache"
	"repro/internal/sim/event"
	"repro/internal/sim/tlb"
)

// Machine is one simulated node: sockets of cores around shared L3s,
// kept coherent with a MESI snoop protocol.
type Machine struct {
	cfg     Config
	sockets []*socket
	cores   []*core
	lineB   uint64

	// Incremental-snapshot state: snapTotal is the machine-wide total as
	// of the last Snapshot call, snapCore the per-core contribution folded
	// into it, and snapDirty each core's dirty counter at that point.
	// Cores whose counter is unchanged (idle since the previous slice, or
	// done with their stream) are skipped instead of re-summed.
	snapTotal event.Counts
	snapCore  []event.Counts
	snapDirty []uint64
}

// socket groups cores around a shared, inclusive L3. dir tracks, for each
// block present in the socket's private caches, the bitmask of global core
// IDs holding it (the core-valid bits of the real L3's directory).
type socket struct {
	id  int
	l3  *cache.Cache
	dir map[uint64]uint16
}

// core is one out-of-order core plus its private hierarchy and the
// interval-model accounting state.
type core struct {
	id   int
	sock int

	l1i, l1d, l2 *cache.Cache
	tlbs         *tlb.Hierarchy
	bp           *branch.Predictor

	ev event.Counts

	// dirty counts executed instructions; Snapshot uses it to skip cores
	// whose accounting state cannot have changed since the last snapshot.
	dirty uint64

	// Time and stall attribution, in fractional cycles.
	cycles     float64
	fetchStall float64
	ildStall   float64
	decStall   float64
	ratStall   float64
	resStall   float64

	uopsExecuted     float64
	branchesExecuted float64

	// Outstanding long-latency misses (completion times) for MLP and
	// MSHR pressure; pendingFill maps blocks to completion for LFB hits.
	outstanding        []float64
	pendingFill        map[uint64]float64
	lastLoadCompletion float64

	mlpWeighted float64
	mlpCycles   float64
}

// New builds a node from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, lineB: uint64(cfg.L2.LineB)}
	for s := 0; s < cfg.Sockets; s++ {
		m.sockets = append(m.sockets, &socket{
			id:  s,
			l3:  cache.New(cfg.L3),
			dir: make(map[uint64]uint16),
		})
	}
	for c := 0; c < cfg.Cores(); c++ {
		m.cores = append(m.cores, &core{
			id:          c,
			sock:        c / cfg.CoresPerSocket,
			l1i:         cache.New(cfg.L1I),
			l1d:         cache.New(cfg.L1D),
			l2:          cache.New(cfg.L2),
			tlbs:        tlb.New(cfg.ITLB, cfg.DTLB, cfg.STLB, cfg.TLBWalkCycles),
			bp:          branch.New(cfg.BranchHistoryBits),
			pendingFill: make(map[uint64]float64),
		})
	}
	m.snapCore = make([]event.Counts, len(m.cores))
	m.snapDirty = make([]uint64, len(m.cores))
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Reset returns the machine to its post-New state so one allocation can be
// reused across node simulations. A reset machine is bit-identical in
// behaviour to a freshly constructed one: caches, TLBs, branch predictors,
// directories and all accounting state are cleared.
func (m *Machine) Reset() {
	for _, s := range m.sockets {
		s.l3.Reset()
		clear(s.dir)
	}
	for _, c := range m.cores {
		c.l1i.Reset()
		c.l1d.Reset()
		c.l2.Reset()
		c.tlbs.Reset()
		c.bp.Reset()
		c.ev = event.Counts{}
		c.cycles = 0
		c.fetchStall = 0
		c.ildStall = 0
		c.decStall = 0
		c.ratStall = 0
		c.resStall = 0
		c.uopsExecuted = 0
		c.branchesExecuted = 0
		c.outstanding = c.outstanding[:0]
		clear(c.pendingFill)
		c.lastLoadCompletion = 0
		c.mlpWeighted = 0
		c.mlpCycles = 0
		c.dirty = 0
	}
	m.snapTotal = event.Counts{}
	for i := range m.snapCore {
		m.snapCore[i] = event.Counts{}
		m.snapDirty[i] = 0
	}
}

func (m *Machine) block(addr uint64) uint64 { return addr &^ (m.lineB - 1) }

// advance moves the core's clock by dt cycles, integrating MLP over the
// window and pruning completed misses.
func (c *core) advance(dt float64) {
	if dt <= 0 {
		return
	}
	start := c.cycles
	end := start + dt
	// Count outstanding misses alive anywhere in the window. A finer
	// integration is unnecessary at this fidelity.
	alive := 0
	kept := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > start {
			alive++
		}
		if t > end {
			kept = append(kept, t)
		}
	}
	c.outstanding = kept
	if alive > 0 {
		c.mlpWeighted += float64(alive) * dt
		c.mlpCycles += dt
	}
	c.cycles = end
}

// stall advances time by dt and attributes it to the given bucket.
func (c *core) stall(bucket *float64, dt float64) {
	*bucket += dt
	c.advance(dt)
}

// fetchSource classifies where a block was served from.
type fetchSource int

const (
	srcL2 fetchSource = iota
	srcSibling
	srcL3Unshared
	srcL3Shared
	srcRemote
	srcMemory
)

// fetchBlock resolves a block that missed the private L2: it consults the
// socket directory (snooping sibling cores), the local L3, the remote
// socket, and finally memory; fills the line into L3/L2/L1 of the
// requester; and returns the source and latency. rfo requests invalidate
// all other copies; code requests fill the L1I instead of the L1D.
func (m *Machine) fetchBlock(c *core, blk uint64, rfo, code bool) (fetchSource, uint64) {
	own := m.sockets[c.sock]
	myBit := uint16(1) << uint(c.id)

	src := srcMemory
	latency := m.cfg.MemLatency

	// Snoop sibling cores in the owning socket.
	holders := own.dir[blk] &^ myBit
	bestState := cache.Invalid
	for h := holders; h != 0; h &= h - 1 {
		st := m.cores[bits.TrailingZeros16(h)].l2.Lookup(blk)
		if st > bestState {
			bestState = st
		}
	}

	l3Hit := own.l3.Access(blk, false)
	switch {
	case bestState == cache.Modified:
		c.ev.Inc(event.SnoopHitM, 1)
		src, latency = srcSibling, m.cfg.SiblingLatency
	case bestState == cache.Exclusive:
		c.ev.Inc(event.SnoopHitE, 1)
		src, latency = srcSibling, m.cfg.SiblingLatency
	case bestState == cache.Shared:
		c.ev.Inc(event.SnoopHit, 1)
		src, latency = srcL3Shared, m.cfg.L3Latency
	case l3Hit:
		src, latency = srcL3Unshared, m.cfg.L3Latency
	}

	if src == srcSibling || src == srcL3Shared {
		// Downgrade or invalidate the sibling copies.
		m.adjustHolders(own, blk, myBit, rfo)
	}
	if l3Hit {
		c.ev.Inc(event.L3Hit, 1)
	}

	if src == srcMemory {
		// Local socket had nothing; try the remote socket(s).
		for _, rs := range m.sockets {
			if rs == own {
				continue
			}
			rBest := cache.Invalid
			for h := rs.dir[blk]; h != 0; h &= h - 1 {
				st := m.cores[bits.TrailingZeros16(h)].l2.Lookup(blk)
				if st > rBest {
					rBest = st
				}
			}
			rL3 := rs.l3.Lookup(blk) != cache.Invalid
			if rBest == cache.Invalid && !rL3 {
				continue
			}
			switch rBest {
			case cache.Modified:
				c.ev.Inc(event.SnoopHitM, 1)
			case cache.Exclusive:
				c.ev.Inc(event.SnoopHitE, 1)
			default:
				c.ev.Inc(event.SnoopHit, 1)
			}
			m.adjustHolders(rs, blk, 0, rfo)
			if rfo {
				rs.l3.Invalidate(blk)
			} else {
				rs.l3.Downgrade(blk)
			}
			src, latency = srcRemote, m.cfg.CrossSocketLatency
			break
		}
	}

	if src == srcMemory {
		c.ev.Inc(event.L3Miss, 1)
	} else if !l3Hit && src != srcRemote {
		// Served by a sibling while L3 missed — cannot happen under
		// inclusion, but count the L3 miss if it did.
		c.ev.Inc(event.L3Miss, 1)
	}
	if src == srcRemote && !l3Hit {
		c.ev.Inc(event.L3Miss, 1)
	}

	// An RFO must invalidate every remaining copy machine-wide, even when
	// the data was served locally: a line read earlier across sockets is
	// resident in both L3s (and possibly remote private caches).
	if rfo {
		for _, rs := range m.sockets {
			if rs == own {
				continue
			}
			rBest := cache.Invalid
			for h := rs.dir[blk]; h != 0; h &= h - 1 {
				if st := m.cores[bits.TrailingZeros16(h)].l2.Lookup(blk); st > rBest {
					rBest = st
				}
			}
			rL3 := rs.l3.Lookup(blk) != cache.Invalid
			if rBest == cache.Invalid && !rL3 {
				continue
			}
			// Invalidation snoop response (unless this socket already
			// responded as the data source above).
			if src != srcRemote {
				switch rBest {
				case cache.Modified:
					c.ev.Inc(event.SnoopHitM, 1)
				case cache.Exclusive:
					c.ev.Inc(event.SnoopHitE, 1)
				default:
					c.ev.Inc(event.SnoopHit, 1)
				}
			}
			m.adjustHolders(rs, blk, 0, true)
			rs.l3.Invalidate(blk)
		}
	}

	// Install into the local L3 (inclusive) if absent.
	if !l3Hit {
		m.l3Fill(own, blk, rfo)
	} else if rfo {
		// Upgrade in place: other sockets already invalidated above.
	}

	// Fill the private hierarchy.
	st := cache.Exclusive
	if rfo {
		st = cache.Modified
	} else if src == srcSibling || src == srcL3Shared || src == srcRemote {
		st = cache.Shared
	}
	m.l2Fill(c, blk, st)
	if code {
		m.l1Fill(c, c.l1i, blk, st)
	} else {
		m.l1Fill(c, c.l1d, blk, st)
	}
	return src, latency
}

// adjustHolders downgrades (read) or invalidates (RFO) every private copy
// of blk in socket s other than keepBit, maintaining the directory.
func (m *Machine) adjustHolders(s *socket, blk uint64, keepBit uint16, rfo bool) {
	holders := s.dir[blk] &^ keepBit
	if holders == 0 {
		return
	}
	for h := holders; h != 0; h &= h - 1 {
		cid := bits.TrailingZeros16(h)
		oc := m.cores[cid]
		if rfo {
			oc.l2.Invalidate(blk)
			oc.l1d.Invalidate(blk)
			oc.l1i.Invalidate(blk)
			s.dir[blk] &^= uint16(1) << uint(cid)
		} else {
			oc.l2.Downgrade(blk)
			oc.l1d.Downgrade(blk)
		}
	}
	if s.dir[blk] == 0 {
		delete(s.dir, blk)
	}
}

// l3Fill installs blk in the socket's L3, enforcing inclusion on eviction:
// any private copies of the victim are invalidated.
func (m *Machine) l3Fill(s *socket, blk uint64, rfo bool) {
	st := cache.Exclusive
	if rfo {
		st = cache.Modified
	}
	ev := s.l3.Fill(blk, st)
	if !ev.Valid {
		return
	}
	if holders, ok := s.dir[ev.Addr]; ok {
		for h := holders; h != 0; h &= h - 1 {
			oc := m.cores[bits.TrailingZeros16(h)]
			oc.l2.Invalidate(ev.Addr)
			oc.l1d.Invalidate(ev.Addr)
			oc.l1i.Invalidate(ev.Addr)
		}
		delete(s.dir, ev.Addr)
	}
}

// l2Fill installs blk in the core's private L2, maintaining the directory
// and handling the victim (write-back of dirty data, back-invalidation of
// the L1s).
func (m *Machine) l2Fill(c *core, blk uint64, st cache.State) {
	ev := c.l2.Fill(blk, st)
	s := m.sockets[c.sock]
	s.dir[blk] |= 1 << uint(c.id)
	if !ev.Valid {
		return
	}
	bit := uint16(1) << uint(c.id)
	s.dir[ev.Addr] &^= bit
	if s.dir[ev.Addr] == 0 {
		delete(s.dir, ev.Addr)
	}
	c.l1d.Invalidate(ev.Addr)
	c.l1i.Invalidate(ev.Addr)
	if ev.State == cache.Modified {
		c.ev.Inc(event.OffcoreWB, 1)
		s.l3.MarkDirty(ev.Addr)
	}
}

// l1Fill installs blk in an L1, ignoring the victim (the L2 is inclusive,
// so no state is lost).
func (m *Machine) l1Fill(c *core, l1 *cache.Cache, blk uint64, st cache.State) {
	l1.Fill(blk, st)
}

// instructionFetch runs the frontend for one instruction: ITLB, L1I, and
// the memory hierarchy below on a miss. Penalties stall the frontend.
func (m *Machine) instructionFetch(c *core, in *Instr) {
	tr := c.tlbs.TranslateI(in.PC)
	if tr.WalkCycles > 0 {
		c.stall(&c.fetchStall, float64(tr.WalkCycles))
	}
	if c.l1i.Access(in.PC, false) {
		c.ev.Inc(event.L1IHit, 1)
		return
	}
	c.ev.Inc(event.L1IMiss, 1)
	blk := m.block(in.PC)
	if c.l2.Access(blk, false) {
		c.ev.Inc(event.L2Hit, 1)
		m.l1Fill(c, c.l1i, blk, c.l2.Lookup(blk))
		c.stall(&c.fetchStall, float64(m.cfg.L2Latency))
		return
	}
	c.ev.Inc(event.L2Miss, 1)
	c.ev.Inc(event.OffcoreCode, 1)
	_, lat := m.fetchBlock(c, blk, false, true)
	c.stall(&c.fetchStall, float64(lat))
}

// dataAccess runs a load or store through the data hierarchy and returns
// the access latency. Long-latency load misses register as outstanding
// for MLP and dependence stalls.
func (m *Machine) dataAccess(c *core, in *Instr) {
	write := in.Kind == KindStore
	tr := c.tlbs.TranslateD(in.Addr)
	if tr.WalkCycles > 0 {
		// Data page walks overlap with the backend but occupy resources;
		// charge them as resource stalls (the paper attributes DTLB walk
		// cycles to backend pressure, §V-C).
		c.stall(&c.resStall, float64(tr.WalkCycles))
	}
	blk := m.block(in.Addr)

	// A fill still in flight for this block means the access is absorbed
	// by the line fill buffer, even though the model installs lines
	// eagerly: architecturally the data has not arrived yet.
	if done, ok := c.pendingFill[blk]; ok {
		if done > c.cycles {
			if !write {
				c.ev.Inc(event.LoadHitLFB, 1)
				c.lastLoadCompletion = done
			}
			return
		}
		delete(c.pendingFill, blk)
	}

	if c.l1d.Access(in.Addr, write) {
		if write {
			switch c.l2.Lookup(blk) {
			case cache.Shared:
				// Upgrade: invalidate other copies machine-wide.
				c.ev.Inc(event.OffcoreRFO, 1)
				m.upgradeToModified(c, blk)
				c.l2.MarkDirty(blk)
			case cache.Exclusive:
				// Silent E→M upgrade; keep L2 consistent with L1.
				c.l2.MarkDirty(blk)
			}
		}
		return
	}

	var latency uint64
	if c.l2.Access(blk, write) {
		c.ev.Inc(event.L2Hit, 1)
		st := c.l2.Lookup(blk)
		if write && st != cache.Modified {
			// Lookup after a write Access returns Modified already; the
			// Shared→Modified upgrade path is handled inside Access via
			// state promotion, but other copies must still be dropped.
			st = cache.Modified
		}
		if write {
			m.upgradeToModified(c, blk)
		}
		m.l1Fill(c, c.l1d, blk, st)
		if !write {
			c.ev.Inc(event.LoadHitL2, 1)
		}
		latency = m.cfg.L2Latency
	} else {
		c.ev.Inc(event.L2Miss, 1)
		if write {
			c.ev.Inc(event.OffcoreRFO, 1)
		} else {
			c.ev.Inc(event.OffcoreData, 1)
		}
		src, lat := m.fetchBlock(c, blk, write, false)
		latency = lat
		if !write {
			switch src {
			case srcSibling:
				c.ev.Inc(event.LoadHitSibling, 1)
			case srcL3Unshared:
				c.ev.Inc(event.LoadHitL3, 1)
			case srcMemory, srcRemote:
				if src == srcMemory {
					c.ev.Inc(event.LoadLLCMiss, 1)
				}
			}
		}
	}

	if write {
		// Stores retire through the store buffer; latency is hidden.
		return
	}
	if latency > m.cfg.L2Latency {
		// Long-latency load: becomes an outstanding miss.
		if len(c.outstanding) >= m.cfg.MSHRs {
			// MSHRs full: stall until the earliest completes.
			earliest := c.outstanding[0]
			for _, t := range c.outstanding {
				if t < earliest {
					earliest = t
				}
			}
			if wait := earliest - c.cycles; wait > 0 {
				c.stall(&c.resStall, wait)
			}
		}
		done := c.cycles + float64(latency)
		c.outstanding = append(c.outstanding, done)
		c.pendingFill[blk] = done
		c.lastLoadCompletion = done
		if len(c.pendingFill) > 4*m.cfg.MSHRs {
			for b, t := range c.pendingFill {
				if t <= c.cycles {
					delete(c.pendingFill, b)
				}
			}
		}
	} else {
		c.lastLoadCompletion = c.cycles + float64(latency)
	}
}

// upgradeToModified invalidates all other copies of blk (both sockets).
func (m *Machine) upgradeToModified(c *core, blk uint64) {
	myBit := uint16(1) << uint(c.id)
	for _, s := range m.sockets {
		keep := uint16(0)
		if s.id == c.sock {
			keep = myBit
		}
		// Snoop responses from invalidation: report the best holder.
		best := cache.Invalid
		for h := s.dir[blk] &^ keep; h != 0; h &= h - 1 {
			if st := m.cores[bits.TrailingZeros16(h)].l2.Lookup(blk); st > best {
				best = st
			}
		}
		switch best {
		case cache.Modified:
			c.ev.Inc(event.SnoopHitM, 1)
		case cache.Exclusive:
			c.ev.Inc(event.SnoopHitE, 1)
		case cache.Shared:
			c.ev.Inc(event.SnoopHit, 1)
		}
		m.adjustHolders(s, blk, keep, true)
		if s.id != c.sock {
			s.l3.Invalidate(blk)
		} else {
			s.l3.MarkDirty(blk)
		}
	}
}

// execute runs one instruction on core c with full accounting.
func (m *Machine) execute(c *core, in *Instr) {
	c.dirty++
	m.instructionFetch(c, in)

	uops := float64(in.Uops)
	if uops < 1 {
		uops = 1
	}
	c.ev.Inc(event.InstRetired, 1)
	if in.Kernel {
		c.ev.Inc(event.InstKernel, 1)
	}
	c.ev.Inc(event.UopsRetired, uint64(uops))
	c.uopsExecuted += uops

	// Base issue time.
	c.advance(uops / float64(m.cfg.IssueWidth))

	// Decode-side friction.
	if in.Complex {
		c.stall(&c.ildStall, 0.6)
		c.stall(&c.decStall, 0.35)
	}
	if uops > 1 {
		c.stall(&c.ratStall, 0.18*(uops-1))
	}

	switch in.Kind {
	case KindLoad:
		c.ev.Inc(event.Loads, 1)
		c.ev.Inc(event.MemAccesses, 1)
		m.dataAccess(c, in)
	case KindStore:
		c.ev.Inc(event.Stores, 1)
		c.ev.Inc(event.MemAccesses, 1)
		m.dataAccess(c, in)
	case KindBranch:
		c.ev.Inc(event.Branches, 1)
		c.branchesExecuted++
		correct := c.bp.Update(in.PC, in.Taken)
		if !correct {
			c.ev.Inc(event.BranchMisses, 1)
			p := float64(m.cfg.MispredictPenalty)
			// Flush: half the penalty is frontend refill, half wasted
			// backend slots. Wrong-path work executes but never retires.
			c.stall(&c.fetchStall, p/2)
			c.advance(p / 2)
			c.uopsExecuted += p // ≈ issueWidth × p/4 wrong-path µops
			c.branchesExecuted += p / 8
		}
	case KindInt:
		c.ev.Inc(event.IntOps, 1)
	case KindFP:
		c.ev.Inc(event.FPX87Ops, 1)
	case KindSSE:
		c.ev.Inc(event.SSEFPOps, 1)
	}

	// Dependence on an outstanding load stalls the backend.
	if in.Dependent && c.lastLoadCompletion > c.cycles {
		c.stall(&c.resStall, c.lastLoadCompletion-c.cycles)
	}
}

// snapshot folds the core's floating-point accounting into an event.Counts
// copy and returns it.
func (c *core) snapshot() event.Counts {
	ev := c.ev
	ev[event.Cycles] = uint64(c.cycles)
	ev[event.FetchStallCycles] = uint64(c.fetchStall)
	ev[event.ILDStallCycles] = uint64(c.ildStall)
	ev[event.DecoderStallCycles] = uint64(c.decStall)
	ev[event.RATStallCycles] = uint64(c.ratStall)
	ev[event.ResourceStallCycles] = uint64(c.resStall)
	ev[event.UopsExecuted] = uint64(c.uopsExecuted)
	ev[event.BranchesExecuted] = uint64(c.branchesExecuted)
	ev[event.MLPWeighted] = uint64(c.mlpWeighted)
	ev[event.MLPCycles] = uint64(c.mlpCycles)

	stall := c.fetchStall + c.resStall + 0.5*(c.ildStall+c.decStall+c.ratStall)
	if stall > c.cycles {
		stall = c.cycles
	}
	ev[event.UopsStallCycles] = uint64(stall)
	ev[event.UopsExeCycles] = uint64(c.cycles - stall)

	// TLB statistics.
	ev[event.ITLBMiss] = tlb.MissesAllLevels(c.tlbs.IStats)
	ev[event.ITLBWalkCycles] = c.tlbs.IStats.WalkCycles
	ev[event.DTLBMiss] = tlb.MissesAllLevels(c.tlbs.DStats)
	ev[event.DTLBWalkCycles] = c.tlbs.DStats.WalkCycles
	ev[event.DataHitSTLB] = c.tlbs.DStats.STLBHits
	return ev
}

// Snapshot returns machine-wide cumulative event counts (sum over cores).
//
// It is incremental: each core carries a dirty counter bumped per executed
// instruction, and only cores that executed since the previous Snapshot
// are re-summarized — their old contribution is swapped out of a cached
// machine-wide total. Cores that are idle or have exhausted their stream
// cost nothing per slice, so per-slice snapshotting is O(active
// cores·events) instead of O(cores·events). The result is identical to
// summing every core from scratch (snapshotFull, the test oracle).
func (m *Machine) Snapshot() event.Counts {
	for i, c := range m.cores {
		if c.dirty == m.snapDirty[i] {
			continue
		}
		fresh := c.snapshot()
		old := &m.snapCore[i]
		for e := range fresh {
			// Wraparound-exact: total + (fresh − old) in mod-2⁶⁴
			// arithmetic, and per-core accounting is monotone anyway.
			m.snapTotal[e] += fresh[e] - old[e]
		}
		m.snapCore[i] = fresh
		m.snapDirty[i] = c.dirty
	}
	return m.snapTotal
}

// snapshotFull recomputes the machine-wide total from scratch — the
// pre-incremental Snapshot path, kept as the oracle for tests asserting
// the two never diverge.
func (m *Machine) snapshotFull() event.Counts {
	var total event.Counts
	for _, c := range m.cores {
		ev := c.snapshot()
		total.Add(&ev)
	}
	return total
}

// RunResult holds the outcome of a Run: cumulative machine-wide event
// snapshots at each slice boundary (len Slices+1; entry 0 is all-zero at
// start, the last entry is the final total).
type RunResult struct {
	Snapshots    []event.Counts
	Instructions uint64
}

// Run executes the per-core sources round-robin (64-instruction quanta,
// which lets lines migrate between cores like a real multithreaded run)
// until every core has executed up to maxInstrPerCore instructions or its
// source is exhausted. It records `slices` evenly spaced cumulative
// snapshots for the PMC multiplexing layer.
func (m *Machine) Run(sources []Source, maxInstrPerCore int, slices int) (*RunResult, error) {
	res := &RunResult{}
	if err := m.RunInto(res, sources, maxInstrPerCore, slices); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run writing into a caller-owned result, reusing its snapshot
// storage. Measurement workers call it once per node-run so the ~Slices
// machine-wide count snapshots are allocated once per worker instead of
// once per run.
func (m *Machine) RunInto(res *RunResult, sources []Source, maxInstrPerCore int, slices int) error {
	if len(sources) != len(m.cores) {
		return fmt.Errorf("machine: %d sources for %d cores", len(sources), len(m.cores))
	}
	if maxInstrPerCore < 1 {
		return fmt.Errorf("machine: maxInstrPerCore must be ≥1")
	}
	if slices < 1 {
		slices = 1
	}

	const quantum = 64
	total := uint64(len(m.cores)) * uint64(maxInstrPerCore)
	sliceEvery := total / uint64(slices)
	if sliceEvery == 0 {
		sliceEvery = 1
	}

	res.Snapshots = append(res.Snapshots[:0], event.Counts{})
	res.Instructions = 0

	done := make([]bool, len(m.cores))
	executedPer := make([]int, len(m.cores))
	var executed, nextSlice uint64
	nextSlice = sliceEvery

	var in Instr
	for {
		anyLive := false
		for ci, c := range m.cores {
			if done[ci] {
				continue
			}
			anyLive = true
			for q := 0; q < quantum; q++ {
				if executedPer[ci] >= maxInstrPerCore || !sources[ci].Next(&in) {
					done[ci] = true
					break
				}
				m.execute(c, &in)
				executedPer[ci]++
				executed++
			}
		}
		for executed >= nextSlice && len(res.Snapshots) < slices {
			res.Snapshots = append(res.Snapshots, m.Snapshot())
			nextSlice += sliceEvery
		}
		if !anyLive {
			break
		}
	}
	res.Snapshots = append(res.Snapshots, m.Snapshot())
	res.Instructions = executed
	return nil
}
