package machine

// Kind classifies an instruction for the mix metrics of Table II.
type Kind uint8

const (
	KindInt Kind = iota
	KindLoad
	KindStore
	KindBranch
	KindFP  // x87 floating point
	KindSSE // SSE floating point
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindFP:
		return "fp"
	case KindSSE:
		return "sse"
	default:
		return "?"
	}
}

// Instr is one dynamic instruction presented to a core.
type Instr struct {
	PC     uint64 // code virtual address
	Kind   Kind
	Addr   uint64 // data address for loads/stores
	Taken  bool   // branch outcome
	Kernel bool   // ring-0 execution
	Uops   uint8  // micro-ops this instruction decodes into (≥1)
	// Complex marks instructions that stress the length decoder /
	// decoder (long encodings, microcoded ops); drives ILD and decoder
	// stall accounting.
	Complex bool
	// Dependent marks the instruction as consuming the value of the most
	// recent load, which forces the backend to wait if that load is still
	// outstanding (resource stall).
	Dependent bool
}

// Source produces the dynamic instruction stream for one core. Next fills
// in and returns true, or returns false when the stream is exhausted.
type Source interface {
	Next(*Instr) bool
}

// SliceSource adapts a pre-recorded instruction slice to Source (used by
// tests).
type SliceSource struct {
	Instrs []Instr
	pos    int
}

// Next implements Source.
func (s *SliceSource) Next(out *Instr) bool {
	if s.pos >= len(s.Instrs) {
		return false
	}
	*out = s.Instrs[s.pos]
	s.pos++
	return true
}
