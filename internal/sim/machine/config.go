// Package machine assembles the microarchitecture substrate — caches,
// TLBs, branch prediction, MESI coherence, and interval-model pipeline
// accounting — into the five-node cluster of the paper's Table III, and
// runs synthetic instruction streams over it producing ground-truth
// hardware event counts.
//
// The pipeline model follows the first-order ("interval") superscalar
// model of Karkhanis & Smith, which the paper cites ([19]): a balanced
// out-of-order core sustains its issue width except for miss events —
// instruction-cache misses and ITLB walks stall the in-order frontend,
// branch mispredictions flush the pipeline, and long-latency data misses
// fill the reorder buffer and stall the backend (resource stalls), with
// overlap between outstanding misses captured as MLP.
package machine

import (
	"fmt"

	"repro/internal/sim/cache"
	"repro/internal/sim/tlb"
)

// Config describes one node's hardware, mirroring Table III.
type Config struct {
	Sockets        int
	CoresPerSocket int

	L1I, L1D, L2, L3 cache.Config
	ITLB, DTLB, STLB tlb.Config

	// Latencies in cycles.
	L1Latency          uint64
	L2Latency          uint64
	L3Latency          uint64
	SiblingLatency     uint64 // cache-to-cache forward within a socket
	CrossSocketLatency uint64 // remote socket L3 / cache hit
	MemLatency         uint64
	TLBWalkCycles      uint64
	MispredictPenalty  uint64

	IssueWidth int // µops per cycle the frontend/backend sustain
	MSHRs      int // max outstanding misses per core (line fill buffers)

	BranchHistoryBits uint
}

// Westmere returns the configuration of the paper's Intel Xeon E5645
// node: 2 sockets × 6 cores, 32 KB L1I (4-way) and L1D (8-way), 256 KB
// 8-way L2, 12 MB 16-way shared L3, 64 B lines, 4-way 64-entry L1 TLBs
// and 4-way 512-entry shared L2 TLB.
func Westmere() Config {
	it, dt, st := tlb.WestmereConfig()
	return Config{
		Sockets:        2,
		CoresPerSocket: 6,
		L1I:            cache.Config{Name: "L1I", SizeB: 32 << 10, Ways: 4, LineB: 64},
		L1D:            cache.Config{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineB: 64},
		L2:             cache.Config{Name: "L2", SizeB: 256 << 10, Ways: 8, LineB: 64},
		L3:             cache.Config{Name: "L3", SizeB: 12 << 20, Ways: 16, LineB: 64},
		ITLB:           it,
		DTLB:           dt,
		STLB:           st,

		L1Latency:          4,
		L2Latency:          12,
		L3Latency:          40,
		SiblingLatency:     60,
		CrossSocketLatency: 100,
		MemLatency:         200,
		TLBWalkCycles:      30,
		MispredictPenalty:  17,

		IssueWidth: 4,
		MSHRs:      10,

		BranchHistoryBits: 12,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sockets < 1 || c.CoresPerSocket < 1 {
		return fmt.Errorf("machine: need ≥1 socket and core, got %d×%d", c.Sockets, c.CoresPerSocket)
	}
	if c.Sockets*c.CoresPerSocket > 16 {
		return fmt.Errorf("machine: directory bitmask supports ≤16 cores, got %d", c.Sockets*c.CoresPerSocket)
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	for _, tc := range []tlb.Config{c.ITLB, c.DTLB, c.STLB} {
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	if c.L1I.LineB != c.L1D.LineB || c.L1D.LineB != c.L2.LineB || c.L2.LineB != c.L3.LineB {
		return fmt.Errorf("machine: all cache levels must share a line size")
	}
	if c.IssueWidth < 1 || c.MSHRs < 1 {
		return fmt.Errorf("machine: IssueWidth and MSHRs must be ≥1")
	}
	if c.BranchHistoryBits < 1 {
		return fmt.Errorf("machine: BranchHistoryBits must be ≥1")
	}
	return nil
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }
