package machine

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim/event"
)

// randInstrs builds a deterministic mixed instruction stream that touches
// every accounting path: loads/stores over a footprint larger than the
// tiny caches, branches with data-dependent direction, complex multi-µop
// instructions and kernel-mode work.
func randInstrs(seed uint64, n int) []Instr {
	r := rng.New(seed)
	out := make([]Instr, n)
	for i := range out {
		in := Instr{PC: 0x1000 + uint64(r.Intn(4096))*4, Uops: 1}
		switch r.Intn(10) {
		case 0, 1, 2:
			in.Kind = KindLoad
			in.Addr = uint64(r.Intn(1 << 18))
		case 3:
			in.Kind = KindStore
			in.Addr = uint64(r.Intn(1 << 18))
		case 4, 5:
			in.Kind = KindBranch
			in.Taken = r.Intn(3) == 0
		case 6:
			in.Kind = KindFP
			in.Uops = 3
			in.Complex = true
		case 7:
			in.Kind = KindSSE
			in.Dependent = true
		default:
			in.Kind = KindInt
		}
		if r.Intn(16) == 0 {
			in.Kernel = true
		}
		out[i] = in
	}
	return out
}

// TestSnapshotIncrementalMatchesFull interleaves execution across cores —
// including an idle core and a core that stops early — and checks after
// every burst that the incremental Snapshot equals the from-scratch
// recomputation (snapshotFull, the pre-incremental path).
func TestSnapshotIncrementalMatchesFull(t *testing.T) {
	m := tiny(t)
	streams := make([][]Instr, len(m.cores))
	for ci := range streams {
		if ci == len(m.cores)-1 {
			continue // last core stays idle the whole run
		}
		streams[ci] = randInstrs(uint64(ci)*0x9E37+1, 400)
	}
	pos := make([]int, len(m.cores))

	step := func(ci, k int) {
		for ; k > 0 && pos[ci] < len(streams[ci]); k-- {
			m.execute(m.cores[ci], &streams[ci][pos[ci]])
			pos[ci]++
		}
	}
	check := func(when string) {
		t.Helper()
		got, want := m.Snapshot(), m.snapshotFull()
		for e := range want {
			if got[e] != want[e] {
				t.Fatalf("%s: event %v: incremental %d, full %d",
					when, event.ID(e), got[e], want[e])
			}
		}
	}

	check("before any execution")
	for burst := 0; burst < 20; burst++ {
		for ci := range streams {
			// Core 1 finishes early: stop feeding it after burst 5.
			if ci == 1 && burst > 5 {
				continue
			}
			step(ci, 17+ci)
		}
		check("mid-run")
		// Consecutive snapshots with no execution in between must be
		// stable and still match.
		check("idle re-snapshot")
	}

	// Reset must clear the incremental state too: a reset machine
	// snapshots to zero and stays consistent through a second run.
	m.Reset()
	z := m.Snapshot()
	for e := range z {
		if z[e] != 0 {
			t.Fatalf("after Reset: event %v = %d, want 0", event.ID(e), z[e])
		}
	}
	pos = make([]int, len(m.cores))
	for burst := 0; burst < 5; burst++ {
		for ci := range streams {
			step(ci, 11)
		}
		check("after reset")
	}
}

// TestRunSnapshotsMatchFresh checks the end-to-end path: per-slice
// snapshots recorded by Run on a reused (Reset) machine are identical to
// those of a freshly constructed machine.
func TestRunSnapshotsMatchFresh(t *testing.T) {
	mkSources := func(m *Machine) []Source {
		sources := make([]Source, len(m.cores))
		for i := range sources {
			sources[i] = &SliceSource{Instrs: randInstrs(uint64(i)+99, 500)}
		}
		return sources
	}

	fresh := tiny(t)
	want, err := fresh.Run(mkSources(fresh), 400, 8)
	if err != nil {
		t.Fatal(err)
	}

	reused := tiny(t)
	// Dirty the machine with an unrelated run, then Reset.
	if _, err := reused.Run(mkSources(reused), 100, 2); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	got, err := reused.Run(mkSources(reused), 400, 8)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("snapshot count %d vs %d", len(got.Snapshots), len(want.Snapshots))
	}
	for i := range want.Snapshots {
		if got.Snapshots[i] != want.Snapshots[i] {
			t.Fatalf("slice %d diverged between fresh and reset machine", i)
		}
	}
}
