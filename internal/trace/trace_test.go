package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim/machine"
)

// baseParams returns a valid parameter set for tests.
func baseParams() Params {
	return Params{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15, FPFrac: 0.02, SSEFrac: 0.03,
		KernelFrac:     0.1,
		UopsPerInstr:   1.5,
		ComplexFrac:    0.1,
		DepFrac:        0.3,
		BranchEntropy:  0.2,
		CodeFootprintB: 1 << 20, CodeJumpFrac: 0.1, CodeSkew: 0.5,
		DataFootprintB: 8 << 20, DataSkew: 0.5, SeqFrac: 0.4,
		SharedFrac: 0.05, SharedFootprintB: 1 << 20, SharedWriteFrac: 0.2,
	}
}

func baseProfile() Profile {
	return Profile{
		Name:        "test",
		Compute:     baseParams(),
		Shuffle:     baseParams(),
		ShuffleFrac: 0.25,
		PhasePeriod: 1000,
	}
}

func TestParamsValidate(t *testing.T) {
	p := baseParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := baseParams()
	bad.LoadFrac = 0.9 // mix sum > 1
	if err := bad.Validate(); err == nil {
		t.Error("mix sum > 1 accepted")
	}
	bad = baseParams()
	bad.UopsPerInstr = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("UopsPerInstr < 1 accepted")
	}
	bad = baseParams()
	bad.DataFootprintB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero data footprint accepted")
	}
	bad = baseParams()
	bad.SharedFrac = 0.1
	bad.SharedFootprintB = 0
	if err := bad.Validate(); err == nil {
		t.Error("shared traffic without footprint accepted")
	}
	bad = baseParams()
	bad.DataSkew = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("DataSkew = 1 accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	p := baseProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := baseProfile()
	bad.ShuffleFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("ShuffleFrac > 1 accepted")
	}
}

func TestBlendEndpoints(t *testing.T) {
	a, b := baseParams(), baseParams()
	b.LoadFrac = 0.5
	b.DataFootprintB = 64 << 20
	if got := Blend(a, b, 0); got.LoadFrac != a.LoadFrac || got.DataFootprintB != a.DataFootprintB {
		t.Errorf("Blend(w=0) != a: %+v", got)
	}
	got := Blend(a, b, 1)
	if got.LoadFrac != b.LoadFrac {
		t.Errorf("Blend(w=1).LoadFrac = %v, want %v", got.LoadFrac, b.LoadFrac)
	}
	// Geometric blending of footprints tolerates rounding.
	if math.Abs(float64(got.DataFootprintB)-float64(b.DataFootprintB)) > 2 {
		t.Errorf("Blend(w=1).DataFootprintB = %d, want %d", got.DataFootprintB, b.DataFootprintB)
	}
}

func TestBlendMidpointIsBetween(t *testing.T) {
	a, b := baseParams(), baseParams()
	b.LoadFrac = 0.5
	got := Blend(a, b, 0.5)
	if got.LoadFrac <= a.LoadFrac || got.LoadFrac >= b.LoadFrac {
		t.Errorf("midpoint LoadFrac = %v not in (%v,%v)", got.LoadFrac, a.LoadFrac, b.LoadFrac)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []machine.Instr {
		g, err := NewGenerator(baseProfile(), 42, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]machine.Instr, 500)
		var in machine.Instr
		for i := range out {
			g.Next(&in)
			out[i] = in
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between identical generators", i)
		}
	}
}

func TestGeneratorCoresDiffer(t *testing.T) {
	g0, _ := NewGenerator(baseProfile(), 42, 0, 2)
	g1, _ := NewGenerator(baseProfile(), 42, 1, 2)
	var a, b machine.Instr
	same := 0
	for i := 0; i < 100; i++ {
		g0.Next(&a)
		g1.Next(&b)
		if a == b {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different cores produced %d/100 identical instructions", same)
	}
}

func TestMixFractionsRealized(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0 // single phase for clean statistics
	g, err := NewGenerator(prof, 7, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := map[machine.Kind]int{}
	var in machine.Instr
	for i := 0; i < n; i++ {
		g.Next(&in)
		counts[in.Kind]++
	}
	// Loads can convert to stores in the shared region; allow slack.
	loadFrac := float64(counts[machine.KindLoad]) / n
	if math.Abs(loadFrac-0.3) > 0.03 {
		t.Errorf("load fraction = %v, want ≈0.3", loadFrac)
	}
	branchFrac := float64(counts[machine.KindBranch]) / n
	if math.Abs(branchFrac-0.15) > 0.02 {
		t.Errorf("branch fraction = %v, want ≈0.15", branchFrac)
	}
}

func TestKernelFractionRealized(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0
	prof.Compute.KernelFrac = 0.2
	g, _ := NewGenerator(prof, 8, 0, 1)
	const n = 300000
	kernel := 0
	var in machine.Instr
	for i := 0; i < n; i++ {
		g.Next(&in)
		if in.Kernel {
			kernel++
		}
	}
	frac := float64(kernel) / n
	if math.Abs(frac-0.2) > 0.06 {
		t.Errorf("kernel fraction = %v, want ≈0.2", frac)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	prof := baseProfile()
	g, _ := NewGenerator(prof, 9, 2, 4)
	var in machine.Instr
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.Kind == machine.KindLoad || in.Kind == machine.KindStore {
			a := in.Addr
			perCore := prof.Compute.DataFootprintB / 4
			if perCore < 256<<10 {
				perCore = 256 << 10
			}
			private := a >= privateRegion(2) && a < privateRegion(2)+perCore
			shared := a >= sharedBase && a < sharedBase+prof.Compute.SharedFootprintB
			kernelEnd := uint64(kernelDataBase) + kernelDataShared + 4*kernelDataPerCore
			kernel := a >= kernelDataBase && a < kernelEnd
			if !private && !shared && !kernel {
				t.Fatalf("data address %#x outside all regions", a)
			}
		}
		if in.Kernel {
			if in.PC < kernelCodeBase || in.PC >= kernelCodeBase+kernelCodeFootprint {
				t.Fatalf("kernel PC %#x outside kernel text", in.PC)
			}
		} else if in.PC < userCodeBase || in.PC >= userCodeBase+prof.Compute.CodeFootprintB+4 {
			t.Fatalf("user PC %#x outside user text", in.PC)
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	for c := 0; c < 12; c++ {
		lo, hi := privateRegion(c), privateRegion(c)+privateStride
		next := privateRegion(c + 1)
		if next < hi || lo >= next {
			t.Fatalf("core %d region [%#x,%#x) overlaps core %d at %#x", c, lo, hi, c+1, next)
		}
	}
}

func TestSkewConcentratesAccesses(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0
	prof.Compute.SeqFrac = 0
	prof.Compute.SharedFrac = 0
	prof.Compute.KernelFrac = 0
	prof.Compute.DataSkew = 0.8
	g, _ := NewGenerator(prof, 10, 0, 1)
	base := privateRegion(0)
	size := prof.Compute.DataFootprintB
	// The hot region is footprint/4 clamped to [64 KB, 2 MB].
	hot := size / 4
	if hot > 2<<20 {
		hot = 2 << 20
	}
	inHot := 0
	total := 0
	var in machine.Instr
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if in.Kind != machine.KindLoad && in.Kind != machine.KindStore {
			continue
		}
		total++
		if in.Addr-base < hot {
			inHot++
		}
	}
	frac := float64(inHot) / float64(total)
	// skew 0.8 → 80% hot + uniform spillover.
	if frac < 0.7 {
		t.Errorf("skew 0.8: only %v of accesses in hot region, want > 0.7", frac)
	}
}

func TestZeroSkewIsUniform(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0
	prof.Compute.SeqFrac = 0
	prof.Compute.SharedFrac = 0
	prof.Compute.KernelFrac = 0
	prof.Compute.DataSkew = 0
	g, _ := NewGenerator(prof, 11, 0, 1)
	base := privateRegion(0)
	size := prof.Compute.DataFootprintB
	inFirstTenth, total := 0, 0
	var in machine.Instr
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if in.Kind != machine.KindLoad && in.Kind != machine.KindStore {
			continue
		}
		total++
		if in.Addr-base < size/10 {
			inFirstTenth++
		}
	}
	frac := float64(inFirstTenth) / float64(total)
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("skew 0: %v of accesses in first tenth, want ≈0.1", frac)
	}
}

func TestSharedTrafficAppears(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0
	prof.Compute.SharedFrac = 0.5
	prof.Compute.KernelFrac = 0
	g, _ := NewGenerator(prof, 12, 0, 1)
	shared, total := 0, 0
	var in machine.Instr
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.Kind != machine.KindLoad && in.Kind != machine.KindStore {
			continue
		}
		total++
		if in.Addr >= sharedBase && in.Addr < sharedBase+prof.Compute.SharedFootprintB {
			shared++
		}
	}
	frac := float64(shared) / float64(total)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("shared fraction = %v, want ≈0.5", frac)
	}
}

func TestUopsMeanRealized(t *testing.T) {
	prof := baseProfile()
	prof.ShuffleFrac = 0
	prof.Compute.KernelFrac = 0
	prof.Compute.UopsPerInstr = 2.0
	g, _ := NewGenerator(prof, 13, 0, 1)
	var in machine.Instr
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		g.Next(&in)
		sum += float64(in.Uops)
	}
	if mean := sum / n; math.Abs(mean-2.0) > 0.1 {
		t.Errorf("mean uops = %v, want ≈2.0", mean)
	}
}

func TestSourcesBuildsPerCore(t *testing.T) {
	srcs, err := Sources(baseProfile(), 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 12 {
		t.Fatalf("Sources returned %d, want 12", len(srcs))
	}
	var in machine.Instr
	if !srcs[0].Next(&in) {
		t.Error("source exhausted immediately")
	}
}

func TestSourcesRejectsInvalidProfile(t *testing.T) {
	bad := baseProfile()
	bad.Compute.UopsPerInstr = 99
	if _, err := Sources(bad, 1, 2); err == nil {
		t.Error("invalid profile accepted")
	}
}

// Property: Blend output of two valid parameter sets is valid for any
// weight.
func TestQuickBlendValid(t *testing.T) {
	f := func(w float64) bool {
		w = math.Mod(math.Abs(w), 1)
		a := baseParams()
		b := baseParams()
		b.LoadFrac, b.StoreFrac = 0.4, 0.2
		b.DataFootprintB = 256 << 20
		b.UopsPerInstr = 3
		return Blend(a, b, w).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: generated instructions are always well-formed (uops ≥ 1,
// loads/stores carry addresses, branches never carry data addresses).
func TestQuickInstructionsWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := NewGenerator(baseProfile(), seed, int(seed%8), 8)
		if err != nil {
			return false
		}
		var in machine.Instr
		for i := 0; i < 2000; i++ {
			g.Next(&in)
			if in.Uops < 1 || in.Uops > 4 {
				return false
			}
			switch in.Kind {
			case machine.KindLoad, machine.KindStore:
				if in.Addr == 0 {
					return false
				}
			case machine.KindBranch:
				if in.Addr != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
