// Package trace synthesizes dynamic instruction streams from statistical
// workload profiles. A profile describes what the paper's workloads look
// like to the hardware — instruction mix, code and data footprints and
// their skew, kernel-mode bursts, sharing, branch predictability — and the
// generator emits a deterministic stream with those properties for the
// machine simulator to execute.
//
// This is the substitution for running real Hadoop/Spark jobs (see
// DESIGN.md §2): the workload models control the same knobs that real
// software stacks control on real hardware.
package trace

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim/machine"
)

// Params is one execution phase's statistical description.
type Params struct {
	// Instruction mix fractions; the remainder after loads, stores,
	// branches, FP and SSE is integer ALU work.
	LoadFrac, StoreFrac, BranchFrac, FPFrac, SSEFrac float64

	// KernelFrac is the fraction of instructions executed in ring 0
	// (syscall/IO bursts).
	KernelFrac float64

	// UopsPerInstr is the mean µop expansion in [1, 4].
	UopsPerInstr float64
	// ComplexFrac is the fraction of instructions with long encodings or
	// microcode (stresses the length decoder and decoder).
	ComplexFrac float64
	// DepFrac is the probability an instruction consumes the most recent
	// load's value (creates backend stalls on outstanding misses).
	DepFrac float64

	// BranchEntropy in [0,1]: 0 = fully predictable branch behaviour,
	// 1 = coin flips.
	BranchEntropy float64

	// Code working set.
	CodeFootprintB uint64
	// CodeJumpFrac is the probability an instruction fetch jumps to a
	// new location instead of advancing sequentially.
	CodeJumpFrac float64
	// CodeSkew in [0,1): concentration of jump targets (hot functions).
	CodeSkew float64

	// DataFootprintB is the node-level live data working set; each core
	// works on its own 1/cores partition (tasks process partitions).
	DataFootprintB uint64
	// DataSkew in [0,1): probability an access lands in the hot region
	// (hash-table heads, centroids, dictionary) rather than anywhere in
	// the partition.
	DataSkew float64
	// SeqFrac is the fraction of data accesses that stream sequentially.
	SeqFrac float64

	// Sharing across cores.
	SharedFrac       float64 // fraction of data accesses to the shared region
	SharedFootprintB uint64
	SharedWriteFrac  float64 // fraction of shared accesses that are stores
}

// Validate checks that the parameters are well-formed.
func (p Params) Validate() error {
	mix := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.SSEFrac
	if mix < 0 || mix > 1 {
		return fmt.Errorf("trace: instruction mix fractions sum to %v, want [0,1]", mix)
	}
	for name, v := range map[string]float64{
		"LoadFrac": p.LoadFrac, "StoreFrac": p.StoreFrac, "BranchFrac": p.BranchFrac,
		"FPFrac": p.FPFrac, "SSEFrac": p.SSEFrac, "KernelFrac": p.KernelFrac,
		"ComplexFrac": p.ComplexFrac, "DepFrac": p.DepFrac, "BranchEntropy": p.BranchEntropy,
		"CodeJumpFrac": p.CodeJumpFrac, "SeqFrac": p.SeqFrac, "SharedFrac": p.SharedFrac,
		"SharedWriteFrac": p.SharedWriteFrac,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("trace: %s = %v out of [0,1]", name, v)
		}
	}
	for name, v := range map[string]float64{"CodeSkew": p.CodeSkew, "DataSkew": p.DataSkew} {
		if v < 0 || v >= 1 {
			return fmt.Errorf("trace: %s = %v out of [0,1)", name, v)
		}
	}
	if p.UopsPerInstr < 1 || p.UopsPerInstr > 4 {
		return fmt.Errorf("trace: UopsPerInstr = %v out of [1,4]", p.UopsPerInstr)
	}
	if p.CodeFootprintB == 0 || p.DataFootprintB == 0 {
		return fmt.Errorf("trace: zero code or data footprint")
	}
	if p.SharedFrac > 0 && p.SharedFootprintB == 0 {
		return fmt.Errorf("trace: SharedFrac > 0 with zero shared footprint")
	}
	return nil
}

// Blend linearly interpolates two parameter sets: w=0 returns a, w=1
// returns b. Footprints blend geometrically (they span orders of
// magnitude).
func Blend(a, b Params, w float64) Params {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	lin := func(x, y float64) float64 { return x*(1-w) + y*w }
	geo := func(x, y uint64) uint64 {
		if x == 0 || y == 0 {
			return uint64(lin(float64(x), float64(y)))
		}
		return uint64(math.Exp(lin(math.Log(float64(x)), math.Log(float64(y)))))
	}
	return Params{
		LoadFrac:         lin(a.LoadFrac, b.LoadFrac),
		StoreFrac:        lin(a.StoreFrac, b.StoreFrac),
		BranchFrac:       lin(a.BranchFrac, b.BranchFrac),
		FPFrac:           lin(a.FPFrac, b.FPFrac),
		SSEFrac:          lin(a.SSEFrac, b.SSEFrac),
		KernelFrac:       lin(a.KernelFrac, b.KernelFrac),
		UopsPerInstr:     lin(a.UopsPerInstr, b.UopsPerInstr),
		ComplexFrac:      lin(a.ComplexFrac, b.ComplexFrac),
		DepFrac:          lin(a.DepFrac, b.DepFrac),
		BranchEntropy:    lin(a.BranchEntropy, b.BranchEntropy),
		CodeFootprintB:   geo(a.CodeFootprintB, b.CodeFootprintB),
		CodeJumpFrac:     lin(a.CodeJumpFrac, b.CodeJumpFrac),
		CodeSkew:         lin(a.CodeSkew, b.CodeSkew),
		DataFootprintB:   geo(a.DataFootprintB, b.DataFootprintB),
		DataSkew:         lin(a.DataSkew, b.DataSkew),
		SeqFrac:          lin(a.SeqFrac, b.SeqFrac),
		SharedFrac:       lin(a.SharedFrac, b.SharedFrac),
		SharedFootprintB: geo(a.SharedFootprintB, b.SharedFootprintB),
		SharedWriteFrac:  lin(a.SharedWriteFrac, b.SharedWriteFrac),
	}
}

// Profile is a full workload description: a compute phase, a shuffle/IO
// phase, and their interleaving (map/reduce or RDD transform/shuffle
// structure).
type Profile struct {
	Name        string
	Compute     Params
	Shuffle     Params
	ShuffleFrac float64 // fraction of instructions spent in shuffle phases
	PhasePeriod int     // instructions per compute+shuffle cycle (default 4096)
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if err := p.Compute.Validate(); err != nil {
		return fmt.Errorf("profile %q compute: %w", p.Name, err)
	}
	if p.ShuffleFrac > 0 {
		if err := p.Shuffle.Validate(); err != nil {
			return fmt.Errorf("profile %q shuffle: %w", p.Name, err)
		}
	}
	if p.ShuffleFrac < 0 || p.ShuffleFrac > 1 {
		return fmt.Errorf("profile %q: ShuffleFrac %v out of [0,1]", p.Name, p.ShuffleFrac)
	}
	return nil
}

// Address-space layout for the synthetic streams. Private regions are
// spaced far apart per core; the shared region and kernel regions are
// common to all cores of a node.
const (
	userCodeBase   = 0x0000_0000_0040_0000
	kernelCodeBase = 0x0000_7000_0000_0000
	kernelDataBase = 0x0000_7800_0000_0000
	privateBase    = 0x0000_0001_0000_0000
	privateStride  = 0x0000_0000_4000_0000 // 1 GiB between cores
	sharedBase     = 0x0000_6000_0000_0000

	// The OS kernel's code and data footprints are properties of the
	// (identical) system software, not of the workload. Kernel data is
	// mostly per-CPU (slabs, stacks, per-CPU counters) with a smaller
	// truly-shared slice (run queues, inode/dentry caches).
	kernelCodeFootprint    = 1 << 20
	kernelDataPerCore      = 128 << 10
	kernelDataShared       = 1 << 20
	kernelSharedAccessFrac = 0.15
	kernelSharedWriteFrac  = 0.08
	kernelCodeHotRegion    = 16 << 10
	kernelCodeHotFrac      = 0.5
)

// Hot-region bounds for the two-tier ("hot/cold") access mixture. Hot
// data (hash-table heads, dictionaries, centroids) sits between the L1
// DTLB's reach (256 KB) and the STLB's (2 MB), which is what real
// profiled working sets look like; hot code (inner loops) approaches the
// L1I capacity.
const (
	hotDataMin = 64 << 10
	hotDataMax = 2 << 20
	hotCodeMin = 8 << 10
	hotCodeMax = 24 << 10
)

// Generator emits the instruction stream for one core. It implements
// machine.Source.
type Generator struct {
	prof    Profile
	rng     *rng.RNG
	core    int
	cores   int // total cores sharing the node-level footprint
	emitted uint64

	// Phase state.
	inShuffle  bool
	phaseLeft  int
	period     int
	shuffleLen int
	computeLen int

	// Code stream state.
	pc       uint64
	kernelPC uint64
	inKernel bool
	kLeft    int // remaining kernel-burst instructions

	// Sequential data stream state.
	seqPtr uint64
}

// NewGenerator builds the stream for core `core` of a node with
// `totalCores` cores, with a deterministic seed. The profile must
// validate. The node-level data footprint is partitioned across cores.
func NewGenerator(prof Profile, seed uint64, core, totalCores int) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if totalCores < 1 || core < 0 || core >= totalCores {
		return nil, fmt.Errorf("trace: core %d of %d invalid", core, totalCores)
	}
	period := prof.PhasePeriod
	if period <= 0 {
		period = 4096
	}
	shuffleLen := int(float64(period) * prof.ShuffleFrac)
	g := &Generator{
		prof:       prof,
		rng:        rng.New(seed ^ (uint64(core)+1)*0xA24BAED4963EE407),
		core:       core,
		cores:      totalCores,
		period:     period,
		shuffleLen: shuffleLen,
		computeLen: period - shuffleLen,
		pc:         userCodeBase,
		kernelPC:   kernelCodeBase,
		seqPtr:     privateRegion(core),
	}
	g.phaseLeft = g.computeLen
	if g.computeLen == 0 {
		g.inShuffle = true
		g.phaseLeft = g.shuffleLen
	}
	return g, nil
}

func privateRegion(core int) uint64 {
	return privateBase + uint64(core)*privateStride
}

// params returns the active phase's parameters.
func (g *Generator) params() *Params {
	if g.inShuffle {
		return &g.prof.Shuffle
	}
	return &g.prof.Compute
}

// hotMixOffset samples an offset in [0, size): with probability hotFrac
// the access lands uniformly in the hot region [0, hotSize), otherwise
// uniformly anywhere in [0, size). This two-tier mixture matches profiled
// working sets (a small scorching structure plus a large cold sweep) and
// gives the cache/TLB hierarchy realistic reuse tiers.
func (g *Generator) hotMixOffset(size, hotSize uint64, hotFrac float64) uint64 {
	if hotSize > size {
		hotSize = size
	}
	region := size
	if hotSize > 0 && g.rng.Bool(hotFrac) {
		region = hotSize
	}
	off := uint64(g.rng.Float64() * float64(region))
	if off >= size {
		off = size - 1
	}
	return off
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// perCoreData returns this core's partition size of the node footprint.
func (g *Generator) perCoreData(p *Params) uint64 {
	f := p.DataFootprintB / uint64(g.cores)
	if f < 256<<10 {
		f = 256 << 10
	}
	return f
}

// nextPC produces the next instruction address.
func (g *Generator) nextPC(p *Params) uint64 {
	if g.inKernel {
		// Kernel code: large OS text with hot syscall paths.
		if g.rng.Bool(0.15) {
			g.kernelPC = kernelCodeBase + g.hotMixOffset(kernelCodeFootprint, kernelCodeHotRegion, kernelCodeHotFrac)&^3
		} else {
			g.kernelPC += 4
			if g.kernelPC >= kernelCodeBase+kernelCodeFootprint {
				g.kernelPC = kernelCodeBase
			}
		}
		return g.kernelPC
	}
	if g.rng.Bool(p.CodeJumpFrac) {
		hot := clamp(p.CodeFootprintB/16, hotCodeMin, hotCodeMax)
		g.pc = userCodeBase + g.hotMixOffset(p.CodeFootprintB, hot, p.CodeSkew)&^3
	} else {
		g.pc += 4
		if g.pc >= userCodeBase+p.CodeFootprintB {
			g.pc = userCodeBase
		}
	}
	return g.pc
}

// dataAddr produces a data address and whether the access must be a store
// (shared-region write traffic).
func (g *Generator) dataAddr(p *Params) (addr uint64, forceStore bool) {
	if g.inKernel {
		// Mostly per-CPU kernel structures, with a shared slice that
		// carries coherence traffic (run queues, dcache).
		if g.rng.Bool(kernelSharedAccessFrac) {
			off := uint64(g.rng.Float64() * kernelDataShared)
			return kernelDataBase + off&^7, g.rng.Bool(kernelSharedWriteFrac)
		}
		base := kernelDataBase + kernelDataShared + uint64(g.core)*kernelDataPerCore
		off := uint64(g.rng.Float64() * kernelDataPerCore)
		return base + off&^7, false
	}
	if p.SharedFrac > 0 && g.rng.Bool(p.SharedFrac) {
		// Shared structures (block manager, broadcast variables) are
		// hotter than private data: contention concentrates on them.
		hot := clamp(p.SharedFootprintB/8, hotDataMin, hotDataMax)
		hotFrac := p.DataSkew
		if hotFrac < 0.5 {
			hotFrac = 0.5
		}
		off := g.hotMixOffset(p.SharedFootprintB, hot, hotFrac)
		return sharedBase + off&^7, g.rng.Bool(p.SharedWriteFrac)
	}
	base := privateRegion(g.core)
	foot := g.perCoreData(p)
	if g.rng.Bool(p.SeqFrac) {
		g.seqPtr += 8
		if g.seqPtr >= base+foot {
			g.seqPtr = base
		}
		return g.seqPtr, false
	}
	hot := clamp(foot/4, hotDataMin, hotDataMax)
	return base + g.hotMixOffset(foot, hot, p.DataSkew)&^7, false
}

// branchTaken decides a branch outcome: a per-PC bias with entropy mixed
// in, so predictability is controlled by BranchEntropy.
func (g *Generator) branchTaken(p *Params, pc uint64) bool {
	if g.rng.Bool(p.BranchEntropy) {
		return g.rng.Bool(0.5)
	}
	// Deterministic per-PC bias: hash the PC.
	h := pc * 0x9E3779B97F4A7C15
	return h>>63 == 1
}

// Next implements machine.Source. The stream is unbounded; the machine's
// instruction budget terminates the run.
func (g *Generator) Next(out *machine.Instr) bool {
	p := g.params()

	// Phase bookkeeping.
	g.phaseLeft--
	if g.phaseLeft <= 0 {
		if g.inShuffle {
			g.inShuffle = false
			g.phaseLeft = g.computeLen
		} else if g.shuffleLen > 0 {
			g.inShuffle = true
			g.phaseLeft = g.shuffleLen
		} else {
			g.phaseLeft = g.computeLen
		}
	}

	// Kernel burst bookkeeping: enter ring 0 in bursts whose density
	// matches KernelFrac (mean burst 32 instructions).
	if g.inKernel {
		g.kLeft--
		if g.kLeft <= 0 {
			g.inKernel = false
		}
	} else if p.KernelFrac > 0 && g.rng.Bool(p.KernelFrac/32) {
		g.inKernel = true
		g.kLeft = 16 + g.rng.Intn(32)
	}

	pc := g.nextPC(p)

	// Pick the kind.
	u := g.rng.Float64()
	var kind machine.Kind
	switch {
	case u < p.LoadFrac:
		kind = machine.KindLoad
	case u < p.LoadFrac+p.StoreFrac:
		kind = machine.KindStore
	case u < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		kind = machine.KindBranch
	case u < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		kind = machine.KindFP
	case u < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.SSEFrac:
		kind = machine.KindSSE
	default:
		kind = machine.KindInt
	}

	*out = machine.Instr{
		PC:     pc,
		Kind:   kind,
		Kernel: g.inKernel,
	}

	// µop expansion: mean UopsPerInstr via a two-point distribution.
	uops := 1
	mean := p.UopsPerInstr
	if g.inKernel && mean < 1.8 {
		mean = 1.8 // ring-0 paths are microcode-heavy
	}
	for mean > 1 && uops < 4 {
		if g.rng.Bool(math.Min(mean-1, 1)) {
			uops++
		}
		mean--
	}
	out.Uops = uint8(uops)

	complexFrac := p.ComplexFrac
	if g.inKernel {
		complexFrac = math.Min(1, complexFrac+0.15)
	}
	out.Complex = g.rng.Bool(complexFrac)

	switch kind {
	case machine.KindLoad:
		addr, forceStore := g.dataAddr(p)
		out.Addr = addr
		if forceStore {
			// Shared-region write traffic: the access mutates shared
			// state (drives RFO and HITM coherence activity).
			out.Kind = machine.KindStore
		}
	case machine.KindStore:
		addr, _ := g.dataAddr(p)
		out.Addr = addr
	case machine.KindBranch:
		out.Taken = g.branchTaken(p, pc)
	default:
		out.Dependent = g.rng.Bool(p.DepFrac)
	}

	g.emitted++
	return true
}

// Emitted returns how many instructions have been generated.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Sources builds one generator per core for a node. seeds differ per core
// deterministically.
func Sources(prof Profile, seed uint64, cores int) ([]machine.Source, error) {
	out := make([]machine.Source, cores)
	for c := 0; c < cores; c++ {
		g, err := NewGenerator(prof, seed, c, cores)
		if err != nil {
			return nil, err
		}
		out[c] = g
	}
	return out, nil
}
