// Package fsio holds the shared durable-write primitive used by every
// on-disk store in the daemons (result cache, unit store, cell cache).
package fsio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileSync atomically and durably replaces path with data: the bytes
// are written to a uniquely named temporary file in the same directory,
// fsynced, and renamed over path. The fsync before the rename is the
// durability half of the contract — without it a journal record written
// after the rename could survive a power loss whose data bytes never hit
// the platter, leaving a key that claims bytes nobody holds. The unique
// temporary name is the concurrency half: two goroutines storing under
// the same key never scribble over each other's half-written file, and
// whichever rename lands last wins with complete bytes either way.
//
// The containing directory is deliberately not fsynced: every store built
// on this helper treats a missing entry as a cache miss or a re-dispatch,
// so losing the rename itself costs a recompute, never correctness.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("fsio: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("fsio: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("fsio: syncing %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("fsio: setting mode on %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: committing %s: %w", path, err)
	}
	return nil
}
