package fsio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteFileSyncRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entry.json")
	want := []byte(`{"x":1}`)
	if err := WriteFileSync(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// Replace: the rename must overwrite, not fail on the existing file.
	want2 := []byte(`{"x":2}`)
	if err := WriteFileSync(path, want2, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, want2) {
		t.Fatalf("after replace read %q, want %q", got, want2)
	}
}

func TestWriteFileSyncLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")

	// Concurrent writers to the same path: unique temp names mean no
	// writer can clobber another's in-progress file, and afterwards the
	// directory holds exactly the final entry.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := WriteFileSync(path, []byte(`{"k":"v"}`), 0o644); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want 1", len(ents))
	}
}

func TestWriteFileSyncMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing", "entry.json")
	if err := WriteFileSync(path, []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
