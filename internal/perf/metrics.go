// Package perf models the measurement infrastructure of the paper's §IV-C:
// a per-core performance-monitoring-counter (PMC) file programmed with
// event selectors, perf-style time multiplexing with scaling when more
// events are requested than counters exist, ramp-up skipping, multi-run
// averaging — and the derivation of the 45 microarchitectural metrics of
// Table II from raw event counts.
package perf

import (
	"fmt"
	"sync"

	"repro/internal/sim/event"
)

// Category groups metrics as in Table II.
type Category string

// Table II categories.
const (
	CatInstructionMix Category = "Instruction Mix"
	CatCache          Category = "Cache Behavior"
	CatTLB            Category = "TLB Behavior"
	CatBranch         Category = "Branch Execution"
	CatPipeline       Category = "Pipeline Behavior"
	CatOffcore        Category = "Offcore Request"
	CatSnoop          Category = "Snoop Response"
	CatParallelism    Category = "Parallelism"
	CatOpIntensity    Category = "Operation Intensity"
)

// Metric is one of the 45 Table II metrics.
type Metric struct {
	No          int // 1-based Table II numbering
	Name        string
	Category    Category
	Description string
	// Events lists the raw events this metric needs (used by the PMC
	// scheduler to know what to program).
	Events []event.ID
	// Compute derives the metric value from event counts.
	Compute func(c *event.Counts) float64
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func pki(n, inst uint64) float64 {
	if inst == 0 {
		return 0
	}
	return float64(n) / float64(inst) * 1000
}

// Catalog returns the 45 metrics in Table II order. The slice is freshly
// allocated; callers may reorder it.
func Catalog() []Metric {
	offcoreTotal := func(c *event.Counts) uint64 {
		return c.Get(event.OffcoreData) + c.Get(event.OffcoreCode) +
			c.Get(event.OffcoreRFO) + c.Get(event.OffcoreWB)
	}
	return []Metric{
		// Instruction mix.
		{1, "LOAD", CatInstructionMix, "load operations' percentage",
			[]event.ID{event.Loads, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.Loads), c.Get(event.InstRetired)) }},
		{2, "STORE", CatInstructionMix, "store operations' percentage",
			[]event.ID{event.Stores, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.Stores), c.Get(event.InstRetired)) }},
		{3, "BRANCH", CatInstructionMix, "branch operations' percentage",
			[]event.ID{event.Branches, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.Branches), c.Get(event.InstRetired)) }},
		{4, "INTEGER", CatInstructionMix, "integer operations' percentage",
			[]event.ID{event.IntOps, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.IntOps), c.Get(event.InstRetired)) }},
		{5, "FP", CatInstructionMix, "X87 floating point operations' percentage",
			[]event.ID{event.FPX87Ops, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.FPX87Ops), c.Get(event.InstRetired)) }},
		{6, "SSE FP", CatInstructionMix, "SSE floating point operations' percentage",
			[]event.ID{event.SSEFPOps, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.SSEFPOps), c.Get(event.InstRetired)) }},
		{7, "KERNEL MODE", CatInstructionMix, "ratio of instructions running in kernel mode",
			[]event.ID{event.InstKernel, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.InstKernel), c.Get(event.InstRetired)) }},
		{8, "USER MODE", CatInstructionMix, "ratio of instructions running in user mode",
			[]event.ID{event.InstKernel, event.InstRetired},
			func(c *event.Counts) float64 {
				return ratio(c.Get(event.InstRetired)-c.Get(event.InstKernel), c.Get(event.InstRetired))
			}},
		{9, "UOPS TO INS", CatInstructionMix, "ratio of micro operations to instructions",
			[]event.ID{event.UopsRetired, event.InstRetired},
			func(c *event.Counts) float64 { return ratio(c.Get(event.UopsRetired), c.Get(event.InstRetired)) }},

		// Cache behavior.
		{10, "L1I MISS", CatCache, "L1 instruction cache misses per K instructions",
			[]event.ID{event.L1IMiss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L1IMiss), c.Get(event.InstRetired)) }},
		{11, "L1I HIT", CatCache, "L1 instruction cache hits per K instructions",
			[]event.ID{event.L1IHit, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L1IHit), c.Get(event.InstRetired)) }},
		{12, "L2 MISS", CatCache, "L2 cache misses per K instructions",
			[]event.ID{event.L2Miss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L2Miss), c.Get(event.InstRetired)) }},
		{13, "L2 HIT", CatCache, "L2 cache hits per K instructions",
			[]event.ID{event.L2Hit, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L2Hit), c.Get(event.InstRetired)) }},
		{14, "L3 MISS", CatCache, "L3 cache misses per K instructions",
			[]event.ID{event.L3Miss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L3Miss), c.Get(event.InstRetired)) }},
		{15, "L3 HIT", CatCache, "L3 cache hits per K instructions",
			[]event.ID{event.L3Hit, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.L3Hit), c.Get(event.InstRetired)) }},
		{16, "LOAD HIT LFB", CatCache, "loads missing L1D that hit the line fill buffer per K instructions",
			[]event.ID{event.LoadHitLFB, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.LoadHitLFB), c.Get(event.InstRetired)) }},
		{17, "LOAD HIT L2", CatCache, "loads that hit the L2 cache per K instructions",
			[]event.ID{event.LoadHitL2, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.LoadHitL2), c.Get(event.InstRetired)) }},
		{18, "LOAD HIT SIBE", CatCache, "loads that hit a sibling core's cache per K instructions",
			[]event.ID{event.LoadHitSibling, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.LoadHitSibling), c.Get(event.InstRetired)) }},
		{19, "LOAD HIT L3", CatCache, "loads that hit unshared lines in L3 per K instructions",
			[]event.ID{event.LoadHitL3, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.LoadHitL3), c.Get(event.InstRetired)) }},
		{20, "LOAD LLC MISS", CatCache, "loads that miss the L3 cache per K instructions",
			[]event.ID{event.LoadLLCMiss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.LoadLLCMiss), c.Get(event.InstRetired)) }},

		// TLB behavior.
		{21, "ITLB MISS", CatTLB, "misses in all levels of the instruction TLB per K instructions",
			[]event.ID{event.ITLBMiss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.ITLBMiss), c.Get(event.InstRetired)) }},
		{22, "ITLB CYCLE", CatTLB, "ratio of ITLB page-walk cycles to total cycles",
			[]event.ID{event.ITLBWalkCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.ITLBWalkCycles), c.Get(event.Cycles)) }},
		{23, "DTLB MISS", CatTLB, "misses in all levels of the data TLB per K instructions",
			[]event.ID{event.DTLBMiss, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.DTLBMiss), c.Get(event.InstRetired)) }},
		{24, "DTLB CYCLE", CatTLB, "ratio of DTLB page-walk cycles to total cycles",
			[]event.ID{event.DTLBWalkCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.DTLBWalkCycles), c.Get(event.Cycles)) }},
		{25, "DATA HIT STLB", CatTLB, "first-level DTLB misses hitting the shared second-level TLB per K instructions",
			[]event.ID{event.DataHitSTLB, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.DataHitSTLB), c.Get(event.InstRetired)) }},

		// Branch execution.
		{26, "BR MISS", CatBranch, "branch misprediction ratio",
			[]event.ID{event.BranchMisses, event.Branches},
			func(c *event.Counts) float64 { return ratio(c.Get(event.BranchMisses), c.Get(event.Branches)) }},
		{27, "BR EXE TO RE", CatBranch, "ratio of executed to retired branch instructions",
			[]event.ID{event.BranchesExecuted, event.Branches},
			func(c *event.Counts) float64 { return ratio(c.Get(event.BranchesExecuted), c.Get(event.Branches)) }},

		// Pipeline behavior.
		{28, "FETCH STALL", CatPipeline, "ratio of instruction-fetch stalled cycles to total cycles",
			[]event.ID{event.FetchStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.FetchStallCycles), c.Get(event.Cycles)) }},
		{29, "ILD STALL", CatPipeline, "ratio of instruction-length-decoder stalled cycles to total cycles",
			[]event.ID{event.ILDStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.ILDStallCycles), c.Get(event.Cycles)) }},
		{30, "DECODER STALL", CatPipeline, "ratio of decoder stalled cycles to total cycles",
			[]event.ID{event.DecoderStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.DecoderStallCycles), c.Get(event.Cycles)) }},
		{31, "RAT STALL", CatPipeline, "ratio of register-allocation-table stalled cycles to total cycles",
			[]event.ID{event.RATStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.RATStallCycles), c.Get(event.Cycles)) }},
		{32, "RESOURCE STALL", CatPipeline, "ratio of resource-related stall cycles to total cycles",
			[]event.ID{event.ResourceStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.ResourceStallCycles), c.Get(event.Cycles)) }},
		{33, "UOPS EXE CYCLE", CatPipeline, "ratio of cycles with micro-ops executed to total cycles",
			[]event.ID{event.UopsExeCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.UopsExeCycles), c.Get(event.Cycles)) }},
		{34, "UOPS STALL", CatPipeline, "ratio of cycles with no micro-op executed to total cycles",
			[]event.ID{event.UopsStallCycles, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.UopsStallCycles), c.Get(event.Cycles)) }},

		// Offcore requests.
		{35, "OFFCORE DATA", CatOffcore, "percentage of offcore data requests",
			[]event.ID{event.OffcoreData, event.OffcoreCode, event.OffcoreRFO, event.OffcoreWB},
			func(c *event.Counts) float64 { return ratio(c.Get(event.OffcoreData), offcoreTotal(c)) }},
		{36, "OFFCORE CODE", CatOffcore, "percentage of offcore code requests",
			[]event.ID{event.OffcoreData, event.OffcoreCode, event.OffcoreRFO, event.OffcoreWB},
			func(c *event.Counts) float64 { return ratio(c.Get(event.OffcoreCode), offcoreTotal(c)) }},
		{37, "OFFCORE RFO", CatOffcore, "percentage of offcore requests-for-ownership",
			[]event.ID{event.OffcoreData, event.OffcoreCode, event.OffcoreRFO, event.OffcoreWB},
			func(c *event.Counts) float64 { return ratio(c.Get(event.OffcoreRFO), offcoreTotal(c)) }},
		{38, "OFFCORE WB", CatOffcore, "percentage of data write-backs to uncore",
			[]event.ID{event.OffcoreData, event.OffcoreCode, event.OffcoreRFO, event.OffcoreWB},
			func(c *event.Counts) float64 { return ratio(c.Get(event.OffcoreWB), offcoreTotal(c)) }},

		// Snoop responses.
		{39, "SNOOP HIT", CatSnoop, "HIT snoop responses per K instructions",
			[]event.ID{event.SnoopHit, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.SnoopHit), c.Get(event.InstRetired)) }},
		{40, "SNOOP HITE", CatSnoop, "HIT-Exclusive snoop responses per K instructions",
			[]event.ID{event.SnoopHitE, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.SnoopHitE), c.Get(event.InstRetired)) }},
		{41, "SNOOP HITM", CatSnoop, "HIT-Modified snoop responses per K instructions",
			[]event.ID{event.SnoopHitM, event.InstRetired},
			func(c *event.Counts) float64 { return pki(c.Get(event.SnoopHitM), c.Get(event.InstRetired)) }},

		// Parallelism.
		{42, "ILP", CatParallelism, "instruction-level parallelism (IPC)",
			[]event.ID{event.InstRetired, event.Cycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.InstRetired), c.Get(event.Cycles)) }},
		{43, "MLP", CatParallelism, "memory-level parallelism (mean outstanding misses)",
			[]event.ID{event.MLPWeighted, event.MLPCycles},
			func(c *event.Counts) float64 { return ratio(c.Get(event.MLPWeighted), c.Get(event.MLPCycles)) }},

		// Operation intensity.
		{44, "INT TO MEM", CatOpIntensity, "integer computation to memory access ratio",
			[]event.ID{event.IntOps, event.MemAccesses},
			func(c *event.Counts) float64 { return ratio(c.Get(event.IntOps), c.Get(event.MemAccesses)) }},
		{45, "FP TO MEM", CatOpIntensity, "floating point computation to memory access ratio",
			[]event.ID{event.FPX87Ops, event.SSEFPOps, event.MemAccesses},
			func(c *event.Counts) float64 {
				return ratio(c.Get(event.FPX87Ops)+c.Get(event.SSEFPOps), c.Get(event.MemAccesses))
			}},
	}
}

// NumMetrics is the size of the Table II metric set.
const NumMetrics = 45

// MetricNames returns the 45 metric names in Table II order.
func MetricNames() []string {
	cat := cachedCatalog()
	out := make([]string, len(cat))
	for i, m := range cat {
		out[i] = m.Name
	}
	return out
}

// cachedCatalog is the shared read-only catalog used on hot paths, so the
// 45 metric descriptors (and their closures) are built once per process
// instead of once per node-run. Callers that may reorder or mutate the
// slice must use Catalog.
var cachedCatalog = sync.OnceValue(Catalog)

// MetricVector computes all 45 metrics from event counts, in Table II
// order.
func MetricVector(c *event.Counts) []float64 {
	return MetricVectorInto(nil, c)
}

// MetricVectorInto computes all 45 metrics into dst (allocating when dst
// is nil or of the wrong length) and returns it, letting measurement
// workers reuse one buffer across runs.
func MetricVectorInto(dst []float64, c *event.Counts) []float64 {
	cat := cachedCatalog()
	if len(dst) != len(cat) {
		dst = make([]float64, len(cat))
	}
	for i, m := range cat {
		dst[i] = m.Compute(c)
	}
	return dst
}

// MetricIndex returns the zero-based index of the named metric, or an
// error if unknown.
func MetricIndex(name string) (int, error) {
	for i, m := range cachedCatalog() {
		if m.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("perf: unknown metric %q", name)
}

// DataSTLBHitRate returns the fraction of first-level DTLB misses served
// by the shared second-level TLB — the statistic behind the paper's
// Observation 7 discussion (61.48 % for Hadoop vs 50.80 % for Spark).
func DataSTLBHitRate(c *event.Counts) float64 {
	l1miss := c.Get(event.DataHitSTLB) + c.Get(event.DTLBMiss)
	return ratio(c.Get(event.DataHitSTLB), l1miss)
}
