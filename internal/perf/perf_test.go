package perf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim/event"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != NumMetrics {
		t.Fatalf("catalog has %d metrics, want %d", len(cat), NumMetrics)
	}
	seen := map[string]bool{}
	for i, m := range cat {
		if m.No != i+1 {
			t.Errorf("metric %q numbered %d at position %d", m.Name, m.No, i)
		}
		if m.Name == "" || m.Description == "" || m.Category == "" {
			t.Errorf("metric %d incomplete: %+v", m.No, m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate metric name %q", m.Name)
		}
		seen[m.Name] = true
		if len(m.Events) == 0 {
			t.Errorf("metric %q lists no events", m.Name)
		}
		if m.Compute == nil {
			t.Errorf("metric %q has no Compute", m.Name)
		}
	}
}

func TestCatalogCategories(t *testing.T) {
	counts := map[Category]int{}
	for _, m := range Catalog() {
		counts[m.Category]++
	}
	want := map[Category]int{
		CatInstructionMix: 9,
		CatCache:          11,
		CatTLB:            5,
		CatBranch:         2,
		CatPipeline:       7,
		CatOffcore:        4,
		CatSnoop:          3,
		CatParallelism:    2,
		CatOpIntensity:    2,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %q has %d metrics, want %d (Table II)", cat, counts[cat], n)
		}
	}
}

// sampleCounts builds an internally consistent event vector.
func sampleCounts() event.Counts {
	var c event.Counts
	c[event.InstRetired] = 10000
	c[event.InstKernel] = 2000
	c[event.UopsRetired] = 15000
	c[event.UopsExecuted] = 16000
	c[event.Cycles] = 8000
	c[event.Loads] = 3000
	c[event.Stores] = 1000
	c[event.Branches] = 1500
	c[event.IntOps] = 4000
	c[event.FPX87Ops] = 200
	c[event.SSEFPOps] = 300
	c[event.BranchesExecuted] = 1600
	c[event.BranchMisses] = 150
	c[event.L1IMiss] = 400
	c[event.L1IHit] = 9600
	c[event.L2Miss] = 300
	c[event.L2Hit] = 200
	c[event.L3Miss] = 100
	c[event.L3Hit] = 150
	c[event.MemAccesses] = 4000
	c[event.OffcoreData] = 60
	c[event.OffcoreCode] = 20
	c[event.OffcoreRFO] = 10
	c[event.OffcoreWB] = 10
	c[event.MLPWeighted] = 600
	c[event.MLPCycles] = 200
	c[event.DataHitSTLB] = 60
	c[event.DTLBMiss] = 40
	return c
}

func TestMetricValues(t *testing.T) {
	c := sampleCounts()
	v := MetricVector(&c)
	idx := func(name string) int {
		i, err := MetricIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	checks := map[string]float64{
		"LOAD":         0.3,
		"STORE":        0.1,
		"KERNEL MODE":  0.2,
		"USER MODE":    0.8,
		"UOPS TO INS":  1.5,
		"L1I MISS":     40,
		"L2 MISS":      30,
		"BR MISS":      0.1,
		"BR EXE TO RE": 1600.0 / 1500.0,
		"OFFCORE DATA": 0.6,
		"OFFCORE CODE": 0.2,
		"ILP":          1.25,
		"MLP":          3.0,
		"INT TO MEM":   1.0,
		"FP TO MEM":    0.125,
	}
	for name, want := range checks {
		if got := v[idx(name)]; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	var c event.Counts
	for i, x := range MetricVector(&c) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("metric %d is %v on zero counts", i+1, x)
		}
	}
}

func TestMetricIndexUnknown(t *testing.T) {
	if _, err := MetricIndex("NOPE"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestDataSTLBHitRate(t *testing.T) {
	c := sampleCounts()
	if got := DataSTLBHitRate(&c); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("DataSTLBHitRate = %v, want 0.6", got)
	}
	var zero event.Counts
	if got := DataSTLBHitRate(&zero); got != 0 {
		t.Errorf("DataSTLBHitRate on zero counts = %v", got)
	}
}

// buildSnapshots creates cumulative snapshots with per-slice deltas equal
// to `delta` for all events.
func buildSnapshots(nslices int, delta uint64) []event.Counts {
	out := make([]event.Counts, nslices+1)
	for i := 1; i <= nslices; i++ {
		for id := 0; id < int(event.NumEvents); id++ {
			out[i][id] = out[i-1][id] + delta
		}
	}
	return out
}

func TestMeasureExactWithoutMultiplex(t *testing.T) {
	snaps := buildSnapshots(10, 100)
	got, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: false})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < int(event.NumEvents); id++ {
		if got[id] != 1000 {
			t.Fatalf("event %v = %d, want 1000", event.ID(id), got[id])
		}
	}
}

func TestMeasureRampUpSkip(t *testing.T) {
	snaps := buildSnapshots(10, 100)
	got, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: false, RampUpFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 of 10 slices skipped.
	if got[event.InstRetired] != 800 {
		t.Errorf("InstRetired = %d, want 800 after 20%% ramp-up skip", got[event.InstRetired])
	}
}

func TestMeasureMultiplexUnbiasedOnUniformRates(t *testing.T) {
	// With uniform per-slice rates, multiplex scaling recovers the exact
	// total regardless of grouping.
	snaps := buildSnapshots(90, 10)
	got, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < int(event.NumEvents); id++ {
		if got[id] != 900 {
			t.Fatalf("event %v = %d, want 900", event.ID(id), got[id])
		}
	}
}

func TestMeasureMultiplexIntroducesErrorOnBurstyRates(t *testing.T) {
	// Event activity concentrated in a few slices: a multiplexed counter
	// that misses the burst under- or over-estimates.
	nslices := 24
	snaps := make([]event.Counts, nslices+1)
	r := rng.New(42)
	for i := 1; i <= nslices; i++ {
		snaps[i] = snaps[i-1]
		for id := 0; id < int(event.NumEvents); id++ {
			if r.Bool(0.2) {
				snaps[i][id] += 500 // burst
			} else {
				snaps[i][id] += 10
			}
		}
	}
	exact, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: false})
	if err != nil {
		t.Fatal(err)
	}
	muxed, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for id := 0; id < int(event.NumEvents); id++ {
		if exact[id] != muxed[id] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("multiplexing produced zero estimation error on bursty input")
	}
}

func TestMeasureValidation(t *testing.T) {
	snaps := buildSnapshots(4, 1)
	if _, err := Measure(snaps, MonitorConfig{Counters: 0}); err == nil {
		t.Error("0 counters accepted")
	}
	if _, err := Measure(snaps, MonitorConfig{Counters: 4, RampUpFraction: 1.5}); err == nil {
		t.Error("ramp-up 1.5 accepted")
	}
	if _, err := Measure(snaps[:1], MonitorConfig{Counters: 4}); err == nil {
		t.Error("single snapshot accepted")
	}
}

func TestAverageRuns(t *testing.T) {
	a := sampleCounts()
	b := sampleCounts()
	b[event.Loads] = 5000 // LOAD becomes 0.5 in run b
	avg := AverageRuns([]event.Counts{a, b})
	i, _ := MetricIndex("LOAD")
	if math.Abs(avg[i]-0.4) > 1e-12 {
		t.Errorf("averaged LOAD = %v, want 0.4", avg[i])
	}
}

func TestAverageVectors(t *testing.T) {
	got := AverageVectors([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("AverageVectors = %v, want [2 3]", got)
	}
}

func TestAverageVectorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched vectors did not panic")
		}
	}()
	AverageVectors([][]float64{{1}, {1, 2}})
}

// Property: without multiplexing and without ramp-up, Measure returns the
// final snapshot exactly.
func TestQuickMeasureExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		snaps := make([]event.Counts, n+1)
		for i := 1; i <= n; i++ {
			snaps[i] = snaps[i-1]
			for id := 0; id < int(event.NumEvents); id++ {
				snaps[i][id] += uint64(r.Intn(100))
			}
		}
		got, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: false})
		if err != nil {
			return false
		}
		return got == snaps[n]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: multiplexed estimates are within a factor of the number of
// groups of the truth for arbitrary inputs (scaling bound) and exact on
// constant-rate streams.
func TestQuickMultiplexScalingBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12 + r.Intn(24)
		rate := uint64(1 + r.Intn(50))
		snaps := make([]event.Counts, n+1)
		for i := 1; i <= n; i++ {
			snaps[i] = snaps[i-1]
			for id := 0; id < int(event.NumEvents); id++ {
				snaps[i][id] += rate
			}
		}
		got, err := Measure(snaps, MonitorConfig{Counters: 4, Multiplex: true})
		if err != nil {
			return false
		}
		want := rate * uint64(n)
		for id := 0; id < int(event.NumEvents); id++ {
			if got[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
