package perf

import (
	"fmt"

	"repro/internal/sim/event"
)

// MonitorConfig controls how event counts are collected from a run, in
// the style of Linux perf on the paper's Xeon (§IV-C).
type MonitorConfig struct {
	// Counters is the number of programmable PMCs available per
	// measurement group. The Westmere core has 4.
	Counters int
	// Multiplex enables perf-style time multiplexing: event groups are
	// rotated across time slices and counts are scaled by the fraction
	// of time each group was scheduled. Without it, counts are exact
	// (as if the workload were re-run once per group, which is what the
	// paper does: "we run each workload multiple times to obtain more
	// accurate values").
	Multiplex bool
	// RampUpFraction of the initial time slices is discarded before
	// counting ("We perform a ramp-up period for each application").
	RampUpFraction float64
}

// DefaultMonitor matches the paper's setup: 4 counters, multiplexing on,
// 20 % ramp-up skip.
func DefaultMonitor() MonitorConfig {
	return MonitorConfig{Counters: 4, Multiplex: true, RampUpFraction: 0.2}
}

// Validate checks the configuration.
func (c MonitorConfig) Validate() error {
	if c.Counters < 1 {
		return fmt.Errorf("perf: need ≥1 counter, got %d", c.Counters)
	}
	if c.RampUpFraction < 0 || c.RampUpFraction >= 1 {
		return fmt.Errorf("perf: ramp-up fraction %v out of [0,1)", c.RampUpFraction)
	}
	return nil
}

// Measure estimates total event counts from cumulative snapshots (as
// produced by machine.Run: snapshots[0] is the all-zero start, the last
// is the final total). With multiplexing, each event group only observes
// its scheduled slices and the estimate is scaled by slices/scheduled —
// reproducing the measurement error that real multiplexed PMCs incur.
func Measure(snapshots []event.Counts, cfg MonitorConfig) (event.Counts, error) {
	if err := cfg.Validate(); err != nil {
		return event.Counts{}, err
	}
	if len(snapshots) < 2 {
		return event.Counts{}, fmt.Errorf("perf: need ≥2 snapshots, got %d", len(snapshots))
	}

	// Slice deltas, after ramp-up skip.
	nslices := len(snapshots) - 1
	skip := int(float64(nslices) * cfg.RampUpFraction)
	if skip >= nslices {
		skip = nslices - 1
	}
	deltas := make([]event.Counts, 0, nslices-skip)
	for i := skip + 1; i < len(snapshots); i++ {
		d := snapshots[i].Sub(&snapshots[i-1])
		deltas = append(deltas, d)
	}

	if !cfg.Multiplex {
		var total event.Counts
		for i := range deltas {
			total.Add(&deltas[i])
		}
		return total, nil
	}

	// Group events into counter-sized groups, rotate round-robin.
	groups := groupEvents(cfg.Counters)
	ngroups := len(groups)
	var est event.Counts
	scheduled := make([]int, ngroups)
	sums := make([]event.Counts, ngroups)
	for si := range deltas {
		g := si % ngroups
		scheduled[g]++
		sums[g].Add(&deltas[si])
	}
	for g, grp := range groups {
		if scheduled[g] == 0 {
			// Group never ran (more groups than slices): estimate zero.
			continue
		}
		scale := float64(len(deltas)) / float64(scheduled[g])
		for _, id := range grp {
			// Round to nearest: truncation makes constant-rate streams
			// (which should be estimated exactly) come up one short when
			// the scale factor rounds down, e.g. 19·13·(26/13) → 493.999….
			est[id] = uint64(float64(sums[g][id])*scale + 0.5)
		}
	}
	return est, nil
}

// groupEvents partitions the full event catalog into groups of at most
// `counters` events, in catalog order.
func groupEvents(counters int) [][]event.ID {
	all := event.All()
	var groups [][]event.ID
	for len(all) > 0 {
		n := counters
		if n > len(all) {
			n = len(all)
		}
		groups = append(groups, all[:n])
		all = all[n:]
	}
	return groups
}

// AverageRuns averages the 45-metric vectors derived from several runs'
// measured counts — the paper's multi-run procedure. It returns the
// per-metric means.
func AverageRuns(runs []event.Counts) []float64 {
	if len(runs) == 0 {
		panic("perf: AverageRuns with no runs")
	}
	acc := make([]float64, NumMetrics)
	var buf []float64
	for i := range runs {
		buf = MetricVectorInto(buf, &runs[i])
		for j, x := range buf {
			acc[j] += x
		}
	}
	for j := range acc {
		acc[j] /= float64(len(runs))
	}
	return acc
}

// AverageVectors averages equal-length metric vectors (used to combine
// the four slave nodes: "We collect the data for all four slave nodes and
// take the mean").
func AverageVectors(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		panic("perf: AverageVectors with no vectors")
	}
	n := len(vecs[0])
	out := make([]float64, n)
	for _, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("perf: vector length mismatch %d vs %d", len(v), n))
		}
		for j, x := range v {
			out[j] += x
		}
	}
	for j := range out {
		out[j] /= float64(len(vecs))
	}
	return out
}
