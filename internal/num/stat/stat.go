// Package stat provides the descriptive statistics and normalization used
// by the characterization pipeline: means, variances, z-score normalization
// (paper §III-C: "normalize metric values to a Gaussian distribution with
// mean equal to zero and standard deviation equal to one"), and Pearson
// correlation for the redundancy analysis.
package stat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/num/mat"
)

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n). It panics
// on an empty slice.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
// It panics if len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stat: SampleVariance requires at least two samples")
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Median of empty slice")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stat: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. Constant series (zero variance) yield correlation 0 by convention
// here, since the pipeline treats constant metrics as uninformative.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stat: Pearson length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("stat: Pearson of empty series")
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// ZScoreResult carries the column means and standard deviations used to
// normalize a matrix, so the transform can be inverted or applied to new
// samples.
type ZScoreResult struct {
	Normalized *mat.Dense
	Means      []float64
	StdDevs    []float64
	// ConstantCols lists columns with zero variance. They are mapped to
	// all-zero columns (no information) rather than NaN.
	ConstantCols []int
}

// ZScoreColumns normalizes each column of m to mean 0 and population
// standard deviation 1. Columns with zero variance become all-zero.
func ZScoreColumns(m *mat.Dense) *ZScoreResult {
	rows, cols := m.Dims()
	out := mat.NewDense(rows, cols)
	res := &ZScoreResult{
		Normalized: out,
		Means:      make([]float64, cols),
		StdDevs:    make([]float64, cols),
	}
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		mu := Mean(col)
		sd := StdDev(col)
		res.Means[j] = mu
		res.StdDevs[j] = sd
		if sd == 0 {
			res.ConstantCols = append(res.ConstantCols, j)
			continue // leave the column at zero
		}
		for i := 0; i < rows; i++ {
			out.Set(i, j, (m.At(i, j)-mu)/sd)
		}
	}
	return res
}

// Apply normalizes a new sample (one value per column) with the stored
// means and standard deviations.
func (z *ZScoreResult) Apply(sample []float64) []float64 {
	if len(sample) != len(z.Means) {
		panic(fmt.Sprintf("stat: Apply sample length %d, want %d", len(sample), len(z.Means)))
	}
	out := make([]float64, len(sample))
	for j, v := range sample {
		if z.StdDevs[j] == 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - z.Means[j]) / z.StdDevs[j]
	}
	return out
}

// CovarianceMatrix returns the population covariance matrix (features ×
// features) of a samples×features matrix.
func CovarianceMatrix(m *mat.Dense) *mat.Dense {
	rows, cols := m.Dims()
	if rows < 2 {
		panic("stat: CovarianceMatrix requires at least two samples")
	}
	means := make([]float64, cols)
	for j := 0; j < cols; j++ {
		means[j] = Mean(m.Col(j))
	}
	cov := mat.NewDense(cols, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for a := 0; a < cols; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			for b := a; b < cols; b++ {
				cov.Set(a, b, cov.At(a, b)+da*(row[b]-means[b]))
			}
		}
	}
	inv := 1 / float64(rows)
	for a := 0; a < cols; a++ {
		for b := a; b < cols; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}

// CorrelationMatrix returns the Pearson correlation matrix of the columns
// of a samples×features matrix. Constant columns correlate 0 with
// everything and 1 with themselves.
func CorrelationMatrix(m *mat.Dense) *mat.Dense {
	_, cols := m.Dims()
	corr := mat.NewDense(cols, cols)
	columns := make([][]float64, cols)
	for j := 0; j < cols; j++ {
		columns[j] = m.Col(j)
	}
	for a := 0; a < cols; a++ {
		corr.Set(a, a, 1)
		for b := a + 1; b < cols; b++ {
			r := Pearson(columns[a], columns[b])
			corr.Set(a, b, r)
			corr.Set(b, a, r)
		}
	}
	return corr
}

// Summary holds the five-number-style description of a series.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Med, Max float64
}

// Describe summarizes xs.
func Describe(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Med:    Median(xs),
		Max:    max,
	}
}
