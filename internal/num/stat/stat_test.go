package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/num/mat"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty did not panic")
		}
	}()
	Mean(nil)
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := SampleVariance(xs); !almost(got, 1, 1e-12) {
		t.Errorf("SampleVariance = %v, want 1", got)
	}
}

func TestSampleVarianceSinglePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleVariance of 1 element did not panic")
		}
	}()
	SampleVariance([]float64{1})
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almost(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almost(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", got)
	}
}

func TestZScoreColumns(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}})
	res := ZScoreColumns(m)
	for j := 0; j < 2; j++ {
		col := res.Normalized.Col(j)
		if !almost(Mean(col), 0, 1e-12) {
			t.Errorf("col %d mean = %v, want 0", j, Mean(col))
		}
		if !almost(StdDev(col), 1, 1e-12) {
			t.Errorf("col %d stddev = %v, want 1", j, StdDev(col))
		}
	}
}

func TestZScoreConstantColumn(t *testing.T) {
	m := mat.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	res := ZScoreColumns(m)
	if len(res.ConstantCols) != 1 || res.ConstantCols[0] != 0 {
		t.Fatalf("ConstantCols = %v, want [0]", res.ConstantCols)
	}
	for i := 0; i < 3; i++ {
		if res.Normalized.At(i, 0) != 0 {
			t.Error("constant column should normalize to zeros")
		}
	}
}

func TestZScoreApply(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 5}, {3, 5}})
	res := ZScoreColumns(m)
	out := res.Apply([]float64{2, 5})
	if !almost(out[0], 0, 1e-12) {
		t.Errorf("Apply mean value = %v, want 0", out[0])
	}
	if out[1] != 0 {
		t.Errorf("Apply constant col = %v, want 0", out[1])
	}
}

func TestCovarianceMatrixKnown(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 2}, {3, 6}})
	cov := CovarianceMatrix(m)
	// var(x)=1, var(y)=4, cov=2 (population).
	if !almost(cov.At(0, 0), 1, 1e-12) || !almost(cov.At(1, 1), 4, 1e-12) || !almost(cov.At(0, 1), 2, 1e-12) {
		t.Errorf("covariance =\n%v", cov)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 2, 5}, {2, 4, 5}, {3, 6, 5}})
	c := CorrelationMatrix(m)
	if !almost(c.At(0, 1), 1, 1e-12) {
		t.Errorf("corr(0,1) = %v, want 1", c.At(0, 1))
	}
	if c.At(0, 2) != 0 {
		t.Errorf("corr with constant col = %v, want 0", c.At(0, 2))
	}
	if c.At(2, 2) != 1 {
		t.Errorf("diagonal = %v, want 1", c.At(2, 2))
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Med != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Describe = %+v", s)
	}
}

// Property: z-scored columns have mean ~0 and stddev ~1 (or are constant).
func TestQuickZScoreInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(20), 1+rng.Intn(10)
		m := mat.NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64()*10+5)
			}
		}
		res := ZScoreColumns(m)
		for j := 0; j < cols; j++ {
			col := res.Normalized.Col(j)
			if !almost(Mean(col), 0, 1e-9) {
				return false
			}
			sd := StdDev(col)
			if sd != 0 && !almost(sd, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		if r < -1-1e-12 || r > 1+1e-12 {
			return false
		}
		return almost(r, Pearson(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: covariance matrix is symmetric positive semi-definite
// (checked via non-negative eigenvalues).
func TestQuickCovariancePSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 3+rng.Intn(10), 2+rng.Intn(5)
		m := mat.NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		cov := CovarianceMatrix(m)
		if !cov.IsSymmetric(1e-10) {
			return false
		}
		e, err := mat.SymEigen(cov, 1e-10)
		if err != nil {
			return false
		}
		for _, v := range e.Values {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
