package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Errorf("Values = %v, want [3 1]", e.Values)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Errorf("Values = %v, want [3 1]", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2).
	v := e.Vectors.Col(0)
	if math.Abs(math.Abs(v[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v[0]-v[1]) > 1e-10 {
		t.Errorf("first eigenvector = %v", v)
	}
}

func TestSymEigenSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSymmetric(rng, 8)
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", e.Values)
		}
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(NewDense(2, 3), 1e-9); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {5, 1}})
	if _, err := SymEigen(a, 1e-9); err == nil {
		t.Error("expected error for asymmetric input")
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	e, err := SymEigen(NewDense(4, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Errorf("zero matrix eigenvalue %v, want 0", v)
		}
	}
	if !Equal(e.Vectors, Identity(4), 0) {
		t.Error("zero matrix eigenvectors should be identity")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: reconstruction V Λ Vᵀ equals the input.
func TestQuickEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		e, err := SymEigen(a, 1e-12)
		if err != nil {
			return false
		}
		return Equal(e.Reconstruct(), a, 1e-8*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvectors are orthonormal (VᵀV = I).
func TestQuickEigenOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		e, err := SymEigen(a, 1e-12)
		if err != nil {
			return false
		}
		return Equal(Mul(e.Vectors.T(), e.Vectors), Identity(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: trace equals sum of eigenvalues.
func TestQuickEigenTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		e, err := SymEigen(a, 1e-12)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: A v = λ v for every eigenpair.
func TestQuickEigenPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		e, err := SymEigen(a, 1e-12)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			v := e.Vectors.Col(j)
			av := a.MulVec(v)
			for i := range av {
				if math.Abs(av[i]-e.Values[j]*v[i]) > 1e-7*(1+a.MaxAbs()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if got := Norm(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Dot(a, []float64{1, 2}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Distance([]float64{0, 0}, a); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := SquaredDistance([]float64{0, 0}, a); math.Abs(got-25) > 1e-12 {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
	y := []float64{1, 1}
	AXPY(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", y)
	}
	v := []float64{3, 4}
	if !Normalize(v) || math.Abs(Norm(v)-1) > 1e-12 {
		t.Errorf("Normalize failed: %v", v)
	}
	z := []float64{0, 0}
	if Normalize(z) {
		t.Error("Normalize of zero vector should report false")
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":             func() { Dot([]float64{1}, []float64{1, 2}) },
		"Distance":        func() { Distance([]float64{1}, []float64{1, 2}) },
		"SquaredDistance": func() { SquaredDistance([]float64{1}, []float64{1, 2}) },
		"AXPY":            func() { AXPY(1, []float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}
