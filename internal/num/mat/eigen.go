package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the eigendecomposition of a real symmetric matrix:
// A = V diag(Values) Vᵀ, with eigenvalues sorted in descending order and
// Vectors column j holding the eigenvector for Values[j].
type EigenSym struct {
	Values  []float64
	Vectors *Dense // n×n, orthonormal columns
}

// jacobiMaxSweeps bounds the cyclic Jacobi iteration. 64 sweeps is far
// beyond what any well-conditioned covariance matrix of the sizes used
// here (≤ 64×64) needs; reaching it indicates a pathological input.
const jacobiMaxSweeps = 64

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. The input must be symmetric within symTol;
// it is not modified. The method is numerically robust for the small dense
// symmetric matrices (covariance/correlation) this library works with.
func SymEigen(a *Dense, symTol float64) (*EigenSym, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("mat: SymEigen requires a square matrix, got %dx%d", n, c)
	}
	if !a.IsSymmetric(symTol) {
		return nil, fmt.Errorf("mat: SymEigen requires a symmetric matrix (tol %g)", symTol)
	}

	// Work on a copy; accumulate rotations into v.
	w := a.Clone()
	v := Identity(n)

	offdiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.At(i, j)
				s += x * x
			}
		}
		return math.Sqrt(s)
	}

	// Convergence threshold scales with the matrix magnitude so tiny
	// matrices and large ones are handled uniformly.
	scale := w.FrobeniusNorm()
	if scale == 0 {
		// Zero matrix: eigenvalues all zero, vectors identity.
		return sortedEigen(make([]float64, n), v), nil
	}
	tol := 1e-12 * scale

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if offdiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cos := 1 / math.Sqrt(1+t*t)
				sin := t * cos

				// Apply rotation J(p,q,θ): w = Jᵀ w J.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, cos*wkp-sin*wkq)
					w.Set(k, q, sin*wkp+cos*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, cos*wpk-sin*wqk)
					w.Set(q, k, sin*wpk+cos*wqk)
				}
				// Accumulate eigenvectors: v = v J.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, cos*vkp-sin*vkq)
					v.Set(k, q, sin*vkp+cos*vkq)
				}
			}
		}
	}

	if offdiag() > tol*10 {
		return nil, fmt.Errorf("mat: Jacobi eigendecomposition did not converge after %d sweeps (offdiag %g, tol %g)",
			jacobiMaxSweeps, offdiag(), tol)
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	return sortedEigen(vals, v), nil
}

// sortedEigen orders eigenpairs by descending eigenvalue and fixes the sign
// convention (largest-magnitude component of each eigenvector is positive)
// so results are deterministic across runs.
func sortedEigen(vals []float64, vecs *Dense) *EigenSym {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	outVals := make([]float64, n)
	outVecs := NewDense(n, n)
	for j, src := range idx {
		outVals[j] = vals[src]
		col := vecs.Col(src)
		// Sign convention.
		maxAbs, sign := 0.0, 1.0
		for _, x := range col {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for i, x := range col {
			outVecs.Set(i, j, sign*x)
		}
	}
	return &EigenSym{Values: outVals, Vectors: outVecs}
}

// Reconstruct rebuilds V diag(Values) Vᵀ, which should equal the original
// matrix. Used by tests to verify decomposition quality.
func (e *EigenSym) Reconstruct() *Dense {
	n := len(e.Values)
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, e.Values[i])
	}
	return Mul(Mul(e.Vectors, d), e.Vectors.T())
}
