// Package mat provides dense matrix and vector algebra for the
// characterization pipeline. It is deliberately small: the PCA and
// clustering layers need matrix construction, products, transposes,
// column statistics, and a symmetric eigendecomposition — nothing more.
//
// All matrices are dense, row-major, float64. Dimensions are validated
// eagerly; size mismatches panic, since they are programming errors rather
// than data errors.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense creates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows requires a non-empty row set")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d, want %d", len(v), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Add returns a+b as a new matrix.
func Add(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Add dimension mismatch")
	}
	out := a.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Sub dimension mismatch")
	}
	out := a.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Equal reports whether a and b have identical dimensions and all elements
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix with %.4g elements, one row per line.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
