package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseInvalidPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSetGetRoundTrip(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, 7.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("At(1,0) = %v, want 7.5", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned a view, want a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col returned a view, want a copy")
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 {
		t.Errorf("Col(1) = %v, want [2 4]", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T().T()
	if !Equal(m, tt, 0) {
		t.Error("T(T(m)) != m")
	}
	if m.T().At(2, 1) != 6 {
		t.Errorf("T element wrong: %v", m.T().At(2, 1))
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := Mul(m, Identity(2))
	if !Equal(got, m, 1e-15) {
		t.Error("m * I != m")
	}
	got = Mul(Identity(3), m)
	if !Equal(got, m, 1e-15) {
		t.Error("I * m != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !Equal(got, want, 1e-12) {
		t.Errorf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := Add(a, b); got.At(0, 0) != 5 || got.At(1, 1) != 5 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := Sub(a, b); got.At(0, 0) != -3 || got.At(1, 1) != 3 {
		t.Errorf("Sub wrong: %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a := FromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestScale(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Scale(3)
	if m.At(0, 1) != 6 {
		t.Errorf("Scale wrong: %v", m.At(0, 1))
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{1, -7}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestStringContainsElements(t *testing.T) {
	m := FromRows([][]float64{{1.5, 2}})
	if s := m.String(); len(s) == 0 {
		t.Error("String is empty")
	}
}

// randomMatrix builds a deterministic pseudo-random r×c matrix.
func randomMatrix(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestQuickTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, m)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix product is associative.
func TestQuickMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		c := randomMatrix(rng, n, n)
		return Equal(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: AᵀA is always symmetric.
func TestQuickGramSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(rng, n, k)
		return Mul(a.T(), a).IsSymmetric(1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
