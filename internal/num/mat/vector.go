package mat

import (
	"fmt"
	"math"
)

// Dot returns the dot product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Distance length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// Normalize scales v to unit L2 norm in place. Zero vectors are left
// unchanged and reported via the return value.
func Normalize(v []float64) bool {
	n := Norm(v)
	if n == 0 {
		return false
	}
	ScaleVec(1/n, v)
	return true
}
