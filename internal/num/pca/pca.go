// Package pca implements principal component analysis as used by the paper
// (§III-C): metrics are z-score normalized, the covariance (equivalently,
// correlation) matrix is eigendecomposed, and Kaiser's criterion keeps the
// components with eigenvalue ≥ 1.
package pca

import (
	"fmt"
	"math"

	"repro/internal/num/mat"
	"repro/internal/num/stat"
)

// Result is a fitted PCA model.
type Result struct {
	// Eigenvalues in descending order, one per component (== #features).
	Eigenvalues []float64
	// Components is features×features; column j is the j-th principal axis.
	Components *mat.Dense
	// Scores is samples×features; row i is sample i projected onto all axes.
	Scores *mat.Dense
	// Loadings is features×features; Loadings[m][j] is the weight of
	// original metric m in component j scaled by sqrt(eigenvalue), the
	// conventional "factor loading" the paper plots in Fig. 4.
	Loadings *mat.Dense
	// Norm carries the z-score transform fitted on the input so new
	// samples can be projected consistently.
	Norm *stat.ZScoreResult
}

// Fit normalizes the samples×features input to z-scores, eigendecomposes
// the covariance of the normalized data (the correlation matrix of the raw
// data), and returns the full decomposition. At least two samples and one
// feature are required.
func Fit(data *mat.Dense) (*Result, error) {
	rows, cols := data.Dims()
	if rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 samples, got %d", rows)
	}
	if cols < 1 {
		return nil, fmt.Errorf("pca: need at least 1 feature, got %d", cols)
	}

	norm := stat.ZScoreColumns(data)
	cov := stat.CovarianceMatrix(norm.Normalized)
	eig, err := mat.SymEigen(cov, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}

	// Clamp tiny negative eigenvalues introduced by floating point.
	vals := make([]float64, len(eig.Values))
	for i, v := range eig.Values {
		if v < 0 && v > -1e-10 {
			v = 0
		}
		vals[i] = v
	}

	scores := mat.Mul(norm.Normalized, eig.Vectors)

	loadings := mat.NewDense(cols, cols)
	for m := 0; m < cols; m++ {
		for j := 0; j < cols; j++ {
			loadings.Set(m, j, eig.Vectors.At(m, j)*math.Sqrt(math.Max(vals[j], 0)))
		}
	}

	return &Result{
		Eigenvalues: vals,
		Components:  eig.Vectors,
		Scores:      scores,
		Loadings:    loadings,
		Norm:        norm,
	}, nil
}

// KaiserComponents returns the number of components with eigenvalue ≥ 1
// (Kaiser's criterion, the paper's PC-selection rule). It never returns 0:
// if no eigenvalue reaches 1 (possible for nearly-degenerate data), the
// single largest component is kept.
func (r *Result) KaiserComponents() int {
	k := 0
	for _, v := range r.Eigenvalues {
		if v >= 1 {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	return k
}

// ComponentsForVariance returns the smallest number of leading components
// whose cumulative explained variance reaches frac (0 < frac ≤ 1).
func (r *Result) ComponentsForVariance(frac float64) int {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("pca: variance fraction %v out of (0,1]", frac))
	}
	total := 0.0
	for _, v := range r.Eigenvalues {
		total += v
	}
	if total == 0 {
		return 1
	}
	cum := 0.0
	for i, v := range r.Eigenvalues {
		cum += v
		if cum/total >= frac {
			return i + 1
		}
	}
	return len(r.Eigenvalues)
}

// ExplainedVariance returns the fraction of total variance captured by the
// first k components.
func (r *Result) ExplainedVariance(k int) float64 {
	if k < 0 || k > len(r.Eigenvalues) {
		panic(fmt.Sprintf("pca: k=%d out of range [0,%d]", k, len(r.Eigenvalues)))
	}
	total, kept := 0.0, 0.0
	for i, v := range r.Eigenvalues {
		total += v
		if i < k {
			kept += v
		}
	}
	if total == 0 {
		return 0
	}
	return kept / total
}

// ScoresK returns the samples×k matrix of scores restricted to the first
// k components — the representation the clustering stages consume.
func (r *Result) ScoresK(k int) *mat.Dense {
	rows, cols := r.Scores.Dims()
	if k < 1 || k > cols {
		panic(fmt.Sprintf("pca: k=%d out of range [1,%d]", k, cols))
	}
	out := mat.NewDense(rows, k)
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, r.Scores.At(i, j))
		}
	}
	return out
}

// Project maps a raw (unnormalized) sample onto the first k principal
// components using the stored normalization.
func (r *Result) Project(sample []float64, k int) []float64 {
	z := r.Norm.Apply(sample)
	_, cols := r.Components.Dims()
	if k < 1 || k > cols {
		panic(fmt.Sprintf("pca: k=%d out of range [1,%d]", k, cols))
	}
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		s := 0.0
		for m := 0; m < len(z); m++ {
			s += z[m] * r.Components.At(m, j)
		}
		out[j] = s
	}
	return out
}

// DominantLoadings returns the indices of the metrics whose absolute
// loading on component pc is at least frac of that component's maximum
// absolute loading, split into positively and negatively dominating sets —
// the reading the paper performs on Fig. 4 to interpret PC1 and PC2.
func (r *Result) DominantLoadings(pc int, frac float64) (positive, negative []int) {
	rows, cols := r.Loadings.Dims()
	if pc < 0 || pc >= cols {
		panic(fmt.Sprintf("pca: component %d out of range [0,%d)", pc, cols))
	}
	maxAbs := 0.0
	for m := 0; m < rows; m++ {
		if a := math.Abs(r.Loadings.At(m, pc)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return nil, nil
	}
	thresh := frac * maxAbs
	for m := 0; m < rows; m++ {
		v := r.Loadings.At(m, pc)
		switch {
		case v >= thresh:
			positive = append(positive, m)
		case v <= -thresh:
			negative = append(negative, m)
		}
	}
	return positive, negative
}
