package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/num/mat"
	"repro/internal/num/stat"
)

// syntheticData builds samples with controlled correlated structure:
// feature 0 and 1 are strongly correlated, feature 2 is independent noise.
func syntheticData(rng *rand.Rand, n int) *mat.Dense {
	m := mat.NewDense(n, 3)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		m.Set(i, 0, base*3+rng.NormFloat64()*0.01)
		m.Set(i, 1, -base*2+rng.NormFloat64()*0.01)
		m.Set(i, 2, rng.NormFloat64())
	}
	return m
}

func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := Fit(mat.NewDense(1, 3)); err == nil {
		t.Error("expected error for single sample")
	}
}

func TestEigenvaluesSumToFeatureCount(t *testing.T) {
	// After z-scoring, total variance equals the number of non-constant
	// features (each contributes variance 1).
	rng := rand.New(rand.NewSource(1))
	data := syntheticData(rng, 50)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range r.Eigenvalues {
		sum += v
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Errorf("eigenvalue sum = %v, want 3", sum)
	}
}

func TestCorrelatedFeaturesCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := syntheticData(rng, 100)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// Two strongly correlated features collapse into one dominant
	// component: first eigenvalue near 2, third near 0.
	if r.Eigenvalues[0] < 1.8 {
		t.Errorf("first eigenvalue = %v, want ≈2", r.Eigenvalues[0])
	}
	if r.Eigenvalues[2] > 0.2 {
		t.Errorf("last eigenvalue = %v, want ≈0", r.Eigenvalues[2])
	}
}

func TestKaiserCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := syntheticData(rng, 100)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// Components: eigenvalues ≈ [2, 1, 0] → Kaiser keeps ~2.
	k := r.KaiserComponents()
	if k < 1 || k > 2 {
		t.Errorf("KaiserComponents = %d, want 1..2 (eigenvalues %v)", k, r.Eigenvalues)
	}
}

func TestKaiserNeverZero(t *testing.T) {
	// Nearly identical samples: all eigenvalues < 1 is impossible after
	// z-scoring with >1 feature unless degenerate, so craft perfectly
	// correlated features where one eigenvalue takes everything; still ≥1
	// is returned.
	data := mat.FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.KaiserComponents() < 1 {
		t.Error("KaiserComponents returned 0")
	}
}

func TestExplainedVarianceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := syntheticData(rng, 60)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := 0; k <= 3; k++ {
		ev := r.ExplainedVariance(k)
		if ev < prev-1e-12 {
			t.Errorf("ExplainedVariance(%d) = %v < previous %v", k, ev, prev)
		}
		prev = ev
	}
	if math.Abs(r.ExplainedVariance(3)-1) > 1e-9 {
		t.Errorf("full variance = %v, want 1", r.ExplainedVariance(3))
	}
}

func TestComponentsForVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := syntheticData(rng, 60)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	k := r.ComponentsForVariance(0.6)
	if k != 1 {
		t.Errorf("ComponentsForVariance(0.6) = %d, want 1 (eigenvalues %v)", k, r.Eigenvalues)
	}
	if got := r.ComponentsForVariance(1.0); got > 3 {
		t.Errorf("ComponentsForVariance(1.0) = %d", got)
	}
}

func TestScoresKShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := syntheticData(rng, 20)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	s := r.ScoresK(2)
	rows, cols := s.Dims()
	if rows != 20 || cols != 2 {
		t.Errorf("ScoresK dims = %dx%d, want 20x2", rows, cols)
	}
	// The truncated scores must match the full score matrix.
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if s.At(i, j) != r.Scores.At(i, j) {
				t.Fatal("ScoresK disagrees with Scores")
			}
		}
	}
}

func TestProjectMatchesScores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := syntheticData(rng, 25)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		p := r.Project(data.Row(i), 3)
		for j := 0; j < 3; j++ {
			if math.Abs(p[j]-r.Scores.At(i, j)) > 1e-9 {
				t.Fatalf("Project(row %d)[%d] = %v, scores %v", i, j, p[j], r.Scores.At(i, j))
			}
		}
	}
}

func TestDominantLoadings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := syntheticData(rng, 100)
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := r.DominantLoadings(0, 0.5)
	// Features 0 and 1 are anti-correlated so they dominate PC1 with
	// opposite signs; feature 2 should not appear.
	seen := map[int]bool{}
	for _, m := range pos {
		seen[m] = true
	}
	for _, m := range neg {
		seen[m] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("dominant loadings pos=%v neg=%v, want features 0 and 1", pos, neg)
	}
	if seen[2] {
		t.Errorf("noise feature 2 dominates PC1: pos=%v neg=%v", pos, neg)
	}
	if len(pos) == 0 || len(neg) == 0 {
		t.Errorf("anti-correlated features should split signs: pos=%v neg=%v", pos, neg)
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	data := mat.FromRows([][]float64{{1, 5, 2}, {2, 5, 4}, {3, 5, 6}})
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// Constant column contributes zero variance; eigenvalue sum is 2.
	sum := 0.0
	for _, v := range r.Eigenvalues {
		sum += v
	}
	if math.Abs(sum-2) > 1e-9 {
		t.Errorf("eigenvalue sum with constant col = %v, want 2", sum)
	}
}

// Property: scores of distinct components are uncorrelated (the whole
// point of PCA — paper §III-C "the resulting data is ensured to be
// uncorrelated").
func TestQuickScoresUncorrelated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 10+rng.Intn(30), 2+rng.Intn(5)
		data := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				data.Set(i, j, rng.NormFloat64()*(1+float64(j)))
			}
		}
		r, err := Fit(data)
		if err != nil {
			return false
		}
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				ca, cb := r.Scores.Col(a), r.Scores.Col(b)
				// Covariance of two score columns must be ~0 when both
				// components carry variance.
				if r.Eigenvalues[a] > 1e-6 && r.Eigenvalues[b] > 1e-6 {
					cov := 0.0
					ma, mb := stat.Mean(ca), stat.Mean(cb)
					for i := range ca {
						cov += (ca[i] - ma) * (cb[i] - mb)
					}
					cov /= float64(len(ca))
					if math.Abs(cov) > 1e-7 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: variance of score column j equals eigenvalue j.
func TestQuickScoreVarianceIsEigenvalue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 10+rng.Intn(30), 2+rng.Intn(5)
		data := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				data.Set(i, j, rng.NormFloat64())
			}
		}
		r, err := Fit(data)
		if err != nil {
			return false
		}
		for j := 0; j < d; j++ {
			v := stat.Variance(r.Scores.Col(j))
			if math.Abs(v-r.Eigenvalues[j]) > 1e-7*(1+r.Eigenvalues[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
