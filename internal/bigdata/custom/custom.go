// Package custom opens the workload suite beyond the paper's Table I: a
// Definition declaratively describes a new scenario in the paper's own
// vocabulary — category, problem size, data traits (footprint, skew,
// sequentiality bias à la bdgs) and an instruction/access-mix profile —
// and the package synthesizes it through the exact blending path the 32
// built-ins use (workloads.Synthesize: stack.Profile base + Dominance
// weighting), so a custom algorithm gets H-/S- variants just like a
// Table I entry. A Definition may instead carry a raw trace.Profile for
// full low-level control, bypassing stack blending.
//
// Definitions are JSON-serializable and participate in service job
// identity: they are validated (NaN/Inf, out-of-range knobs, name
// collisions with the built-ins) and canonically normalized, so two
// specs carrying semantically identical definitions hash to the same
// content-addressed job ID and deduplicate through the result cache —
// locally, on bdservd, and across bdcoord shard fan-out.
package custom

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/bigdata/stack"
	"repro/internal/bigdata/workloads"
	"repro/internal/trace"
)

// DataSpec carries a blended definition's data traits: what the BDGS
// analog would report about the scenario's generated input.
type DataSpec struct {
	// PaperBytes is the dataset size at paper scale (e.g. 80 GB for
	// Sort); workloads.Config.Scale divides it down to the simulation
	// footprint, and the stack's DataScale multiplies it (Spark's
	// in-memory RDDs enlarge the live set).
	PaperBytes uint64 `json:"paper_bytes"`
	// Skew in [0, 0.9] is the access-concentration knob: the probability
	// an access lands in the hot region (dictionary heads, centroids).
	Skew float64 `json:"skew,omitempty"`
	// SeqBias in [0, 1] is additional sequentiality from the data layout,
	// added onto the mix's SeqFrac (capped at 1).
	SeqBias float64 `json:"seq_bias,omitempty"`
}

// Definition is one declarative custom scenario. Exactly one of Mix
// (blended mode: the definition is an algorithm synthesized on both
// software stacks, yielding H-<Name> and S-<Name>) or Raw (one workload
// named <Name>, profile used verbatim) must be set.
type Definition struct {
	// Name is the algorithm name (blended mode; the workloads are
	// H-<Name> and S-<Name>) or the literal workload name (raw mode). It
	// must not collide with the 32 built-ins and must be usable in
	// comma-separated selections: no whitespace, commas or control bytes.
	Name string `json:"name"`
	// Category is workloads.CategoryOffline (default) or
	// CategoryInteractive; "offline"/"interactive" shorthands are
	// accepted and canonicalized. Interactive definitions run on
	// Hive/Shark, offline ones on Hadoop/Spark, exactly like Table I.
	Category string `json:"category,omitempty"`
	// ProblemSize and DataType are Table I metadata columns (default
	// "custom").
	ProblemSize string `json:"problem_size,omitempty"`
	DataType    string `json:"data_type,omitempty"`

	// Data describes the generated input (blended mode only).
	Data DataSpec `json:"data"`
	// Mix is the user-code contribution to the instruction stream
	// (blended mode). Its DataFootprintB is derived from Data.PaperBytes
	// and zeroed during normalization; UopsPerInstr, CodeFootprintB and
	// SharedFootprintB get Table-I-like defaults when zero.
	Mix *trace.Params `json:"mix,omitempty"`
	// ShuffleFrac in [0, 0.5] is the fraction of execution spent in
	// shuffle/IO phases (blended mode).
	ShuffleFrac float64 `json:"shuffle_frac,omitempty"`

	// Raw, when set, is used verbatim as the single workload's profile
	// (raw mode); Data, Mix and ShuffleFrac must be unset.
	Raw *trace.Profile `json:"raw,omitempty"`
}

// mixDefaults are the structural-knob defaults filled into a blended
// definition's Mix when zero, mirroring the built-in user-code baseline.
const (
	defaultUopsPerInstr   = 1.35
	defaultCodeFootprintB = 192 << 10
	defaultSharedB        = 1 << 20
)

// zeroDeadShared clears the shared-region knobs when no access ever
// reaches them. Blended mixes keep theirs: the stack base contributes
// nonzero SharedFrac, so a mix's shared footprint blends into execution
// even when the mix's own SharedFrac is zero.
func zeroDeadShared(p *trace.Params) {
	if p.SharedFrac == 0 {
		p.SharedFootprintB = 0
		p.SharedWriteFrac = 0
	}
}

// finite rejects NaN and ±Inf across a set of named float knobs — range
// checks alone let NaN through (every comparison with NaN is false).
func finite(context string, knobs map[string]float64) error {
	for name, v := range knobs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("custom: %s: %s is %v (NaN/Inf rejected)", context, name, v)
		}
	}
	return nil
}

// finiteParams checks every float field of a trace.Params.
func finiteParams(context string, p trace.Params) error {
	return finite(context, map[string]float64{
		"LoadFrac": p.LoadFrac, "StoreFrac": p.StoreFrac, "BranchFrac": p.BranchFrac,
		"FPFrac": p.FPFrac, "SSEFrac": p.SSEFrac, "KernelFrac": p.KernelFrac,
		"UopsPerInstr": p.UopsPerInstr, "ComplexFrac": p.ComplexFrac, "DepFrac": p.DepFrac,
		"BranchEntropy": p.BranchEntropy, "CodeJumpFrac": p.CodeJumpFrac,
		"CodeSkew": p.CodeSkew, "DataSkew": p.DataSkew, "SeqFrac": p.SeqFrac,
		"SharedFrac": p.SharedFrac, "SharedWriteFrac": p.SharedWriteFrac,
	})
}

// validName rejects names that would break comma-separated selections,
// JSON readability or the H-/S- naming scheme. Printable ASCII only: a
// Unicode allowlist would still admit invisible characters (NBSP,
// zero-width space) that make a listed name impossible to type back.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("custom: definition with empty name")
	}
	if len(name) > 64 {
		return fmt.Errorf("custom: name %q longer than 64 bytes", name)
	}
	for _, r := range name {
		if r <= ' ' || r >= 0x7f || r == ',' {
			return fmt.Errorf("custom: name %q must be printable ASCII without spaces or commas", name)
		}
	}
	return nil
}

// Normalized validates the definition and returns its canonical form:
// defaults filled, shorthands expanded, derived knobs folded, execution-
// irrelevant junk zeroed. Two semantically identical definitions
// normalize to identical values, which is what lets them participate in
// content-addressed job IDs.
func (d Definition) Normalized() (Definition, error) {
	n := d
	n.Name = strings.TrimSpace(n.Name)
	if err := validName(n.Name); err != nil {
		return n, err
	}

	switch strings.ToLower(strings.TrimSpace(n.Category)) {
	case "", "offline", strings.ToLower(workloads.CategoryOffline):
		n.Category = workloads.CategoryOffline
	case "interactive", strings.ToLower(workloads.CategoryInteractive):
		n.Category = workloads.CategoryInteractive
	default:
		return n, fmt.Errorf("custom: %s: unknown category %q (%s, %s)",
			n.Name, n.Category, workloads.CategoryOffline, workloads.CategoryInteractive)
	}
	if strings.TrimSpace(n.ProblemSize) == "" {
		n.ProblemSize = "custom"
	}
	if strings.TrimSpace(n.DataType) == "" {
		n.DataType = "custom"
	}

	switch {
	case n.Raw != nil:
		if n.Mix != nil || n.ShuffleFrac != 0 || n.Data != (DataSpec{}) {
			return n, fmt.Errorf("custom: %s: raw and blended (data/mix/shuffle_frac) fields are mutually exclusive", n.Name)
		}
		raw := *n.Raw
		// The workload name is the definition's name; a divergent inner
		// profile name would leak into labels and break selection.
		raw.Name = n.Name
		if err := finiteParams(n.Name+" raw compute", raw.Compute); err != nil {
			return n, err
		}
		if err := finiteParams(n.Name+" raw shuffle", raw.Shuffle); err != nil {
			return n, err
		}
		if err := finite(n.Name, map[string]float64{"raw ShuffleFrac": raw.ShuffleFrac}); err != nil {
			return n, err
		}
		if err := raw.Validate(); err != nil {
			return n, fmt.Errorf("custom: %s: %w", n.Name, err)
		}
		// Canonicalize dead knobs the generator never reads, so they
		// cannot split the job-ID space between byte-identical runs: the
		// generator treats PhasePeriod ≤ 0 as 4096, never enters the
		// shuffle phase at ShuffleFrac 0, and never touches the shared
		// region at SharedFrac 0.
		if raw.PhasePeriod <= 0 {
			raw.PhasePeriod = 4096
		}
		if raw.ShuffleFrac == 0 {
			raw.Shuffle = trace.Params{}
		}
		zeroDeadShared(&raw.Compute)
		zeroDeadShared(&raw.Shuffle)
		n.Raw = &raw

	case n.Mix != nil:
		if err := finite(n.Name, map[string]float64{
			"data.skew": n.Data.Skew, "data.seq_bias": n.Data.SeqBias, "shuffle_frac": n.ShuffleFrac,
		}); err != nil {
			return n, err
		}
		if err := finiteParams(n.Name+" mix", *n.Mix); err != nil {
			return n, err
		}
		if n.Data.PaperBytes == 0 {
			return n, fmt.Errorf("custom: %s: data.paper_bytes is required (dataset size at paper scale)", n.Name)
		}
		if n.Data.Skew < 0 || n.Data.Skew > 0.9 {
			return n, fmt.Errorf("custom: %s: data.skew %v out of [0, 0.9]", n.Name, n.Data.Skew)
		}
		if n.Data.SeqBias < 0 || n.Data.SeqBias > 1 {
			return n, fmt.Errorf("custom: %s: data.seq_bias %v out of [0, 1]", n.Name, n.Data.SeqBias)
		}
		if n.ShuffleFrac < 0 || n.ShuffleFrac > 0.5 {
			return n, fmt.Errorf("custom: %s: shuffle_frac %v out of [0, 0.5]", n.Name, n.ShuffleFrac)
		}
		mix := *n.Mix
		if mix.UopsPerInstr == 0 {
			mix.UopsPerInstr = defaultUopsPerInstr
		}
		if mix.CodeFootprintB == 0 {
			mix.CodeFootprintB = defaultCodeFootprintB
		}
		if mix.SharedFrac > 0 && mix.SharedFootprintB == 0 {
			mix.SharedFootprintB = defaultSharedB
		}
		// Range-check the mix itself, before blending or folding can mask
		// nonsense: Blend pulls out-of-range user values back into valid
		// ranges via the stack's Dominance weight, so the post-blend
		// profile validation alone would silently characterize (and
		// permanently cache) a scenario unrelated to the declared mix.
		// The footprint placeholder stands in for the value derived from
		// Data.PaperBytes at build time.
		chk := mix
		chk.DataFootprintB = 1 << 20
		if err := chk.Validate(); err != nil {
			return n, fmt.Errorf("custom: %s: mix: %w", n.Name, err)
		}
		// SeqBias is a data-layout trait; fold it into the access mix so
		// the canonical form carries one sequentiality knob.
		mix.SeqFrac = math.Min(1, mix.SeqFrac+n.Data.SeqBias)
		n.Data.SeqBias = 0
		// The data footprint is derived from Data.PaperBytes at suite
		// scale; a stale value here must not split the job-ID space.
		mix.DataFootprintB = 0
		n.Mix = &mix

	default:
		return n, fmt.Errorf("custom: %s: definition needs either mix+data (blended) or raw", n.Name)
	}
	return n, nil
}

// WorkloadNames returns the workload names the definition yields, in
// suite order: H-<Name>, S-<Name> for blended definitions (both
// categories use the H-/S- prefixes, like Hive/Shark in Table I), or the
// bare name for raw ones.
func (d Definition) WorkloadNames() []string {
	if d.Raw != nil {
		return []string{d.Name}
	}
	return []string{"H-" + d.Name, "S-" + d.Name}
}

// NormalizeAll normalizes every definition and enforces set-level
// invariants: no generated workload name may collide with another
// definition's or with the 32 built-ins. Order is preserved — it is
// semantic, fixing suite (and therefore dataset row) order.
func NormalizeAll(defs []Definition) ([]Definition, error) {
	if len(defs) == 0 {
		return nil, nil
	}
	builtin := make(map[string]bool)
	for _, n := range workloads.BuiltinNames() {
		builtin[n] = true
	}
	seen := make(map[string]bool)
	out := make([]Definition, len(defs))
	for i, d := range defs {
		n, err := d.Normalized()
		if err != nil {
			return nil, err
		}
		for _, name := range n.WorkloadNames() {
			if builtin[name] {
				return nil, fmt.Errorf("custom: %s collides with built-in workload %q", n.Name, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("custom: workload name %q defined twice", name)
			}
			seen[name] = true
		}
		out[i] = n
	}
	return out, nil
}

// Build synthesizes the workloads a definition set describes at the given
// suite configuration: blended definitions go through the identical
// workloads.Synthesize path as the built-ins (per-engine stack selection,
// Dominance blending, footprint scaling), raw ones are wrapped verbatim.
// Callers append the result after the built-in suite; per-cell seeds are
// functions of workload *names*, so appending custom workloads never
// perturbs built-in measurements.
func Build(defs []Definition, cfg workloads.Config) ([]workloads.Workload, error) {
	norm, err := NormalizeAll(defs)
	if err != nil {
		return nil, err
	}
	var out []workloads.Workload
	for _, d := range norm {
		if d.Raw != nil {
			out = append(out, workloads.Workload{
				Name:        d.Name,
				Algorithm:   d.Name,
				Category:    d.Category,
				ProblemSize: d.ProblemSize,
				DataType:    d.DataType,
				Profile:     *d.Raw,
			})
			continue
		}
		alg := workloads.Algorithm{
			Name:             d.Name,
			Category:         d.Category,
			ProblemSize:      d.ProblemSize,
			DataType:         d.DataType,
			PaperBytes:       d.Data.PaperBytes,
			User:             *d.Mix,
			ShuffleIntensity: d.ShuffleFrac,
			Skew:             d.Data.Skew,
		}
		for _, eng := range []stack.Engine{stack.EngineHadoop, stack.EngineSpark} {
			w, err := workloads.Synthesize(alg, eng, cfg)
			if err != nil {
				return nil, fmt.Errorf("custom: %s: %w", d.Name, err)
			}
			out = append(out, w)
		}
	}
	return out, nil
}

// Load decodes definitions from JSON: either a bare array of definitions
// or an object with a "custom_workloads" array (the JobSpec field form,
// so a spec file fragment round-trips). Unknown fields are rejected —
// a typoed knob silently defaulting would characterize the wrong
// scenario.
func Load(r io.Reader) ([]Definition, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	var raw []json.RawMessage
	if strings.HasPrefix(trimmed, "{") {
		var obj struct {
			CustomWorkloads []json.RawMessage `json:"custom_workloads"`
		}
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&obj); err != nil {
			return nil, fmt.Errorf("custom: decoding workload file: %w", err)
		}
		if err := ensureEOF(dec); err != nil {
			return nil, err
		}
		raw = obj.CustomWorkloads
	} else {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("custom: decoding workload file: %w", err)
		}
		if err := ensureEOF(dec); err != nil {
			return nil, err
		}
	}
	defs := make([]Definition, len(raw))
	for i, r := range raw {
		dec := json.NewDecoder(strings.NewReader(string(r)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&defs[i]); err != nil {
			return nil, fmt.Errorf("custom: definition %d: %w", i, err)
		}
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("custom: workload file contains no definitions")
	}
	return defs, nil
}

// ensureEOF rejects content after the first JSON value — a second
// concatenated array (or stray text) silently dropped would characterize
// fewer scenarios than the file describes.
func ensureEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("custom: workload file has trailing content after the first JSON value")
	}
	return nil
}

// LoadFile reads definitions from a JSON file (see Load).
func LoadFile(path string) ([]Definition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	defs, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return defs, nil
}
