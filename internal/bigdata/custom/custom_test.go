package custom

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/bigdata/stack"
	"repro/internal/bigdata/workloads"
	"repro/internal/trace"
)

// blendedDef returns a minimal valid blended definition.
func blendedDef(name string) Definition {
	return Definition{
		Name: name,
		Data: DataSpec{PaperBytes: 16 << 30, Skew: 0.4},
		Mix: &trace.Params{
			LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15,
			DepFrac: 0.2, SeqFrac: 0.5,
		},
		ShuffleFrac: 0.2,
	}
}

// rawDef returns a minimal valid raw definition.
func rawDef(name string) Definition {
	prof := trace.Profile{
		Compute: trace.Params{
			LoadFrac: 0.3, StoreFrac: 0.1, UopsPerInstr: 1.3,
			CodeFootprintB: 64 << 10, DataFootprintB: 8 << 20,
		},
	}
	return Definition{Name: name, Raw: &prof}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	n, err := blendedDef("Foo").Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Category != workloads.CategoryOffline {
		t.Errorf("default category = %q", n.Category)
	}
	if n.ProblemSize != "custom" || n.DataType != "custom" {
		t.Errorf("default metadata = %q / %q", n.ProblemSize, n.DataType)
	}
	if n.Mix.UopsPerInstr != defaultUopsPerInstr {
		t.Errorf("UopsPerInstr = %v", n.Mix.UopsPerInstr)
	}
	if n.Mix.CodeFootprintB != defaultCodeFootprintB {
		t.Errorf("CodeFootprintB = %v", n.Mix.CodeFootprintB)
	}
}

func TestNormalizedCanonicalizesEquivalentForms(t *testing.T) {
	a := blendedDef("Foo")
	a.Category = "offline"
	a.Mix.DataFootprintB = 123 << 20 // stale junk: derived from Data at build time

	b := blendedDef("Foo")
	b.Category = workloads.CategoryOffline
	b.Mix.UopsPerInstr = defaultUopsPerInstr

	na, err := a.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(na)
	jb, _ := json.Marshal(nb)
	if string(ja) != string(jb) {
		t.Errorf("equivalent definitions normalize differently:\n%s\n%s", ja, jb)
	}
}

// Dead knobs the generator never reads must not split the job-ID space:
// PhasePeriod 0 and 4096 are the same execution, as are junk shuffle or
// shared parameters behind a zero fraction.
func TestNormalizedCanonicalizesRawDeadKnobs(t *testing.T) {
	a := rawDef("Foo")
	a.Raw.PhasePeriod = 0
	a.Raw.Shuffle = trace.Params{LoadFrac: 0.9, UopsPerInstr: 3} // dead: ShuffleFrac == 0
	a.Raw.Compute.SharedFootprintB = 99 << 20                    // dead: SharedFrac == 0
	a.Raw.Compute.SharedWriteFrac = 0.7

	b := rawDef("Foo")
	b.Raw.PhasePeriod = 4096

	na, err := a.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(na)
	jb, _ := json.Marshal(nb)
	if string(ja) != string(jb) {
		t.Errorf("execution-identical raw definitions normalize differently:\n%s\n%s", ja, jb)
	}
	// Live shared knobs must survive canonicalization.
	c := rawDef("Foo")
	c.Raw.Compute.SharedFrac = 0.1
	c.Raw.Compute.SharedFootprintB = 2 << 20
	nc, err := c.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if nc.Raw.Compute.SharedFootprintB != 2<<20 {
		t.Error("live SharedFootprintB was zeroed")
	}
}

func TestNormalizedFoldsSeqBias(t *testing.T) {
	d := blendedDef("Foo")
	d.Mix.SeqFrac = 0.9
	d.Data.SeqBias = 0.3
	n, err := d.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Mix.SeqFrac != 1 || n.Data.SeqBias != 0 {
		t.Errorf("SeqFrac=%v SeqBias=%v, want folded 1/0", n.Mix.SeqFrac, n.Data.SeqBias)
	}
}

func TestNormalizedRejectsBadDefinitions(t *testing.T) {
	cases := map[string]func() Definition{
		"empty name":      func() Definition { d := blendedDef(""); return d },
		"name whitespace": func() Definition { return blendedDef("My Workload") },
		"name comma":      func() Definition { return blendedDef("a,b") },
		"name NBSP":       func() Definition { return blendedDef("Foo Bar") },
		"name ZWSP":       func() Definition { return blendedDef("Foo​Bar") },
		"name non-ASCII":  func() Definition { return blendedDef("Fôo") },
		"bad category":    func() Definition { d := blendedDef("Foo"); d.Category = "Streaming"; return d },
		"neither mode":    func() Definition { return Definition{Name: "Foo"} },
		"both modes": func() Definition {
			d := blendedDef("Foo")
			d.Raw = rawDef("Foo").Raw
			return d
		},
		"raw with shuffle_frac": func() Definition {
			d := rawDef("Foo")
			d.ShuffleFrac = 0.1
			return d
		},
		"zero paper_bytes": func() Definition { d := blendedDef("Foo"); d.Data.PaperBytes = 0; return d },
		"skew too high":    func() Definition { d := blendedDef("Foo"); d.Data.Skew = 0.95; return d },
		"seq_bias range":   func() Definition { d := blendedDef("Foo"); d.Data.SeqBias = 1.5; return d },
		"shuffle range":    func() Definition { d := blendedDef("Foo"); d.ShuffleFrac = 0.7; return d },
		"NaN skew":         func() Definition { d := blendedDef("Foo"); d.Data.Skew = math.NaN(); return d },
		"Inf mix":          func() Definition { d := blendedDef("Foo"); d.Mix.LoadFrac = math.Inf(1); return d },
		"negative mix frac": func() Definition {
			d := blendedDef("Foo")
			d.Mix.LoadFrac = -0.3
			return d
		},
		"mix SeqFrac above 1": func() Definition {
			d := blendedDef("Foo")
			d.Mix.SeqFrac = 1.7
			return d
		},
		"mix DataSkew at 1": func() Definition {
			d := blendedDef("Foo")
			d.Mix.DataSkew = 1
			return d
		},
		"mix uops out of range": func() Definition {
			d := blendedDef("Foo")
			d.Mix.UopsPerInstr = 0.5
			return d
		},
		"NaN mix entropy": func() Definition { d := blendedDef("Foo"); d.Mix.BranchEntropy = math.NaN(); return d },
		"NaN raw":         func() Definition { d := rawDef("Foo"); d.Raw.Compute.DepFrac = math.NaN(); return d },
		"raw invalid":     func() Definition { d := rawDef("Foo"); d.Raw.Compute.DataFootprintB = 0; return d },
	}
	for name, mk := range cases {
		if _, err := mk().Normalized(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNormalizeAllRejectsCollisions(t *testing.T) {
	if _, err := NormalizeAll([]Definition{blendedDef("Sort")}); err == nil {
		t.Error("collision with built-in H-Sort/S-Sort accepted")
	}
	if _, err := NormalizeAll([]Definition{rawDef("H-Grep")}); err == nil {
		t.Error("raw collision with built-in H-Grep accepted")
	}
	if _, err := NormalizeAll([]Definition{blendedDef("Foo"), blendedDef("Foo")}); err == nil {
		t.Error("duplicate definition accepted")
	}
	if _, err := NormalizeAll([]Definition{blendedDef("Foo"), rawDef("H-Foo")}); err == nil {
		t.Error("raw name colliding with blended variant accepted")
	}
}

func TestBuildBlendedMatchesBuiltinSynthesisPath(t *testing.T) {
	cfg := workloads.DefaultConfig()
	ws, err := Build([]Definition{blendedDef("Foo")}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "H-Foo" || ws[1].Name != "S-Foo" {
		t.Fatalf("built %d workloads: %+v", len(ws), ws)
	}
	for _, w := range ws {
		if err := w.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if ws[0].Stack.Engine != stack.EngineHadoop || ws[1].Stack.Engine != stack.EngineSpark {
		t.Errorf("engines %v / %v", ws[0].Stack.Engine, ws[1].Stack.Engine)
	}
	// Spark's DataScale must show through, like Observation 8.
	if ws[1].Profile.Compute.DataFootprintB <= ws[0].Profile.Compute.DataFootprintB {
		t.Errorf("S-Foo footprint %d not larger than H-Foo %d",
			ws[1].Profile.Compute.DataFootprintB, ws[0].Profile.Compute.DataFootprintB)
	}
}

func TestBuildInteractiveUsesHiveShark(t *testing.T) {
	d := blendedDef("Bar")
	d.Category = "interactive"
	ws, err := Build([]Definition{d}, workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].Stack.Name != "Hive" || ws[1].Stack.Name != "Shark" {
		t.Errorf("stacks %s / %s, want Hive / Shark", ws[0].Stack.Name, ws[1].Stack.Name)
	}
}

func TestBuildRaw(t *testing.T) {
	ws, err := Build([]Definition{rawDef("MicroKernel")}, workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].Name != "MicroKernel" {
		t.Fatalf("raw build: %+v", ws)
	}
	if ws[0].Profile.Name != "MicroKernel" {
		t.Errorf("inner profile name %q not canonicalized", ws[0].Profile.Name)
	}
}

func TestBuildDeterministic(t *testing.T) {
	defs := append(Presets(), rawDef("MicroKernel"))
	cfg := workloads.DefaultConfig()
	a, err := Build(defs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(defs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("Build is not deterministic")
	}
}

func TestPresetsValidAndComplete(t *testing.T) {
	ps := Presets()
	if len(ps) < 6 {
		t.Fatalf("only %d presets, want ≥6", len(ps))
	}
	ws, err := Build(ps, workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2*len(ps) {
		t.Fatalf("%d presets built %d workloads, want H-/S- pairs", len(ps), len(ws))
	}
	cats := map[string]bool{}
	for _, w := range ws {
		cats[w.Category] = true
	}
	if !cats[workloads.CategoryOffline] || !cats[workloads.CategoryInteractive] {
		t.Error("presets do not cover both Table I categories")
	}
}

func TestPresetsByName(t *testing.T) {
	ds, err := PresetsByName([]string{"MemThrash", "StreamIngest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Name != "MemThrash" || ds[1].Name != "StreamIngest" {
		t.Fatalf("resolved %+v", ds)
	}
	_, err = PresetsByName([]string{"Nope"})
	if err == nil || !strings.Contains(err.Error(), "StreamIngest") {
		t.Errorf("unknown preset error should list presets: %v", err)
	}
}

func TestLoadArrayAndObjectForms(t *testing.T) {
	arr := `[{"name":"Foo","data":{"paper_bytes":1073741824},"mix":{"LoadFrac":0.3,"SeqFrac":0.5}}]`
	defs, err := Load(strings.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Name != "Foo" {
		t.Fatalf("array form: %+v", defs)
	}
	obj := `{"custom_workloads":` + arr + `}`
	defs, err = Load(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Name != "Foo" {
		t.Fatalf("object form: %+v", defs)
	}
	if _, err := Load(strings.NewReader(`[]`)); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := Load(strings.NewReader(`[{"name":"Foo","typo_knob":1}]`)); err == nil {
		t.Error("unknown field accepted")
	}
	// Trailing content must not be silently dropped.
	if _, err := Load(strings.NewReader(arr + arr)); err == nil {
		t.Error("concatenated arrays accepted (second one silently dropped)")
	}
	if _, err := Load(strings.NewReader(obj + "junk")); err == nil {
		t.Error("trailing garbage after object form accepted")
	}
	if _, err := Load(strings.NewReader(arr + "\n  \n")); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

func TestWorkloadNames(t *testing.T) {
	if got := blendedDef("Foo").WorkloadNames(); len(got) != 2 || got[0] != "H-Foo" || got[1] != "S-Foo" {
		t.Errorf("blended names %v", got)
	}
	if got := rawDef("Bar").WorkloadNames(); len(got) != 1 || got[0] != "Bar" {
		t.Errorf("raw names %v", got)
	}
}

func TestBuiltinNamesMatchSuite(t *testing.T) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := workloads.BuiltinNames()
	if len(names) != len(suite) {
		t.Fatalf("BuiltinNames has %d entries, suite %d", len(names), len(suite))
	}
	for i, w := range suite {
		if names[i] != w.Name {
			t.Errorf("BuiltinNames[%d] = %q, suite %q", i, names[i], w.Name)
		}
	}
}
