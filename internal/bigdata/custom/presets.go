package custom

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Presets returns the embedded library of scenario families beyond
// Table I, in canonical order. All are blended definitions, so each
// yields H-/S- variants and runs at full grid scale exactly like a
// built-in; all pass NormalizeAll against the built-in name set (pinned
// by tests). The knob rationale follows the same profiled-workload
// reasoning as the Table I entries (workloads.algorithms).
func Presets() []Definition {
	f := func(p trace.Params) *trace.Params { return &p }
	return []Definition{
		{
			// Streaming ingest: an append-heavy event pipeline. Stores
			// dominate the data traffic (buffer fills, index appends),
			// access is mostly sequential with a warm dictionary, and a
			// sizable shuffle fraction models the partition/route stage.
			Name:        "StreamIngest",
			Category:    "offline",
			ProblemSize: "120 GB/day event stream",
			DataType:    "unstructured log events",
			Data:        DataSpec{PaperBytes: 120 << 30, Skew: 0.55, SeqBias: 0.15},
			Mix: f(trace.Params{
				LoadFrac: 0.27, StoreFrac: 0.19, BranchFrac: 0.16, FPFrac: 0.003, SSEFrac: 0.007,
				KernelFrac:    0.06, // socket reads at the ingest edge
				ComplexFrac:   0.07,
				DepFrac:       0.22,
				BranchEntropy: 0.10,
				CodeJumpFrac:  0.10, CodeSkew: 0.55,
				DataSkew: 0.30, SeqFrac: 0.60,
			}),
			ShuffleFrac: 0.30,
		},
		{
			// OLTP-style point access: key-value lookups against a large
			// table. Almost no sequentiality, deep pointer chasing into
			// hash buckets, data-dependent branches — the cache/TLB
			// adversary the paper's scan-shaped queries never exercise.
			Name:        "PointLookup",
			Category:    "interactive",
			ProblemSize: "500 million point queries",
			DataType:    "structured key-value table",
			Data:        DataSpec{PaperBytes: 40 << 30, Skew: 0.45},
			Mix: f(trace.Params{
				LoadFrac: 0.34, StoreFrac: 0.04, BranchFrac: 0.22, FPFrac: 0.002, SSEFrac: 0.004,
				KernelFrac:    0.02,
				ComplexFrac:   0.08,
				DepFrac:       0.48, // each hop consumes the previous load
				BranchEntropy: 0.30, // hit-or-miss probe outcomes
				CodeJumpFrac:  0.12, CodeSkew: 0.5,
				DataSkew: 0.45, SeqFrac: 0.05,
			}),
			ShuffleFrac: 0.08,
		},
		{
			// ML training sweep: SGD-style epochs streaming a dense
			// feature matrix against a scorching-hot model. Heavy vector
			// math, near-perfect prefetchability on the input, extreme
			// reuse on the parameters.
			Name:        "MLTrain",
			Category:    "offline",
			ProblemSize: "30 GB dense feature matrix",
			DataType:    "numeric matrix",
			Data:        DataSpec{PaperBytes: 30 << 30, Skew: 0.85, SeqBias: 0.2},
			Mix: f(trace.Params{
				LoadFrac: 0.31, StoreFrac: 0.05, BranchFrac: 0.12, FPFrac: 0.05, SSEFrac: 0.16,
				KernelFrac:    0.01,
				ComplexFrac:   0.06,
				DepFrac:       0.35,
				BranchEntropy: 0.04, // tight fixed-trip-count loops
				CodeJumpFrac:  0.07, CodeSkew: 0.7,
				DataSkew: 0.80, SeqFrac: 0.62,
			}),
			ShuffleFrac: 0.06, // model averaging between epochs
		},
		{
			// Scan-heavy ETL: read-transform-write over a wide table.
			// The most sequential scenario in the registry: both the scan
			// and the materialized output stream.
			Name:        "ETLScan",
			Category:    "interactive",
			ProblemSize: "1 billion rows scan-transform",
			DataType:    "structured table",
			Data:        DataSpec{PaperBytes: 96 << 30, Skew: 0.25, SeqBias: 0.1},
			Mix: f(trace.Params{
				LoadFrac: 0.30, StoreFrac: 0.13, BranchFrac: 0.17, FPFrac: 0.004, SSEFrac: 0.012,
				KernelFrac:    0.04,
				ComplexFrac:   0.07,
				DepFrac:       0.18,
				BranchEntropy: 0.06, // predictable per-row dispatch
				CodeJumpFrac:  0.09, CodeSkew: 0.55,
				DataSkew: 0.25, SeqFrac: 0.82,
			}),
			ShuffleFrac: 0.15,
		},
		{
			// Memory-thrash adversarial: a worst-case pointer chase over a
			// working set far beyond every cache and TLB level, with no
			// hot region and coin-flip branches. Deliberately outside any
			// Table I behaviour — the stress probe for "does the stack
			// still dominate when the algorithm is hostile?".
			Name:        "MemThrash",
			Category:    "offline",
			ProblemSize: "64 GB random-access working set",
			DataType:    "pointer graph",
			Data:        DataSpec{PaperBytes: 64 << 30, Skew: 0.02},
			Mix: f(trace.Params{
				LoadFrac: 0.38, StoreFrac: 0.12, BranchFrac: 0.18, FPFrac: 0.001, SSEFrac: 0.002,
				KernelFrac:    0.01,
				ComplexFrac:   0.05,
				DepFrac:       0.55, // every hop serialized on the miss
				BranchEntropy: 0.35,
				CodeJumpFrac:  0.08, CodeSkew: 0.4,
				DataSkew: 0.02, SeqFrac: 0.02,
			}),
			ShuffleFrac: 0.05,
		},
		{
			// Cache-friendly stencil: iterative nearest-neighbour updates
			// on a modest grid. Dense FP/SIMD, almost fully sequential,
			// highly predictable — the opposite pole from MemThrash, so
			// the pair brackets the registry's locality spectrum.
			Name:        "Stencil",
			Category:    "offline",
			ProblemSize: "8 GB structured grid",
			DataType:    "numeric grid",
			Data:        DataSpec{PaperBytes: 8 << 30, Skew: 0.30, SeqBias: 0.25},
			Mix: f(trace.Params{
				LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.11, FPFrac: 0.10, SSEFrac: 0.13,
				KernelFrac:     0.005,
				ComplexFrac:    0.04,
				DepFrac:        0.30,
				BranchEntropy:  0.02,
				CodeFootprintB: 64 << 10, // one hot kernel
				CodeJumpFrac:   0.05, CodeSkew: 0.75,
				DataSkew: 0.20, SeqFrac: 0.70,
			}),
			ShuffleFrac: 0.04, // halo exchange
		},
	}
}

// PresetNames returns the preset family names in canonical order.
func PresetNames() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// PresetsByName resolves preset family names (e.g. "StreamIngest") to
// their definitions, preserving the requested order. Unknown names error
// with the full preset list.
func PresetsByName(names []string) ([]Definition, error) {
	byName := make(map[string]Definition)
	for _, p := range Presets() {
		byName[p.Name] = p
	}
	out := make([]Definition, 0, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if d, ok := byName[name]; ok {
			out = append(out, d)
			continue
		}
		return nil, fmt.Errorf("custom: unknown preset %q (presets: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return out, nil
}
