// Package stack models the software stacks of the paper (§III-A):
// Hadoop and Spark for the offline-analytics workloads, Hive and Shark
// for the interactive-analytics ones (Hive operations are interpreted as
// Hadoop jobs and Shark operations as Spark jobs, so the engine-level
// behaviour is inherited).
//
// A stack profile captures what the middleware contributes to the dynamic
// instruction stream independent of the user algorithm: its code
// footprint (Hadoop 1.0.2's main source is 67 MB vs Spark 0.8.1's 11 MB —
// §V-A), kernel-mode I/O intensity, µop expansion, how it materializes
// intermediate data, and how much inter-core sharing its execution model
// creates. The Dominance weight expresses the paper's core finding: the
// stack's behaviour outweighs the algorithm's, and more so for Hadoop
// than for Spark (Observation 5).
package stack

import (
	"fmt"

	"repro/internal/trace"
)

// Engine is the execution engine a stack lowers to.
type Engine string

// Engines.
const (
	EngineHadoop Engine = "hadoop"
	EngineSpark  Engine = "spark"
)

// Profile describes one software stack.
type Profile struct {
	Name   string // "Hadoop", "Spark", "Hive", "Shark"
	Engine Engine
	// Prefix is the workload-name prefix used in the paper's figures
	// ("H-" / "S-").
	Prefix string

	// Base is the middleware's own contribution to the instruction
	// stream: the parameters a profiler would observe while the stack
	// runs the *identity* job.
	Base trace.Params

	// Dominance in [0,1] weighs the stack against the algorithm when the
	// two are blended: 1 = the stack completely determines behaviour.
	Dominance float64

	// DataScale multiplies the algorithm's data footprint: Spark keeps
	// intermediate RDDs in memory (larger data footprints, Observation 8's
	// explanation), Hadoop streams through sequential spill files.
	DataScale float64

	// ShuffleKernelFrac is the ring-0 fraction during shuffle phases
	// (Hadoop shuffles through HDFS and sockets; Spark through memory).
	ShuffleKernelFrac float64

	// ShuffleSeqFrac is how sequential shuffle-phase data access is.
	ShuffleSeqFrac float64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" || p.Prefix == "" {
		return fmt.Errorf("stack: missing name/prefix")
	}
	if p.Engine != EngineHadoop && p.Engine != EngineSpark {
		return fmt.Errorf("stack %s: unknown engine %q", p.Name, p.Engine)
	}
	if err := p.Base.Validate(); err != nil {
		return fmt.Errorf("stack %s: %w", p.Name, err)
	}
	if p.Dominance < 0 || p.Dominance > 1 {
		return fmt.Errorf("stack %s: dominance %v out of [0,1]", p.Name, p.Dominance)
	}
	if p.DataScale <= 0 {
		return fmt.Errorf("stack %s: non-positive data scale %v", p.Name, p.DataScale)
	}
	return nil
}

// Hadoop returns the Hadoop 1.0.2 stack profile.
//
// Rationale for the values (paper §V):
//   - Large code footprint (67 MB source, tens of MB of loaded classes) →
//     high L1I misses, frontend fetch stalls, larger instruction TLB
//     pressure (Observation 8: "Hadoop-based workloads have larger
//     instruction footprints").
//   - Heavy kernel involvement: HDFS, disk spills, socket shuffles run in
//     ring 0 (KERNEL MODE loads PC1 positively for Hadoop-side queries).
//   - Sequential, streaming data access (map → sort → spill) keeps the
//     effective data working set modest → better STLB hit rates
//     (Observation 7) and fewer L3 misses (Observation 6).
//   - More stores: every stage materializes its output (Fig. 5: STORE is
//     a positive-PC2, Hadoop-leaning metric).
//   - High µop expansion from framework abstraction layers.
//   - High Dominance: the framework executes far more instructions than
//     the ~50-line user functions (Observation 5).
func Hadoop() Profile {
	return Profile{
		Name:   "Hadoop",
		Engine: EngineHadoop,
		Prefix: "H-",
		Base: trace.Params{
			LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.17, FPFrac: 0.004, SSEFrac: 0.006,
			KernelFrac:     0.24,
			UopsPerInstr:   1.7,
			ComplexFrac:    0.10,
			DepFrac:        0.22,
			BranchEntropy:  0.10,
			CodeFootprintB: 4 << 20, CodeJumpFrac: 0.18, CodeSkew: 0.55,
			DataFootprintB: 10 << 20, DataSkew: 0.50, SeqFrac: 0.70,
			SharedFrac: 0.015, SharedFootprintB: 1 << 20, SharedWriteFrac: 0.12,
		},
		Dominance:         0.88,
		DataScale:         1.0,
		ShuffleKernelFrac: 0.45,
		ShuffleSeqFrac:    0.85,
	}
}

// Spark returns the Spark 0.8.1 stack profile.
//
// Rationale (paper §V):
//   - Smaller code footprint (11 MB) → fewer L1I misses and fetch stalls.
//   - In-memory RDDs: the live data footprint is a multiple of the
//     algorithm's working set (DataScale 2.6) and accesses are pointer-
//     chasing rather than streaming → about 2× the L3 misses per kilo
//     instruction (Observation 6), more DTLB misses and backend resource
//     stalls (Observation 8).
//   - More inter-core sharing: tasks in one executor JVM share RDD
//     partitions and the block manager → more SNOOP HIT/HITE/HITM
//     (Observation 9).
//   - Scala/JVM closure-heavy code: more branches, more complex
//     instruction encodings (ILD/decoder stalls load PC2 negatively,
//     the Spark side).
//   - Lower Dominance: Spark "dominates system behavior less" — user
//     code diversity shows through (Observation 5, §V-B).
func Spark() Profile {
	return Profile{
		Name:   "Spark",
		Engine: EngineSpark,
		Prefix: "S-",
		Base: trace.Params{
			LoadFrac: 0.29, StoreFrac: 0.08, BranchFrac: 0.20, FPFrac: 0.005, SSEFrac: 0.01,
			KernelFrac:     0.08,
			UopsPerInstr:   1.45,
			ComplexFrac:    0.17,
			DepFrac:        0.30,
			BranchEntropy:  0.13,
			CodeFootprintB: 1536 << 10, CodeJumpFrac: 0.11, CodeSkew: 0.55,
			DataFootprintB: 40 << 20, DataSkew: 0.30, SeqFrac: 0.30,
			SharedFrac: 0.08, SharedFootprintB: 8 << 20, SharedWriteFrac: 0.40,
		},
		Dominance:         0.68,
		DataScale:         3.0,
		ShuffleKernelFrac: 0.15,
		ShuffleSeqFrac:    0.45,
	}
}

// Hive returns the Hive 0.9.0 profile: SQL operations interpreted into
// Hadoop jobs (§III-A), with extra query-planning/deserialization code on
// top of the Hadoop base.
func Hive() Profile {
	p := Hadoop()
	p.Name = "Hive"
	p.Base.CodeFootprintB += 1 << 20 // SerDe + operator tree code
	p.Base.ComplexFrac += 0.02
	p.Base.UopsPerInstr += 0.05
	return p
}

// Shark returns the Shark 0.8.0 profile: SQL operations interpreted into
// Spark jobs (§III-A).
func Shark() Profile {
	p := Spark()
	p.Name = "Shark"
	p.Base.CodeFootprintB += 768 << 10
	p.Base.ComplexFrac += 0.02
	p.Base.UopsPerInstr += 0.05
	return p
}

// ByEngine returns the two engine-level stacks in a stable order.
func ByEngine() []Profile {
	return []Profile{Hadoop(), Spark()}
}
