package stack

import "testing"

func TestAllProfilesValid(t *testing.T) {
	for _, p := range []Profile{Hadoop(), Spark(), Hive(), Shark()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestEngines(t *testing.T) {
	if Hadoop().Engine != EngineHadoop || Hive().Engine != EngineHadoop {
		t.Error("Hadoop/Hive must lower to the Hadoop engine")
	}
	if Spark().Engine != EngineSpark || Shark().Engine != EngineSpark {
		t.Error("Spark/Shark must lower to the Spark engine")
	}
}

func TestPrefixes(t *testing.T) {
	if Hadoop().Prefix != "H-" || Hive().Prefix != "H-" {
		t.Error("Hadoop-engine stacks must use the H- prefix")
	}
	if Spark().Prefix != "S-" || Shark().Prefix != "S-" {
		t.Error("Spark-engine stacks must use the S- prefix")
	}
}

func TestPaperContrasts(t *testing.T) {
	h, s := Hadoop(), Spark()
	if h.Base.CodeFootprintB <= s.Base.CodeFootprintB {
		t.Error("Hadoop code footprint must exceed Spark's (67 MB vs 11 MB source, §V-A)")
	}
	if h.Base.KernelFrac <= s.Base.KernelFrac {
		t.Error("Hadoop kernel-mode fraction must exceed Spark's (HDFS/disk I/O)")
	}
	if h.Base.StoreFrac <= s.Base.StoreFrac {
		t.Error("Hadoop store fraction must exceed Spark's (Fig. 5 STORE)")
	}
	if s.DataScale <= h.DataScale {
		t.Error("Spark data scale must exceed Hadoop's (in-memory RDDs, Observation 8)")
	}
	if s.Base.SharedFrac <= h.Base.SharedFrac {
		t.Error("Spark sharing must exceed Hadoop's (Observation 9)")
	}
	if h.Dominance <= s.Dominance {
		t.Error("Hadoop dominance must exceed Spark's (Observation 5)")
	}
	if s.Base.ComplexFrac <= h.Base.ComplexFrac {
		t.Error("Spark decode complexity must exceed Hadoop's (Fig. 5 ILD/decoder stalls)")
	}
}

func TestHiveSharkInheritEngineBehaviour(t *testing.T) {
	if Hive().Base.CodeFootprintB <= Hadoop().Base.CodeFootprintB {
		t.Error("Hive adds SerDe/operator code on top of Hadoop")
	}
	if Shark().Base.CodeFootprintB <= Spark().Base.CodeFootprintB {
		t.Error("Shark adds query code on top of Spark")
	}
	if Hive().Dominance != Hadoop().Dominance {
		t.Error("Hive should inherit Hadoop's dominance")
	}
}

func TestByEngine(t *testing.T) {
	pair := ByEngine()
	if len(pair) != 2 || pair[0].Name != "Hadoop" || pair[1].Name != "Spark" {
		t.Errorf("ByEngine = %v", pair)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := Hadoop()
	p.Dominance = 2
	if err := p.Validate(); err == nil {
		t.Error("dominance > 1 accepted")
	}
	p = Hadoop()
	p.DataScale = 0
	if err := p.Validate(); err == nil {
		t.Error("zero data scale accepted")
	}
	p = Hadoop()
	p.Engine = "flink"
	if err := p.Validate(); err == nil {
		t.Error("unknown engine accepted")
	}
}
