package bdgs

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGenerateTextValidation(t *testing.T) {
	r := rng.New(1)
	if _, _, err := GenerateText(r, 0, 10, 1); err == nil {
		t.Error("0 words accepted")
	}
	if _, _, err := GenerateText(r, 10, 0, 1); err == nil {
		t.Error("0 vocab accepted")
	}
	if _, _, err := GenerateText(r, 10, 10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestGenerateTextStats(t *testing.T) {
	r := rng.New(2)
	corpus, stats, err := GenerateText(r, 50000, 5000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 50000 || stats.Words != 50000 {
		t.Fatalf("corpus size %d, stats %+v", len(corpus), stats)
	}
	if stats.Vocabulary < 1000 || stats.Vocabulary > 5000 {
		t.Errorf("vocabulary = %d, want a reasonable subset of 5000", stats.Vocabulary)
	}
	// Zipf s=1: top word is roughly 1/H(n) of all words — clearly more
	// than uniform 1/5000.
	if stats.TopWordFreq < 0.02 {
		t.Errorf("TopWordFreq = %v, want skewed (> 0.02)", stats.TopWordFreq)
	}
	if stats.TotalBytes == 0 || stats.MeanWordLen <= 0 {
		t.Errorf("degenerate byte stats: %+v", stats)
	}
}

func TestGenerateTextUniform(t *testing.T) {
	r := rng.New(3)
	_, stats, err := GenerateText(r, 50000, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TopWordFreq > 0.03 {
		t.Errorf("uniform text top frequency %v, want ≈0.01", stats.TopWordFreq)
	}
	if stats.Vocabulary != 100 {
		t.Errorf("uniform text should hit all %d words, got %d", 100, stats.Vocabulary)
	}
}

func TestGenerateGraphValidation(t *testing.T) {
	r := rng.New(4)
	if _, _, err := GenerateGraph(r, 1, 1); err == nil {
		t.Error("1 vertex accepted")
	}
	if _, _, err := GenerateGraph(r, 10, 0); err == nil {
		t.Error("0 edges per vertex accepted")
	}
}

func TestGenerateGraphPowerLaw(t *testing.T) {
	r := rng.New(5)
	edges, stats, err := GenerateGraph(r, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Vertices != 2000 {
		t.Errorf("Vertices = %d", stats.Vertices)
	}
	if len(edges) != stats.Edges {
		t.Errorf("edge list %d vs stats %d", len(edges), stats.Edges)
	}
	// Preferential attachment: hub degree far above the mean, and the
	// top 1% of vertices should hold a disproportionate share of edges.
	if float64(stats.MaxDegree) < 5*stats.MeanDeg {
		t.Errorf("MaxDegree %d vs mean %v: no hubs formed", stats.MaxDegree, stats.MeanDeg)
	}
	if stats.DegreeSkew < 0.05 {
		t.Errorf("DegreeSkew = %v, want > 0.05 (top 1%% should be hot)", stats.DegreeSkew)
	}
	for _, e := range edges {
		if e[0] < 0 || int(e[0]) >= 2000 || e[1] < 0 || int(e[1]) >= 2000 {
			t.Fatalf("edge %v out of vertex range", e)
		}
	}
}

func TestGenerateTableValidation(t *testing.T) {
	r := rng.New(6)
	if _, _, err := GenerateTable(r, 0, 1, 1, 1); err == nil {
		t.Error("0 rows accepted")
	}
	if _, _, err := GenerateTable(r, 1, 0, 1, 1); err == nil {
		t.Error("0 columns accepted")
	}
}

func TestGenerateTableStats(t *testing.T) {
	r := rng.New(7)
	keys, stats, err := GenerateTable(r, 20000, 8, 500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20000 || stats.Rows != 20000 {
		t.Fatalf("keys %d, stats %+v", len(keys), stats)
	}
	if stats.DistinctKey > 500 || stats.DistinctKey < 100 {
		t.Errorf("DistinctKey = %d, want ≤500 and substantial", stats.DistinctKey)
	}
	if stats.RowBytes != 4+8*8 {
		t.Errorf("RowBytes = %d, want 68", stats.RowBytes)
	}
	if stats.TotalBytes != uint64(20000*stats.RowBytes) {
		t.Errorf("TotalBytes = %d", stats.TotalBytes)
	}
	if stats.KeySkew < 0.01 {
		t.Errorf("KeySkew = %v, want skewed under s=1", stats.KeySkew)
	}
}

func TestDeterminism(t *testing.T) {
	a, _, _ := GenerateText(rng.New(42), 1000, 100, 1)
	b, _, _ := GenerateText(rng.New(42), 1000, 100, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different corpora")
		}
	}
}

// Property: text corpus word ids are always within the vocabulary.
func TestQuickTextInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		vocab := 10 + r.Intn(100)
		corpus, stats, err := GenerateText(r, 500, vocab, 1)
		if err != nil {
			return false
		}
		for _, w := range corpus {
			if w < 0 || int(w) >= vocab {
				return false
			}
		}
		return stats.Vocabulary <= vocab && stats.TopWordFreq <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: graph degree sums to twice the edge count.
func TestQuickGraphHandshake(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := 10 + r.Intn(200)
		epv := 1 + r.Intn(4)
		edges, stats, err := GenerateGraph(r, v, epv)
		if err != nil {
			return false
		}
		deg := make([]int, v)
		for _, e := range edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		sum := 0
		for _, d := range deg {
			sum += d
		}
		return sum == 2*stats.Edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
