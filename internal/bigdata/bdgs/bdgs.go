// Package bdgs is the analog of BigDataBench's Big Data Generator Suite
// (BDGS, paper §II item 4): it synthesizes the three data shapes the
// workloads consume — Zipf-distributed text, preferential-attachment
// graphs, and relational tables — at simulation scale, and measures the
// statistical properties (cardinality, skew, record sizes) that the
// workload models translate into memory-access behaviour.
//
// Sizes are scaled down from the paper's 44–224 GB datasets (DESIGN.md §2):
// footprints remain far larger than the 12 MB L3, so the cache hierarchy
// operates in the same regime, while generation completes in milliseconds.
package bdgs

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// TextStats summarizes a generated text corpus.
type TextStats struct {
	Words       int
	Vocabulary  int     // distinct words actually produced
	TotalBytes  uint64  // corpus size
	TopWordFreq float64 // frequency of the most common word
	MeanWordLen float64
}

// GenerateText produces a Zipf-distributed corpus of `words` words over a
// vocabulary of `vocab` candidates with skew exponent s, and returns its
// measured statistics. The corpus itself is returned as word indices so
// workload models can derive hot-set sizes without storing strings.
func GenerateText(r *rng.RNG, words, vocab int, s float64) ([]int32, TextStats, error) {
	if words < 1 || vocab < 1 {
		return nil, TextStats{}, fmt.Errorf("bdgs: words=%d vocab=%d must be ≥1", words, vocab)
	}
	if s < 0 {
		return nil, TextStats{}, fmt.Errorf("bdgs: negative Zipf exponent %v", s)
	}
	z := rng.NewZipf(r, vocab, s)
	corpus := make([]int32, words)
	freq := make([]int, vocab)
	var bytes uint64
	for i := range corpus {
		w := z.Next()
		corpus[i] = int32(w)
		freq[w]++
		// Word length model: common words are short (Zipf's law of
		// abbreviation): length 3 + rank-dependent tail.
		bytes += uint64(3+int(math.Log1p(float64(w)))) + 1 // +1 separator
	}
	distinct, top := 0, 0
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
		if f > top {
			top = f
		}
	}
	return corpus, TextStats{
		Words:       words,
		Vocabulary:  distinct,
		TotalBytes:  bytes,
		TopWordFreq: float64(top) / float64(words),
		MeanWordLen: float64(bytes)/float64(words) - 1,
	}, nil
}

// GraphStats summarizes a generated graph.
type GraphStats struct {
	Vertices  int
	Edges     int
	MaxDegree int
	MeanDeg   float64
	// DegreeSkew is the fraction of all edges incident to the top 1 % of
	// vertices — a direct measure of access concentration for PageRank-
	// style gather operations.
	DegreeSkew float64
}

// GenerateGraph builds a preferential-attachment (Barabási–Albert) graph
// with the given vertex count and edges added per new vertex, returning
// the edge list (pairs of vertex ids) and measured statistics.
func GenerateGraph(r *rng.RNG, vertices, edgesPerVertex int) ([][2]int32, GraphStats, error) {
	if vertices < 2 || edgesPerVertex < 1 {
		return nil, GraphStats{}, fmt.Errorf("bdgs: vertices=%d edgesPerVertex=%d invalid", vertices, edgesPerVertex)
	}
	var edges [][2]int32
	// Repeated-endpoint list implements preferential attachment cheaply.
	endpoints := make([]int32, 0, 2*vertices*edgesPerVertex)
	degree := make([]int, vertices)
	// Seed: a small clique.
	edges = append(edges, [2]int32{0, 1})
	endpoints = append(endpoints, 0, 1)
	degree[0]++
	degree[1]++
	for v := 2; v < vertices; v++ {
		for e := 0; e < edgesPerVertex; e++ {
			var target int32
			if r.Bool(0.9) && len(endpoints) > 0 {
				target = endpoints[r.Intn(len(endpoints))]
			} else {
				target = int32(r.Intn(v))
			}
			if int(target) == v {
				target = int32((v + 1) % v)
			}
			edges = append(edges, [2]int32{int32(v), target})
			endpoints = append(endpoints, int32(v), target)
			degree[v]++
			degree[target]++
		}
	}
	maxDeg, sum := 0, 0
	for _, d := range degree {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Degree mass of the hottest 1 % of vertices.
	top := vertices / 100
	if top < 1 {
		top = 1
	}
	sorted := append([]int(nil), degree...)
	// Partial selection: simple sort is fine at these sizes.
	for i := 0; i < top; i++ {
		maxIdx := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxIdx] {
				maxIdx = j
			}
		}
		sorted[i], sorted[maxIdx] = sorted[maxIdx], sorted[i]
	}
	hot := 0
	for i := 0; i < top; i++ {
		hot += sorted[i]
	}
	return edges, GraphStats{
		Vertices:   vertices,
		Edges:      len(edges),
		MaxDegree:  maxDeg,
		MeanDeg:    float64(sum) / float64(vertices),
		DegreeSkew: float64(hot) / float64(sum),
	}, nil
}

// TableStats summarizes a generated relational table (the e-commerce
// transaction data set of Table I).
type TableStats struct {
	Rows        int
	Columns     int
	RowBytes    int
	DistinctKey int     // distinct values in the key column
	KeySkew     float64 // frequency of the most common key
	TotalBytes  uint64
}

// GenerateTable produces a table of rows with an integer key column
// (Zipf-distributed over keyCard candidates with exponent s) plus
// `columns` fixed-width payload columns. The key column is returned for
// the query workload models.
func GenerateTable(r *rng.RNG, rows, columns, keyCard int, s float64) ([]int32, TableStats, error) {
	if rows < 1 || columns < 1 || keyCard < 1 {
		return nil, TableStats{}, fmt.Errorf("bdgs: rows=%d columns=%d keyCard=%d invalid", rows, columns, keyCard)
	}
	z := rng.NewZipf(r, keyCard, s)
	keys := make([]int32, rows)
	freq := make(map[int32]int, keyCard)
	for i := range keys {
		k := int32(z.Next())
		keys[i] = k
		freq[k]++
	}
	top := 0
	for _, f := range freq {
		if f > top {
			top = f
		}
	}
	rowBytes := 4 + columns*8
	return keys, TableStats{
		Rows:        rows,
		Columns:     columns,
		RowBytes:    rowBytes,
		DistinctKey: len(freq),
		KeySkew:     float64(top) / float64(rows),
		TotalBytes:  uint64(rows) * uint64(rowBytes),
	}, nil
}
