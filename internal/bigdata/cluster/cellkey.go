package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/bigdata/workloads"
	"repro/internal/perf"
	"repro/internal/sim/machine"
	"repro/internal/trace"
)

// cellKeyVersion is baked into every cell key. Bump it whenever the
// measurement semantics change in a way the inputs below cannot express
// (a simulator fix, a metric-schema change), so stale caches turn into
// misses instead of serving pre-change cells.
const cellKeyVersion = 1

// cellKeySpec is the canonical content of one cell key: everything the
// per-cell seed and simulation consume, and nothing else. A column — one
// workload on one absolute node, all runs — is the cache unit, matching
// the shard planner's workload×node granularity, so the run index is
// folded in through Runs rather than keyed separately.
//
// The field set is an exhaustive audit of runNode's data flow: the
// workload's resolved trace profile (names alone are not identity — the
// open scenario registry lets two suites bind different definitions to
// one name), the absolute node index (NodeOffset+node, which is what the
// seed uses, so shards of the same grid share keys), and every Config
// field the simulation reads. Execution-only knobs (Parallelism,
// SlaveNodes, NodeOffset as a field) are deliberately absent: they never
// affect a cell's bytes. All types are flat structs of scalars, so
// encoding/json is deterministic and round-trips float64 exactly.
type cellKeySpec struct {
	V            int
	Workload     string
	Profile      trace.Profile
	AbsNode      int
	Seed         uint64
	Jitter       float64
	Instructions int
	Slices       int
	Runs         int
	Machine      machine.Config
	Monitor      perf.MonitorConfig
}

// CellKey returns the content address of one workload×node column of the
// characterization grid under cfg: the full SHA-256 (64 hex digits) of
// the canonical cell-key spec. Equal keys guarantee byte-identical
// per-run metric vectors; node is the campaign-local index, and the key
// is derived from the absolute index cfg.NodeOffset+node, so a sharded
// sub-campaign and the full grid address the same columns identically.
func CellKey(w workloads.Workload, cfg Config, node int) (string, error) {
	data, err := json.Marshal(cellKeySpec{
		V:            cellKeyVersion,
		Workload:     w.Name,
		Profile:      w.Profile,
		AbsNode:      cfg.NodeOffset + node,
		Seed:         cfg.Seed,
		Jitter:       cfg.ExecutionJitter,
		Instructions: cfg.InstructionsPerCore,
		Slices:       cfg.Slices,
		Runs:         cfg.Runs,
		Machine:      cfg.Machine,
		Monitor:      cfg.Monitor,
	})
	if err != nil {
		return "", fmt.Errorf("cluster: encoding cell key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// CellCache is the cell-lookup hook CharacterizeCellsCtx consults when
// one rides on the context: a content-addressed store of workload×node
// columns (the per-run metric vectors of one workload on one absolute
// node). Implementations must uphold the determinism contract — a column
// served under a key must be exactly what recomputing it would produce —
// and be safe for concurrent use. See internal/cellcache for the on-disk
// implementation.
type CellCache interface {
	// GetCell returns the column under key, or ok=false. workload is the
	// resolved workload name of the column — attribution only (per-
	// workload hit/miss accounting); it must never affect what is served.
	// runs and metrics give the expected shape; implementations must
	// never return a column that does not match it.
	GetCell(workload, key string, runs, metrics int) (vecs [][]float64, ok bool)
	// PutCell stores a computed column. Best-effort: failures may be
	// swallowed (the grid already holds the computed cells).
	PutCell(workload, key string, vecs [][]float64)
}

// cellCacheKey carries the CellCache capability through a context. The
// hook travels on ctx rather than Config so Config stays a comparable
// plain-data struct (spec normalization compares it with ==) and so the
// capability flows from the service layer through core's pipeline
// wrappers without either package importing the other's cache machinery.
type cellCacheKey struct{}

// ContextWithCellCache returns a context that makes cc available to any
// CharacterizeCellsCtx call beneath it.
func ContextWithCellCache(ctx context.Context, cc CellCache) context.Context {
	return context.WithValue(ctx, cellCacheKey{}, cc)
}

// CellCacheFrom extracts the cell-lookup hook, if any.
func CellCacheFrom(ctx context.Context) (CellCache, bool) {
	cc, ok := ctx.Value(cellCacheKey{}).(CellCache)
	return cc, ok && cc != nil
}
