// Package cluster reproduces the paper's experimental setup (§IV): a
// five-node cluster — one master plus four slaves, each a two-socket Xeon
// E5645 node — running each workload across the slaves while per-node PMCs
// collect microarchitectural events. Per the paper, "We collect the data
// for all four slave nodes and take the mean."
//
// The master node only coordinates (job tracker / driver); it executes no
// measured work, so it is represented by bookkeeping alone.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bigdata/workloads"
	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/sim/machine"
	"repro/internal/trace"
)

// Progress receives (completed, total) grid-cell counts as a
// characterization campaign advances. It is invoked from worker
// goroutines, so implementations must be safe for concurrent use and
// should return quickly.
type Progress func(done, total int)

// Config controls a characterization campaign.
type Config struct {
	// Machine is the per-node hardware model (default: machine.Westmere).
	Machine machine.Config
	// SlaveNodes is the number of measured worker nodes (paper: 4).
	SlaveNodes int
	// NodeOffset is the absolute index of the first measured node.
	// Per-cell seeds are functions of the absolute node index, so a
	// campaign over nodes [NodeOffset, NodeOffset+SlaveNodes) measures
	// exactly the corresponding node columns of the full grid — the basis
	// for sharding the node axis across daemons. Zero for a whole-grid
	// run; omitted from JSON when zero so sharding does not perturb the
	// canonical encoding of unsharded configs.
	NodeOffset int `json:",omitempty"`
	// InstructionsPerCore is the per-core budget for each node run.
	InstructionsPerCore int
	// Slices is the number of PMC scheduling slices per run.
	Slices int
	// Monitor configures the PMC collection.
	Monitor perf.MonitorConfig
	// Runs repeats each workload and averages metric vectors (the paper
	// runs each workload multiple times because of PMC multiplexing).
	Runs int
	// Seed drives all stochastic components.
	Seed uint64
	// ExecutionJitter is the relative σ of node/run-level behavioural
	// variation (JIT, GC, OS noise). 0 disables it; the default is 5 %,
	// in line with run-to-run variation on real JVM clusters.
	ExecutionJitter float64
	// Parallelism bounds concurrent node simulations (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultConfig returns the paper-shaped setup at simulation scale.
func DefaultConfig() Config {
	return Config{
		Machine:             machine.Westmere(),
		SlaveNodes:          4,
		InstructionsPerCore: 60000,
		Slices:              120,
		Monitor:             perf.DefaultMonitor(),
		Runs:                1,
		Seed:                20140901,
		ExecutionJitter:     0.06,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.SlaveNodes < 1 {
		return fmt.Errorf("cluster: need ≥1 slave node, got %d", c.SlaveNodes)
	}
	if c.NodeOffset < 0 {
		return fmt.Errorf("cluster: negative NodeOffset %d", c.NodeOffset)
	}
	if c.InstructionsPerCore < 1000 {
		return fmt.Errorf("cluster: InstructionsPerCore %d too small (≥1000)", c.InstructionsPerCore)
	}
	if c.Slices < 1 {
		return fmt.Errorf("cluster: Slices must be ≥1")
	}
	if c.Runs < 1 {
		return fmt.Errorf("cluster: Runs must be ≥1")
	}
	if c.ExecutionJitter < 0 || c.ExecutionJitter > 0.5 {
		return fmt.Errorf("cluster: ExecutionJitter %v out of [0,0.5]", c.ExecutionJitter)
	}
	return c.Monitor.Validate()
}

// Measurement is one workload's characterization outcome.
type Measurement struct {
	Workload workloads.Workload
	// Metrics is the 45-element Table II vector, averaged over slave
	// nodes and runs.
	Metrics []float64
	// PerNode holds each slave node's metric vector from the last run
	// (for variance inspection).
	PerNode [][]float64
}

// nodeWorker bundles the per-worker simulation state that is reused
// across node-runs: one machine (caches, TLBs, predictors — by far the
// largest allocation of the hot path) and one snapshot buffer.
type nodeWorker struct {
	m   *machine.Machine
	res machine.RunResult
}

func newNodeWorker(cfg Config) (*nodeWorker, error) {
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	return &nodeWorker{m: m}, nil
}

// runNode simulates one (workload, run, node) cell of the measurement
// grid and returns its 45-metric vector. The per-cell seed depends only
// on (workload, run, absolute node index) and cfg.Seed, so every
// execution order — sequential, workload-parallel, fully flattened, or
// node-sharded across processes — produces bit-identical results.
func (nw *nodeWorker) runNode(w workloads.Workload, cfg Config, run, node int) ([]float64, error) {
	seed := cfg.Seed ^
		(uint64(cfg.NodeOffset+node)+1)*0x9E3779B97F4A7C15 ^
		(uint64(run)+1)*0xC2B2AE3D27D4EB4F ^
		hash(w.Name)
	prof := jitterProfile(w.Profile, cfg.ExecutionJitter, rng.New(seed^0xD1B54A32D192ED03))
	sources, err := trace.Sources(prof, seed, cfg.Machine.Cores())
	if err != nil {
		return nil, err
	}
	nw.m.Reset()
	if err := nw.m.RunInto(&nw.res, sources, cfg.InstructionsPerCore, cfg.Slices); err != nil {
		return nil, err
	}
	counts, err := perf.Measure(nw.res.Snapshots, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	return perf.MetricVector(&counts), nil
}

// ReduceCells folds one workload's per-cell metric vectors (indexed
// [run][node]) into the node- then run-averaged 45-metric vector. This is
// the single canonical reduction: the in-process grid and the distributed
// shard merge both go through it, which is what makes a re-assembled
// sharded run byte-identical to a single-process run.
func ReduceCells(cells [][][]float64) []float64 {
	runVectors := make([][]float64, len(cells))
	for run, perNode := range cells {
		runVectors[run] = perf.AverageVectors(perNode)
	}
	return perf.AverageVectors(runVectors)
}

// reduce wraps ReduceCells into a Measurement.
func reduce(w workloads.Workload, cells [][][]float64) *Measurement {
	return &Measurement{
		Workload: w,
		Metrics:  ReduceCells(cells),
		PerNode:  cells[len(cells)-1],
	}
}

// RunWorkload executes one workload across the slave nodes and returns
// its measurement.
func RunWorkload(w workloads.Workload, cfg Config) (*Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nw, err := newNodeWorker(cfg)
	if err != nil {
		return nil, err
	}
	cells := make([][][]float64, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		cells[run] = make([][]float64, cfg.SlaveNodes)
		for node := 0; node < cfg.SlaveNodes; node++ {
			v, err := nw.runNode(w, cfg, run, node)
			if err != nil {
				return nil, err
			}
			cells[run][node] = v
		}
	}
	return reduce(w, cells), nil
}

// Characterize measures every workload in the suite. The full
// workload×run×node measurement grid is flattened into one work queue and
// executed by a bounded pool of Config.Parallelism workers (0 =
// GOMAXPROCS), each owning a single reusable machine. Per-cell seeds are
// pure functions of (workload, run, node), so the result is bit-identical
// to the sequential path at any parallelism. The result order matches the
// suite order.
func Characterize(suite []workloads.Workload, cfg Config) ([]*Measurement, error) {
	return CharacterizeCtx(context.Background(), suite, cfg, nil)
}

// CharacterizeCtx is Characterize with cooperative cancellation and
// optional progress reporting. Workers check ctx between grid cells and
// stop simulating as soon as it is cancelled, returning ctx.Err();
// progress (if non-nil) is called after every completed cell with the
// number of cells finished so far and the grid total.
func CharacterizeCtx(ctx context.Context, suite []workloads.Workload, cfg Config, progress Progress) ([]*Measurement, error) {
	cells, err := CharacterizeCellsCtx(ctx, suite, cfg, progress)
	if err != nil {
		return nil, err
	}
	results := make([]*Measurement, len(suite))
	for wi, w := range suite {
		results[wi] = reduce(w, cells[wi])
	}
	return results, nil
}

// CharacterizeCellsCtx runs the measurement grid and returns the raw
// per-cell metric vectors indexed [workload][run][node], without the
// node/run reduction. This is the characterize-only entry point used by
// shard workers: a coordinator re-assembles cells from several campaigns
// (split on the workload and node axes) into the full grid and reduces
// once, reproducing the single-process result bit for bit.
//
// When a CellCache rides on ctx (ContextWithCellCache), every
// workload×node column is first probed by content address (CellKey):
// cached columns fill their cells directly and never enter the work
// queue, and freshly computed columns are stored back afterwards. The
// cache holds exactly the vectors a recomputation would produce, so the
// result is byte-identical with the cache hot, cold, or absent — only
// the work skipped changes. Progress still counts cached cells toward
// the full grid total, so (done, total) semantics are unchanged.
func CharacterizeCellsCtx(ctx context.Context, suite []workloads.Workload, cfg Config, progress Progress) ([][][][]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("cluster: empty suite")
	}

	type task struct{ wi, run, node int }
	ntasks := len(suite) * cfg.Runs * cfg.SlaveNodes

	// cells[wi][run][node] is one grid cell's metric vector; each task
	// writes its own cell, so no locking is needed.
	cells := make([][][][]float64, len(suite))
	for wi := range suite {
		cells[wi] = make([][][]float64, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			cells[wi][run] = make([][]float64, cfg.SlaveNodes)
		}
	}

	// Cell-cache probe, column by column. A column whose key cannot be
	// derived (colKeys entry left empty) is computed and not stored —
	// the cache can only ever skip work, never change bytes.
	cc, _ := CellCacheFrom(ctx)
	var colKeys [][]string
	var colCached [][]bool
	cachedCells := 0
	if cc != nil {
		nmetrics := len(perf.MetricNames())
		colKeys = make([][]string, len(suite))
		colCached = make([][]bool, len(suite))
		for wi, w := range suite {
			colKeys[wi] = make([]string, cfg.SlaveNodes)
			colCached[wi] = make([]bool, cfg.SlaveNodes)
			for node := 0; node < cfg.SlaveNodes; node++ {
				key, err := CellKey(w, cfg, node)
				if err != nil {
					continue
				}
				colKeys[wi][node] = key
				vecs, ok := cc.GetCell(w.Name, key, cfg.Runs, nmetrics)
				if !ok {
					continue
				}
				colCached[wi][node] = true
				cachedCells += cfg.Runs
				for run := 0; run < cfg.Runs; run++ {
					cells[wi][run][node] = vecs[run]
				}
			}
		}
	}

	type flatTask struct {
		task
		ti int // flat task index
	}
	tasks := make(chan flatTask, ntasks)
	ti, queued := 0, 0
	for wi := range suite {
		for run := 0; run < cfg.Runs; run++ {
			for node := 0; node < cfg.SlaveNodes; node++ {
				if colCached == nil || !colCached[wi][node] {
					tasks <- flatTask{task{wi, run, node}, ti}
					queued++
				}
				ti++
			}
		}
	}
	close(tasks)
	if progress != nil && cachedCells > 0 {
		progress(cachedCells, ntasks)
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > queued {
		// A fully cached grid spins up no workers (and builds no machines).
		par = queued
	}

	// errs is indexed by flat task index: every slot has exactly one
	// writer (the worker that consumed that task), so no locking is
	// needed and the first failure in task order is reported
	// deterministically.
	errs := make([]error, ntasks)
	taskWorkload := make([]int, ntasks)
	var done atomic.Int64
	done.Store(int64(cachedCells)) // cached cells count toward the grid total
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nw, werr := newNodeWorker(cfg)
			for t := range tasks {
				taskWorkload[t.ti] = t.wi
				if werr != nil {
					// Worker never got a machine (machine.New rejected the
					// config): mark every task this worker drains.
					errs[t.ti] = werr
					continue
				}
				if err := ctx.Err(); err != nil {
					// Cancelled: drain the queue without simulating so the
					// pool exits promptly.
					errs[t.ti] = err
					continue
				}
				v, err := nw.runNode(suite[t.wi], cfg, t.run, t.node)
				if err != nil {
					errs[t.ti] = err
					continue
				}
				cells[t.wi][t.run][t.node] = v
				if progress != nil {
					progress(int(done.Add(1)), ntasks)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: workload %s: %w", suite[taskWorkload[i]].Name, err)
		}
	}
	// Store the freshly computed columns. Only after the whole grid
	// validated: a partially failed campaign must not seed the cache.
	if cc != nil {
		for wi := range suite {
			for node := 0; node < cfg.SlaveNodes; node++ {
				if colCached[wi][node] || colKeys[wi][node] == "" {
					continue
				}
				vecs := make([][]float64, cfg.Runs)
				for run := 0; run < cfg.Runs; run++ {
					vecs[run] = cells[wi][run][node]
				}
				cc.PutCell(suite[wi].Name, colKeys[wi][node], vecs)
			}
		}
	}
	return cells, nil
}

// MetricMatrix assembles measurements into a workloads×45 matrix as rows,
// plus the row labels.
func MetricMatrix(ms []*Measurement) (rows [][]float64, labels []string) {
	for _, m := range ms {
		rows = append(rows, m.Metrics)
		labels = append(labels, m.Workload.Name)
	}
	return rows, labels
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
