// Package cluster reproduces the paper's experimental setup (§IV): a
// five-node cluster — one master plus four slaves, each a two-socket Xeon
// E5645 node — running each workload across the slaves while per-node PMCs
// collect microarchitectural events. Per the paper, "We collect the data
// for all four slave nodes and take the mean."
//
// The master node only coordinates (job tracker / driver); it executes no
// measured work, so it is represented by bookkeeping alone.
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bigdata/workloads"
	"repro/internal/perf"
	"repro/internal/rng"
	"repro/internal/sim/machine"
	"repro/internal/trace"
)

// Config controls a characterization campaign.
type Config struct {
	// Machine is the per-node hardware model (default: machine.Westmere).
	Machine machine.Config
	// SlaveNodes is the number of measured worker nodes (paper: 4).
	SlaveNodes int
	// InstructionsPerCore is the per-core budget for each node run.
	InstructionsPerCore int
	// Slices is the number of PMC scheduling slices per run.
	Slices int
	// Monitor configures the PMC collection.
	Monitor perf.MonitorConfig
	// Runs repeats each workload and averages metric vectors (the paper
	// runs each workload multiple times because of PMC multiplexing).
	Runs int
	// Seed drives all stochastic components.
	Seed uint64
	// ExecutionJitter is the relative σ of node/run-level behavioural
	// variation (JIT, GC, OS noise). 0 disables it; the default is 5 %,
	// in line with run-to-run variation on real JVM clusters.
	ExecutionJitter float64
	// Parallelism bounds concurrent node simulations (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultConfig returns the paper-shaped setup at simulation scale.
func DefaultConfig() Config {
	return Config{
		Machine:             machine.Westmere(),
		SlaveNodes:          4,
		InstructionsPerCore: 60000,
		Slices:              120,
		Monitor:             perf.DefaultMonitor(),
		Runs:                1,
		Seed:                20140901,
		ExecutionJitter:     0.06,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.SlaveNodes < 1 {
		return fmt.Errorf("cluster: need ≥1 slave node, got %d", c.SlaveNodes)
	}
	if c.InstructionsPerCore < 1000 {
		return fmt.Errorf("cluster: InstructionsPerCore %d too small (≥1000)", c.InstructionsPerCore)
	}
	if c.Slices < 1 {
		return fmt.Errorf("cluster: Slices must be ≥1")
	}
	if c.Runs < 1 {
		return fmt.Errorf("cluster: Runs must be ≥1")
	}
	if c.ExecutionJitter < 0 || c.ExecutionJitter > 0.5 {
		return fmt.Errorf("cluster: ExecutionJitter %v out of [0,0.5]", c.ExecutionJitter)
	}
	return c.Monitor.Validate()
}

// Measurement is one workload's characterization outcome.
type Measurement struct {
	Workload workloads.Workload
	// Metrics is the 45-element Table II vector, averaged over slave
	// nodes and runs.
	Metrics []float64
	// PerNode holds each slave node's metric vector from the last run
	// (for variance inspection).
	PerNode [][]float64
}

// RunWorkload executes one workload across the slave nodes and returns
// its measurement.
func RunWorkload(w workloads.Workload, cfg Config) (*Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cores := cfg.Machine.Cores()
	var runVectors [][]float64
	var lastPerNode [][]float64

	for run := 0; run < cfg.Runs; run++ {
		perNode := make([][]float64, 0, cfg.SlaveNodes)
		for node := 0; node < cfg.SlaveNodes; node++ {
			m, err := machine.New(cfg.Machine)
			if err != nil {
				return nil, err
			}
			seed := cfg.Seed ^
				(uint64(node)+1)*0x9E3779B97F4A7C15 ^
				(uint64(run)+1)*0xC2B2AE3D27D4EB4F ^
				hash(w.Name)
			prof := jitterProfile(w.Profile, cfg.ExecutionJitter, rng.New(seed^0xD1B54A32D192ED03))
			sources, err := trace.Sources(prof, seed, cores)
			if err != nil {
				return nil, err
			}
			res, err := m.Run(sources, cfg.InstructionsPerCore, cfg.Slices)
			if err != nil {
				return nil, err
			}
			counts, err := perf.Measure(res.Snapshots, cfg.Monitor)
			if err != nil {
				return nil, err
			}
			perNode = append(perNode, perf.MetricVector(&counts))
		}
		runVectors = append(runVectors, perf.AverageVectors(perNode))
		lastPerNode = perNode
	}
	return &Measurement{
		Workload: w,
		Metrics:  perf.AverageVectors(runVectors),
		PerNode:  lastPerNode,
	}, nil
}

// Characterize measures every workload in the suite, in parallel across
// workloads (each node simulation itself is single-threaded and
// deterministic). The result order matches the suite order.
func Characterize(suite []workloads.Workload, cfg Config) ([]*Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("cluster: empty suite")
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(suite) {
		par = len(suite)
	}

	results := make([]*Measurement, len(suite))
	errs := make([]error, len(suite))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, w := range suite {
		wg.Add(1)
		go func(i int, w workloads.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunWorkload(w, cfg)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: workload %s: %w", suite[i].Name, err)
		}
	}
	return results, nil
}

// MetricMatrix assembles measurements into a workloads×45 matrix as rows,
// plus the row labels.
func MetricMatrix(ms []*Measurement) (rows [][]float64, labels []string) {
	for _, m := range ms {
		rows = append(rows, m.Metrics)
		labels = append(labels, m.Workload.Name)
	}
	return rows, labels
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
