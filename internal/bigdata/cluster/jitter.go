package cluster

import (
	"repro/internal/rng"
	"repro/internal/trace"
)

// jitterProfile applies node- and run-level execution variation to a
// workload profile: JIT compilation state, GC timing, OS scheduling and
// daemon activity perturb every behavioural parameter of a real JVM-based
// big-data job by a few percent between runs and between nodes. Without
// this, simulated measurements are unrealistically exact and the BIC
// "goodness of fit" analysis sees spuriously tight clusters.
//
// Each parameter is scaled by (1 + ε) with ε drawn from N(0, sigma),
// clamped back to its valid domain.
func jitterProfile(p trace.Profile, sigma float64, r *rng.RNG) trace.Profile {
	if sigma <= 0 {
		return p
	}
	p.Compute = jitterParams(p.Compute, sigma, r)
	p.Shuffle = jitterParams(p.Shuffle, sigma, r)
	return p
}

func jitterParams(p trace.Params, sigma float64, r *rng.RNG) trace.Params {
	scale := func(v float64) float64 {
		return v * (1 + sigma*r.NormFloat64())
	}
	frac := func(v float64) float64 {
		v = scale(v)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v
	}
	bytes := func(v uint64) uint64 {
		nv := scale(float64(v))
		if nv < 4096 {
			nv = 4096
		}
		return uint64(nv)
	}

	// Keep the instruction mix a valid simplex: jitter each component,
	// then rescale if the sum exceeds 1.
	p.LoadFrac = frac(p.LoadFrac)
	p.StoreFrac = frac(p.StoreFrac)
	p.BranchFrac = frac(p.BranchFrac)
	p.FPFrac = frac(p.FPFrac)
	p.SSEFrac = frac(p.SSEFrac)
	if sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.SSEFrac; sum > 1 {
		inv := 1 / sum
		p.LoadFrac *= inv
		p.StoreFrac *= inv
		p.BranchFrac *= inv
		p.FPFrac *= inv
		p.SSEFrac *= inv
	}

	p.KernelFrac = frac(p.KernelFrac)
	p.ComplexFrac = frac(p.ComplexFrac)
	p.DepFrac = frac(p.DepFrac)
	p.BranchEntropy = frac(p.BranchEntropy)
	p.CodeJumpFrac = frac(p.CodeJumpFrac)
	p.SeqFrac = frac(p.SeqFrac)
	p.SharedFrac = frac(p.SharedFrac)
	p.SharedWriteFrac = frac(p.SharedWriteFrac)

	p.UopsPerInstr = scale(p.UopsPerInstr)
	if p.UopsPerInstr < 1 {
		p.UopsPerInstr = 1
	}
	if p.UopsPerInstr > 4 {
		p.UopsPerInstr = 4
	}

	clampSkew := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 0.95 {
			return 0.95
		}
		return v
	}
	p.CodeSkew = clampSkew(scale(p.CodeSkew))
	p.DataSkew = clampSkew(scale(p.DataSkew))

	p.CodeFootprintB = bytes(p.CodeFootprintB)
	p.DataFootprintB = bytes(p.DataFootprintB)
	p.SharedFootprintB = bytes(p.SharedFootprintB)
	return p
}
