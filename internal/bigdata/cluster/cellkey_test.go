package cluster

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bigdata/workloads"
)

// memCellCache is a map-backed CellCache for tests: shape-checked like
// the real store, safe for the grid's concurrent workers.
type memCellCache struct {
	mu           sync.Mutex
	cols         map[string][][]float64
	hits, misses int
	stores       int
}

func newMemCellCache() *memCellCache {
	return &memCellCache{cols: map[string][][]float64{}}
}

func (c *memCellCache) GetCell(workload, key string, runs, metrics int) ([][]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	vecs, ok := c.cols[key]
	if !ok || len(vecs) != runs {
		c.misses++
		return nil, false
	}
	for _, v := range vecs {
		if len(v) != metrics {
			c.misses++
			return nil, false
		}
	}
	c.hits++
	return vecs, true
}

func (c *memCellCache) PutCell(workload, key string, vecs [][]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cols[key] = vecs
	c.stores++
}

func testSuite(t *testing.T, n int) []workloads.Workload {
	t.Helper()
	suite, err := workloads.Suite(workloads.Config{Seed: 11, Scale: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) < n {
		t.Fatalf("suite has %d workloads, need %d", len(suite), n)
	}
	return suite[:n]
}

func tinyGridConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine.Sockets, cfg.Machine.CoresPerSocket = 1, 2
	cfg.Machine.L1I.SizeB = 1 << 10
	cfg.Machine.L1D.SizeB = 1 << 10
	cfg.Machine.L2.SizeB = 4 << 10
	cfg.Machine.L3.SizeB = 32 << 10
	cfg.SlaveNodes = 2
	cfg.InstructionsPerCore = 2000
	cfg.Slices = 6
	cfg.Runs = 2
	cfg.Parallelism = 2
	return cfg
}

func TestCellKeyIdentityAndSensitivity(t *testing.T) {
	suite := testSuite(t, 2)
	cfg := tinyGridConfig()

	base, err := CellKey(suite[0], cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 64 {
		t.Fatalf("key %q is not 64 hex digits", base)
	}
	again, _ := CellKey(suite[0], cfg, 1)
	if base != again {
		t.Fatal("identical inputs produced different keys")
	}

	// Every simulation-relevant input must perturb the key.
	perturb := map[string]func() (string, error){
		"node":     func() (string, error) { return CellKey(suite[0], cfg, 0) },
		"workload": func() (string, error) { return CellKey(suite[1], cfg, 1) },
		"seed": func() (string, error) {
			c := cfg
			c.Seed++
			return CellKey(suite[0], c, 1)
		},
		"jitter": func() (string, error) {
			c := cfg
			c.ExecutionJitter += 0.01
			return CellKey(suite[0], c, 1)
		},
		"instructions": func() (string, error) {
			c := cfg
			c.InstructionsPerCore += 1000
			return CellKey(suite[0], c, 1)
		},
		"slices": func() (string, error) {
			c := cfg
			c.Slices++
			return CellKey(suite[0], c, 1)
		},
		"runs": func() (string, error) {
			c := cfg
			c.Runs++
			return CellKey(suite[0], c, 1)
		},
		"machine": func() (string, error) {
			c := cfg
			c.Machine.L2.SizeB *= 2
			return CellKey(suite[0], c, 1)
		},
		"profile": func() (string, error) {
			w := suite[0]
			w.Profile.Compute.LoadFrac += 0.01
			return CellKey(w, cfg, 1)
		},
	}
	for name, fn := range perturb {
		k, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == base {
			t.Errorf("perturbing %s did not change the cell key", name)
		}
	}

	// Execution-only knobs must NOT perturb the key.
	c := cfg
	c.Parallelism = 7
	c.SlaveNodes = 9
	if k, _ := CellKey(suite[0], c, 1); k != base {
		t.Error("execution-only knobs changed the cell key")
	}
}

// TestCellKeyShardEquivalence pins the sharding identity: a sub-campaign
// at NodeOffset o addressing its local node n derives the same key as
// the full grid addressing absolute node o+n.
func TestCellKeyShardEquivalence(t *testing.T) {
	suite := testSuite(t, 1)
	full := tinyGridConfig()
	sub := full
	sub.NodeOffset, sub.SlaveNodes = 1, 1

	want, err := CellKey(suite[0], full, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CellKey(suite[0], sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("shard key %s != full-grid key %s", got, want)
	}
}

// TestCharacterizeCellsCached is the determinism contract at grid level:
// a warm-cache run must produce cells identical to the cold run, with
// every column served from the cache and nothing recomputed.
func TestCharacterizeCellsCached(t *testing.T) {
	suite := testSuite(t, 2)
	cfg := tinyGridConfig()

	plain, err := CharacterizeCellsCtx(context.Background(), suite, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	cc := newMemCellCache()
	ctx := ContextWithCellCache(context.Background(), cc)
	cold, err := CharacterizeCellsCtx(ctx, suite, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, plain) {
		t.Fatal("cold cached run differs from uncached run")
	}
	wantCols := len(suite) * cfg.SlaveNodes
	if cc.stores != wantCols || cc.hits != 0 {
		t.Fatalf("cold run: stores=%d hits=%d, want %d/0", cc.stores, cc.hits, wantCols)
	}

	var progDone, progTotal int
	warm, err := CharacterizeCellsCtx(ctx, suite, cfg, func(done, total int) {
		progDone, progTotal = done, total
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, plain) {
		t.Fatal("warm cached run differs from uncached run")
	}
	if cc.hits != wantCols {
		t.Fatalf("warm run hit %d columns, want %d", cc.hits, wantCols)
	}
	if cc.stores != wantCols {
		t.Fatalf("warm run re-stored columns: stores=%d, want %d", cc.stores, wantCols)
	}
	// Cached cells still count toward the full grid total.
	ntasks := len(suite) * cfg.Runs * cfg.SlaveNodes
	if progDone != ntasks || progTotal != ntasks {
		t.Fatalf("warm progress reported %d/%d, want %d/%d", progDone, progTotal, ntasks, ntasks)
	}

	// Partial warmth: a changed workload definition invalidates exactly
	// its own columns.
	mut := append([]workloads.Workload(nil), suite...)
	mut[0].Profile.Compute.LoadFrac += 0.02
	before := cc.hits
	mutCells, err := CharacterizeCellsCtx(ctx, mut, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cc.hits-before != cfg.SlaveNodes {
		t.Fatalf("partial warm run hit %d columns, want %d (only the unchanged workload)",
			cc.hits-before, cfg.SlaveNodes)
	}
	plainMut, err := CharacterizeCellsCtx(context.Background(), mut, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mutCells, plainMut) {
		t.Fatal("partially cached run differs from uncached run")
	}
}
