package cluster

import (
	"reflect"
	"testing"

	"repro/internal/bigdata/workloads"
	"repro/internal/perf"
)

// fastConfig returns a configuration small enough for unit tests while
// still exercising the full path.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.SlaveNodes = 2
	cfg.InstructionsPerCore = 2000
	cfg.Slices = 8
	return cfg
}

func twoWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := workloads.ByName(suite, "H-Sort")
	if err != nil {
		t.Fatal(err)
	}
	s, err := workloads.ByName(suite, "S-Sort")
	if err != nil {
		t.Fatal(err)
	}
	return []workloads.Workload{h, s}
}

func TestConfigValidate(t *testing.T) {
	cfg := fastConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := fastConfig()
	bad.SlaveNodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 slaves accepted")
	}
	bad = fastConfig()
	bad.InstructionsPerCore = 10
	if err := bad.Validate(); err == nil {
		t.Error("tiny instruction budget accepted")
	}
	bad = fastConfig()
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 runs accepted")
	}
}

func TestRunWorkloadShape(t *testing.T) {
	ws := twoWorkloads(t)
	m, err := RunWorkload(ws[0], fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Metrics) != perf.NumMetrics {
		t.Fatalf("metric vector has %d entries, want %d", len(m.Metrics), perf.NumMetrics)
	}
	if len(m.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries, want 2", len(m.PerNode))
	}
	// Basic sanity: the LOAD fraction should be in a plausible range.
	i, err := perf.MetricIndex("LOAD")
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics[i] < 0.05 || m.Metrics[i] > 0.6 {
		t.Errorf("LOAD = %v, implausible", m.Metrics[i])
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	ws := twoWorkloads(t)
	a, err := RunWorkload(ws[0], fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(ws[0], fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Metrics {
		if a.Metrics[i] != b.Metrics[i] {
			t.Fatalf("metric %d differs across identical runs: %v vs %v", i, a.Metrics[i], b.Metrics[i])
		}
	}
}

func TestStacksProduceDifferentMetrics(t *testing.T) {
	ws := twoWorkloads(t)
	cfg := fastConfig()
	h, err := RunWorkload(ws[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunWorkload(ws[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	different := 0
	for i := range h.Metrics {
		if h.Metrics[i] != s.Metrics[i] {
			different++
		}
	}
	if different < 20 {
		t.Errorf("H-Sort and S-Sort differ in only %d/45 metrics", different)
	}
}

func TestCharacterizeOrderAndParallelism(t *testing.T) {
	ws := twoWorkloads(t)
	cfg := fastConfig()
	cfg.Parallelism = 2
	ms, err := Characterize(ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	if ms[0].Workload.Name != "H-Sort" || ms[1].Workload.Name != "S-Sort" {
		t.Errorf("order not preserved: %s, %s", ms[0].Workload.Name, ms[1].Workload.Name)
	}
	// Parallel run must equal the serial one (determinism across
	// goroutine scheduling).
	serial, err := RunWorkload(ws[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Metrics {
		if ms[0].Metrics[i] != serial.Metrics[i] {
			t.Fatal("parallel characterization diverged from serial run")
		}
	}
}

func TestCharacterizeParallelismDeterminism(t *testing.T) {
	ws := twoWorkloads(t)
	cfg := fastConfig()
	cfg.Runs = 2 // exercise the full workload×run×node grid
	cfg.Parallelism = 1
	want, err := Characterize(ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		cfg.Parallelism = par
		got, err := Characterize(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for wi := range want {
			if !reflect.DeepEqual(got[wi].Metrics, want[wi].Metrics) {
				t.Fatalf("Parallelism=%d: workload %s Metrics diverged from sequential",
					par, want[wi].Workload.Name)
			}
			if !reflect.DeepEqual(got[wi].PerNode, want[wi].PerNode) {
				t.Fatalf("Parallelism=%d: workload %s PerNode diverged from sequential",
					par, want[wi].Workload.Name)
			}
		}
	}
}

// TestMachineReuseMatchesFresh guards the worker-pool optimization: a
// reset machine must measure exactly like a freshly allocated one.
func TestMachineReuseMatchesFresh(t *testing.T) {
	ws := twoWorkloads(t)
	cfg := fastConfig()
	nw, err := newNodeWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the worker with one run, then re-measure and compare against
	// a brand-new worker.
	if _, err := nw.runNode(ws[1], cfg, 0, 1); err != nil {
		t.Fatal(err)
	}
	reused, err := nw.runNode(ws[0], cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := newNodeWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fresh.runNode(ws[0], cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, direct) {
		t.Fatal("reused machine produced different metrics than a fresh one")
	}
}

func TestCharacterizeEmptySuite(t *testing.T) {
	if _, err := Characterize(nil, fastConfig()); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestMetricMatrix(t *testing.T) {
	ws := twoWorkloads(t)
	ms, err := Characterize(ws, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, labels := MetricMatrix(ms)
	if len(rows) != 2 || len(labels) != 2 {
		t.Fatalf("matrix shape %dx, labels %d", len(rows), len(labels))
	}
	if labels[0] != "H-Sort" || len(rows[0]) != perf.NumMetrics {
		t.Errorf("labels/rows wrong: %v, %d", labels, len(rows[0]))
	}
}

func TestMultiRunAveraging(t *testing.T) {
	ws := twoWorkloads(t)
	cfg := fastConfig()
	cfg.Runs = 2
	m, err := RunWorkload(ws[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Metrics) != perf.NumMetrics {
		t.Fatalf("metric vector has %d entries", len(m.Metrics))
	}
}
