package workloads

import (
	"strings"
	"testing"

	"repro/internal/bigdata/stack"
)

func suite(t *testing.T) []Workload {
	t.Helper()
	s, err := Suite(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteHas32Workloads(t *testing.T) {
	s := suite(t)
	if len(s) != 32 {
		t.Fatalf("suite has %d workloads, want 32", len(s))
	}
	names := map[string]bool{}
	for _, w := range s {
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	// Spot-check the paper's naming scheme.
	for _, want := range []string{"H-Sort", "S-Sort", "H-Kmeans", "S-PageRank", "H-AggQuery", "S-SelectQuery"} {
		if !names[want] {
			t.Errorf("missing workload %q", want)
		}
	}
}

func TestSixteenPerStack(t *testing.T) {
	s := suite(t)
	h, sp := 0, 0
	for _, w := range s {
		switch {
		case strings.HasPrefix(w.Name, "H-"):
			h++
			if w.Stack.Engine != stack.EngineHadoop {
				t.Errorf("%s runs on engine %s", w.Name, w.Stack.Engine)
			}
		case strings.HasPrefix(w.Name, "S-"):
			sp++
			if w.Stack.Engine != stack.EngineSpark {
				t.Errorf("%s runs on engine %s", w.Name, w.Stack.Engine)
			}
		default:
			t.Errorf("workload %q has no stack prefix", w.Name)
		}
	}
	if h != 16 || sp != 16 {
		t.Errorf("stack split = %d Hadoop / %d Spark, want 16/16", h, sp)
	}
}

func TestInteractiveUsesHiveShark(t *testing.T) {
	s := suite(t)
	for _, w := range s {
		switch w.Category {
		case CategoryInteractive:
			if w.Stack.Name != "Hive" && w.Stack.Name != "Shark" {
				t.Errorf("%s (interactive) on stack %s, want Hive/Shark", w.Name, w.Stack.Name)
			}
		case CategoryOffline:
			if w.Stack.Name != "Hadoop" && w.Stack.Name != "Spark" {
				t.Errorf("%s (offline) on stack %s, want Hadoop/Spark", w.Name, w.Stack.Name)
			}
		default:
			t.Errorf("%s has unknown category %q", w.Name, w.Category)
		}
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, w := range suite(t) {
		if err := w.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestIdenticalDataSetsAcrossStacks(t *testing.T) {
	// §III-A: both implementations consume the same data, so the derived
	// skew must match; footprints differ only by the stack's DataScale.
	s := suite(t)
	for _, alg := range []string{"Sort", "WordCount", "PageRank", "Aggregation"} {
		h, err := ByName(s, "H-"+alg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := ByName(s, "S-"+alg)
		if err != nil {
			t.Fatal(err)
		}
		if h.ProblemSize != sp.ProblemSize || h.DataType != sp.DataType {
			t.Errorf("%s: data metadata differs across stacks", alg)
		}
	}
}

func TestSparkLargerDataFootprint(t *testing.T) {
	// Spark's in-memory intermediate data (DataScale 2.6) should make its
	// data footprints larger than Hadoop's for the same algorithm.
	s := suite(t)
	larger := 0
	for _, alg := range []string{"Sort", "WordCount", "Grep", "Bayes", "PageRank",
		"Projection", "Filter", "OrderBy", "Union", "Aggregation"} {
		h, _ := ByName(s, "H-"+alg)
		sp, _ := ByName(s, "S-"+alg)
		if sp.Profile.Compute.DataFootprintB > h.Profile.Compute.DataFootprintB {
			larger++
		}
	}
	if larger < 8 {
		t.Errorf("only %d/10 Spark workloads have larger data footprints", larger)
	}
}

func TestHadoopLargerCodeFootprint(t *testing.T) {
	// Observation 8: Hadoop-based workloads have larger instruction
	// footprints (except Spark PC4 outliers with deliberate code churn).
	s := suite(t)
	larger := 0
	checked := 0
	for _, alg := range []string{"Sort", "Bayes", "PageRank", "Projection",
		"Filter", "OrderBy", "Union", "Aggregation", "JoinQuery", "SelectQuery"} {
		h, _ := ByName(s, "H-"+alg)
		sp, _ := ByName(s, "S-"+alg)
		checked++
		if h.Profile.Compute.CodeFootprintB > sp.Profile.Compute.CodeFootprintB {
			larger++
		}
	}
	if larger != checked {
		t.Errorf("only %d/%d Hadoop workloads have larger code footprints", larger, checked)
	}
}

func TestHadoopMoreKernelMode(t *testing.T) {
	s := suite(t)
	for _, alg := range []string{"Sort", "WordCount", "Aggregation"} {
		h, _ := ByName(s, "H-"+alg)
		sp, _ := ByName(s, "S-"+alg)
		if h.Profile.Compute.KernelFrac <= sp.Profile.Compute.KernelFrac {
			t.Errorf("%s: Hadoop kernel fraction %v ≤ Spark %v", alg,
				h.Profile.Compute.KernelFrac, sp.Profile.Compute.KernelFrac)
		}
	}
}

func TestSparkMoreSharing(t *testing.T) {
	s := suite(t)
	for _, alg := range []string{"Sort", "PageRank", "JoinQuery"} {
		h, _ := ByName(s, "H-"+alg)
		sp, _ := ByName(s, "S-"+alg)
		if sp.Profile.Compute.SharedFrac <= h.Profile.Compute.SharedFrac {
			t.Errorf("%s: Spark shared fraction %v ≤ Hadoop %v", alg,
				sp.Profile.Compute.SharedFrac, h.Profile.Compute.SharedFrac)
		}
	}
}

func TestStackDominanceCompressesAlgorithmDiversity(t *testing.T) {
	// Hadoop's higher Dominance must make Hadoop workloads more alike
	// than their Spark counterparts (Observation 5). Compare the spread
	// of a representative parameter across algorithms per stack.
	s := suite(t)
	spread := func(prefix string) float64 {
		min, max := 1.0, 0.0
		for _, w := range s {
			if !strings.HasPrefix(w.Name, prefix) {
				continue
			}
			v := w.Profile.Compute.SeqFrac
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	if spread("H-") >= spread("S-") {
		t.Errorf("Hadoop SeqFrac spread %v ≥ Spark %v; dominance not compressing", spread("H-"), spread("S-"))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName(suite(t), "X-Nothing"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSuiteRejectsBadScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	if _, err := Suite(cfg); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := suite(t)
	b := suite(t)
	for i := range a {
		if a[i].Name != b[i].Name ||
			a[i].Profile.Compute != b[i].Profile.Compute ||
			a[i].Profile.Shuffle != b[i].Profile.Shuffle {
			t.Fatalf("suite not deterministic at %s", a[i].Name)
		}
	}
}

func TestNames(t *testing.T) {
	s := suite(t)
	names := Names(s)
	if len(names) != 32 || names[0] != s[0].Name {
		t.Errorf("Names wrong: %v", names[:2])
	}
}

func TestFootprintsMatchCacheRegime(t *testing.T) {
	// The scaled footprints must keep the memory hierarchy in the
	// paper's regime: Spark working sets well beyond the 12 MB L3
	// (Observation 6: ≈2× the L3 misses), Hadoop's streaming sets near
	// but not far under L3 capacity.
	s := suite(t)
	for _, name := range []string{"S-Sort", "S-WordCount", "S-Bayes"} {
		w, _ := ByName(s, name)
		if w.Profile.Compute.DataFootprintB < 12<<20 {
			t.Errorf("%s data footprint %d < L3 size", name, w.Profile.Compute.DataFootprintB)
		}
	}
	for _, name := range []string{"H-Sort", "H-WordCount"} {
		w, _ := ByName(s, name)
		f := w.Profile.Compute.DataFootprintB
		if f < 6<<20 || f > 16<<20 {
			t.Errorf("%s data footprint %d outside the near-L3 regime", name, f)
		}
	}
}
