package service

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidID(t *testing.T) {
	good := strings.Repeat("0123456789abcdef", 2)
	if !validID(good) {
		t.Errorf("validID(%q) = false, want true", good)
	}
	bad := []string{
		"",
		"short",
		good + "00",                   // too long
		strings.ToUpper(good),         // uppercase hex
		"../secret",                   // traversal
		"..%2Fsecret",                 // still-encoded traversal
		strings.Repeat("0", 31) + "/", // separator
		strings.Repeat("0", 31) + ".", // dot
		strings.Repeat("0", 31) + "g", // non-hex
		"/" + strings.Repeat("0", 31), // absolute
		strings.Repeat("0", 15) + "\x00" + strings.Repeat("0", 16), // NUL
	}
	for _, id := range bad {
		if validID(id) {
			t.Errorf("validID(%q) = true, want false", id)
		}
	}
}

// TestResultRejectsPathTraversal plants a JSON file next to the data dir
// and verifies that an encoded-slash job ID cannot read it — neither
// through the HTTP result endpoint (Go 1.22 ServeMux keeps %2F inside a
// path segment and PathValue unescapes it) nor through the cache directly.
func TestResultRejectsPathTraversal(t *testing.T) {
	tmp := t.TempDir()
	secret := []byte(`{"secret":"do-not-serve"}`)
	if err := os.WriteFile(filepath.Join(tmp, "secret.json"), secret, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, m := newTestServer(t, Config{DataDir: filepath.Join(tmp, "data")})

	for _, path := range []string{
		"/v1/jobs/..%2Fsecret/result",
		"/v1/jobs/..%2F..%2Fsecret/result",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, http.StatusNotFound)
		}
	}

	if _, _, ok := m.cache.Get("../secret"); ok {
		t.Error("cache.Get served a traversal ID from disk")
	}
	if st := m.CacheStats(); st.Entries != 0 {
		t.Errorf("traversal probe inserted %d cache entries", st.Entries)
	}
}

// TestPutDiskFailureRollsBack verifies that a failed disk write leaves no
// tier holding the result: a job whose result could not be persisted must
// not be replayable as a cached success.
func TestPutDiskFailureRollsBack(t *testing.T) {
	c, err := newResultCache(4, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.dir = filepath.Join(c.dir, "missing") // writes now fail (ENOENT)

	id := strings.Repeat("ab", 16)
	if _, err := c.Put(id, []byte(`{"x":1}`)); err == nil {
		t.Fatal("Put succeeded despite unwritable disk tier")
	}
	if _, _, ok := c.Get(id); ok {
		t.Error("failed Put left a servable memory entry")
	}
	if st := c.Stats(); st.Stores != 0 || st.Entries != 0 {
		t.Errorf("failed Put counted stores=%d entries=%d, want 0/0", st.Stores, st.Entries)
	}
}

// TestSubmitReexecutesWhenResultEvicted covers the memory-only eviction
// corner: a done job whose result bytes were displaced from a 1-entry LRU
// must be re-executed on resubmission, not reported as a cache hit whose
// result endpoint would then 404.
func TestSubmitReexecutesWhenResultEvicted(t *testing.T) {
	m := newTestManager(t, Config{CacheEntries: 1, Parallelism: 2})

	specA := tinySpec()
	specB := tinySpec()
	specB.Suite.Seed, specB.Cluster.Seed = 23, 23

	stA, err := m.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, stA.ID, 60*time.Second); fin.State != StateDone {
		t.Fatalf("job A finished %s: %s", fin.State, fin.Error)
	}
	stB, err := m.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, stB.ID, 60*time.Second); fin.State != StateDone {
		t.Fatalf("job B finished %s: %s", fin.State, fin.Error)
	}

	// B's result displaced A's from the single-entry LRU; there is no
	// disk tier to fall back to.
	if _, ok := m.Result(stA.ID); ok {
		t.Fatal("evicted result still servable; test premise broken")
	}

	st, err := m.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("resubmission after eviction reported a cache hit")
	}
	if fin := waitTerminal(t, m, st.ID, 60*time.Second); fin.State != StateDone {
		t.Fatalf("re-executed job finished %s: %s", fin.State, fin.Error)
	}
	if _, ok := m.Result(st.ID); !ok {
		t.Error("re-executed job has no servable result")
	}
}
