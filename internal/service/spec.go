// Package service turns the one-shot characterization pipeline into a
// long-running characterization-as-a-service subsystem: a job manager
// with a bounded executor pool, deterministic content-addressed job IDs,
// an LRU + on-disk result cache, and per-job streamed progress events.
// cmd/bdservd exposes it over HTTP.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/custom"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim/machine"
)

// JobSpec is the complete, self-contained description of one
// characterization + analysis job. Two specs that normalize to the same
// value are the same job: the job ID (and therefore the result-cache key)
// is a hash of the normalized spec, so identical submissions deduplicate
// and replay the cached result byte-for-byte.
//
// Workload order is semantic — it fixes dataset row order, which the
// downstream clustering depends on — so specs listing the same workloads
// in different orders are distinct jobs.
// Job modes. The canonical (normalized) analyze mode is the empty string,
// so pre-existing analyze-job IDs and cached results stay valid.
const (
	// ModeAnalyze runs the full pipeline; the result is an AnalysisJSON.
	ModeAnalyze = ""
	// ModeObservations runs characterization only and returns the raw
	// per-cell observation matrix (ObservationsJSON) — the worker half of
	// a sharded run. The Analysis config is ignored (and zeroed during
	// normalization, so coordinators sharding jobs with different
	// analysis settings share worker-side cache entries).
	ModeObservations = "observations"
)

type JobSpec struct {
	// Mode selects what the job computes: "" / "analyze" for the full
	// characterize+analyze pipeline, "observations" (or "characterize")
	// for the characterize-only observation matrix.
	Mode string `json:"mode,omitempty"`
	// Workloads selects suite members by paper name (e.g. "H-Sort").
	// Empty means every workload the spec defines: the 32 built-ins plus
	// the workloads of CustomWorkloads, in that order.
	Workloads []string `json:"workloads,omitempty"`
	// CustomWorkloads extends the suite with declarative scenario
	// definitions (internal/bigdata/custom), appended after the built-ins
	// in definition order. Definitions are normalized into the canonical
	// spec and therefore participate in the content-addressed job ID:
	// identical custom jobs dedupe and cache like built-in ones, and the
	// field is omitted when empty so pre-existing job IDs are unchanged.
	CustomWorkloads []custom.Definition `json:"custom_workloads,omitempty"`
	// Suite configures workload synthesis (seed, dataset scale).
	Suite workloads.Config `json:"suite"`
	// Cluster configures the simulated five-node measurement cluster.
	Cluster cluster.Config `json:"cluster"`
	// Analysis configures the §V–§VI statistical pipeline.
	Analysis core.AnalysisConfig `json:"analysis"`
}

// DefaultSpec returns the paper-shaped job: all 32 workloads at the
// standard suite, cluster and analysis settings.
func DefaultSpec() JobSpec {
	return JobSpec{
		Suite:    workloads.DefaultConfig(),
		Cluster:  cluster.DefaultConfig(),
		Analysis: core.DefaultAnalysis(),
	}
}

// Normalized fills defaults, strips execution-only knobs and validates,
// returning the canonical form the job ID is computed from.
//
// Parallelism settings are zeroed: the pipeline guarantees bit-identical
// results at any parallelism, so they are an execution detail of the
// server, never part of the job identity.
func (s JobSpec) Normalized() (JobSpec, error) {
	n := s

	switch strings.ToLower(strings.TrimSpace(n.Mode)) {
	case "", "analyze":
		n.Mode = ModeAnalyze
	case ModeObservations, "characterize":
		n.Mode = ModeObservations
	default:
		return n, fmt.Errorf("service: unknown job mode %q (analyze, observations)", n.Mode)
	}

	if n.Suite == (workloads.Config{}) {
		n.Suite = workloads.DefaultConfig()
	}
	if n.Suite.Scale <= 0 {
		return n, fmt.Errorf("service: non-positive suite scale %v", n.Suite.Scale)
	}

	d := cluster.DefaultConfig()
	if n.Cluster == (cluster.Config{}) {
		n.Cluster = d
	}
	if n.Cluster.Machine == (machine.Config{}) {
		n.Cluster.Machine = d.Machine
	}
	if n.Cluster.SlaveNodes == 0 {
		n.Cluster.SlaveNodes = d.SlaveNodes
	}
	if n.Cluster.InstructionsPerCore == 0 {
		n.Cluster.InstructionsPerCore = d.InstructionsPerCore
	}
	if n.Cluster.Slices == 0 {
		n.Cluster.Slices = d.Slices
	}
	if n.Cluster.Runs == 0 {
		n.Cluster.Runs = 1
	}
	if n.Cluster.Monitor == (perf.MonitorConfig{}) {
		n.Cluster.Monitor = d.Monitor
	} else if n.Cluster.Monitor.Counters == 0 {
		// Partial monitor config: default only the counter width, keep
		// the caller's Multiplex/RampUpFraction — wholesale replacement
		// would silently compute (and cache-key) the wrong measurement.
		n.Cluster.Monitor.Counters = d.Monitor.Counters
	}
	n.Cluster.Parallelism = 0

	if n.Mode == ModeObservations {
		// Characterize-only jobs never run the analysis stage: zero the
		// config so shards of analyze jobs that differ only in analysis
		// settings normalize to the same worker job.
		n.Analysis = core.AnalysisConfig{}
	} else {
		if n.Analysis == (core.AnalysisConfig{}) {
			n.Analysis = core.DefaultAnalysis()
		}
		if n.Analysis.KMin == 0 && n.Analysis.KMax == 0 {
			n.Analysis.KMin, n.Analysis.KMax = 2, 12
		}
		if n.Analysis.VarianceFrac == 0 {
			n.Analysis.VarianceFrac = 0.9
		}
		if n.Analysis.KMeans.Restarts == 0 {
			n.Analysis.KMeans.Restarts = core.DefaultAnalysis().KMeans.Restarts
		}
		n.Analysis.Parallelism = 0
		n.Analysis.KMeans.Parallelism = 0
	}

	if err := n.Cluster.Validate(); err != nil {
		return n, err
	}
	if n.Mode == ModeAnalyze && (n.Analysis.KMin < 1 || n.Analysis.KMax < n.Analysis.KMin) {
		return n, fmt.Errorf("service: invalid K range [%d,%d]", n.Analysis.KMin, n.Analysis.KMax)
	}

	if len(n.CustomWorkloads) == 0 {
		n.CustomWorkloads = nil
	} else {
		defs, err := custom.NormalizeAll(n.CustomWorkloads)
		if err != nil {
			return n, err
		}
		n.CustomWorkloads = defs
	}

	if len(n.Workloads) == 0 {
		n.Workloads = nil
	} else {
		names := make([]string, len(n.Workloads))
		for i, w := range n.Workloads {
			names[i] = strings.TrimSpace(w)
		}
		n.Workloads = names
	}
	switch {
	case n.Workloads != nil:
		// Validate the selection (empty/duplicate/unknown names) and any
		// custom definitions' synthesized profiles against the suite the
		// spec will actually build.
		if _, err := n.ResolveSuite(); err != nil {
			return n, err
		}
	case n.CustomWorkloads != nil:
		// No selection to resolve: only the definitions' synthesized
		// profiles need validating, which does not require synthesizing
		// the 32 built-ins (Normalized runs on every Submit/ID and every
		// bdcoord unit sub-spec, so this path stays cheap).
		if _, err := custom.Build(n.CustomWorkloads, n.Suite); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ResolveSuite synthesizes the workload list the spec describes: the 32
// built-ins plus any custom definitions' workloads (appended in
// definition order — per-cell seeds are functions of workload names, so
// the extension never perturbs built-in cells). An empty selection means
// the whole extended suite; otherwise the named workloads are picked in
// the given order via the shared selection helper (unknown names error
// with the list of valid ones).
func (s JobSpec) ResolveSuite() ([]workloads.Workload, error) {
	suite, err := workloads.Suite(s.Suite)
	if err != nil {
		return nil, err
	}
	if len(s.CustomWorkloads) > 0 {
		cw, err := custom.Build(s.CustomWorkloads, s.Suite)
		if err != nil {
			return nil, err
		}
		suite = append(suite, cw...)
	}
	if len(s.Workloads) == 0 {
		return suite, nil
	}
	return workloads.Select(suite, s.Workloads)
}

// ID returns the deterministic, content-addressed job identifier: the
// hex-encoded truncated SHA-256 of the normalized spec's canonical JSON.
func (s JobSpec) ID() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	return n.id()
}

// id hashes an already-normalized spec. encoding/json emits struct fields
// in declaration order with deterministic number formatting, so equal
// normalized specs always produce identical bytes.
func (n JobSpec) id() (string, error) {
	data, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("service: canonicalizing spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16]), nil
}
