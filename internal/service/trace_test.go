package service

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanNames collects the set of span names in an export.
func spanNames(export obs.TraceExport) map[string]int {
	names := map[string]int{}
	for _, sp := range export.Spans {
		names[sp.Name]++
	}
	return names
}

// TestTracedJobSpansAndDeterminism runs the same tiny job with tracing
// enabled and disabled: the enabled run must expose a job root span,
// the queue-wait/cache-probe bookkeeping spans and the pipeline's stage
// spans; the disabled run must expose nothing — and both must produce
// the same result hash, because tracing is strictly observational.
func TestTracedJobSpansAndDeterminism(t *testing.T) {
	traced := newTestManager(t, Config{Parallelism: 2, TraceBuffer: 4096, TraceService: "bdservd"})
	st, err := traced.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, traced, st.ID, 120*time.Second)
	if fin.State != StateDone {
		t.Fatalf("traced job finished %s: %s", fin.State, fin.Error)
	}

	export, ok := traced.Trace(st.ID)
	if !ok {
		t.Fatal("tracing enabled but Trace returned no export")
	}
	if export.JobID != st.ID || export.TraceID != st.ID {
		t.Fatalf("export identity job=%q trace=%q, want both %q", export.JobID, export.TraceID, st.ID)
	}
	names := spanNames(export)
	for _, want := range []string{"job", "queue-wait", "cache-probe", "characterize"} {
		if names[want] == 0 {
			t.Errorf("trace missing a %q span (have %v)", want, names)
		}
	}
	for _, sp := range export.Spans {
		if sp.TraceID != st.ID {
			t.Fatalf("span %s carries trace ID %q, want %q", sp.Name, sp.TraceID, st.ID)
		}
		if sp.Name == "job" {
			if sp.Parent != "" {
				t.Errorf("local job root has parent %q, want none", sp.Parent)
			}
			if sp.Attrs["state"] != string(StateDone) {
				t.Errorf("job root state attr %q, want %q", sp.Attrs["state"], StateDone)
			}
		}
		if sp.Attrs["kind"] == "stage" && sp.Attrs["status"] != "ok" {
			t.Errorf("stage span %s status %q, want ok", sp.Name, sp.Attrs["status"])
		}
	}

	untraced := newTestManager(t, Config{Parallelism: 2, TraceBuffer: -1})
	st2, err := untraced.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitTerminal(t, untraced, st2.ID, 120*time.Second)
	if fin2.State != StateDone {
		t.Fatalf("untraced job finished %s: %s", fin2.State, fin2.Error)
	}
	if _, ok := untraced.Trace(st2.ID); ok {
		t.Error("tracing disabled but Trace returned an export")
	}
	if fin.ResultHash != fin2.ResultHash {
		t.Fatalf("tracing changed the result: traced %s, untraced %s", fin.ResultHash, fin2.ResultHash)
	}
}

// TestSubmitTracedJoinsUpstreamTrace pins the X-BD-Trace contract: a
// valid header re-roots the job's spans under the caller's trace ID and
// parent span; a malformed one is ignored and the job roots its own
// trace.
func TestSubmitTracedJoinsUpstreamTrace(t *testing.T) {
	upTrace := strings.Repeat("ab", 16) // well-formed 32-hex trace ID
	const upSpan = "parent-span-1"

	m := newTestManager(t, Config{Execute: fakeExec(0), TraceBuffer: 4096})
	st, err := m.SubmitTraced(tinySpec(), obs.FormatTraceParent(upTrace, upSpan))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, st.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	export, ok := m.Trace(st.ID)
	if !ok {
		t.Fatal("no trace export")
	}
	if export.TraceID != upTrace {
		t.Fatalf("trace ID %q, want upstream %q", export.TraceID, upTrace)
	}
	rooted := false
	for _, sp := range export.Spans {
		if sp.TraceID != upTrace {
			t.Fatalf("span %s kept trace ID %q, want upstream %q", sp.Name, sp.TraceID, upTrace)
		}
		if sp.Name == "job" && sp.Parent == upSpan {
			rooted = true
		}
	}
	if !rooted {
		t.Error("job root span is not parented under the upstream span")
	}

	m2 := newTestManager(t, Config{Execute: fakeExec(0), TraceBuffer: 4096})
	st2, err := m2.SubmitTraced(tinySpec(), "not a trace parent")
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m2, st2.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	export2, ok := m2.Trace(st2.ID)
	if !ok {
		t.Fatal("no trace export")
	}
	if export2.TraceID != st2.ID {
		t.Fatalf("malformed header: trace ID %q, want the job's own %q", export2.TraceID, st2.ID)
	}
}

// TestTraceHTTPEndpoint exercises GET /v1/jobs/{id}/trace in both
// formats, plus its 404s for unknown jobs and disabled tracing.
func TestTraceHTTPEndpoint(t *testing.T) {
	srv, m := newTestServer(t, Config{Execute: fakeExec(0), TraceBuffer: 4096, TraceService: "bdservd"})
	specJSON, err := json.Marshal(map[string]any{"spec": tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	st, code := postJob(t, srv, string(specJSON))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	if fin := waitTerminal(t, m, st.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}

	var export obs.TraceExport
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/trace", &export); code != http.StatusOK {
		t.Fatalf("trace endpoint: HTTP %d", code)
	}
	if export.JobID != st.ID || len(export.Spans) == 0 {
		t.Fatalf("trace export job=%q spans=%d", export.JobID, len(export.Spans))
	}

	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/trace?format=chrome", &chrome); code != http.StatusOK {
		t.Fatalf("chrome trace: HTTP %d", code)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	unknown := strings.Repeat("0", 32)
	if code := getJSON(t, srv.URL+"/v1/jobs/"+unknown+"/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d, want 404", code)
	}

	offSrv, offM := newTestServer(t, Config{Execute: fakeExec(0), TraceBuffer: -1})
	st2, _ := postJob(t, offSrv, string(specJSON))
	if fin := waitTerminal(t, offM, st2.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	if code := getJSON(t, offSrv.URL+"/v1/jobs/"+st2.ID+"/trace", nil); code != http.StatusNotFound {
		t.Fatalf("disabled tracing: HTTP %d, want 404", code)
	}
}

// TestTraceSurvivesRestart: completed spans are journaled, so when a
// manager dies mid-job the next incarnation's re-adopted job still
// carries its pre-crash spans — the cache-probe span exists only in the
// first incarnation's Submit path, so finding it after the restart
// proves the journal round trip.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(400 * time.Millisecond),
		TraceBuffer: 4096,
	}
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := m1.Get(st.ID); cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m1.Close()

	m2 := newTestManager(t, cfg)
	if fin := waitTerminal(t, m2, st.ID, 30*time.Second); fin.State != StateDone {
		t.Fatalf("re-adopted job finished %s: %s", fin.State, fin.Error)
	}
	export, ok := m2.Trace(st.ID)
	if !ok {
		t.Fatal("re-adopted job has no trace")
	}
	names := spanNames(export)
	if names["cache-probe"] == 0 {
		t.Errorf("pre-crash cache-probe span lost across restart (have %v)", names)
	}
	done := false
	for _, sp := range export.Spans {
		if sp.Name == "job" && sp.Attrs["state"] == string(StateDone) {
			done = true
		}
	}
	if !done {
		t.Errorf("no job root span with state=done after restart (have %v)", names)
	}
}
