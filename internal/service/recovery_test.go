package service

// Crash-recovery and graceful-shutdown tests for the manager: unit-level
// journal replay under torn tails, re-adoption of non-terminal jobs,
// drain semantics, and the degraded-health path when the journal loses
// its disk.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalUnitDoneReplayEveryTruncation truncates a journal carrying
// plan + unit_done records at EVERY byte offset and replays each prefix:
// replay must never error, must reconstruct exactly the unit_done
// records whose lines are complete (a partial line contributes nothing),
// and must keep the plan/terminal semantics intact at every cut.
func TestJournalUnitDoneReplayEveryTruncation(t *testing.T) {
	spec := tinySpec()
	u0, u1, u2 := 0, 1, 2
	key := func(b byte) string { return strings.Repeat(string(b), 32) }
	recs := []journalRecord{
		{Type: "submit", ID: "job-a", Spec: &spec},
		{Type: "start", ID: "job-a"},
		{Type: "plan", ID: "job-a", Parts: 4},
		{Type: "unit_done", ID: "job-a", Unit: &u0, Key: key('a')},
		{Type: "unit_done", ID: "job-a", Unit: &u1, Key: key('b')},
		{Type: "submit", ID: "job-b", Spec: &spec},
		{Type: "start", ID: "job-b"},
		{Type: "done", ID: "job-b", Hash: key('c')},
		{Type: "unit_done", ID: "job-a", Unit: &u2, Key: key('d')},
	}
	var buf []byte
	ends := make([]int, len(recs)) // byte offset just past each record's newline
	for i, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		ends[i] = len(buf)
	}
	full := map[int]string{u0: key('a'), u1: key('b'), u2: key('d')}

	path := filepath.Join(t.TempDir(), "journal.ndjson")
	for cut := 0; cut <= len(buf); cut++ {
		// A record is replayable once all its bytes short of the trailing
		// newline are on disk — a final line cut exactly before its
		// newline still parses.
		complete := 0
		for _, e := range ends {
			if e-1 <= cut {
				complete++
			}
		}
		if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, err := replayJournal(path)
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		var a, b *replayedJob
		for i := range jobs {
			switch jobs[i].id {
			case "job-a":
				a = &jobs[i]
			case "job-b":
				b = &jobs[i]
			}
		}
		// job-a: plan visible iff its line is complete; unit_done entries
		// are exactly the complete ones, each pointing at the right key.
		wantUnits := 0
		for i, r := range recs {
			if r.Type == "unit_done" && ends[i]-1 <= cut {
				wantUnits++
			}
		}
		switch {
		case complete == 0:
			if a != nil {
				t.Fatalf("cut %d: job-a replayed before its submit line is complete", cut)
			}
		default:
			if a == nil {
				t.Fatalf("cut %d: job-a missing", cut)
			}
			if complete >= 3 && a.planParts != 4 || complete < 3 && a.planParts != 0 {
				t.Fatalf("cut %d: job-a planParts = %d (complete lines %d)", cut, a.planParts, complete)
			}
			if len(a.unitsDone) != wantUnits {
				t.Fatalf("cut %d: job-a has %d unit_done, want %d", cut, len(a.unitsDone), wantUnits)
			}
			for u, k := range a.unitsDone {
				if full[u] != k {
					t.Fatalf("cut %d: job-a unit %d has key %q, want %q", cut, u, k, full[u])
				}
			}
			if a.state.terminal() {
				t.Fatalf("cut %d: job-a replayed terminal", cut)
			}
		}
		// job-b: terminal iff its done line is complete, and terminal
		// replay carries no unit-level leftovers.
		if complete >= 8 {
			if b == nil || b.state != StateDone || b.hash != key('c') {
				t.Fatalf("cut %d: job-b not replayed done: %+v", cut, b)
			}
			if b.planParts != 0 || len(b.unitsDone) != 0 {
				t.Fatalf("cut %d: terminal job-b kept unit progress: %+v", cut, b)
			}
		}
	}
}

// TestShutdownReadoptsRunningJob: a manager closed with a job still
// running journals NO terminal record for it — the crash/shutdown model
// — so the next manager over the same journal re-adopts and finishes it,
// and only then does the journal go terminal.
func TestShutdownReadoptsRunningJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(400 * time.Millisecond),
	}
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := m1.Get(st.ID); cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m1.Close()

	m2 := newTestManager(t, cfg)
	got, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("interrupted job not re-adopted after restart")
	}
	if got.State.terminal() {
		t.Fatalf("re-adopted job born terminal: %s", got.State)
	}
	fin := waitTerminal(t, m2, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("re-adopted job finished %s: %s", fin.State, fin.Error)
	}
	if data, ok := m2.Result(st.ID); !ok || len(data) == 0 {
		t.Fatal("re-adopted job has no result")
	}
	// A restart means the previous incarnation shut down: Close drains the
	// async journal writer, so the done record is on disk before m3 opens
	// the file. (Without this the test races the writer goroutine.)
	m2.Close()

	// Third incarnation sees it done — the terminal record landed.
	m3 := newTestManager(t, cfg)
	if got, ok := m3.Get(st.ID); !ok || got.State != StateDone {
		t.Fatalf("second restart: state %v ok %v, want done", got.State, ok)
	}
}

// TestUserCancelIsNotReadopted: an explicit cancel IS journaled terminal
// — only shutdown interruptions re-adopt.
func TestUserCancelIsNotReadopted(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(time.Hour),
	}
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Cancel(st.ID) {
		t.Fatal("cancel refused")
	}
	if fin := waitTerminal(t, m1, st.ID, 5*time.Second); fin.State != StateCanceled {
		t.Fatalf("state %s, want canceled", fin.State)
	}
	m1.Close()

	m2 := newTestManager(t, cfg)
	if got, ok := m2.Get(st.ID); !ok || got.State != StateCanceled {
		t.Fatalf("canceled job replayed as %v (ok %v), want canceled", got.State, ok)
	}
}

// TestDrainWaitsAndRefusesNewWork: Drain lets in-flight jobs finish
// (returning true) while refusing new submissions with ErrDraining, and
// a drain that cannot finish in time reports false.
func TestDrainWaitsAndRefusesNewWork(t *testing.T) {
	m := newTestManager(t, Config{Execute: fakeExec(300 * time.Millisecond)})
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Drain(10 * time.Second) {
		t.Fatal("drain timed out with 10s budget for a 300ms job")
	}
	if got, _ := m.Get(st.ID); got.State != StateDone {
		t.Fatalf("drained job state %s, want done", got.State)
	}
	spec := tinySpec()
	spec.Cluster.Seed = 12345
	if _, err := m.Submit(spec); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}

	m2 := newTestManager(t, Config{Execute: fakeExec(time.Hour)})
	if _, err := m2.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	if m2.Drain(50 * time.Millisecond) {
		t.Fatal("drain reported success with an hour-long job in flight")
	}
}

// TestJournalFailureDegradesHealthz: once an append hits a dead file the
// journal reports unhealthy — sticky — and /healthz turns 503 degraded,
// which is exactly what a coordinator's prober needs to breaker a
// disk-failing worker out of rotation.
func TestJournalFailureDegradesHealthz(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
	})
	if ok, detail := m.JournalHealth(); !ok {
		t.Fatalf("fresh journal unhealthy: %s", detail)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before failure: %v %v", resp.StatusCode, err)
	}

	// Pull the disk out from under the writer goroutine: the next append
	// hits a closed file and the failure sticks.
	m.jmu.Lock()
	m.journal.f.Close()
	m.jmu.Unlock()
	if _, err := m.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := m.JournalHealth(); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal failure never surfaced in JournalHealth")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status = %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Journal string `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" || body.Journal == "" {
		t.Fatalf("degraded healthz body: %+v", body)
	}
}
