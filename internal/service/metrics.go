package service

import (
	"repro/internal/obs"
)

// svcMetrics bundles the manager's obs instruments. Every Manager has
// one — when Config.Registry is nil the instruments land on a private
// registry nothing renders — so hot paths never branch on "metrics
// enabled". Counter storage is shared with the JSON surfaces
// (CacheStats, JobStatus): /metrics and /v1/cache/stats read the same
// atomics and can never disagree.
type svcMetrics struct {
	jobsSubmitted *obs.CounterVec // outcome: queued | cache_hit | deduped
	jobsRejected  *obs.CounterVec // reason: queue_full | draining | invalid
	jobsCompleted *obs.CounterVec // state: done | failed | canceled
	jobDuration   *obs.HistogramVec
	stageDuration *obs.HistogramVec
	cache         *cacheMetrics
	journal       *journalMetrics
}

// cacheMetrics is the counter storage behind both CacheStats and the
// bd_cache_* families.
type cacheMetrics struct {
	requests  *obs.Counter // every lookup, any outcome — hit-ratio denominator
	memHits   *obs.Counter
	diskHits  *obs.Counter
	misses    *obs.Counter
	stores    *obs.Counter
	evictions *obs.Counter
	corrupt   *obs.Counter
}

type journalMetrics struct {
	appends     *obs.Counter
	failures    *obs.Counter
	compactions *obs.Counter
}

func newCacheMetrics(reg *obs.Registry) *cacheMetrics {
	hits := reg.CounterVec("bd_cache_hits_total",
		"Result-cache hits, by serving tier.", "tier")
	return &cacheMetrics{
		requests: reg.Counter("bd_cache_requests_total",
			"Result-cache lookups regardless of outcome (hit-ratio denominator)."),
		memHits:  hits.With("memory"),
		diskHits: hits.With("disk"),
		misses: reg.Counter("bd_cache_misses_total",
			"Result-cache lookups that found nothing in any tier."),
		stores: reg.Counter("bd_cache_stores_total",
			"Results written to the cache."),
		evictions: reg.Counter("bd_cache_evictions_total",
			"Entries displaced from the in-memory LRU tier (disk copies remain)."),
		corrupt: reg.Counter("bd_cache_corrupt_total",
			"Disk-tier entries deleted because their bytes failed JSON validation."),
	}
}

func newSvcMetrics(reg *obs.Registry) *svcMetrics {
	return &svcMetrics{
		jobsSubmitted: reg.CounterVec("bd_jobs_submitted_total",
			"Accepted job submissions, by outcome (queued, cache_hit, deduped).",
			"outcome"),
		jobsRejected: reg.CounterVec("bd_jobs_rejected_total",
			"Refused job submissions, by reason (queue_full, draining, invalid).",
			"reason"),
		jobsCompleted: reg.CounterVec("bd_jobs_completed_total",
			"Jobs reaching a terminal state, by state (done, failed, canceled).",
			"state"),
		jobDuration: reg.HistogramVec("bd_job_duration_seconds",
			"Job wall-clock time from start to terminal state, by final state.",
			obs.WideBuckets, "state"),
		stageDuration: reg.HistogramVec("bd_stage_duration_seconds",
			"Pipeline stage wall-clock time, by stage.",
			obs.WideBuckets, "stage"),
		cache: newCacheMetrics(reg),
		journal: &journalMetrics{
			appends: reg.Counter("bd_journal_appends_total",
				"Records appended to the job journal."),
			failures: reg.Counter("bd_journal_failures_total",
				"Journal append or compaction failures (any failure degrades /healthz)."),
			compactions: reg.Counter("bd_journal_compactions_total",
				"Journal compaction rewrites completed."),
		},
	}
}

// registerGauges binds the render-time gauges to a live manager. Called
// once from New, after the manager's queue and cache exist.
func (mx *svcMetrics) registerGauges(reg *obs.Registry, m *Manager) {
	reg.GaugeFunc("bd_queue_depth",
		"Jobs waiting in the queue for an executor.",
		func() float64 { return float64(len(m.queue)) })
	reg.Gauge("bd_queue_capacity",
		"Capacity of the job queue.").Set(float64(cap(m.queue)))
	reg.Gauge("bd_executor_workers",
		"Size of the executor pool.").Set(float64(m.cfg.Workers))
	reg.GaugeFunc("bd_executor_busy",
		"Jobs currently executing (executor utilization = busy / workers).",
		func() float64 { return float64(m.stateCount(StateRunning)) })
	reg.GaugeFunc("bd_cache_entries",
		"Entries currently held by the in-memory LRU tier.",
		func() float64 { return float64(m.cache.Entries()) })
	jobs := reg.GaugeFuncVec("bd_jobs",
		"Job records currently retained, by state.", "state")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		st := st
		jobs.Register(func() float64 { return float64(m.stateCount(st)) }, string(st))
	}
}

// stateCount scans the record map for jobs in state s — render-time
// only, the map is bounded by MaxJobs.
func (m *Manager) stateCount(s State) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == s {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// StatsSnapshot is the manager's one-line fleet summary, logged
// periodically by the daemons' stats ticker.
type StatsSnapshot struct {
	Queued, Running, Done, Failed, Canceled int
	QueueDepth                              int
	Cache                                   CacheStats
}

// Stats snapshots job counts by state, the queue depth and the cache
// counters.
func (m *Manager) Stats() StatsSnapshot {
	st := StatsSnapshot{QueueDepth: len(m.queue), Cache: m.cache.Stats()}
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	return st
}
