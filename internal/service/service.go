package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/benchio"
	"repro/internal/core"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | canceled. Jobs served
// from the result cache are born done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry in a job's progress stream. Seq is 1-based and
// strictly increasing; the stream replays from the start for late
// subscribers and ends with a terminal event (done/error/state=canceled).
type Event struct {
	Seq        int    `json:"seq"`
	Type       string `json:"type"` // "state" | "stage" | "progress" | "done" | "error"
	State      State  `json:"state,omitempty"`
	Stage      string `json:"stage,omitempty"`
	Done       int    `json:"done,omitempty"`
	Total      int    `json:"total,omitempty"`
	ResultHash string `json:"result_hash,omitempty"`
	Error      string `json:"error,omitempty"`
}

// JobStatus is the externally visible snapshot of a job. CacheHit on a
// Submit response means that submission was served from the result cache
// (or deduplicated against an already-completed identical job) without
// any computation.
type JobStatus struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	CacheHit   bool       `json:"cache_hit"`
	Stage      string     `json:"stage,omitempty"`
	CellsDone  int        `json:"cells_done"`
	CellsTotal int        `json:"cells_total"`
	ResultHash string     `json:"result_hash,omitempty"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Spec       JobSpec    `json:"spec"`
}

// job is the manager-internal job record.
type job struct {
	id   string
	spec JobSpec // normalized

	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	cacheHit   bool
	stage      string
	cellsDone  int
	cellsTotal int
	lastEmit   int // cells reported in the event stream so far
	resultHash string
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	events     []Event
	more       chan struct{} // closed and replaced on every append
	done       bool          // terminal event emitted
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, CacheHit: j.cacheHit,
		Stage: j.stage, CellsDone: j.cellsDone, CellsTotal: j.cellsTotal,
		ResultHash: j.resultHash, Error: j.errMsg,
		CreatedAt: j.created, Spec: j.spec,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// emit appends an event and wakes subscribers. Callers hold j.mu.
func (j *job) emitLocked(ev Event) {
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	close(j.more)
	j.more = make(chan struct{})
	if ev.Type == "done" || ev.Type == "error" ||
		(ev.Type == "state" && State(ev.State) == StateCanceled) {
		j.done = true
	}
}

func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

// EventsSince returns a copy of the event history from index from, a
// channel closed when more events arrive, and whether the stream has
// ended. Subscribers loop: drain, then wait on the channel.
func (j *job) EventsSince(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	evs := make([]Event, len(j.events)-from)
	copy(evs, j.events[from:])
	return evs, j.more, j.done
}

// Config configures a Manager.
type Config struct {
	// DataDir is the on-disk result store; empty disables the disk tier
	// (results then live only in the in-memory LRU).
	DataDir string
	// Workers bounds concurrently executing jobs (default 1; each job
	// internally parallelizes its measurement grid).
	Workers int
	// QueueDepth bounds jobs waiting for an executor (default 64).
	QueueDepth int
	// CacheEntries bounds the in-memory LRU result tier (default 256).
	CacheEntries int
	// Parallelism is forwarded to each job's characterization grid and
	// analysis stage (0 = GOMAXPROCS). It never affects results.
	Parallelism int
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// Manager owns the job queue, the executor pool and the result cache.
type Manager struct {
	cfg   Config
	cache *resultCache

	root context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	queue chan *job
}

// New starts a manager with cfg.Workers executor goroutines.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 256
	}
	cache, err := newResultCache(cfg.CacheEntries, cfg.DataDir)
	if err != nil {
		return nil, err
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		cache: cache,
		root:  root,
		stop:  stop,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close cancels all running jobs and stops the executor pool.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
}

func newJob(ctx context.Context, id string, spec JobSpec) *job {
	jctx, cancel := context.WithCancel(ctx)
	return &job{
		id: id, spec: spec, ctx: jctx, cancel: cancel,
		state: StateQueued, created: time.Now(),
		more: make(chan struct{}),
	}
}

// Submit enqueues a job (or replays it from the cache). Identical specs
// normalize to the same ID: a submission matching a queued or running job
// joins it, and one matching a completed job or cached result returns
// immediately with CacheHit set and the stored result.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return JobStatus{}, err
	}
	id, err := norm.id()
	if err != nil {
		return JobStatus{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	cacheMissed := false
	if j, ok := m.jobs[id]; ok {
		st := j.status()
		switch st.State {
		case StateDone:
			// Count the replay as a cache hit so stats reflect dedupe.
			if _, hash, ok := m.cache.Get(id); ok {
				st.ResultHash = hash
				st.CacheHit = true
				return st, nil
			}
			// The result was evicted from a memory-only cache: the job
			// record advertises a hash nobody can serve, so forget it and
			// fall through to re-execute (without re-probing the cache).
			cacheMissed = true
			delete(m.jobs, id)
			m.dropFromOrder(id)
		case StateQueued, StateRunning:
			return st, nil
		default:
			// failed / canceled: forget the old record and resubmit.
			delete(m.jobs, id)
			m.dropFromOrder(id)
		}
	}

	if !cacheMissed {
		if _, hash, ok := m.cache.Get(id); ok {
			j := newJob(m.root, id, norm)
			now := time.Now()
			j.state, j.cacheHit = StateDone, true
			j.started, j.finished = now, now
			j.resultHash = hash
			j.emit(Event{Type: "state", State: StateDone})
			j.emit(Event{Type: "done", ResultHash: hash})
			m.jobs[id] = j
			m.order = append(m.order, id)
			return j.status(), nil
		}
	}

	j := newJob(m.root, id, norm)
	// Record and emit "queued" before the channel send: a free worker can
	// pick the job up (and emit "running") the instant it lands in the
	// queue, and the stream must start with the queued event.
	m.jobs[id] = j
	m.order = append(m.order, id)
	j.emit(Event{Type: "state", State: StateQueued})
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, id)
		m.dropFromOrder(id)
		return JobStatus{}, ErrQueueFull
	}
	return j.status(), nil
}

func (m *Manager) dropFromOrder(id string) {
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobStatus, bool) {
	if j, ok := m.job(id); ok {
		return j.status(), true
	}
	return JobStatus{}, false
}

// Result returns the canonical result JSON of a completed job. Bytes are
// held once, in the result cache — job records only carry the hash — so
// long-lived daemons don't pin a second copy of every result. Unknown IDs
// still consult the cache: results persisted by an earlier process are
// servable before any submission.
func (m *Manager) Result(id string) ([]byte, bool) {
	if j, ok := m.job(id); ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != StateDone {
			// Not finished (or failed/canceled): no result exists, and
			// polling must not inflate the cache miss counters.
			return nil, false
		}
	}
	if data, _, ok := m.cache.Get(id); ok {
		return data, true
	}
	return nil, false
}

// Cancel cancels a queued or running job. It reports whether the job
// exists; cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	if j.state == StateQueued {
		// Not started yet: settle it immediately; the worker skips it.
		j.state = StateCanceled
		j.finished = time.Now()
		j.emitLocked(Event{Type: "state", State: StateCanceled})
	}
	j.mu.Unlock()
	j.cancel()
	return true
}

// List returns all job statuses in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.job(id); ok {
			out = append(out, j.status())
		}
	}
	return out
}

// CacheStats returns result-cache counters.
func (m *Manager) CacheStats() CacheStats { return m.cache.Stats() }

func (m *Manager) job(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// worker is one executor: it drains the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.root.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job end to end: resolve the suite, characterize
// with per-cell progress, analyze with stage progress, encode, cache.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return // canceled while queued
	}
	j.state = StateRunning
	j.started = time.Now()
	j.emitLocked(Event{Type: "state", State: StateRunning})
	j.mu.Unlock()

	hash, err := m.execute(j)
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	if err != nil {
		if errors.Is(err, context.Canceled) {
			j.state = StateCanceled
			j.emitLocked(Event{Type: "state", State: StateCanceled})
		} else {
			j.state = StateFailed
			j.errMsg = err.Error()
			j.emitLocked(Event{Type: "error", Error: err.Error()})
		}
		return
	}
	j.state = StateDone
	j.resultHash = hash
	j.emitLocked(Event{Type: "done", ResultHash: hash})
}

func (m *Manager) execute(j *job) (string, error) {
	suite, err := j.spec.ResolveSuite()
	if err != nil {
		return "", err
	}

	ccfg := j.spec.Cluster
	ccfg.Parallelism = m.cfg.Parallelism
	acfg := j.spec.Analysis
	acfg.Parallelism = m.cfg.Parallelism

	progress := func(stage core.Stage, done, total int) {
		j.mu.Lock()
		defer j.mu.Unlock()
		if string(stage) != j.stage {
			j.stage = string(stage)
			j.lastEmit = 0
			j.cellsDone, j.cellsTotal = 0, 0
			j.emitLocked(Event{Type: "stage", Stage: j.stage})
		}
		if total == 0 {
			return
		}
		// Grid workers report concurrently and can acquire j.mu out of
		// done order; drop stale counts so cellsDone stays monotone and
		// the done==total report is never overwritten.
		if done < j.cellsDone {
			return
		}
		j.cellsDone, j.cellsTotal = done, total
		// Throttle per-cell events to ~1 % steps (always reporting the
		// final cell) so huge grids don't flood the stream.
		step := total / 100
		if step < 1 {
			step = 1
		}
		if done == total || done-j.lastEmit >= step {
			j.lastEmit = done
			j.emitLocked(Event{
				Type: "progress", Stage: j.stage, Done: done, Total: total,
			})
		}
	}

	ds, err := core.CharacterizeSuiteCtx(j.ctx, suite, ccfg, progress)
	if err != nil {
		return "", err
	}
	an, err := core.AnalyzeCtx(j.ctx, ds, acfg, progress)
	if err != nil {
		return "", err
	}
	data, err := benchio.MarshalCanonical(benchio.EncodeAnalysis(an))
	if err != nil {
		return "", err
	}
	hash, err := m.cache.Put(j.id, data)
	if err != nil {
		return "", fmt.Errorf("service: caching result: %w", err)
	}
	return hash, nil
}
