package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/cellcache"
	"repro/internal/core"
	"repro/internal/obs"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | canceled. Jobs served
// from the result cache are born done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry in a job's progress stream. Seq is 1-based and
// strictly increasing; the stream replays from the start for late
// subscribers and ends with a terminal event (done/error/state=canceled).
type Event struct {
	Seq        int    `json:"seq"`
	JobID      string `json:"job_id,omitempty"`
	Type       string `json:"type"` // "state" | "stage" | "progress" | "done" | "error"
	State      State  `json:"state,omitempty"`
	Stage      string `json:"stage,omitempty"`
	Done       int    `json:"done,omitempty"`
	Total      int    `json:"total,omitempty"`
	ResultHash string `json:"result_hash,omitempty"`
	Error      string `json:"error,omitempty"`
}

// JobStatus is the externally visible snapshot of a job. CacheHit on a
// Submit response means that submission was served from the result cache
// (or deduplicated against an already-completed identical job) without
// any computation.
type JobStatus struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	CacheHit   bool       `json:"cache_hit"`
	Stage      string     `json:"stage,omitempty"`
	CellsDone  int        `json:"cells_done"`
	CellsTotal int        `json:"cells_total"`
	ResultHash string     `json:"result_hash,omitempty"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Spec       JobSpec    `json:"spec"`
}

// job is the manager-internal job record.
type job struct {
	id   string
	spec JobSpec // normalized

	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	cacheHit   bool
	stage      string
	cellsDone  int
	cellsTotal int
	lastEmit   int // cells reported in the event stream so far
	resultHash string
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	events     []Event
	more       chan struct{} // closed and replaced on every append
	done       bool          // terminal event emitted

	// Unit-level crash-recovery state, maintained through the job's
	// UnitProgress (see unitprogress.go) and seeded from the journal when
	// the job was re-adopted after a restart.
	planParts int
	unitsDone map[int]string // unit index → sub-result store key

	// Tracing identity, immutable once the job is visible: the trace ID
	// (the job ID, or one propagated from an upstream coordinator via
	// X-BD-Trace), the upstream parent span, and the pre-allocated ID of
	// this job's root span — children reference it before the root span
	// itself is sealed. rootSpan (under mu) is the live handle while the
	// job runs, so journal appends can annotate it.
	traceID    string
	parentSpan string
	rootSpanID string
	rootSpan   *obs.SpanHandle

	// userCancel marks an explicit Manager.Cancel, distinguishing it from
	// a shutdown cancelation (the root context closing). Only the former
	// journals a terminal cancel record; a shutdown-canceled job must stay
	// non-terminal in the journal so the next incarnation re-adopts it.
	userCancel bool
	// shutdownCanceled marks a job whose run was cut short by shutdown:
	// terminal in memory (subscribers see a canceled event) but treated as
	// live by journal compaction and eviction, so its submit record and
	// unit progress survive to the next incarnation.
	shutdownCanceled bool
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, CacheHit: j.cacheHit,
		Stage: j.stage, CellsDone: j.cellsDone, CellsTotal: j.cellsTotal,
		ResultHash: j.resultHash, Error: j.errMsg,
		CreatedAt: j.created, Spec: j.spec,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// emit appends an event and wakes subscribers. Callers hold j.mu.
func (j *job) emitLocked(ev Event) {
	ev.Seq = len(j.events) + 1
	ev.JobID = j.id
	j.events = append(j.events, ev)
	close(j.more)
	j.more = make(chan struct{})
	if ev.Type == "done" || ev.Type == "error" ||
		(ev.Type == "state" && State(ev.State) == StateCanceled) {
		j.done = true
	}
}

func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(ev)
}

// EventsSince returns a copy of the event history from index from, a
// channel closed when more events arrive, and whether the stream has
// ended. Subscribers loop: drain, then wait on the channel.
func (j *job) EventsSince(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	evs := make([]Event, len(j.events)-from)
	copy(evs, j.events[from:])
	return evs, j.more, j.done
}

// ExecuteFunc computes the canonical result bytes for a normalized spec,
// reporting progress through the job's event stream. The manager hashes
// and caches whatever it returns, so implementations must be
// deterministic: equal specs must yield identical bytes.
type ExecuteFunc func(ctx context.Context, spec JobSpec, progress core.Progress) ([]byte, error)

// Config configures a Manager.
type Config struct {
	// DataDir is the on-disk result store; empty disables the disk tier
	// (results then live only in the in-memory LRU).
	DataDir string
	// Workers bounds concurrently executing jobs (default 1; each job
	// internally parallelizes its measurement grid).
	Workers int
	// QueueDepth bounds jobs waiting for an executor (default 64).
	QueueDepth int
	// CacheEntries bounds the in-memory LRU result tier (default 256).
	CacheEntries int
	// MaxJobs bounds the in-memory job-record map (default 4096): beyond
	// it the oldest terminal (done/failed/canceled) records are evicted.
	// Live jobs are never evicted, and evicted done jobs remain servable
	// through the result cache.
	MaxJobs int
	// Parallelism is forwarded to each job's characterization grid and
	// analysis stage (0 = GOMAXPROCS). It never affects results.
	Parallelism int
	// JournalPath, when set, enables the persistent job journal: job
	// lifecycle records are appended as NDJSON and replayed on startup,
	// so terminal job metadata (including done-job → result-hash
	// mappings) survives restarts.
	JournalPath string
	// CellDelay, when positive, sleeps this long after every completed
	// characterization grid cell — an artificial throttle for
	// heterogeneous-fleet and fault testing (bdservd -throttle-cell).
	// Purely an execution knob: it slows the measurement loop without
	// touching any result byte.
	CellDelay time.Duration
	// CharacterizeOnly restricts the daemon to observation-matrix jobs
	// (Mode == ModeObservations) — the worker role in a sharded
	// deployment, where analysis runs coordinator-side.
	CharacterizeOnly bool
	// CellCacheDir, when set, enables the worker-local cell cache: a
	// content-addressed store of characterization-grid columns (one
	// workload on one absolute node, all runs — see internal/cellcache)
	// consulted inside the measurement grid, so overlapping suites
	// recompute only the columns they do not share. Purely an
	// accelerator: cached and recomputed results are byte-identical.
	// Empty disables it. Ignored when Execute is overridden (a
	// coordinator caches cells in its shard executor instead).
	CellCacheDir string
	// CellCacheEntries bounds the cell cache's on-disk entry count
	// (0 = cellcache.DefaultMaxEntries).
	CellCacheEntries int
	// CellCacheMaxAge, when positive, adds an age bound to the cell
	// cache: entries whose mtime is older are garbage-collected by the
	// eviction sweep (bdservd -cell-cache-max-age). 0 keeps entries until
	// the entry-count bound evicts them.
	CellCacheMaxAge time.Duration
	// TraceBuffer bounds each job's span ring in the tracing flight
	// recorder (-trace-buffer): 0 uses the default (2048 spans per job),
	// negative disables tracing entirely. Tracing is observational only —
	// result bytes are identical either way.
	TraceBuffer int
	// TraceService tags emitted spans with the owning process name
	// ("bdservd", "bdcoord"); default "service".
	TraceService string
	// Execute overrides the local pipeline executor — the hook through
	// which bdcoord turns a Manager into a shard coordinator while
	// reusing its queue, cache, journal and event plumbing. Nil runs
	// jobs in-process.
	Execute ExecuteFunc
	// Registry receives the manager's metrics (queue depth, jobs by
	// state, cache/journal counters, job and stage duration histograms)
	// and backs the handler's GET /metrics. Nil uses a private registry:
	// instruments still work, nothing renders them.
	Registry *obs.Registry
	// Sampler, when set, contributes its trailing time-series window to
	// GET /v1/status. The manager never starts or stops it — the owning
	// daemon drives the tick (see obs.Sampler.Start).
	Sampler *obs.Sampler
	// Logger receives structured job-lifecycle and journal log lines,
	// each tagged with the job ID. Nil discards them.
	Logger *slog.Logger
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by Submit once Drain has begun: the daemon is
// shutting down and admits no new work.
var ErrDraining = errors.New("service: draining for shutdown")

// Manager owns the job queue, the executor pool and the result cache.
type Manager struct {
	cfg    Config
	cache  *resultCache
	cells  *cellcache.Store // nil when the cell cache is disabled
	reg    *obs.Registry
	mx     *svcMetrics
	log    *slog.Logger
	tracer *obs.FlightRecorder // nil when tracing is disabled

	root      context.Context
	stop      context.CancelFunc
	wg        sync.WaitGroup
	startedAt time.Time

	draining atomic.Bool

	jmu     sync.Mutex // serializes journal appends
	journal *journal

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	queue chan *job
}

// New starts a manager with cfg.Workers executor goroutines, replaying
// the job journal (if configured) so terminal job records survive
// restarts. Non-terminal journaled jobs — ones a previous incarnation
// died holding — are re-adopted: re-queued with whatever unit-level
// progress was journaled, so sharded executors re-dispatch only the
// incomplete remainder.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = 4096
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	mx := newSvcMetrics(reg)
	cache, err := newResultCache(cfg.CacheEntries, cfg.DataDir, mx.cache)
	if err != nil {
		return nil, err
	}
	var cells *cellcache.Store
	if cfg.CellCacheDir != "" && cfg.Execute == nil {
		cells, err = cellcache.Open(cfg.CellCacheDir, cfg.CellCacheEntries, cfg.CellCacheMaxAge, cellcache.NewMetrics(reg))
		if err != nil {
			return nil, err
		}
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		cache:     cache,
		cells:     cells,
		reg:       reg,
		mx:        mx,
		log:       logger,
		root:      root,
		stop:      stop,
		startedAt: time.Now(),
		jobs:      make(map[string]*job),
		queue:     make(chan *job, cfg.QueueDepth),
	}
	mx.registerGauges(reg, m)
	if cfg.TraceBuffer >= 0 {
		buf := cfg.TraceBuffer
		if buf == 0 {
			buf = 2048
		}
		svc := cfg.TraceService
		if svc == "" {
			svc = "service"
		}
		m.tracer = obs.NewFlightRecorder(svc, cfg.MaxJobs, buf)
		// Every completed span is journaled, so the traces of re-adopted
		// jobs survive a coordinator crash along with their unit progress.
		m.tracer.Sink = func(jobID string, sp obs.Span) {
			m.journalAppendSync(journalRecord{TS: sp.End, Type: "span", ID: jobID, Span: &sp})
		}
	}
	if cfg.JournalPath != "" {
		jl, replayed, err := openJournal(cfg.JournalPath, cfg.MaxJobs, logger, mx.journal)
		if err != nil {
			stop()
			return nil, err
		}
		m.journal = jl
		for _, r := range replayed {
			if !r.state.terminal() {
				// The previous incarnation died while this job was queued
				// or running: re-adopt it. The job re-enters the queue as
				// freshly submitted, carrying the unit-level progress the
				// old incarnation journaled so a sharded executor can skip
				// the units already done.
				if len(m.queue) >= cap(m.queue) {
					m.log.Warn("journal re-adoption: queue full, dropping job (resubmit to re-run)", "job", r.id)
					continue
				}
				j := newJob(m.root, r.id, r.spec)
				j.created = r.created
				j.planParts, j.unitsDone = r.planParts, r.unitsDone
				m.initTrace(j, r.trace)
				m.tracer.Replay(r.id, r.spans)
				j.emit(Event{Type: "state", State: StateQueued})
				m.jobs[r.id] = j
				m.order = append(m.order, r.id)
				m.queue <- j
				m.log.Info("job re-adopted from journal", "job", r.id, "units_done", len(r.unitsDone), "plan_parts", r.planParts)
				continue
			}
			if r.state == StateDone && cfg.DataDir == "" {
				// Without a disk result tier the done job's bytes died
				// with the previous process: materializing the record
				// would advertise a hash nobody can serve. Drop it; a
				// resubmission simply re-executes.
				continue
			}
			j := newJob(m.root, r.id, r.spec)
			j.state = r.state
			j.created, j.started, j.finished = r.created, r.started, r.finished
			switch r.state {
			case StateDone:
				j.resultHash = r.hash
				j.emit(Event{Type: "state", State: StateDone})
				j.emit(Event{Type: "done", ResultHash: r.hash})
			case StateFailed:
				j.errMsg = r.errMsg
				j.emit(Event{Type: "error", Error: r.errMsg})
			case StateCanceled:
				j.emit(Event{Type: "state", State: StateCanceled})
			}
			// Terminal from birth: release the job's child context so the
			// record doesn't pin an entry in the root context's tree.
			j.cancel()
			m.jobs[r.id] = j
			m.order = append(m.order, r.id)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close cancels all running jobs, stops the executor pool and closes the
// journal. Jobs cut short here stay non-terminal in the journal (their
// cancel is a shutdown artifact, not a verdict) and are re-adopted by the
// next incarnation.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
	m.jmu.Lock()
	m.journal.Close()
	m.journal = nil
	m.jmu.Unlock()
}

// Drain begins a graceful shutdown: new submissions are refused with
// ErrDraining while queued and running jobs continue to completion. It
// returns true once no live jobs remain, or false when the timeout
// elapses first (timeout <= 0 checks exactly once). Call Close afterwards
// either way — jobs still live after a failed drain are cut short there
// and re-adopted on restart.
func (m *Manager) Drain(timeout time.Duration) bool {
	m.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		if !m.anyLive() {
			return true
		}
		if timeout <= 0 || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (m *Manager) anyLive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		live := !j.state.terminal()
		j.mu.Unlock()
		if live {
			return true
		}
	}
	return false
}

// JournalHealth reports whether the persistent journal (when configured)
// has hit a permanent write failure, and the first error if so. A
// degraded journal means restart replay can no longer be trusted to be
// complete; the daemon surfaces it as a degraded /healthz.
func (m *Manager) JournalHealth() (ok bool, detail string) {
	m.jmu.Lock()
	jl := m.journal
	m.jmu.Unlock()
	return jl.health()
}

// journalAppend enqueues one journal record (a no-op without a journal):
// a channel send to the journal's writer goroutine, so no disk I/O
// happens on the caller's lock path. jmu guards against a concurrent
// Close of the channel.
//
// Every call happens while holding m.mu (Submit appends inline; other
// paths use journalAppendSync). That invariant is what makes in-flight
// compaction sound: maybeCompactJournal snapshots job state and enqueues
// the compaction request under m.mu, so any record enqueued before the
// request reflects state the snapshot already saw, and any enqueued
// after survives the rewrite.
func (m *Manager) journalAppend(rec journalRecord) {
	// Annotate the job's open root span with the append — the tracing view
	// of journal activity. Span records themselves are excluded (every
	// span would otherwise annotate the root with its own persistence).
	if rec.Type != "span" && m.cfg.JournalPath != "" {
		if j := m.jobs[rec.ID]; j != nil {
			j.mu.Lock()
			h := j.rootSpan
			j.mu.Unlock()
			h.Annotate("journal-append", map[string]string{"type": rec.Type})
		}
	}
	m.jmu.Lock()
	defer m.jmu.Unlock()
	m.journal.append(rec)
}

// journalAppendSync is journalAppend behind m.mu, for callers (runJob,
// Cancel) that don't already hold it.
func (m *Manager) journalAppendSync(rec journalRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalAppend(rec)
}

func newJob(ctx context.Context, id string, spec JobSpec) *job {
	jctx, cancel := context.WithCancel(ctx)
	return &job{
		id: id, spec: spec, ctx: jctx, cancel: cancel,
		state: StateQueued, created: time.Now(),
		more: make(chan struct{}),
	}
}

// initTrace assigns a job's tracing identity: the trace ID and upstream
// parent span from the propagated X-BD-Trace value when one is present
// and valid, otherwise the job's own deterministic trace ID — plus a
// pre-allocated root span ID that children (and the propagation header)
// can reference before the root span itself is sealed. No-op when
// tracing is disabled.
func (m *Manager) initTrace(j *job, traceParent string) {
	if !m.tracer.Enabled() {
		return
	}
	j.traceID = obs.TraceID(j.id)
	if tid, parent, ok := obs.ParseTraceParent(traceParent); ok {
		j.traceID, j.parentSpan = tid, parent
	}
	j.rootSpanID = m.tracer.NewSpanID()
}

// Trace exports a job's trace from the flight recorder. ok is false for
// unknown jobs, evicted traces, or when tracing is disabled.
func (m *Manager) Trace(id string) (obs.TraceExport, bool) {
	return m.tracer.Export(id)
}

// Submit enqueues a job (or replays it from the cache). Identical specs
// normalize to the same ID: a submission matching a queued or running job
// joins it, and one matching a completed job or cached result returns
// immediately with CacheHit set and the stored result.
//
// The result-cache probe — which may read the disk tier — happens outside
// m.mu, so concurrent submissions of distinct jobs never serialize behind
// disk I/O; the record map is re-checked under the lock afterwards.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	return m.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with an upstream trace context — the raw
// X-BD-Trace header value ("" for none). When valid, the job's spans
// join the caller's trace (parented under the caller's span) instead of
// rooting a fresh one; anything malformed is ignored, never trusted.
func (m *Manager) SubmitTraced(spec JobSpec, traceParent string) (JobStatus, error) {
	if m.draining.Load() {
		m.mx.jobsRejected.With("draining").Inc()
		return JobStatus{}, ErrDraining
	}
	norm, err := spec.Normalized()
	if err != nil {
		m.mx.jobsRejected.With("invalid").Inc()
		return JobStatus{}, err
	}
	if m.cfg.CharacterizeOnly && norm.Mode != ModeObservations {
		m.mx.jobsRejected.With("invalid").Inc()
		return JobStatus{}, fmt.Errorf("service: this daemon is characterize-only (shard worker); it accepts only mode %q jobs", ModeObservations)
	}
	id, err := norm.id()
	if err != nil {
		m.mx.jobsRejected.With("invalid").Inc()
		return JobStatus{}, err
	}

	// The cache-probe span is built when the probe runs but recorded only
	// at an exit where the job's submit journal record already exists (or
	// is already queued ahead of it): recording during the probe would
	// journal the span line before the submit line, and replay drops
	// spans that precede their job. Recording also sinks to the journal
	// under m.mu, so it must happen after the unlock at each exit.
	var probeSpan *obs.Span
	recordProbe := func() {
		if probeSpan != nil {
			m.tracer.Record(id, *probeSpan)
			probeSpan = nil
		}
	}

	for attempt := 0; ; attempt++ {
		// Fast path, no disk I/O: a live record already covers this
		// submission.
		m.mu.Lock()
		if j, ok := m.jobs[id]; ok {
			if st := j.status(); st.State == StateQueued || st.State == StateRunning {
				m.mu.Unlock()
				m.mx.jobsSubmitted.With("deduped").Inc()
				m.log.Debug("job submission joined live job", "job", id, "state", st.State)
				return st, nil
			}
		}
		m.mu.Unlock()

		// Probe the cache (LRU, then disk tier) unlocked.
		probeStart := time.Now()
		_, hash, hit := m.cache.Get(id)
		if attempt == 0 && m.tracer.Enabled() {
			tid := obs.TraceID(id)
			parent := ""
			if t, p, ok := obs.ParseTraceParent(traceParent); ok {
				tid, parent = t, p
			}
			probeSpan = &obs.Span{
				TraceID: tid, Parent: parent, Name: "cache-probe",
				Start: probeStart, End: time.Now(),
				Attrs: map[string]string{"status": "ok", "hit": fmt.Sprintf("%t", hit)},
			}
		}

		m.mu.Lock()
		if j, ok := m.jobs[id]; ok {
			st := j.status()
			switch st.State {
			case StateQueued, StateRunning:
				// Raced with a concurrent identical submission.
				m.mu.Unlock()
				recordProbe()
				m.mx.jobsSubmitted.With("deduped").Inc()
				m.log.Debug("job submission joined live job", "job", id, "state", st.State)
				return st, nil
			case StateDone:
				if hit {
					// Count the replay as a cache hit so stats reflect
					// dedupe.
					st.ResultHash = hash
					st.CacheHit = true
					m.mu.Unlock()
					recordProbe()
					m.mx.jobsSubmitted.With("cache_hit").Inc()
					m.log.Debug("job submission replayed from cache", "job", id, "hash", hash)
					return st, nil
				}
				if attempt == 0 && st.FinishedAt != nil && st.FinishedAt.After(probeStart) {
					// The job finished — its result landing in the cache
					// — after our unlocked probe began: re-probe once.
					// A job that finished before the probe can't win that
					// race, so its miss is final and not re-counted.
					m.mu.Unlock()
					continue
				}
				// The result really was evicted from a memory-only
				// cache: the record advertises a hash nobody can serve,
				// so forget it and re-execute.
				j.cancel()
				delete(m.jobs, id)
				m.dropFromOrder(id)
				m.tracer.Remove(id)
			default:
				// failed / canceled: forget the old record and resubmit.
				j.cancel()
				delete(m.jobs, id)
				m.dropFromOrder(id)
				m.tracer.Remove(id)
			}
		}

		if hit {
			j := newJob(m.root, id, norm)
			now := time.Now()
			j.state, j.cacheHit = StateDone, true
			j.started, j.finished = now, now
			j.resultHash = hash
			j.emit(Event{Type: "state", State: StateDone})
			j.emit(Event{Type: "done", ResultHash: hash})
			j.cancel() // born terminal: release the child context
			m.jobs[id] = j
			m.order = append(m.order, id)
			m.evictLocked()
			m.journalAppend(journalRecord{TS: now, Type: "submit", ID: id, Spec: &norm})
			m.journalAppend(journalRecord{TS: now, Type: "done", ID: id, Hash: hash})
			st := j.status()
			m.mu.Unlock()
			recordProbe()
			m.mx.jobsSubmitted.With("cache_hit").Inc()
			m.log.Info("job submitted", "job", id, "state", StateDone, "cache_hit", true, "hash", hash)
			// Born-done jobs never pass through runJob, so this is their
			// only chance to trigger in-flight journal compaction — the
			// steady state of a cache-dominated daemon.
			m.maybeCompactJournal()
			return st, nil
		}

		// Capacity check before any record exists: Submit is the only
		// queue sender and it holds m.mu, so len < cap here guarantees
		// the send below cannot block — and a rejected submission leaves
		// no job record, no journal entry and no dangling child context.
		if len(m.queue) >= cap(m.queue) {
			m.mu.Unlock()
			m.mx.jobsRejected.With("queue_full").Inc()
			m.log.Warn("job submission rejected: queue full", "job", id, "queue_capacity", cap(m.queue))
			return JobStatus{}, ErrQueueFull
		}
		j := newJob(m.root, id, norm)
		m.initTrace(j, traceParent)
		// Record and emit "queued" before the channel send: a free worker
		// can pick the job up (and emit "running") the instant it lands
		// in the queue, and the stream must start with the queued event.
		// The submit journal record is written before the send too, so it
		// always precedes the job's start/terminal records in the file.
		m.jobs[id] = j
		m.order = append(m.order, id)
		m.evictLocked()
		j.emit(Event{Type: "state", State: StateQueued})
		trace := ""
		if j.parentSpan != "" {
			// Persist the propagated trace identity so a re-adopted job's
			// new spans still join the upstream trace after a crash.
			trace = obs.FormatTraceParent(j.traceID, j.parentSpan)
		}
		m.journalAppend(journalRecord{TS: j.created, Type: "submit", ID: id, Spec: &norm, Trace: trace})
		m.queue <- j
		st := j.status()
		m.mu.Unlock()
		recordProbe()
		m.mx.jobsSubmitted.With("queued").Inc()
		m.log.Info("job submitted", "job", id, "state", StateQueued, "mode", norm.Mode, "workloads", len(norm.Workloads))
		return st, nil
	}
}

// evictLocked bounds the job-record map at cfg.MaxJobs by dropping the
// oldest terminal records. Live (queued/running) jobs are never evicted —
// the map can transiently exceed the bound while that many jobs are in
// flight. An evicted done job stays servable: its result lives in the
// result cache, which Result consults for unknown IDs, and an identical
// resubmission replays from the cache as a fresh born-done record.
func (m *Manager) evictLocked() {
	for len(m.jobs) > m.cfg.MaxJobs {
		evicted := false
		for _, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			// shutdownCanceled jobs are terminal in memory but must keep
			// their record until the journal is done with them.
			terminal := j.state.terminal() && !j.shutdownCanceled
			j.mu.Unlock()
			if terminal {
				j.cancel() // idempotent; ensures no child-context leak
				delete(m.jobs, id)
				m.dropFromOrder(id)
				// The flight recorder's trace rides along with the record.
				m.tracer.Remove(id)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// evict is evictLocked behind m.mu, for post-completion trimming.
func (m *Manager) evict() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
}

func (m *Manager) dropFromOrder(id string) {
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// Get returns a job's status.
func (m *Manager) Get(id string) (JobStatus, bool) {
	if j, ok := m.job(id); ok {
		return j.status(), true
	}
	return JobStatus{}, false
}

// Result returns the canonical result JSON of a completed job. Bytes are
// held once, in the result cache — job records only carry the hash — so
// long-lived daemons don't pin a second copy of every result. Unknown IDs
// still consult the cache: results persisted by an earlier process are
// servable before any submission.
func (m *Manager) Result(id string) ([]byte, bool) {
	if j, ok := m.job(id); ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != StateDone {
			// Not finished (or failed/canceled): no result exists, and
			// polling must not inflate the cache miss counters.
			return nil, false
		}
	}
	if data, _, ok := m.cache.Get(id); ok {
		return data, true
	}
	return nil, false
}

// Cancel cancels a queued or running job. It reports whether the job
// exists; cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	j.userCancel = true
	settled := false
	if j.state == StateQueued {
		// Not started yet: settle it immediately; the worker skips it.
		j.state = StateCanceled
		j.finished = time.Now()
		j.emitLocked(Event{Type: "state", State: StateCanceled})
		settled = true
	}
	j.mu.Unlock()
	if settled {
		m.mx.jobsCompleted.With(string(StateCanceled)).Inc()
		m.log.Info("job canceled while queued", "job", id)
		m.journalAppendSync(journalRecord{TS: time.Now(), Type: "cancel", ID: j.id})
		m.maybeCompactJournal()
	} else {
		m.log.Info("job cancel requested", "job", id)
	}
	j.cancel()
	return true
}

// List returns all job statuses in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.job(id); ok {
			out = append(out, j.status())
		}
	}
	return out
}

// CacheStats returns result-cache counters.
func (m *Manager) CacheStats() CacheStats { return m.cache.Stats() }

func (m *Manager) job(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// worker is one executor: it drains the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.root.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job end to end: resolve the suite, characterize
// with per-cell progress, analyze with stage progress, encode, cache.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return // canceled while queued
	}
	j.state = StateRunning
	j.started = time.Now()
	j.emitLocked(Event{Type: "state", State: StateRunning})
	created, started := j.created, j.started
	j.mu.Unlock()
	// Open the job's root span under its pre-allocated ID and backfill the
	// time spent queued as a queue-wait child. Both no-op when disabled.
	rootSpan := m.tracer.StartSpanID(j.id, j.traceID, j.parentSpan, "job", j.rootSpanID)
	rootSpan.SetAttr("job", j.id)
	if rootSpan != nil {
		m.tracer.Record(j.id, obs.Span{
			TraceID: j.traceID, Parent: j.rootSpanID, Name: "queue-wait",
			Start: created, End: started,
			Attrs: map[string]string{"status": "ok"},
		})
	}
	j.mu.Lock()
	j.rootSpan = rootSpan
	j.mu.Unlock()
	m.log.Info("job started", "job", j.id)
	m.journalAppendSync(journalRecord{TS: started, Type: "start", ID: j.id})

	hash, err := m.execute(j)
	now := time.Now()
	elapsed := now.Sub(started)
	var rec journalRecord
	skipJournal := false
	j.mu.Lock()
	j.finished = now
	switch {
	case err == nil:
		j.state = StateDone
		j.resultHash = hash
		j.emitLocked(Event{Type: "done", ResultHash: hash})
		rec = journalRecord{TS: now, Type: "done", ID: j.id, Hash: hash}
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.emitLocked(Event{Type: "state", State: StateCanceled})
		if m.root.Err() != nil && !j.userCancel {
			// Shutdown cut the run short — nobody canceled the *job*. No
			// terminal record: the journal keeps the submit (and any unit
			// progress), so the next incarnation re-adopts and finishes it.
			j.shutdownCanceled = true
			skipJournal = true
		} else {
			rec = journalRecord{TS: now, Type: "cancel", ID: j.id}
		}
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.emitLocked(Event{Type: "error", Error: err.Error()})
		rec = journalRecord{TS: now, Type: "fail", ID: j.id, Err: err.Error()}
	}
	state := j.state
	j.rootSpan = nil // no further annotations after the terminal record
	j.mu.Unlock()
	m.mx.jobsCompleted.With(string(state)).Inc()
	m.mx.jobDuration.With(string(state)).Observe(elapsed.Seconds())
	rootSpan.SetAttr("state", string(state))
	if state == StateFailed {
		rootSpan.EndErr(err)
	} else {
		rootSpan.End()
	}
	switch state {
	case StateDone:
		m.log.Info("job done", "job", j.id, "duration", elapsed, "hash", hash)
	case StateCanceled:
		m.log.Info("job canceled", "job", j.id, "duration", elapsed, "shutdown", skipJournal)
	default:
		m.log.Warn("job failed", "job", j.id, "duration", elapsed, "error", err)
	}
	// Terminal: release the job's child context — nothing runs under it
	// anymore, and an un-canceled child would stay registered in the root
	// context's tree for the daemon's lifetime.
	j.cancel()
	if skipJournal {
		return
	}
	m.journalAppendSync(rec)
	// The finished job may push the record map past its bound.
	m.evict()
	m.maybeCompactJournal()
}

// maybeCompactJournal re-compacts the journal in flight once appends
// since the last compaction exceed a few multiples of the retained-job
// bound, so a long-running daemon's journal file stays proportional to
// -max-jobs instead of growing for the process lifetime. The snapshot is
// taken here (the writer goroutine has no access to manager state); the
// rewrite itself happens on the writer goroutine, in order with the
// appends already queued ahead of it. The snapshot covers *all* current
// records — live jobs keep their submit/start lines so the terminal
// record they append later still binds on replay. Every journal append
// in the manager happens under m.mu (see journalAppend), and the
// snapshot + compaction request are taken while holding m.mu, so no
// record of any kind can slip between the snapshot and the request and
// be erased by the rewrite.
func (m *Manager) maybeCompactJournal() {
	m.jmu.Lock()
	jl := m.journal
	m.jmu.Unlock()
	if jl == nil {
		return
	}
	threshold := int64(4*m.cfg.MaxJobs + 64)
	if jl.appends.Load() < threshold || !jl.compacting.CompareAndSwap(false, true) {
		return
	}

	m.mu.Lock()
	snapshot := make([]replayedJob, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		state := j.state
		if j.shutdownCanceled {
			// Canceled by shutdown, not by anyone's verdict: compaction
			// must keep the job non-terminal so the next incarnation
			// re-adopts it.
			state = ""
		}
		var unitsDone map[int]string
		if len(j.unitsDone) > 0 {
			unitsDone = make(map[int]string, len(j.unitsDone))
			for u, k := range j.unitsDone {
				unitsDone[u] = k
			}
		}
		trace := ""
		if j.parentSpan != "" {
			trace = obs.FormatTraceParent(j.traceID, j.parentSpan)
		}
		var spans []obs.Span
		if !state.terminal() && m.tracer.Enabled() {
			// In-flight jobs keep their spans across the rewrite — the
			// trace must survive compaction the same way unit progress
			// does. Terminal jobs' spans are dropped with the rest of
			// their non-essential history.
			if exp, ok := m.tracer.Export(j.id); ok {
				spans = exp.Spans
			}
		}
		snapshot = append(snapshot, replayedJob{
			id: j.id, spec: j.spec, state: state,
			hash: j.resultHash, errMsg: j.errMsg,
			created: j.created, started: j.started, finished: j.finished,
			planParts: j.planParts, unitsDone: unitsDone,
			trace: trace, spans: spans,
		})
		j.mu.Unlock()
	}
	m.jmu.Lock()
	m.journal.requestCompact(snapshot)
	m.jmu.Unlock()
	m.mu.Unlock()
}

// execute computes a job's result bytes — through the configured Execute
// hook or the local pipeline — and stores them in the result cache.
func (m *Manager) execute(j *job) (string, error) {
	progress := func(stage core.Stage, done, total int) {
		if m.cfg.CellDelay > 0 && stage == core.StageCharacterize && total > 0 {
			// The grid workers report each cell from their own goroutine,
			// so sleeping here throttles the measurement loop itself.
			// Deliberately before j.mu: a throttle must not block status
			// reads.
			time.Sleep(m.cfg.CellDelay)
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		if string(stage) != j.stage {
			j.stage = string(stage)
			j.lastEmit = 0
			j.cellsDone, j.cellsTotal = 0, 0
			j.emitLocked(Event{Type: "stage", Stage: j.stage})
		}
		if total == 0 {
			return
		}
		// Grid workers report concurrently and can acquire j.mu out of
		// done order; drop stale counts so cellsDone stays monotone and
		// the done==total report is never overwritten.
		if done < j.cellsDone {
			return
		}
		j.cellsDone, j.cellsTotal = done, total
		// Throttle per-cell events to ~1 % steps (always reporting the
		// final cell) so huge grids don't flood the stream.
		step := total / 100
		if step < 1 {
			step = 1
		}
		if done == total || done-j.lastEmit >= step {
			j.lastEmit = done
			j.emitLocked(Event{
				Type: "progress", Stage: j.stage, Done: done, Total: total,
			})
		}
	}

	exec := m.cfg.Execute
	if exec == nil {
		exec = m.executeLocal
	}
	// The timer wraps the progress chain: stage transitions flow through
	// it for both the local pipeline and sharded executors, feeding the
	// per-stage duration histogram.
	timer := core.NewStageTimer(progress, func(stage core.Stage, seconds float64) {
		m.mx.stageDuration.With(string(stage)).Observe(seconds)
	})
	// Sharded executors pick the unit-level crash-recovery capability off
	// the context (see unitprogress.go); the local pipeline ignores it.
	ctx := context.WithValue(j.ctx, unitProgressKey{}, &jobUnitProgress{m: m, j: j})
	// Tracing capability: stage transitions become spans under the job's
	// root span, and sharded executors pick the context off ctx to emit
	// plan/unit/merge spans into the same trace.
	if m.tracer.Enabled() {
		tc := &obs.TraceContext{Rec: m.tracer, JobID: j.id, TraceID: j.traceID, Root: j.rootSpanID}
		timer.OnSpan(func(stage core.Stage, start, end time.Time) {
			tc.RecordInterval("", string(stage), start, end,
				map[string]string{"kind": "stage", "status": "ok"})
		})
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	data, err := exec(ctx, j.spec, timer.Progress)
	timer.Finish()
	if err != nil {
		return "", err
	}
	hash, err := m.cache.Put(j.id, data)
	if err != nil {
		return "", fmt.Errorf("service: caching result: %w", err)
	}
	return hash, nil
}

// countingCellCache wraps the manager's cell store for one job run,
// counting this job's probe outcomes so the cellcache-probe span can
// carry them as attributes (the store's own counters are daemon-global).
type countingCellCache struct {
	cc           cluster.CellCache
	hits, misses atomic.Int64
}

func (c *countingCellCache) GetCell(workload, key string, runs, metrics int) ([][]float64, bool) {
	vecs, ok := c.cc.GetCell(workload, key, runs, metrics)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return vecs, ok
}

func (c *countingCellCache) PutCell(workload, key string, vecs [][]float64) {
	c.cc.PutCell(workload, key, vecs)
}

// executeLocal runs a job's pipeline in-process: the full characterize +
// analyze pipeline for analyze jobs, or just the measurement grid —
// returning the raw observation matrix — for characterize-only jobs.
// With a cell cache configured, the grid probes it column by column
// (through the context hook, see cluster.ContextWithCellCache); the
// probe outcome is summarized in a cellcache-probe span under the job's
// root.
func (m *Manager) executeLocal(ctx context.Context, spec JobSpec, progress core.Progress) ([]byte, error) {
	suite, err := spec.ResolveSuite()
	if err != nil {
		return nil, err
	}
	ccfg := spec.Cluster
	ccfg.Parallelism = m.cfg.Parallelism

	if m.cells != nil {
		probe := &countingCellCache{cc: m.cells}
		ctx = cluster.ContextWithCellCache(ctx, probe)
		if tc := obs.TraceFromContext(ctx); tc != nil {
			// The probes interleave with the grid's startup, so the span
			// summarizing them is recorded once the job's grid work is
			// over, as an instant carrying this job's hit/miss counts.
			defer func() {
				tc.Instant("cellcache-probe", map[string]string{
					"hits":   strconv.FormatInt(probe.hits.Load(), 10),
					"misses": strconv.FormatInt(probe.misses.Load(), 10),
				})
			}()
		}
	}

	if spec.Mode == ModeObservations {
		om, err := core.CharacterizeObservationsCtx(ctx, suite, ccfg, progress)
		if err != nil {
			return nil, err
		}
		return benchio.MarshalCanonical(benchio.EncodeObservations(om))
	}

	acfg := spec.Analysis
	acfg.Parallelism = m.cfg.Parallelism
	ds, err := core.CharacterizeSuiteCtx(ctx, suite, ccfg, progress)
	if err != nil {
		return nil, err
	}
	an, err := core.AnalyzeCtx(ctx, ds, acfg, progress)
	if err != nil {
		return nil, err
	}
	return benchio.MarshalCanonical(benchio.EncodeAnalysis(an))
}
