package service

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/cluster/kmeans"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim/machine"
)

// tinySpec is a fast 2-workload job on a shrunken 2-core node.
func tinySpec() JobSpec {
	m := machine.Westmere()
	m.Sockets, m.CoresPerSocket = 1, 2
	m.L1I.SizeB = 1 << 10
	m.L1D.SizeB = 1 << 10
	m.L2.SizeB = 4 << 10
	m.L3.SizeB = 32 << 10
	return JobSpec{
		Workloads: []string{"H-Sort", "S-Sort"},
		Suite:     workloads.Config{Seed: 11, Scale: 1 << 16},
		Cluster: cluster.Config{
			Machine:             m,
			SlaveNodes:          2,
			InstructionsPerCore: 1500,
			Slices:              8,
			Monitor:             perf.DefaultMonitor(),
			Runs:                1,
			Seed:                11,
			ExecutionJitter:     0.05,
		},
		Analysis: core.AnalysisConfig{
			KMin: 2, KMax: 2,
			KMeans: kmeans.Config{Restarts: 2, Seed: 7},
		},
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s not terminal after %v (state %s, cells %d/%d)",
		id, timeout, st.State, st.CellsDone, st.CellsTotal)
	return JobStatus{}
}

func TestJobIDDeterministicAndContentAddressed(t *testing.T) {
	a, err := tinySpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinySpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same spec hashed to %s and %s", a, b)
	}

	// Parallelism is an execution detail: it must not change the key.
	par := tinySpec()
	par.Cluster.Parallelism = 7
	par.Analysis.Parallelism = 3
	if id, _ := par.ID(); id != a {
		t.Errorf("parallelism changed job ID: %s vs %s", id, a)
	}

	// A partial monitor config (Counters defaulted, Multiplex off) is a
	// different measurement and must neither collide with the default-
	// monitor job nor lose the caller's Multiplex setting.
	mono := tinySpec()
	mono.Cluster.Monitor.Counters = 0
	mono.Cluster.Monitor.Multiplex = false
	norm, err := mono.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Cluster.Monitor.Multiplex {
		t.Error("normalization overwrote Multiplex=false")
	}
	if norm.Cluster.Monitor.Counters == 0 {
		t.Error("normalization left Counters at 0")
	}
	if id, _ := mono.ID(); id == a {
		t.Error("multiplex-off spec collided with the multiplex-on job ID")
	}

	// Any content change must change the key.
	for name, mutate := range map[string]func(*JobSpec){
		"seed":         func(s *JobSpec) { s.Cluster.Seed++ },
		"workloads":    func(s *JobSpec) { s.Workloads = []string{"S-Sort", "H-Sort"} },
		"instructions": func(s *JobSpec) { s.Cluster.InstructionsPerCore += 500 },
		"kmax":         func(s *JobSpec) { s.Analysis.KMin, s.Analysis.KMax = 2, 3 },
	} {
		s := tinySpec()
		mutate(&s)
		if id, err := s.ID(); err != nil {
			t.Errorf("%s: %v", name, err)
		} else if id == a {
			t.Errorf("mutating %s did not change the job ID", name)
		}
	}
}

func TestModeNormalization(t *testing.T) {
	analyzeID, err := tinySpec().ID()
	if err != nil {
		t.Fatal(err)
	}

	// "analyze" is an alias of the canonical empty mode.
	alias := tinySpec()
	alias.Mode = "Analyze"
	if id, err := alias.ID(); err != nil || id != analyzeID {
		t.Errorf("mode 'Analyze' ID = %s (err %v), want %s", id, err, analyzeID)
	}

	// Observations mode is a distinct job…
	obs := tinySpec()
	obs.Mode = "observations"
	obsID, err := obs.ID()
	if err != nil {
		t.Fatal(err)
	}
	if obsID == analyzeID {
		t.Error("observations job collided with the analyze job ID")
	}
	// …whose identity ignores analysis settings (they are zeroed), so
	// shards of analyze jobs differing only in analysis config share
	// worker-side cache entries.
	obs2 := tinySpec()
	obs2.Mode = "characterize" // alias
	obs2.Analysis.KMax = 7
	if id, err := obs2.ID(); err != nil || id != obsID {
		t.Errorf("observations ID depends on analysis config: %s vs %s (err %v)", id, obsID, err)
	}

	bogus := tinySpec()
	bogus.Mode = "frobnicate"
	if _, err := bogus.Normalized(); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	unknown := tinySpec()
	unknown.Workloads = []string{"H-Sort", "H-Nope"}
	_, err := unknown.Normalized()
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "H-Nope") || !strings.Contains(err.Error(), "H-Grep") {
		t.Errorf("unknown-workload error should name the offender and list valid names: %v", err)
	}

	dup := tinySpec()
	dup.Workloads = []string{"H-Sort", "H-Sort"}
	if _, err := dup.Normalized(); err == nil {
		t.Error("duplicate workload accepted")
	}

	badK := tinySpec()
	badK.Analysis.KMin, badK.Analysis.KMax = 5, 3
	if _, err := badK.Normalized(); err == nil {
		t.Error("inverted K range accepted")
	}
}

// TestSubmitComputesThenHitsCache is the acceptance-criteria test:
// submitting the identical spec twice yields a cache hit whose result is
// byte-identical, and an independent manager computing from scratch
// produces the same bytes (PR 1 determinism carried through the service).
func TestSubmitComputesThenHitsCache(t *testing.T) {
	m := newTestManager(t, Config{Parallelism: 2})

	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	fin := waitTerminal(t, m, st.ID, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	if fin.ResultHash == "" {
		t.Fatal("done job has no result hash")
	}
	res1, ok := m.Result(st.ID)
	if !ok {
		t.Fatal("no result bytes for done job")
	}

	st2, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Error("second identical submission was not a cache hit")
	}
	if st2.ID != st.ID {
		t.Errorf("identical specs got different IDs: %s vs %s", st.ID, st2.ID)
	}
	if st2.ResultHash != fin.ResultHash {
		t.Errorf("cache hit hash %s != computed hash %s", st2.ResultHash, fin.ResultHash)
	}
	res2, _ := m.Result(st.ID)
	if !bytes.Equal(res1, res2) {
		t.Error("cached result bytes differ from computed result bytes")
	}

	// Independent manager, independent computation → identical bytes.
	m2 := newTestManager(t, Config{Parallelism: 1})
	st3, err := m2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin3 := waitTerminal(t, m2, st3.ID, 60*time.Second)
	if fin3.State != StateDone {
		t.Fatalf("second manager: job finished %s: %s", fin3.State, fin3.Error)
	}
	res3, _ := m2.Result(st3.ID)
	if !bytes.Equal(res1, res3) {
		t.Error("independent recomputation produced different result bytes")
	}
	if fin3.ResultHash != fin.ResultHash {
		t.Errorf("independent recomputation hash %s != %s", fin3.ResultHash, fin.ResultHash)
	}

	stats := m.CacheStats()
	if stats.Hits == 0 {
		t.Error("cache reported zero hits after a replayed submission")
	}
	if stats.Stores == 0 {
		t.Error("cache reported zero stores after a computed job")
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	m1 := newTestManager(t, Config{DataDir: dir, Parallelism: 2})
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m1, st.ID, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	res1, _ := m1.Result(st.ID)
	m1.Close()

	// Fresh manager, same data dir: the submission must be served from
	// the disk tier without any computation.
	m2 := newTestManager(t, Config{DataDir: dir})
	start := time.Now()
	st2, err := m2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("restart submission: cacheHit=%v state=%s", st2.CacheHit, st2.State)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("disk-cache replay took %v, expected near-instant", elapsed)
	}
	if st2.ResultHash != fin.ResultHash {
		t.Errorf("disk replay hash %s != original %s", st2.ResultHash, fin.ResultHash)
	}
	res2, ok := m2.Result(st2.ID)
	if !ok || !bytes.Equal(res1, res2) {
		t.Error("disk replay bytes differ from original result")
	}
	if stats := m2.CacheStats(); stats.DiskHits == 0 {
		t.Error("disk tier reported zero hits after restart replay")
	}
}

// TestCancelStopsGridWorkersPromptly submits a job whose grid is far too
// large to finish quickly, cancels it after the first completed cells,
// and requires the executor to settle into the canceled state promptly —
// i.e. the grid workers stopped instead of draining the whole grid.
func TestCancelStopsGridWorkersPromptly(t *testing.T) {
	spec := tinySpec()
	spec.Workloads = []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}
	spec.Cluster.Runs = 8
	spec.Cluster.SlaveNodes = 4
	spec.Cluster.InstructionsPerCore = 300000 // 128 cells × 600k instr ≫ cancel window

	m := newTestManager(t, Config{Parallelism: 2})
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the grid is demonstrably in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := m.Get(st.ID)
		if cur.CellsDone >= 2 {
			break
		}
		if cur.State.terminal() {
			t.Fatalf("job finished (%s) before it could be canceled — grid too small", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no grid progress after 30s (state %s)", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	canceledAt := time.Now()
	if !m.Cancel(st.ID) {
		t.Fatal("Cancel returned false for a live job")
	}
	fin := waitTerminal(t, m, st.ID, 10*time.Second)
	if fin.State != StateCanceled {
		t.Fatalf("state after cancel = %s (err %q), want %s", fin.State, fin.Error, StateCanceled)
	}
	if settle := time.Since(canceledAt); settle > 5*time.Second {
		t.Errorf("cancellation took %v to settle; grid workers did not stop promptly", settle)
	}
	if fin.CellsDone >= fin.CellsTotal {
		t.Errorf("all %d cells ran despite cancellation", fin.CellsTotal)
	}
	if _, ok := m.Result(st.ID); ok {
		t.Error("canceled job has a result")
	}

	// A canceled job may be resubmitted and runs afresh.
	st2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHit || st2.State.terminal() {
		t.Errorf("resubmission after cancel: cacheHit=%v state=%s", st2.CacheHit, st2.State)
	}
	m.Cancel(st2.ID)
}

func TestCancelQueuedJobBeforeExecution(t *testing.T) {
	// One worker, occupied by a long job: the second job waits in the
	// queue and must cancel instantly without ever running.
	long := tinySpec()
	long.Cluster.Runs = 8
	long.Cluster.InstructionsPerCore = 300000

	m := newTestManager(t, Config{Workers: 1, Parallelism: 1})
	st1, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}

	queued, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != StateQueued {
		t.Fatalf("second job state %s, want queued", queued.State)
	}
	if !m.Cancel(queued.ID) {
		t.Fatal("Cancel returned false")
	}
	cur, _ := m.Get(queued.ID)
	if cur.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %s", cur.State)
	}
	if cur.StartedAt != nil {
		t.Error("canceled queued job reports a start time")
	}
	m.Cancel(st1.ID)
}

func TestEventStreamReplaysWithTerminal(t *testing.T) {
	m := newTestManager(t, Config{Parallelism: 2})
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, 60*time.Second)

	j, ok := m.job(st.ID)
	if !ok {
		t.Fatal("job missing")
	}
	evs, _, done := j.EventsSince(0)
	if !done {
		t.Fatal("stream not marked done after terminal state")
	}
	if len(evs) < 3 {
		t.Fatalf("expected ≥3 events (queued, running, …, done), got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if first := evs[0]; first.Type != "state" || first.State != StateQueued {
		t.Errorf("stream starts with %+v, want the queued state event", first)
	}
	var sawRunning, sawStage, sawProgress bool
	for _, ev := range evs {
		switch ev.Type {
		case "state":
			if ev.State == StateRunning {
				sawRunning = true
			}
		case "stage":
			sawStage = true
		case "progress":
			sawProgress = true
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "done" || last.ResultHash == "" {
		t.Errorf("last event = %+v, want done with result hash", last)
	}
	if !sawRunning || !sawStage || !sawProgress {
		t.Errorf("stream missing event kinds: running=%v stage=%v progress=%v",
			sawRunning, sawStage, sawProgress)
	}
}

func TestQueueFull(t *testing.T) {
	long := tinySpec()
	long.Cluster.Runs = 8
	long.Cluster.InstructionsPerCore = 300000

	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1, Parallelism: 1})
	first, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pop the first job so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := m.Get(first.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started (state %s)", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	// Occupy the single queue slot with a distinct spec.
	second := long
	second.Cluster.Seed++
	if _, err := m.Submit(second); err != nil {
		t.Fatal(err)
	}
	third := long
	third.Cluster.Seed += 2
	if _, err := m.Submit(third); err != ErrQueueFull {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
}
