// Package client is the Go client for the bdservd/bdcoord HTTP API: job
// submission, status polling, NDJSON event streaming and result fetch.
// It is shared by the bdcoord coordinator (which drives bdservd workers
// through it), the bdservd-backed report mode, and examples/service.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// Client talks to one daemon. The zero HTTPClient uses a default with no
// overall request timeout — event streams are long-lived — but sane
// transport-level limits come from http.DefaultTransport.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8356".
	BaseURL string
	// HTTPClient overrides the transport (nil = a shared default).
	HTTPClient *http.Client
}

// New returns a client for the daemon at base (trailing slash trimmed).
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the daemon's {"error": ...} body.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks the daemon's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	var st struct {
		Status string `json:"status"`
	}
	if err := c.getJSON(ctx, "/healthz", &st); err != nil {
		return fmt.Errorf("client: %s unhealthy: %w", c.BaseURL, err)
	}
	return nil
}

// Status fetches the daemon's GET /v1/status operational snapshot. A
// coordinator's response carries a fleet view beyond this base snapshot;
// callers that need it (bdtop) decode the raw payload themselves.
func (c *Client) Status(ctx context.Context) (service.StatusSnapshot, error) {
	var st service.StatusSnapshot
	if err := c.getJSON(ctx, "/v1/status", &st); err != nil {
		return service.StatusSnapshot{}, fmt.Errorf("client: status %s: %w", c.BaseURL, err)
	}
	return st, nil
}

// Submit posts a JobRequest and returns the accepted job status.
func (c *Client) Submit(ctx context.Context, jr service.JobRequest) (service.JobStatus, error) {
	return c.SubmitTraced(ctx, jr, "")
}

// SubmitTraced is Submit carrying trace context: traceParent (a
// formatted obs.FormatTraceParent value, "" for none) is sent as the
// X-BD-Trace header, so the daemon's spans for this job join the
// caller's trace — the coordinator→worker propagation hop.
func (c *Client) SubmitTraced(ctx context.Context, jr service.JobRequest, traceParent string) (service.JobStatus, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return service.JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceParent != "" {
		req.Header.Set(obs.TraceHeader, traceParent)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, fmt.Errorf("client: submit: %w", apiError(resp))
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

// SubmitSpec posts a full JobSpec (the {"spec": …} request form).
func (c *Client) SubmitSpec(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	return c.Submit(ctx, service.JobRequest{Spec: &spec})
}

// SubmitSpecTraced is SubmitSpec with propagated trace context.
func (c *Client) SubmitSpecTraced(ctx context.Context, spec service.JobSpec, traceParent string) (service.JobStatus, error) {
	return c.SubmitTraced(ctx, service.JobRequest{Spec: &spec}, traceParent)
}

// Trace fetches a job's trace export (the canonical JSON form of
// GET /v1/jobs/{id}/trace) — how a coordinator imports a worker's spans
// into its own trace after a unit completes.
func (c *Client) Trace(ctx context.Context, id string) (obs.TraceExport, error) {
	var export obs.TraceExport
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/trace", &export); err != nil {
		return obs.TraceExport{}, fmt.Errorf("client: trace %s: %w", id, err)
	}
	return export, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return service.JobStatus{}, fmt.Errorf("client: job %s: %w", id, err)
	}
	return st, nil
}

// Result fetches a completed job's canonical result bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: result %s: %w", id, apiError(resp))
	}
	return io.ReadAll(resp.Body)
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: cancel %s: %w", id, apiError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// WorkerRegistration is the body of a coordinator's POST /v1/workers: a
// worker announcing (or heartbeat-renewing) its fleet membership.
type WorkerRegistration struct {
	// URL is the worker's own base URL, as the coordinator should dial it.
	URL string `json:"url"`
	// TTLSeconds is the requested lease length; 0 takes the coordinator's
	// default. The worker must re-register within the TTL or be swept
	// from the fleet.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// RegisterWorker registers workerURL with the coordinator at c.BaseURL
// under a heartbeat lease (ttlSeconds 0 = coordinator default). Calling
// it again before the lease expires renews it — this is the heartbeat.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string, ttlSeconds float64) error {
	body, err := json.Marshal(WorkerRegistration{URL: workerURL, TTLSeconds: ttlSeconds})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: register worker: %w", apiError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// DeregisterWorker releases workerURL's lease on the coordinator at
// c.BaseURL — the orderly-leave half of registration, called by a worker
// shutting down.
func (c *Client) DeregisterWorker(ctx context.Context, workerURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/workers?url="+url.QueryEscape(workerURL), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: deregister worker: %w", apiError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Events streams a job's NDJSON progress events, invoking fn for each.
// The stream replays from the first event and ends at the job's terminal
// event; fn returning an error stops the stream and returns that error.
// A connection drop before a terminal event is an error — callers
// (notably the shard coordinator) treat it as worker failure.
func (c *Client) Events(ctx context.Context, id string, fn func(service.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: events %s: %w", id, apiError(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	terminal := false
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: events %s: decoding: %w", id, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		switch ev.Type {
		case "done", "error":
			terminal = true
		case "state":
			if ev.State == service.StateCanceled {
				terminal = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: events %s: stream: %w", id, err)
	}
	if !terminal {
		return fmt.Errorf("client: events %s: stream ended before a terminal event", id)
	}
	return nil
}

// WaitDone follows an existing job's event stream to completion and
// returns the final status. onEvent (optional) observes each event as it
// arrives.
func (c *Client) WaitDone(ctx context.Context, id string, onEvent func(service.Event)) (service.JobStatus, error) {
	err := c.Events(ctx, id, func(ev service.Event) error {
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return service.JobStatus{}, err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}
