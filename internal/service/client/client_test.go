package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

func writeNDJSON(w http.ResponseWriter, evs ...service.Event) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	f, _ := w.(http.Flusher)
	for _, ev := range evs {
		enc.Encode(ev)
		if f != nil {
			f.Flush()
		}
	}
}

// TestEventsReplaysToTerminal: the full stream — replayed history plus a
// terminal done event — is delivered to the callback in order and the
// call returns nil.
func TestEventsReplaysToTerminal(t *testing.T) {
	evs := []service.Event{
		{Seq: 1, Type: "state", State: service.StateQueued},
		{Seq: 2, Type: "state", State: service.StateRunning},
		{Seq: 3, Type: "progress", Stage: "characterize", Done: 4, Total: 8},
		{Seq: 4, Type: "done", ResultHash: "abc123"},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1/events" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		writeNDJSON(w, evs...)
	}))
	defer srv.Close()

	var got []service.Event
	err := New(srv.URL).Events(context.Background(), "j1", func(ev service.Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("saw %d events, want %d", len(got), len(evs))
	}
	for i, ev := range evs {
		if got[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, got[i], ev)
		}
	}
}

// TestEventsMidStreamEOF: a stream that ends cleanly but before any
// terminal event must surface an error — the coordinator treats it as
// worker failure.
func TestEventsMidStreamEOF(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNDJSON(w,
			service.Event{Seq: 1, Type: "state", State: service.StateRunning},
			service.Event{Seq: 2, Type: "progress", Done: 1, Total: 8},
		)
	}))
	defer srv.Close()

	seen := 0
	err := New(srv.URL).Events(context.Background(), "j1", func(service.Event) error {
		seen++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "before a terminal event") {
		t.Fatalf("mid-stream EOF err = %v, want terminal-event error", err)
	}
	if seen != 2 {
		t.Errorf("callback saw %d events before the EOF, want 2", seen)
	}
}

// TestEventsCallbackErrorStopsStream: the callback's own error aborts the
// stream and is returned verbatim.
func TestEventsCallbackErrorStopsStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNDJSON(w,
			service.Event{Seq: 1, Type: "state", State: service.StateRunning},
			service.Event{Seq: 2, Type: "error", Error: "boom"},
			service.Event{Seq: 3, Type: "done"},
		)
	}))
	defer srv.Close()

	want := errors.New("job failed")
	err := New(srv.URL).Events(context.Background(), "j1", func(ev service.Event) error {
		if ev.Type == "error" {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("callback error not surfaced: %v", err)
	}
}

// TestEventsContextCancel: cancelling the context while the server holds
// the stream open must end the call promptly with an error.
func TestEventsContextCancel(t *testing.T) {
	first := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNDJSON(w, service.Event{Seq: 1, Type: "state", State: service.StateRunning})
		close(first)
		<-r.Context().Done() // hold the stream open, never terminal
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-first
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		done <- New(srv.URL).Events(ctx, "j1", func(service.Event) error { return nil })
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled Events returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Events did not return after context cancellation")
	}
}

// TestNon2xxErrorSurfacing: the daemon's {"error": ...} body must reach
// the caller for every entry point, with the bare status as fallback.
func TestNon2xxErrorSurfacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/events"):
			http.Error(w, `{"error":"unknown job \"zzz\""}`, http.StatusNotFound)
		case r.Method == http.MethodPost:
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
		case strings.HasSuffix(r.URL.Path, "/result"):
			// Not JSON: the status line alone must still surface.
			http.Error(w, "plain text panic", http.StatusInternalServerError)
		default:
			http.Error(w, `{"error":"nope"}`, http.StatusNotFound)
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()

	if _, err := c.Submit(ctx, service.JobRequest{}); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Errorf("Submit error %v, want daemon message", err)
	}
	if _, err := c.Job(ctx, "zzz"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Job error %v, want daemon message", err)
	}
	if _, err := c.Result(ctx, "zzz"); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("Result error %v, want status fallback", err)
	}
	if err := c.Events(ctx, "zzz", func(service.Event) error { return nil }); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("Events error %v, want daemon message", err)
	}
	if err := c.Cancel(ctx, "zzz"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Cancel error %v, want daemon message", err)
	}
	if err := c.Health(ctx); err == nil || !strings.Contains(err.Error(), "unhealthy") {
		t.Errorf("Health error %v, want unhealthy wrap", err)
	}
}

// TestSubmitAndResultRoundtrip: Submit posts the request body and decodes
// the accepted status; Result returns the raw bytes.
func TestSubmitAndResultRoundtrip(t *testing.T) {
	resultBody := []byte(`{"best_k": 3}`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			var req service.JobRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("submit body: %v", err)
			}
			if len(req.Workloads) != 2 {
				t.Errorf("submit lost workloads: %+v", req)
			}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(service.JobStatus{ID: "cafe", State: service.StateQueued})
		case r.URL.Path == "/v1/jobs/cafe/result":
			w.Write(resultBody)
		case r.URL.Path == "/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL + "/") // trailing slash must be tolerated by New
	if c.BaseURL != srv.URL {
		t.Errorf("New kept trailing slash: %q", c.BaseURL)
	}
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
	st, err := c.Submit(ctx, service.JobRequest{Workloads: []string{"H-Sort", "S-Sort"}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "cafe" || st.State != service.StateQueued {
		t.Fatalf("Submit status %+v", st)
	}
	data, err := c.Result(ctx, "cafe")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(data) != string(resultBody) {
		t.Fatalf("Result bytes %q, want %q", data, resultBody)
	}
}

// TestWaitDone follows a stream to its terminal event and fetches the
// final status.
func TestWaitDone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			writeNDJSON(w,
				service.Event{Seq: 1, Type: "state", State: service.StateRunning},
				service.Event{Seq: 2, Type: "done", ResultHash: "ff00"},
			)
			return
		}
		json.NewEncoder(w).Encode(service.JobStatus{ID: "j9", State: service.StateDone, ResultHash: "ff00"})
	}))
	defer srv.Close()

	var seen int
	st, err := New(srv.URL).WaitDone(context.Background(), "j9", func(service.Event) { seen++ })
	if err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if st.State != service.StateDone || st.ResultHash != "ff00" {
		t.Fatalf("WaitDone status %+v", st)
	}
	if seen != 2 {
		t.Errorf("onEvent saw %d events, want 2", seen)
	}
}

// TestEventsCanceledStateIsTerminal: a state=canceled event ends the
// stream without error even though the connection stays open server-side.
func TestEventsCanceledStateIsTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeNDJSON(w,
			service.Event{Seq: 1, Type: "state", State: service.StateQueued},
			service.Event{Seq: 2, Type: "state", State: service.StateCanceled},
		)
	}))
	defer srv.Close()
	err := New(srv.URL).Events(context.Background(), "j1", func(service.Event) error { return nil })
	if err != nil {
		t.Fatalf("canceled-terminal stream errored: %v", err)
	}
}

// TestStatusRoundTrip decodes a real manager's /v1/status through the
// client: a submitted job must be visible in the state counts and the
// snapshot's identity fields must be populated.
func TestStatusRoundTrip(t *testing.T) {
	mgr, err := service.New(service.Config{Workers: 1, TraceService: "bdservd"})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(service.NewHandler(mgr))
	defer srv.Close()
	c := New(srv.URL)
	ctx := context.Background()

	nodes, runs := 2, 1
	st, err := c.Submit(ctx, service.JobRequest{Workloads: []string{"H-Sort", "S-Sort"}, Nodes: &nodes, Runs: &runs})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.WaitDone(ctx, st.ID, nil); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}

	snap, err := c.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if snap.Service != "bdservd" {
		t.Errorf("service = %q, want bdservd", snap.Service)
	}
	if snap.PID == 0 || snap.GoVersion == "" || snap.Goroutines == 0 {
		t.Errorf("process identity incomplete: %+v", snap)
	}
	if snap.Jobs.Done != 1 {
		t.Errorf("jobs done = %d, want 1", snap.Jobs.Done)
	}
	if snap.Queue.Capacity == 0 || snap.Queue.Workers != 1 {
		t.Errorf("queue shape %+v", snap.Queue)
	}
	if snap.UptimeSeconds < 0 || snap.Now.IsZero() {
		t.Errorf("clock fields %+v", snap)
	}
}

// TestStatusNon2xx surfaces the daemon error body on a failed status
// fetch instead of decoding garbage.
func TestStatusNon2xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"status exploded"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := New(srv.URL).Status(context.Background()); err == nil || !strings.Contains(err.Error(), "status exploded") {
		t.Fatalf("Status error = %v, want daemon message", err)
	}
}
