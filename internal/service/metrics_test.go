package service

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetric fetches /metrics and returns the value of the first
// sample line whose name+labels match the given regexp (0 if absent).
func scrapeMetric(t *testing.T, baseURL, pattern string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + pattern + ` ([0-9.eE+-]+|\+Inf)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parsing sample %q: %v", m[1], err)
	}
	return v
}

// TestMetricsReflectJobLifecycle is the end-to-end observability check:
// submit a real job through the HTTP API, and assert that /metrics on
// the same server reports the submission, the completion, per-stage
// timings, and — after a repeat submission — the cache hit, with the
// JSON /v1/cache/stats endpoint agreeing because both read the same
// counters.
func TestMetricsReflectJobLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	srv, m := newTestServer(t, Config{Parallelism: 2, Registry: reg})

	specJSON, err := json.Marshal(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	body := `{"spec":` + string(specJSON) + `}`
	st, code := postJob(t, srv, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	waitTerminal(t, m, st.ID, time.Minute)

	if v := scrapeMetric(t, srv.URL, `bd_jobs_submitted_total\{outcome="queued"\}`); v != 1 {
		t.Errorf("jobs_submitted{queued} = %g, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_jobs_completed_total\{state="done"\}`); v != 1 {
		t.Errorf("jobs_completed{done} = %g, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_job_duration_seconds_count\{state="done"\}`); v != 1 {
		t.Errorf("job_duration count = %g, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_stage_duration_seconds_count\{stage="characterize"\}`); v < 1 {
		t.Errorf("no characterize stage timing recorded")
	}
	if v := scrapeMetric(t, srv.URL, `bd_cache_misses_total`); v != 1 {
		t.Errorf("cache_misses = %g, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_cache_stores_total`); v != 1 {
		t.Errorf("cache_stores = %g, want 1", v)
	}

	// Resubmit: same spec → memory cache hit, visible on /metrics AND on
	// the JSON stats endpoint (same underlying counters).
	st2, code := postJob(t, srv, body)
	if code != http.StatusOK || st2.State != StateDone {
		t.Fatalf("resubmit = %d state %s, want 200 done", code, st2.State)
	}
	if v := scrapeMetric(t, srv.URL, `bd_jobs_submitted_total\{outcome="cache_hit"\}`); v != 1 {
		t.Errorf("jobs_submitted{cache_hit} = %g, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_cache_hits_total\{tier="memory"\}`); v != 1 {
		t.Errorf("cache_hits{memory} = %g, want 1", v)
	}
	var cs CacheStats
	if code := getJSON(t, srv.URL+"/v1/cache/stats", &cs); code != http.StatusOK {
		t.Fatalf("/v1/cache/stats = %d", code)
	}
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("JSON cache stats disagree with /metrics: %+v", cs)
	}

	// The queue gauges render (values are instantaneous; just presence
	// and sanity, not exact numbers).
	if v := scrapeMetric(t, srv.URL, `bd_queue_capacity`); v < 1 {
		t.Errorf("bd_queue_capacity = %g", v)
	}
	if v := scrapeMetric(t, srv.URL, `bd_jobs\{state="done"\}`); v != 1 {
		t.Errorf("bd_jobs{done} = %g, want 1", v)
	}
	// HTTP middleware isn't mounted by NewHandler (the daemons wrap it),
	// so no bd_http_* assertions here — covered in internal/obs tests.
}

// TestEventsCarryJobID: every NDJSON lifecycle event names its job.
func TestEventsCarryJobID(t *testing.T) {
	m := newTestManager(t, Config{Parallelism: 2})
	st, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID, time.Minute)
	j, ok := m.job(st.ID)
	if !ok {
		t.Fatalf("job %s disappeared", st.ID)
	}
	evs, _, _ := j.EventsSince(0)
	if len(evs) == 0 {
		t.Fatalf("no events for job %s", st.ID)
	}
	for _, ev := range evs {
		if ev.JobID != st.ID {
			t.Fatalf("event %q has job_id %q, want %q", ev.Type, ev.JobID, st.ID)
		}
	}
}
