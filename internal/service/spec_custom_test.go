package service

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bigdata/custom"
	"repro/internal/trace"
)

// fastCustomSpec is a CI-scale spec carrying one blended custom
// definition alongside a built-in.
func fastCustomSpec() JobSpec {
	spec := tinySpec()
	spec.Workloads = []string{"H-Sort", "H-TestScan", "S-TestScan"}
	spec.CustomWorkloads = []custom.Definition{testScanDef()}
	return spec
}

func testScanDef() custom.Definition {
	return custom.Definition{
		Name: "TestScan",
		Data: custom.DataSpec{PaperBytes: 4 << 30, Skew: 0.3},
		Mix: &trace.Params{
			LoadFrac: 0.32, StoreFrac: 0.08, BranchFrac: 0.18,
			DepFrac: 0.2, SeqFrac: 0.8,
		},
		ShuffleFrac: 0.1,
	}
}

func TestCustomSpecIDStableAcrossEquivalentDefinitions(t *testing.T) {
	a := fastCustomSpec()

	b := fastCustomSpec()
	b.CustomWorkloads[0].Category = "offline" // shorthand for the default
	b.CustomWorkloads[0].Mix.UopsPerInstr = 1.35
	b.CustomWorkloads[0].Mix.DataFootprintB = 99 << 20 // overwritten junk

	ida, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	idb, err := b.ID()
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Errorf("equivalent custom specs hash differently: %s vs %s", ida, idb)
	}

	c := fastCustomSpec()
	c.CustomWorkloads[0].Data.Skew = 0.5
	idc, err := c.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idc == ida {
		t.Error("changing a custom knob did not change the job ID")
	}
}

func TestCustomSpecNormalizationValidates(t *testing.T) {
	bad := fastCustomSpec()
	bad.CustomWorkloads[0].Data.PaperBytes = 0
	if _, err := bad.Normalized(); err == nil {
		t.Error("invalid custom definition accepted")
	}

	collide := fastCustomSpec()
	collide.CustomWorkloads[0].Name = "Sort"
	if _, err := collide.Normalized(); err == nil {
		t.Error("built-in collision accepted")
	}

	// Custom names resolve in the selection even with Workloads set; an
	// unknown one errors listing the extended registry.
	sel := fastCustomSpec()
	sel.Workloads = []string{"H-TestScan", "H-Bogus"}
	_, err := sel.Normalized()
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "H-TestScan") {
		t.Errorf("valid-name list does not include the custom workload: %v", err)
	}

	// Definitions alone (no Workloads) must still be validated: the
	// selection is empty but the suite carries the custom entries.
	solo := tinySpec()
	solo.Workloads = nil
	solo.CustomWorkloads = []custom.Definition{testScanDef()}
	solo.CustomWorkloads[0].Data.Skew = 2
	if _, err := solo.Normalized(); err == nil {
		t.Error("invalid definition accepted when Workloads is empty")
	}
}

func TestCustomSpecResolveSuiteAppendsAfterBuiltins(t *testing.T) {
	spec := tinySpec()
	spec.Workloads = nil
	spec.CustomWorkloads = []custom.Definition{testScanDef()}
	suite, err := spec.ResolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 34 {
		t.Fatalf("extended suite has %d workloads, want 34", len(suite))
	}
	if suite[32].Name != "H-TestScan" || suite[33].Name != "S-TestScan" {
		t.Errorf("custom workloads not appended in order: %s, %s", suite[32].Name, suite[33].Name)
	}
}

// A custom job runs end-to-end through the manager: executes, caches,
// and an identical resubmission is a cache hit with the same ID and
// result hash.
func TestSubmitCustomJobExecutesAndCaches(t *testing.T) {
	m := newTestManager(t, Config{})
	spec := fastCustomSpec()

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("first custom submission was a cache hit")
	}
	fin := waitTerminal(t, m, st.ID, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("custom job finished %s: %s", fin.State, fin.Error)
	}
	if fin.ResultHash == "" {
		t.Fatal("no result hash")
	}

	again, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.ID != st.ID || again.ResultHash != fin.ResultHash {
		t.Errorf("resubmission not a stable cache hit: %+v vs %+v", again, fin)
	}

	// The same spec written with equivalent (unnormalized) definitions
	// dedupes onto the same job.
	equiv := fastCustomSpec()
	equiv.CustomWorkloads[0].Category = "Offline Analytics"
	equiv.CustomWorkloads[0].Mix.DataFootprintB = 7 << 20
	st2, err := equiv.ID()
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st.ID {
		t.Errorf("equivalent custom spec got a different ID: %s vs %s", st2, st.ID)
	}
}
