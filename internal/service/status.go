package service

import (
	"os"
	"runtime"
	"time"

	"repro/internal/cellcache"
	"repro/internal/obs"
)

// StatusSnapshot is the canonical GET /v1/status payload: one JSON
// document carrying everything an operator console needs about a daemon
// — process identity, queue and executor occupancy, jobs by state, the
// active jobs with their stage progress, every cache tier with hit
// ratios, journal health, per-stage latency quantiles, and the sampler's
// trailing time-series window. bdcoord serves the same snapshot with a
// fleet view appended (see shard.WorkerFleetStatus); bdtop renders it.
//
// Like every observability surface, Status is read-only and
// side-effect-free: serving it never touches a result byte.
type StatusSnapshot struct {
	Service       string    `json:"service"`
	PID           int       `json:"pid"`
	GoVersion     string    `json:"go_version"`
	Goroutines    int       `json:"goroutines"`
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Now           time.Time `json:"now"`

	Queue       QueueStatus      `json:"queue"`
	Jobs        JobsByState      `json:"jobs"`
	ActiveJobs  []ActiveJob      `json:"active_jobs,omitempty"`
	ResultCache CacheTierStatus  `json:"result_cache"`
	CellCache   *cellcache.Stats `json:"cell_cache,omitempty"`
	Journal     JournalStatus    `json:"journal"`
	Stages      []StageLatency   `json:"stages,omitempty"`
	Window      *obs.Window      `json:"window,omitempty"`
}

// QueueStatus is queue and executor occupancy.
type QueueStatus struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	Busy     int `json:"busy"`
}

// JobsByState counts retained job records per state.
type JobsByState struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// ActiveJob is the status line of one non-terminal job.
type ActiveJob struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	Stage      string     `json:"stage,omitempty"`
	CellsDone  int        `json:"cells_done"`
	CellsTotal int        `json:"cells_total"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
}

// CacheTierStatus is the result cache's counters plus the derived hit
// ratio ((memory+disk hits) / lookups).
type CacheTierStatus struct {
	CacheStats
	HitRatio float64 `json:"hit_ratio"`
}

// JournalStatus is the job journal's health line.
type JournalStatus struct {
	Enabled     bool   `json:"enabled"`
	Healthy     bool   `json:"healthy"`
	Detail      string `json:"detail,omitempty"`
	Appends     uint64 `json:"appends"`
	Failures    uint64 `json:"failures"`
	Compactions uint64 `json:"compactions"`
}

// StageLatency is one pipeline stage's estimated latency quantiles,
// computed from the bd_stage_duration_seconds histogram buckets.
type StageLatency struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// maxActiveJobs bounds the snapshot's active-job list; a fleet console
// does not need the full backlog, and /v1/jobs serves it anyway.
const maxActiveJobs = 64

// Status assembles the daemon's point-in-time snapshot. The pieces are
// individually consistent (each is read under its own lock) but not
// mutually atomic — a job may finish between the state counts and the
// active list — which is the right trade for a surface polled every
// couple of seconds.
func (m *Manager) Status() StatusSnapshot {
	now := time.Now()
	svc := m.cfg.TraceService
	if svc == "" {
		svc = "service"
	}
	st := m.Stats()
	snap := StatusSnapshot{
		Service:       svc,
		PID:           os.Getpid(),
		GoVersion:     runtime.Version(),
		Goroutines:    runtime.NumGoroutine(),
		StartedAt:     m.startedAt,
		UptimeSeconds: now.Sub(m.startedAt).Seconds(),
		Now:           now,
		Queue: QueueStatus{
			Depth:    st.QueueDepth,
			Capacity: cap(m.queue),
			Workers:  m.cfg.Workers,
			Busy:     st.Running,
		},
		Jobs: JobsByState{
			Queued: st.Queued, Running: st.Running,
			Done: st.Done, Failed: st.Failed, Canceled: st.Canceled,
		},
		ResultCache: CacheTierStatus{CacheStats: st.Cache},
		Journal:     m.journalStatus(),
		Stages:      m.StageLatencies(),
	}
	hits := snap.ResultCache.MemoryHits + snap.ResultCache.DiskHits
	if lookups := hits + snap.ResultCache.Misses; lookups > 0 {
		snap.ResultCache.HitRatio = float64(hits) / float64(lookups)
	}
	for _, js := range m.List() {
		if js.State.terminal() {
			continue
		}
		snap.ActiveJobs = append(snap.ActiveJobs, ActiveJob{
			ID: js.ID, State: js.State, Stage: js.Stage,
			CellsDone: js.CellsDone, CellsTotal: js.CellsTotal,
			CreatedAt: js.CreatedAt, StartedAt: js.StartedAt,
		})
		if len(snap.ActiveJobs) >= maxActiveJobs {
			break
		}
	}
	if m.cells != nil {
		cs := m.cells.Stats()
		snap.CellCache = &cs
	}
	if m.cfg.Sampler != nil {
		w := m.cfg.Sampler.Window()
		snap.Window = &w
	}
	return snap
}

func (m *Manager) journalStatus() JournalStatus {
	js := JournalStatus{
		Enabled:     m.journal != nil,
		Appends:     m.mx.journal.appends.Value(),
		Failures:    m.mx.journal.failures.Value(),
		Compactions: m.mx.journal.compactions.Value(),
	}
	js.Healthy, js.Detail = m.JournalHealth()
	if js.Healthy {
		js.Detail = ""
	}
	return js
}

// StageLatencies estimates p50/p95/p99 per pipeline stage from the
// bd_stage_duration_seconds histogram — the same numbers the stats
// ticker logs, read from the same buckets.
func (m *Manager) StageLatencies() []StageLatency {
	var out []StageLatency
	m.mx.stageDuration.Each(func(labels []string, snap obs.HistogramSnapshot) {
		if len(labels) != 1 || snap.Count == 0 {
			return
		}
		q := snap.Quantiles(0.50, 0.95, 0.99)
		out = append(out, StageLatency{
			Stage: labels[0], Count: snap.Count,
			P50: q[0], P95: q[1], P99: q[2],
		})
	})
	return out
}

// StatusSeriesDefs is the manager-level time-series selection for the
// sampler behind /v1/status: queue depth and executor busy as levels,
// job completions as a rate, both cache tiers as hit ratios, and the
// aggregate stage latency p95. Daemons append their own (bdcoord adds
// shard.FleetSeriesDefs).
func StatusSeriesDefs() []obs.SeriesDef {
	return []obs.SeriesDef{
		{Name: "queue_depth", Kind: obs.KindLevel, Family: "bd_queue_depth"},
		{Name: "executor_busy", Kind: obs.KindLevel, Family: "bd_executor_busy"},
		{Name: "jobs_done_per_sec", Kind: obs.KindRate, Family: "bd_jobs_completed_total", Labels: []string{"done"}},
		{Name: "result_cache_hit_ratio", Kind: obs.KindRatio,
			Family: "bd_cache_hits_total", DenFamily: "bd_cache_requests_total"},
		{Name: "cellcache_hit_ratio", Kind: obs.KindRatio,
			Family: "bd_cellcache_hits_total", DenFamily: "bd_cellcache_requests_total"},
		{Name: "stage_p95_seconds", Kind: obs.KindQuantile, Family: "bd_stage_duration_seconds", Q: 0.95},
	}
}
