package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// journalRecord is one NDJSON line of the persistent job journal. The
// journal is append-only during operation: Submit writes a "submit"
// record carrying the normalized spec, the executor writes "start" and a
// terminal "done" (with the result hash) / "fail" / "cancel", and on boot
// the daemon replays the file so job metadata — in particular the
// done-job → result-hash mapping — survives restarts. Result bytes
// themselves live in the on-disk result cache; the journal only restores
// the records that point at them.
//
// Sharded executors additionally journal unit-level progress: a "plan"
// record fixes the job's unit tiling (the part count the planner was
// given — the tiling is a pure function of (normalized spec, parts)),
// and one "unit_done" record per finished unit carries the unit index
// plus the content-addressed key its bytes were stored under. A
// restarted daemon re-adopts non-terminal jobs, re-plans the identical
// tiling, and re-dispatches only the units without a unit_done record.
// Tracing adds a "span" record per completed span (see internal/obs):
// replay restores the spans of non-terminal jobs into the flight
// recorder, so a re-adopted job's trace carries its pre-crash history;
// terminal jobs drop their spans, keeping the journal bounded.
type journalRecord struct {
	TS    time.Time `json:"ts"`
	Type  string    `json:"type"` // submit | start | plan | unit_done | span | done | fail | cancel
	ID    string    `json:"id"`
	Spec  *JobSpec  `json:"spec,omitempty"`  // on submit
	Trace string    `json:"trace,omitempty"` // on submit: propagated X-BD-Trace value
	Hash  string    `json:"hash,omitempty"`  // on done
	Err   string    `json:"error,omitempty"`
	Parts int       `json:"parts,omitempty"` // on plan: planner part count
	Unit  *int      `json:"unit,omitempty"`  // on unit_done: unit index
	Key   string    `json:"key,omitempty"`   // on unit_done: sub-result store key
	Span  *obs.Span `json:"span,omitempty"`  // on span: one completed trace span
}

// replayedJob is the state of one job reconstructed from the journal.
// A zero state means the job never reached a terminal record — the
// daemon died while it was queued or running — and planParts/unitsDone
// carry whatever unit-level progress its executor journaled.
type replayedJob struct {
	id        string
	spec      JobSpec
	state     State
	hash      string
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	planParts int
	unitsDone map[int]string // unit index → sub-result store key
	trace     string         // propagated X-BD-Trace value from submit
	spans     []obs.Span     // journaled trace spans (non-terminal jobs only)
}

// journalMsg is one unit of writer-goroutine work: a record to append,
// or (when compact is non-nil) a request to rewrite the file down to the
// given terminal jobs.
type journalMsg struct {
	rec     journalRecord
	compact []replayedJob
}

// journal owns the append handle. Appends are asynchronous: append is a
// bounded channel send (so callers — including Submit under the
// manager's lock — never block on disk I/O in the common case) and a
// single writer goroutine serializes the encodes in send order, which
// preserves the per-job submit → start → terminal causal order the
// replay relies on. Close drains the channel before closing the file, so
// a clean shutdown loses nothing.
//
// The file is compacted at boot and again whenever appends since the
// last compaction exceed a multiple of the retained-job bound (see
// Manager.maybeCompactJournal), so a long-running daemon's journal stays
// proportional to its job history instead of growing without bound.
type journal struct {
	path string
	f    *os.File
	enc  *json.Encoder
	ch   chan journalMsg
	done chan struct{}
	log  *slog.Logger
	mx   *journalMetrics

	// appends counts records since the last compaction; compacting
	// debounces concurrent compaction triggers. Both are touched by
	// Manager.maybeCompactJournal and reset by the writer goroutine.
	appends    atomic.Int64
	compacting atomic.Bool

	// failure records the first persistent write problem (append encode
	// error, failed compaction, failed reopen). It is sticky: once the
	// journal has lost a record, restart replay can no longer be trusted
	// to be complete, and the daemon's /healthz reports degraded until
	// an operator intervenes. Appends keep being attempted — the disk
	// may recover and later records still narrow the replay gap.
	failMu  sync.Mutex
	failure string
}

// fail records a persistent journal failure (first error wins).
func (jl *journal) fail(err error) {
	jl.failMu.Lock()
	defer jl.failMu.Unlock()
	if jl.failure == "" {
		jl.failure = err.Error()
	}
}

// health reports whether the journal has ever hit a persistent write
// failure, and the first error if so.
func (jl *journal) health() (ok bool, detail string) {
	if jl == nil {
		return true, ""
	}
	jl.failMu.Lock()
	defer jl.failMu.Unlock()
	return jl.failure == "", jl.failure
}

// openJournal replays an existing journal at path (tolerating a trailing
// partial line from a crashed writer), compacts it — rewriting the
// surviving jobs, keeping at most the newest maxJobs — and returns the
// replayed jobs in submission order together with an open append handle.
// Non-terminal jobs (the daemon died while they were queued or running)
// are returned too, along with their journaled unit-level progress, so
// the caller can re-adopt and finish them.
func openJournal(path string, maxJobs int, logger *slog.Logger, mx *journalMetrics) (*journal, []replayedJob, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if mx == nil {
		mx = newSvcMetrics(obs.NewRegistry()).journal
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("service: creating journal dir: %w", err)
		}
	}
	jobs, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if maxJobs > 0 && len(jobs) > maxJobs {
		jobs = jobs[len(jobs)-maxJobs:]
	}
	if err := compactJournal(path, jobs); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	jl := &journal{
		path: path,
		f:    f,
		enc:  json.NewEncoder(f),
		ch:   make(chan journalMsg, 256),
		done: make(chan struct{}),
		log:  logger,
		mx:   mx,
	}
	go jl.run()
	return jl, jobs, nil
}

// run is the single writer goroutine: it drains the channel in order,
// appending records and servicing compaction requests (which rewrite the
// file and swap the handle — all file ops stay on this goroutine). Write
// errors degrade restart replay, not running jobs — the result cache
// stays authoritative — so they are logged and dropped.
func (jl *journal) run() {
	defer close(jl.done)
	for msg := range jl.ch {
		if msg.compact != nil {
			jl.f.Close()
			if err := compactJournal(jl.path, msg.compact); err != nil {
				jl.log.Error("journal compaction failed", "path", jl.path, "error", err)
				jl.mx.failures.Inc()
				jl.fail(err)
			} else {
				jl.mx.compactions.Inc()
			}
			f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				// Disk trouble: disable further appends rather than crash
				// running jobs; the next boot re-replays what exists.
				jl.log.Error("journal reopen failed; journal disabled", "path", jl.path, "error", err)
				jl.mx.failures.Inc()
				jl.fail(err)
				jl.f, jl.enc = nil, nil
			} else {
				jl.f, jl.enc = f, json.NewEncoder(f)
			}
			jl.appends.Store(0)
			jl.compacting.Store(false)
			continue
		}
		if jl.enc == nil {
			continue
		}
		if err := jl.enc.Encode(msg.rec); err != nil {
			jl.log.Error("journal append failed", "type", msg.rec.Type, "job", msg.rec.ID, "error", err)
			jl.mx.failures.Inc()
			jl.fail(err)
		} else {
			jl.mx.appends.Inc()
		}
	}
}

// replayJournal folds the journal's records into per-job terminal state.
func replayJournal(path string) ([]replayedJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*replayedJob)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn trailing line from a crash mid-append: everything
			// before it replayed cleanly, so stop here rather than fail
			// the whole boot.
			break
		}
		switch rec.Type {
		case "submit":
			if rec.Spec == nil {
				continue
			}
			if old, ok := byID[rec.ID]; ok {
				// Resubmission after a failure/eviction: the fresh record
				// supersedes the old one and moves to the back of the
				// submission order, mirroring live Submit.
				for i, id := range order {
					if id == rec.ID {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
				*old = replayedJob{id: rec.ID, spec: *rec.Spec, created: rec.TS, trace: rec.Trace}
			} else {
				byID[rec.ID] = &replayedJob{id: rec.ID, spec: *rec.Spec, created: rec.TS, trace: rec.Trace}
			}
			order = append(order, rec.ID)
		case "start":
			if j, ok := byID[rec.ID]; ok {
				j.started = rec.TS
			}
		case "plan":
			if j, ok := byID[rec.ID]; ok && rec.Parts > 0 {
				if j.planParts != rec.Parts {
					// A different tiling (the fleet changed between
					// incarnations): unit indexes from the old plan no
					// longer name the same cells, so earlier unit_done
					// records are void.
					j.unitsDone = nil
				}
				j.planParts = rec.Parts
			}
		case "unit_done":
			if j, ok := byID[rec.ID]; ok && rec.Unit != nil && *rec.Unit >= 0 && rec.Key != "" {
				if j.unitsDone == nil {
					j.unitsDone = make(map[int]string)
				}
				j.unitsDone[*rec.Unit] = rec.Key
			}
		case "span":
			if j, ok := byID[rec.ID]; ok && rec.Span != nil {
				j.spans = append(j.spans, *rec.Span)
			}
		case "done":
			if j, ok := byID[rec.ID]; ok {
				j.state, j.hash, j.finished = StateDone, rec.Hash, rec.TS
				j.planParts, j.unitsDone, j.spans = 0, nil, nil
			}
		case "fail":
			if j, ok := byID[rec.ID]; ok {
				j.state, j.errMsg, j.finished = StateFailed, rec.Err, rec.TS
				j.planParts, j.unitsDone, j.spans = 0, nil, nil
			}
		case "cancel":
			if j, ok := byID[rec.ID]; ok {
				j.state, j.finished = StateCanceled, rec.TS
				j.planParts, j.unitsDone, j.spans = 0, nil, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: scanning journal: %w", err)
	}

	// Terminal AND non-terminal jobs are returned: a job the daemon died
	// on keeps its submit record (and any unit-level progress) so the
	// next incarnation can re-adopt it instead of forfeiting the work.
	out := make([]replayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}

// compactJournal rewrites the journal to exactly the surviving jobs:
// submit + terminal record for finished jobs, submit (+ start, plan and
// unit_done progress) for jobs still in flight — so the file stays
// bounded by the live job history instead of growing across restarts.
// The rewrite is atomic: a crash mid-compaction leaves the old journal
// in place.
func compactJournal(path string, jobs []replayedJob) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	enc := json.NewEncoder(f)
	writeErr := func() error {
		for i := range jobs {
			j := &jobs[i]
			spec := j.spec
			if err := enc.Encode(journalRecord{TS: j.created, Type: "submit", ID: j.id, Spec: &spec, Trace: j.trace}); err != nil {
				return err
			}
			if !j.started.IsZero() {
				if err := enc.Encode(journalRecord{TS: j.started, Type: "start", ID: j.id}); err != nil {
					return err
				}
			}
			var rec journalRecord
			switch j.state {
			case StateDone:
				rec = journalRecord{TS: j.finished, Type: "done", ID: j.id, Hash: j.hash}
			case StateFailed:
				rec = journalRecord{TS: j.finished, Type: "fail", ID: j.id, Err: j.errMsg}
			case StateCanceled:
				rec = journalRecord{TS: j.finished, Type: "cancel", ID: j.id}
			default:
				// Still in flight: preserve unit-level progress instead of a
				// terminal record, in deterministic (unit-index) order.
				if j.planParts > 0 {
					if err := enc.Encode(journalRecord{TS: j.created, Type: "plan", ID: j.id, Parts: j.planParts}); err != nil {
						return err
					}
				}
				units := make([]int, 0, len(j.unitsDone))
				for u := range j.unitsDone {
					units = append(units, u)
				}
				sort.Ints(units)
				for _, u := range units {
					u := u
					if err := enc.Encode(journalRecord{TS: j.created, Type: "unit_done", ID: j.id, Unit: &u, Key: j.unitsDone[u]}); err != nil {
						return err
					}
				}
				for s := range j.spans {
					sp := j.spans[s]
					if err := enc.Encode(journalRecord{TS: sp.End, Type: "span", ID: j.id, Span: &sp}); err != nil {
						return err
					}
				}
				continue
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}()
	if writeErr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", writeErr)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: committing journal: %w", err)
	}
	return nil
}

// append enqueues one record for the writer goroutine. It only blocks
// when the writer is more than a full channel behind — disk-speed
// backpressure, not per-record disk latency. Callers guard against a
// concurrent Close through the manager's journal mutex.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	jl.appends.Add(1)
	jl.ch <- journalMsg{rec: rec}
}

// requestCompact enqueues a compaction down to the given terminal jobs.
// Same Close guard as append.
func (jl *journal) requestCompact(jobs []replayedJob) {
	if jl == nil {
		return
	}
	if jobs == nil {
		jobs = []replayedJob{}
	}
	jl.ch <- journalMsg{compact: jobs}
}

// Close drains pending appends, stops the writer and closes the file.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	close(jl.ch)
	<-jl.done
	if jl.f == nil {
		return nil
	}
	return jl.f.Close()
}
