package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeExec is an instant deterministic executor: result bytes depend only
// on the normalized spec, mirroring the real pipeline's contract. Specs
// with Cluster.Seed == failSeed fail instead.
const failSeed = 99

func fakeExec(delay time.Duration) ExecuteFunc {
	return func(ctx context.Context, spec JobSpec, progress core.Progress) ([]byte, error) {
		if delay > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		if spec.Cluster.Seed == failSeed {
			return nil, fmt.Errorf("synthetic executor failure")
		}
		id, err := spec.id()
		if err != nil {
			return nil, err
		}
		// Valid JSON: the real pipeline emits canonical JSON, and the disk
		// cache deletes anything that isn't as corruption.
		return []byte(`{"result":"` + id + `"}` + "\n"), nil
	}
}

func TestJournalReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
	}

	m1 := newTestManager(t, cfg)
	okSpec := tinySpec()
	st, err := m1.Submit(okSpec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m1, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	res1, ok := m1.Result(st.ID)
	if !ok {
		t.Fatal("no result for done job")
	}

	badSpec := tinySpec()
	badSpec.Cluster.Seed = failSeed
	stBad, err := m1.Submit(badSpec)
	if err != nil {
		t.Fatal(err)
	}
	finBad := waitTerminal(t, m1, stBad.ID, 10*time.Second)
	if finBad.State != StateFailed {
		t.Fatalf("bad job finished %s, want failed", finBad.State)
	}
	m1.Close()

	// Restart: the journal replays both records; the done job's result is
	// served straight from the disk cache.
	m2 := newTestManager(t, cfg)
	got, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("done job record lost across restart")
	}
	if got.State != StateDone || got.ResultHash != fin.ResultHash {
		t.Fatalf("replayed job: state=%s hash=%s, want done/%s", got.State, got.ResultHash, fin.ResultHash)
	}
	res2, ok := m2.Result(st.ID)
	if !ok || !bytes.Equal(res1, res2) {
		t.Fatal("replayed job's result not served (or bytes differ)")
	}
	gotBad, ok := m2.Get(stBad.ID)
	if !ok {
		t.Fatal("failed job record lost across restart")
	}
	if gotBad.State != StateFailed || gotBad.Error == "" {
		t.Fatalf("replayed failed job: state=%s error=%q", gotBad.State, gotBad.Error)
	}
	list := m2.List()
	if len(list) != 2 || list[0].ID != st.ID || list[1].ID != stBad.ID {
		t.Fatalf("replayed list order wrong: %+v", list)
	}

	// The replayed job's event stream ends with a terminal event.
	j, ok := m2.job(st.ID)
	if !ok {
		t.Fatal("job missing")
	}
	evs, _, done := j.EventsSince(0)
	if !done || len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("replayed event stream not terminal: done=%v events=%+v", done, evs)
	}

	// Identical resubmission after restart is an immediate cache hit.
	st3, err := m2.Submit(okSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.CacheHit || st3.State != StateDone || st3.ResultHash != fin.ResultHash {
		t.Fatalf("post-restart resubmission: cacheHit=%v state=%s hash=%s",
			st3.CacheHit, st3.State, st3.ResultHash)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
	}
	m1 := newTestManager(t, cfg)
	st, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, st.ID, 10*time.Second)
	m1.Close()

	// Simulate a crash mid-append: a torn, non-JSON trailing line.
	f, err := os.OpenFile(cfg.JournalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ts":"2026-01-01T00:00:00Z","type":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newTestManager(t, cfg)
	if got, ok := m2.Get(st.ID); !ok || got.State != StateDone {
		t.Fatalf("torn tail broke replay: ok=%v state=%v", ok, got.State)
	}
}

func TestJournalCompactsOnBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
		MaxJobs:     2,
	}
	m1 := newTestManager(t, cfg)
	var last string
	for i := 0; i < 5; i++ {
		spec := tinySpec()
		spec.Cluster.Seed = uint64(100 + i)
		st, err := m1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m1, st.ID, 10*time.Second)
		last = st.ID
	}
	m1.Close()

	m2 := newTestManager(t, cfg)
	list := m2.List()
	if len(list) > 2 {
		t.Fatalf("replay ignored MaxJobs: %d records", len(list))
	}
	if _, ok := m2.Get(last); !ok {
		t.Fatal("newest job evicted by replay truncation")
	}
	m2.Close()

	// The compacted file holds at most MaxJobs submit+start+terminal
	// record triples.
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\"submit\"")); n > 2 {
		t.Errorf("compacted journal still holds %d submit records", n)
	}
}

// TestJournalCompactsPeriodically: a long-running daemon must re-compact
// its journal in flight — not only at boot — once appends pile up well
// past the retained-job bound.
func TestJournalCompactsPeriodically(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
		MaxJobs:     2, // threshold = 4*2+64 = 72 appended records
	}
	m := newTestManager(t, cfg)
	var last string
	for i := 0; i < 60; i++ { // ~180 records: submit+start+done each
		spec := tinySpec()
		spec.Cluster.Seed = uint64(1000 + i)
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID, 10*time.Second)
		last = st.ID
	}
	// Close drains the writer (appends + any compaction request). Without
	// in-flight compaction the file would hold all 60 submit records;
	// with it, at most a compacted snapshot plus one threshold's worth of
	// tail appends (72 records = 24 submit/start/done triples) remain.
	m.Close()
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\"submit\"")); n > 40 {
		t.Fatalf("journal never re-compacted in flight: %d submit records", n)
	}

	// Replay still works after in-flight compaction.
	m2 := newTestManager(t, cfg)
	if got, ok := m2.Get(last); !ok || got.State != StateDone {
		t.Fatalf("newest job lost after in-flight compaction: ok=%v state=%v", ok, got.State)
	}
}

// TestJournalCompactsOnCacheHitPath: a cache-dominated daemon — every
// submission replayed born-done, no executor runs — must still trigger
// in-flight compaction.
func TestJournalCompactsOnCacheHitPath(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir:     filepath.Join(dir, "data"),
		JournalPath: filepath.Join(dir, "journal.ndjson"),
		Execute:     fakeExec(0),
		MaxJobs:     2, // threshold = 72 appended records
	}
	m := newTestManager(t, cfg)
	specs := make([]JobSpec, 4)
	for i := range specs {
		specs[i] = tinySpec()
		specs[i].Cluster.Seed = uint64(2000 + i)
		st, err := m.Submit(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID, 10*time.Second)
	}
	// With MaxJobs=2 the two oldest records are evicted; resubmitting
	// them replays born-done from the disk cache, appending submit+done
	// each time while evicting another record — an append-only treadmill
	// that never passes through runJob.
	for i := 0; i < 60; i++ {
		st, err := m.Submit(specs[i%len(specs)])
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("resubmission %d not served from cache: state %s", i, st.State)
		}
	}
	// Close drains the writer (appends + any compaction request). Without
	// in-flight compaction the file would hold all 64 submit records;
	// with it, at most a compacted snapshot plus one threshold's worth of
	// tail appends (72 records ≈ 36 submits) remain.
	m.Close()
	data, err := os.ReadFile(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\"submit\"")); n > 40 {
		t.Fatalf("cache-hit path never compacted the journal: %d submit records", n)
	}
}

func TestMaxJobsEvictsOldestTerminal(t *testing.T) {
	m := newTestManager(t, Config{Execute: fakeExec(0), MaxJobs: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		spec := tinySpec()
		spec.Cluster.Seed = uint64(100 + i)
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID, 10*time.Second)
		ids = append(ids, st.ID)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("job map holds %d records, want 3", len(list))
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest job record survived past MaxJobs")
	}
	if _, ok := m.Get(ids[5]); !ok {
		t.Error("newest job record evicted")
	}
	// An evicted done job's result is still served from the cache.
	if _, ok := m.Result(ids[0]); !ok {
		t.Error("evicted done job's result vanished from the cache")
	}
	// …and an identical resubmission replays as a fresh born-done record.
	spec := tinySpec()
	spec.Cluster.Seed = 100
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != StateDone {
		t.Errorf("evicted job resubmission: cacheHit=%v state=%s", st.CacheHit, st.State)
	}
}

func TestMaxJobsNeverEvictsLiveJobs(t *testing.T) {
	m := newTestManager(t, Config{Execute: fakeExec(time.Second), MaxJobs: 1, Workers: 1})
	for i := 0; i < 3; i++ {
		spec := tinySpec()
		spec.Cluster.Seed = uint64(200 + i)
		if _, err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	// All three are live (one running, two queued): none may be evicted
	// even though MaxJobs is 1.
	if got := len(m.List()); got != 3 {
		t.Fatalf("live job records evicted: %d of 3 remain", got)
	}
	// As jobs finish they become evictable; once all three have executed
	// (3 cache stores) the map must be trimmed back to the bound.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m.CacheStats().Stores == 3 && len(m.List()) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job map not trimmed after completion: %d records, %d stores",
		len(m.List()), m.CacheStats().Stores)
}

// TestConcurrentSubmitIdenticalSpec is the regression test for the old
// Submit holding m.mu across the disk-tier cache read: a stampede of
// identical submissions must coalesce into exactly one execution, with
// every submitter getting the same job ID, and concurrent distinct
// submissions must proceed without serializing into errors.
func TestConcurrentSubmitIdenticalSpec(t *testing.T) {
	m := newTestManager(t, Config{Execute: fakeExec(50 * time.Millisecond), Workers: 2, QueueDepth: 64})

	const n = 24
	var wg sync.WaitGroup
	idCh := make(chan string, n)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := m.Submit(tinySpec())
			if err != nil {
				errCh <- err
				return
			}
			idCh <- st.ID
		}()
	}
	wg.Wait()
	close(idCh)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var id string
	for got := range idCh {
		if id == "" {
			id = got
		} else if got != id {
			t.Fatalf("identical submissions got different IDs: %s vs %s", got, id)
		}
	}
	waitTerminal(t, m, id, 10*time.Second)
	if stores := m.CacheStats().Stores; stores != 1 {
		t.Errorf("identical submission stampede executed %d times, want 1", stores)
	}

	// Distinct specs submitted concurrently all complete independently.
	var wg2 sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			spec := tinySpec()
			spec.Cluster.Seed = uint64(300 + i)
			st, err := m.Submit(spec)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg2.Wait()
	for _, id := range ids {
		if id == "" {
			t.Fatal("a concurrent distinct submission failed")
		}
		if st := waitTerminal(t, m, id, 10*time.Second); st.State != StateDone {
			t.Fatalf("job %s finished %s", id, st.State)
		}
	}
}
