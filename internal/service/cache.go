package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fsio"
	"repro/internal/obs"
)

// CacheStats is a point-in-time snapshot of result-cache effectiveness.
type CacheStats struct {
	Entries    int    `json:"entries"`     // in-memory LRU entries
	MaxEntries int    `json:"max_entries"` // LRU capacity
	Hits       uint64 `json:"hits"`        // Get calls that found a result
	Misses     uint64 `json:"misses"`      // Get calls that found nothing
	MemoryHits uint64 `json:"memory_hits"` // hits served by the LRU tier
	DiskHits   uint64 `json:"disk_hits"`   // hits promoted from the disk tier
	Stores     uint64 `json:"stores"`      // results written
	Evictions  uint64 `json:"evictions"`   // LRU entries displaced (disk copies remain)
	Corrupt    uint64 `json:"corrupt"`     // disk entries deleted as unparseable
}

// cacheEntry is one cached result: the canonical JSON bytes plus their
// SHA-256, which doubles as the integrity/identity hash clients compare.
type cacheEntry struct {
	id   string
	data []byte
	hash string
}

// resultCache is the content-addressed result store: an in-memory LRU
// tier over an optional on-disk JSON tier (one file per job ID under
// dir). Disk entries survive restarts and LRU eviction. Counters live
// in cacheMetrics — obs counter storage — so the JSON stats endpoint
// and /metrics read the same atomics.
type resultCache struct {
	mu   sync.Mutex
	max  int
	dir  string     // "" = memory-only
	ll   *list.List // front = most recently used
	byID map[string]*list.Element
	mx   *cacheMetrics
}

func newResultCache(maxEntries int, dir string, mx *cacheMetrics) (*resultCache, error) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating cache dir: %w", err)
		}
	}
	if mx == nil {
		mx = newCacheMetrics(obs.NewRegistry())
	}
	return &resultCache{
		max:  maxEntries,
		dir:  dir,
		ll:   list.New(),
		byID: make(map[string]*list.Element),
		mx:   mx,
	}, nil
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validID reports whether id has the exact shape of a job ID (32 lowercase
// hex digits, the truncated spec SHA-256). The cache derives file names
// from IDs that arrive from URL paths, so anything else — in particular
// separators or dot segments smuggled in via percent-encoding — must never
// reach the filesystem.
func validID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		b := id[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func (c *resultCache) path(id string) string {
	return filepath.Join(c.dir, id+".json")
}

// Get returns the cached result bytes and their hash for a job ID,
// consulting the LRU tier first and falling back to disk (promoting the
// entry back into the LRU on a disk hit).
//
// The disk read happens outside c.mu — one slow disk op must not
// serialize every concurrent cache probe — with a re-check on reacquire:
// an entry a concurrent Put or promotion landed meanwhile wins (same
// content either way; results are content-addressed by the job ID).
// Disk bytes are validated as canonical JSON *before* promotion: a
// truncated or corrupted file — hashing cleanly but serving garbage —
// is deleted and counted instead of promoted.
func (c *resultCache) Get(id string) (data []byte, hash string, ok bool) {
	if !validID(id) {
		return nil, "", false
	}
	c.mx.requests.Inc()
	c.mu.Lock()
	if el, ok := c.byID[id]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.mx.memHits.Inc()
		return ent.data, ent.hash, true
	}
	c.mu.Unlock()

	if c.dir == "" {
		c.mx.misses.Inc()
		return nil, "", false
	}
	data, err := os.ReadFile(c.path(id))
	if err != nil {
		c.mx.misses.Inc()
		return nil, "", false
	}
	if !json.Valid(data) {
		// Torn write from a pre-fsync crash, bit rot, or tampering: a
		// result is canonical JSON by construction, so anything else is
		// corruption. Delete it so it can never be served, and let the
		// miss re-execute the job.
		os.Remove(c.path(id))
		c.mx.corrupt.Inc()
		c.mx.misses.Inc()
		return nil, "", false
	}
	hash = hashBytes(data)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		// A concurrent probe or Put populated the LRU while we read disk:
		// keep its entry, serve our (identical) bytes.
		c.ll.MoveToFront(el)
	} else {
		c.insert(&cacheEntry{id: id, data: data, hash: hash})
	}
	c.mx.diskHits.Inc()
	return data, hash, true
}

// Put stores a result under its job ID (write-through to disk when a data
// directory is configured) and returns the result hash. The disk write
// happens first, outside c.mu (fsio gives each writer a unique temp file,
// so concurrent Puts of the same ID cannot interleave), and is fsynced
// before the rename: a journaled "done" record must never outlive its
// result bytes across a power loss. If the write fails, no tier holds the
// entry, so a failed job can never be replayed as a cached success.
func (c *resultCache) Put(id string, data []byte) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("service: invalid result cache ID %q", id)
	}
	hash := hashBytes(data)
	if c.dir != "" {
		if err := fsio.WriteFileSync(c.path(id), data, 0o644); err != nil {
			return hash, fmt.Errorf("service: writing result: %w", err)
		}
	}
	c.mx.stores.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		c.ll.MoveToFront(el)
		el.Value = &cacheEntry{id: id, data: data, hash: hash}
	} else {
		c.insert(&cacheEntry{id: id, data: data, hash: hash})
	}
	return hash, nil
}

// insert adds a fresh entry at the LRU front, evicting the tail beyond
// capacity. Callers hold c.mu.
func (c *resultCache) insert(ent *cacheEntry) {
	c.byID[ent.id] = c.ll.PushFront(ent)
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byID, tail.Value.(*cacheEntry).id)
		c.mx.evictions.Inc()
	}
}

// Entries returns the current LRU entry count (render-time gauge).
func (c *resultCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters, read from the same
// obs storage /metrics renders.
func (c *resultCache) Stats() CacheStats {
	mem, disk := c.mx.memHits.Value(), c.mx.diskHits.Value()
	return CacheStats{
		Entries:    c.Entries(),
		MaxEntries: c.max,
		Hits:       mem + disk,
		Misses:     c.mx.misses.Value(),
		MemoryHits: mem,
		DiskHits:   disk,
		Stores:     c.mx.stores.Value(),
		Evictions:  c.mx.evictions.Value(),
		Corrupt:    c.mx.corrupt.Value(),
	}
}
