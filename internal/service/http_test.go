package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func postJob(t *testing.T, srv *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, Config{Parallelism: 2})

	// Liveness.
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code %d, body %v", code, health)
	}

	// Submit a tiny job through the low-level spec field.
	specJSON, err := json.Marshal(map[string]any{"spec": tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	st, code := postJob(t, srv, string(specJSON))
	if code != http.StatusAccepted {
		t.Fatalf("first POST: code %d", code)
	}
	if st.ID == "" || st.CacheHit {
		t.Fatalf("first POST status: %+v", st)
	}

	// Poll to completion.
	deadline := time.Now().Add(60 * time.Second)
	var cur JobStatus
	for {
		if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &cur); code != http.StatusOK {
			t.Fatalf("GET job: code %d", code)
		}
		if cur.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cur.State != StateDone || cur.ResultHash == "" {
		t.Fatalf("job finished %s (%s), hash %q", cur.State, cur.Error, cur.ResultHash)
	}

	// The event stream replays fully and ends with the done event.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events streamed", len(events))
	}
	if last := events[len(events)-1]; last.Type != "done" || last.ResultHash != cur.ResultHash {
		t.Errorf("last streamed event %+v, want done/%s", last, cur.ResultHash)
	}

	// Result bytes are stable across fetches.
	res1 := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/result")
	res2 := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(res1, res2) {
		t.Error("result bytes differ between fetches")
	}

	// Second identical submission: immediate cache hit, same hash.
	st2, code := postJob(t, srv, string(specJSON))
	if code != http.StatusOK {
		t.Fatalf("second POST: code %d", code)
	}
	if !st2.CacheHit || st2.State != StateDone || st2.ResultHash != cur.ResultHash {
		t.Fatalf("second POST: %+v, want done cache hit with hash %s", st2, cur.ResultHash)
	}

	var stats CacheStats
	if code := getJSON(t, srv.URL+"/v1/cache/stats", &stats); code != http.StatusOK {
		t.Fatalf("cache stats: code %d", code)
	}
	if stats.Hits == 0 || stats.Stores == 0 {
		t.Errorf("cache stats after hit: %+v", stats)
	}

	// Listing includes the job.
	var jobs []JobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Errorf("list: code %d, %d jobs", code, len(jobs))
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: code %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHTTPConvenienceFieldsAndValidation(t *testing.T) {
	srv, _ := newTestServer(t, Config{Parallelism: 2})

	// Convenience-field submission maps onto the spec (not executed to
	// completion here — just accepted and canceled).
	st, code := postJob(t, srv, `{"workloads":["H-Sort","S-Sort"],"nodes":2,"instructions":1000,"kmin":2,"kmax":2,"linkage":"single"}`)
	if code != http.StatusAccepted {
		t.Fatalf("convenience POST: code %d", code)
	}
	if got := st.Spec.Cluster.SlaveNodes; got != 2 {
		t.Errorf("nodes not mapped: %d", got)
	}
	if got := st.Spec.Cluster.InstructionsPerCore; got != 1000 {
		t.Errorf("instructions not mapped: %d", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("DELETE: code %d", resp.StatusCode)
		}
	}

	for name, body := range map[string]string{
		"malformed":        `{"workloads":`,
		"unknown field":    `{"wrkloads":["H-Sort"]}`,
		"unknown workload": `{"workloads":["H-Sort","H-Nope"],"instructions":1000}`,
		"bad linkage":      `{"linkage":"ward"}`,
		"spec+convenience": fmt.Sprintf(`{"nodes":3,"spec":%s}`, mustJSON(t, tinySpec())),
		"bad runs":         `{"runs":-1}`,
	} {
		if _, code := postJob(t, srv, body); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
	}

	// Unknown job IDs 404 across endpoints.
	for _, url := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/jobs/deadbeef/events"} {
		if code := getJSON(t, srv.URL+url, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: code %d, want 404", url, code)
		}
	}
}

// Custom-workload request forms: inline definitions, preset names, and
// their interaction with validation and the spec/convenience exclusivity
// rule.
func TestHTTPCustomWorkloadsAndPresets(t *testing.T) {
	srv, _ := newTestServer(t, Config{Parallelism: 2})

	// Inline definition: materialized into the spec and selectable.
	inline := `{"workloads":["H-Sort","H-Probe"],"nodes":2,"instructions":1000,
		"custom_workloads":[{"name":"Probe","data":{"paper_bytes":1073741824,"skew":0.3},
		"mix":{"LoadFrac":0.3,"StoreFrac":0.1,"SeqFrac":0.6}}]}`
	st, code := postJob(t, srv, inline)
	if code != http.StatusAccepted {
		t.Fatalf("inline custom POST: code %d", code)
	}
	if n := len(st.Spec.CustomWorkloads); n != 1 {
		t.Fatalf("spec carries %d definitions, want 1", n)
	}
	if got := st.Spec.CustomWorkloads[0].Name; got != "Probe" {
		t.Errorf("definition name %q", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	// Preset names materialize full definitions into the spec, so the job
	// ID is a function of the preset's content.
	st, code = postJob(t, srv, `{"workloads":["H-StreamIngest"],"nodes":2,"instructions":1000,"presets":["StreamIngest"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("preset POST: code %d", code)
	}
	if n := len(st.Spec.CustomWorkloads); n != 1 || st.Spec.CustomWorkloads[0].Name != "StreamIngest" {
		t.Fatalf("preset not materialized into the spec: %+v", st.Spec.CustomWorkloads)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	for name, body := range map[string]string{
		"unknown preset":    `{"presets":["Nope"]}`,
		"builtin collision": `{"custom_workloads":[{"name":"Sort","data":{"paper_bytes":1048576},"mix":{"LoadFrac":0.3}}]}`,
		"bad definition":    `{"custom_workloads":[{"name":"X","data":{"paper_bytes":0},"mix":{"LoadFrac":0.3}}]}`,
		"spec+custom":       fmt.Sprintf(`{"presets":["StreamIngest"],"spec":%s}`, mustJSON(t, tinySpec())),
	} {
		if _, code := postJob(t, srv, body); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
