package service

import (
	"context"
	"time"
)

// UnitProgress is the unit-level crash-recovery capability the manager
// offers a sharded executor through the job context. A coordinator-side
// ExecuteFunc that splits a job into units retrieves it with
// UnitProgressFrom and uses it to (a) learn what a previous incarnation
// of the daemon already finished, and (b) journal its own progress so
// the *next* incarnation can do the same:
//
//   - RecoveredPlan returns the part count the previous incarnation
//     planned with, plus the set of units it journaled as done (unit
//     index → content-addressed sub-result store key). The unit tiling
//     is a pure function of (normalized spec, parts), so re-planning
//     with the recovered part count reproduces the identical units and
//     the journaled indexes stay meaningful.
//   - RecordPlan journals the part count this run tiles with. A part
//     count different from the recovered one voids the recovered units
//     (their indexes name different cells under the new tiling).
//   - UnitDone journals one finished unit. The caller is responsible for
//     having stored the unit's bytes under key *before* calling — a
//     unit_done record must never point at bytes that don't exist.
//
// Without a configured journal the records go nowhere and RecoveredPlan
// returns empty, so executors can use the capability unconditionally.
type UnitProgress interface {
	RecoveredPlan() (parts int, done map[int]string)
	RecordPlan(parts int)
	UnitDone(unit int, key string)
}

type unitProgressKey struct{}

// UnitProgressFrom extracts the manager's UnitProgress from a job
// context passed to an ExecuteFunc. ok is false when the context did not
// come from a Manager (e.g. direct executor tests).
func UnitProgressFrom(ctx context.Context) (UnitProgress, bool) {
	up, ok := ctx.Value(unitProgressKey{}).(UnitProgress)
	return up, ok
}

// jobUnitProgress binds UnitProgress to one manager job. Journal appends
// happen after the in-memory update and outside j.mu (the manager's lock
// order is m.mu → j.mu, and journalAppendSync takes m.mu): a compaction
// snapshot taken between the two sees the update, and the late append is
// idempotent under replay.
type jobUnitProgress struct {
	m *Manager
	j *job
}

func (p *jobUnitProgress) RecoveredPlan() (int, map[int]string) {
	p.j.mu.Lock()
	defer p.j.mu.Unlock()
	done := make(map[int]string, len(p.j.unitsDone))
	for u, k := range p.j.unitsDone {
		done[u] = k
	}
	return p.j.planParts, done
}

func (p *jobUnitProgress) RecordPlan(parts int) {
	if parts <= 0 {
		return
	}
	p.j.mu.Lock()
	if p.j.planParts != parts {
		p.j.planParts = parts
		p.j.unitsDone = nil
	}
	p.j.mu.Unlock()
	p.m.journalAppendSync(journalRecord{TS: time.Now(), Type: "plan", ID: p.j.id, Parts: parts})
}

func (p *jobUnitProgress) UnitDone(unit int, key string) {
	if unit < 0 || key == "" {
		return
	}
	p.j.mu.Lock()
	if p.j.unitsDone == nil {
		p.j.unitsDone = make(map[int]string)
	}
	p.j.unitsDone[unit] = key
	p.j.mu.Unlock()
	u := unit
	p.m.journalAppendSync(journalRecord{TS: time.Now(), Type: "unit_done", ID: p.j.id, Unit: &u, Key: key})
}
