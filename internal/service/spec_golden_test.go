package service

import (
	"testing"

	"repro/internal/bigdata/custom"
)

// Golden job IDs: the hex-encoded truncated SHA-256 of the normalized
// canonical spec JSON. These pins turn a silent result-cache
// invalidation — any change to spec normalization, field order, tags,
// defaults, or the canonical JSON of a nested config — into a test
// failure. If a change here is *deliberate* (the spec semantics really
// changed), update the constants and say so in the commit: every daemon's
// existing cache entries and journal records become unreachable under the
// new IDs.
const (
	// goldenDefaultID is DefaultSpec(): all 32 built-ins, paper-shaped
	// cluster and analysis settings.
	goldenDefaultID = "1ff464360dd7adf763720d746e67a057"
	// goldenObservationsID is the representative sharded-worker sub-spec
	// shape: characterize-only, CI-scale workload subset.
	goldenObservationsID = "e30c7825fed5adafea6c2e99accbfef7"
)

func goldenObservationsSpec() JobSpec {
	o := DefaultSpec()
	o.Mode = ModeObservations
	o.Workloads = []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}
	o.Cluster.SlaveNodes = 2
	o.Cluster.InstructionsPerCore = 6000
	return o
}

func TestJobIDGoldenDefaultSpec(t *testing.T) {
	id, err := DefaultSpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	if id != goldenDefaultID {
		t.Errorf("DefaultSpec job ID changed: %s, pinned %s\n"+
			"This silently invalidates every cached result and journal record.\n"+
			"If the spec change is deliberate, update the golden constant.", id, goldenDefaultID)
	}
}

func TestJobIDGoldenObservationsSpec(t *testing.T) {
	id, err := goldenObservationsSpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	if id != goldenObservationsID {
		t.Errorf("observations-mode job ID changed: %s, pinned %s\n"+
			"If the spec change is deliberate, update the golden constant.", id, goldenObservationsID)
	}
}

// The custom_workloads field must be invisible to job identity when
// empty: a nil and a zero-length slice both normalize to the omitted
// form, keeping pre-custom job IDs (and their cached results) valid.
func TestJobIDEmptyCustomWorkloadsIsOmitted(t *testing.T) {
	s := DefaultSpec()
	s.CustomWorkloads = []custom.Definition{}
	id, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id != goldenDefaultID {
		t.Errorf("empty CustomWorkloads slice changed the job ID: %s != %s", id, goldenDefaultID)
	}
}
