package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/bigdata/custom"
	"repro/internal/cluster/hier"
	"repro/internal/obs"
)

// JobRequest is the HTTP submission body: a friendly, partial view of a
// JobSpec. Unset fields take the paper defaults; Spec (when present)
// overrides everything else for full low-level control.
type JobRequest struct {
	// Mode selects the job kind: "analyze" (default) or "observations"
	// (characterize-only; result is the raw observation matrix).
	Mode string `json:"mode,omitempty"`

	// Workloads selects suite members by name; empty = every workload the
	// request defines (built-ins + custom).
	Workloads []string `json:"workloads,omitempty"`

	// CustomWorkloads extends the suite with declarative scenario
	// definitions (see internal/bigdata/custom); Presets names embedded
	// preset families (e.g. "StreamIngest") whose definitions are
	// materialized into the spec before hashing, so the job ID always
	// reflects the definition content, never just its name.
	CustomWorkloads []custom.Definition `json:"custom_workloads,omitempty"`
	Presets         []string            `json:"presets,omitempty"`

	Seed         *uint64  `json:"seed,omitempty"`         // suite + cluster seed
	Scale        *float64 `json:"scale,omitempty"`        // dataset scale divisor
	Nodes        *int     `json:"nodes,omitempty"`        // slave nodes
	Instructions *int     `json:"instructions,omitempty"` // per core per node
	Slices       *int     `json:"slices,omitempty"`       // PMC scheduling slices
	Runs         *int     `json:"runs,omitempty"`         // measurement repetitions
	Jitter       *float64 `json:"jitter,omitempty"`       // execution variation σ
	Multiplex    *bool    `json:"multiplex,omitempty"`    // PMC time multiplexing

	KMin     *int    `json:"kmin,omitempty"`     // BIC scan lower bound
	KMax     *int    `json:"kmax,omitempty"`     // BIC scan upper bound
	Restarts *int    `json:"restarts,omitempty"` // K-means restarts
	Linkage  *string `json:"linkage,omitempty"`  // single | complete | average

	// Spec, if set, is used verbatim (after normalization) and the
	// convenience fields above must be absent.
	Spec *JobSpec `json:"spec,omitempty"`
}

// ToSpec materializes the request into a full JobSpec.
func (r *JobRequest) ToSpec() (JobSpec, error) {
	if r.Spec != nil {
		if r.Mode != "" || len(r.Workloads) != 0 || len(r.CustomWorkloads) != 0 ||
			len(r.Presets) != 0 || r.Seed != nil || r.Scale != nil || r.Nodes != nil ||
			r.Instructions != nil || r.Slices != nil || r.Runs != nil || r.Jitter != nil ||
			r.Multiplex != nil || r.KMin != nil || r.KMax != nil || r.Restarts != nil ||
			r.Linkage != nil {
			return JobSpec{}, fmt.Errorf("service: spec and convenience fields are mutually exclusive")
		}
		return *r.Spec, nil
	}
	s := DefaultSpec()
	s.Mode = r.Mode
	s.Workloads = r.Workloads
	s.CustomWorkloads = r.CustomWorkloads
	if len(r.Presets) > 0 {
		defs, err := custom.PresetsByName(r.Presets)
		if err != nil {
			return JobSpec{}, err
		}
		s.CustomWorkloads = append(append([]custom.Definition(nil), s.CustomWorkloads...), defs...)
	}
	if r.Seed != nil {
		s.Suite.Seed = *r.Seed
		s.Cluster.Seed = *r.Seed
	}
	if r.Scale != nil {
		s.Suite.Scale = *r.Scale
	}
	if r.Nodes != nil {
		s.Cluster.SlaveNodes = *r.Nodes
	}
	if r.Instructions != nil {
		s.Cluster.InstructionsPerCore = *r.Instructions
	}
	if r.Slices != nil {
		s.Cluster.Slices = *r.Slices
	}
	if r.Runs != nil {
		s.Cluster.Runs = *r.Runs
	}
	if r.Jitter != nil {
		s.Cluster.ExecutionJitter = *r.Jitter
	}
	if r.Multiplex != nil {
		s.Cluster.Monitor.Multiplex = *r.Multiplex
	}
	if r.KMin != nil {
		s.Analysis.KMin = *r.KMin
	}
	if r.KMax != nil {
		s.Analysis.KMax = *r.KMax
	}
	if r.Restarts != nil {
		s.Analysis.KMeans.Restarts = *r.Restarts
	}
	if r.Linkage != nil {
		switch strings.ToLower(*r.Linkage) {
		case "single":
			s.Analysis.Linkage = hier.Single
		case "complete":
			s.Analysis.Linkage = hier.Complete
		case "average":
			s.Analysis.Linkage = hier.Average
		default:
			return JobSpec{}, fmt.Errorf("service: unknown linkage %q (single, complete, average)", *r.Linkage)
		}
	}
	return s, nil
}

// NewHandler builds the bdservd HTTP API around a manager:
//
//	POST   /v1/jobs            submit (dedupes; replays cached results)
//	GET    /v1/jobs            list all jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result canonical result JSON
//	GET    /v1/jobs/{id}/events NDJSON progress stream (replay + live)
//	GET    /v1/jobs/{id}/trace  trace export (?format=chrome for trace_event)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/cache/stats     result-cache counters
//	GET    /v1/status          full operational snapshot (see StatusSnapshot)
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            liveness
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.reg.Handler())
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Status())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A journal that has lost a record degrades the daemon: running
		// jobs still complete (the result cache stays authoritative), but
		// restart replay can no longer be trusted to be complete. The 503
		// also takes a disk-failing shard worker out of its coordinator's
		// rotation — probes fail, the breaker opens.
		if ok, detail := m.JournalHealth(); !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "degraded", "journal": detail,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.CacheStats())
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req JobRequest
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		spec, err := req.ToSpec()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// X-BD-Trace (when a coordinator set one) joins this job's spans
		// to the caller's trace; SubmitTraced validates before trusting.
		st, err := m.SubmitTraced(spec, r.Header.Get(obs.TraceHeader))
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		case st.State.terminal():
			writeJSON(w, http.StatusOK, st)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, ok := m.Result(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no result for job %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !m.Cancel(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		st, _ := m.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		export, ok := m.Trace(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q (unknown, evicted, or tracing disabled)", r.PathValue("id")))
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			data, err := obs.ChromeTrace(export)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
			return
		}
		writeJSON(w, http.StatusOK, export)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		idx := 0
		for {
			evs, more, done := j.EventsSince(idx)
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			idx += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
			if done {
				return
			}
			select {
			case <-more:
			case <-r.Context().Done():
				return
			}
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
