package report

import (
	"strings"
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim/machine"
)

func TestTableAligned(t *testing.T) {
	out := Table([]string{"A", "LongHeader"}, [][]string{{"x", "1"}, {"longer", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "LongHeader") || !strings.Contains(lines[3], "longer") {
		t.Errorf("table content missing:\n%s", out)
	}
}

func TestScatterMarks(t *testing.T) {
	pts := []Point{
		{X: -1, Y: -1, Mark: 'H'},
		{X: 1, Y: 1, Mark: 'S'},
	}
	out := Scatter("t", "x", "y", pts, 20, 10)
	if !strings.Contains(out, "H") || !strings.Contains(out, "S") {
		t.Errorf("scatter missing marks:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	out := Scatter("t", "x", "y", []Point{{X: 0, Y: 0, Mark: '*'}}, 20, 10)
	if !strings.Contains(out, "*") {
		t.Errorf("degenerate scatter missing point:\n%s", out)
	}
	if Scatter("t", "x", "y", nil, 20, 10) == "" {
		t.Error("empty scatter should still render a frame")
	}
}

func TestBarsSigned(t *testing.T) {
	out := Bars("title", []string{"pos", "neg"}, []float64{2, -1}, 10)
	if !strings.Contains(out, "pos") || !strings.Contains(out, "#") {
		t.Errorf("bars missing content:\n%s", out)
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Bars did not panic")
		}
	}()
	Bars("t", []string{"a"}, []float64{1, 2}, 10)
}

func TestTable2ListsAll45(t *testing.T) {
	out := Table2()
	for _, name := range []string{"LOAD", "SNOOP HITM", "FP TO MEM", "UOPS TO INS"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table2 missing %q", name)
		}
	}
	if !strings.Contains(out, "45") {
		t.Errorf("Table2 missing numbering")
	}
}

func TestTable3MatchesConfig(t *testing.T) {
	out := Table3(machine.Westmere())
	for _, want := range []string{"12 MB", "32 KB", "512 entries", "64 entries", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1FromSuite(t *testing.T) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Table1(suite)
	for _, want := range []string{"Sort", "PageRank", "Hadoop & Spark", "Hive & Shark", "80 GB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	// 16 algorithms, one row each.
	if got := strings.Count(out, "\n"); got < 17 {
		t.Errorf("Table1 too short: %d lines", got)
	}
}

// analysisFixture builds a small end-to-end analysis for rendering tests.
func analysisFixture(t *testing.T) (*core.Analysis, *core.Observations) {
	t.Helper()
	r := rng.New(99)
	ds := &core.Dataset{}
	// Use the real 45 metric names so Observe works.
	names := []string{}
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = suite
	cfg := cluster.DefaultConfig()
	_ = cfg
	for _, m := range coreMetricNames() {
		names = append(names, m)
	}
	ds.Metrics = names
	algos := []string{"Sort", "Grep", "WordCount", "Kmeans", "PageRank", "Bayes"}
	for i := 0; i < 6; i++ {
		for s, prefix := range []string{"H-", "S-"} {
			row := make([]float64, len(names))
			// Several independent latent factors so the fixture retains
			// multiple PCs under Kaiser's criterion.
			f1 := float64(s)*2 + r.NormFloat64()*0.3
			f2 := float64(i) * 0.5
			f3 := r.NormFloat64()
			f4 := r.NormFloat64()
			for j := range row {
				switch j % 4 {
				case 0:
					row[j] = f1 + r.NormFloat64()*0.2
				case 1:
					row[j] = f2 + r.NormFloat64()*0.2
				case 2:
					row[j] = f3 + r.NormFloat64()*0.2
				default:
					row[j] = f4 + f1*0.3 + r.NormFloat64()*0.2
				}
			}
			ds.Labels = append(ds.Labels, prefix+algos[i])
			ds.Rows = append(ds.Rows, row)
		}
	}
	acfg := core.DefaultAnalysis()
	acfg.KMax = 6
	an, err := core.Analyze(ds, acfg)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := an.Observe()
	if err != nil {
		t.Fatal(err)
	}
	return an, obs
}

func coreMetricNames() []string {
	// Use the real catalog names for fidelity of rendering tests.
	return metricNamesForTest()
}

func TestPaperArtifactsRender(t *testing.T) {
	an, obs := analysisFixture(t)
	if out := Figure1(an); !strings.Contains(out, "H-Sort") || !strings.Contains(out, "merge") {
		t.Errorf("Figure1 incomplete:\n%.300s", out)
	}
	if out := Figure2(an); !strings.Contains(out, "PC1") {
		t.Errorf("Figure2 incomplete:\n%.300s", out)
	}
	_ = Figure3(an) // may be skipped for few PCs; must not panic
	if out := Figure4(an); !strings.Contains(out, "PC1") || !strings.Contains(out, "LOAD") {
		t.Errorf("Figure4 incomplete:\n%.300s", out)
	}
	if out, err := Figure5(an, obs); err != nil || !strings.Contains(out, "FIGURE 5") {
		t.Errorf("Figure5 err=%v out:\n%.300s", err, out)
	}
	if out := Table4(an); !strings.Contains(out, "Cluster") || !strings.Contains(out, "BIC") {
		t.Errorf("Table4 incomplete:\n%.300s", out)
	}
	if out := Table5(an); !strings.Contains(out, "Farthest") || !strings.Contains(out, "Nearest") {
		t.Errorf("Table5 incomplete:\n%.300s", out)
	}
	if out := Figure6(an); !strings.Contains(out, "Kiviat") {
		t.Errorf("Figure6 incomplete:\n%.300s", out)
	}
	if out := ObservationsReport(obs); !strings.Contains(out, "Obs 6") || !strings.Contains(out, "61.48%") {
		t.Errorf("ObservationsReport incomplete:\n%.300s", out)
	}
}

func TestKiviatRenders(t *testing.T) {
	out := Kiviat("S-Kmeans", []string{"PC1", "PC2"}, []float64{3, -2}, 12)
	if !strings.Contains(out, "S-Kmeans") || !strings.Contains(out, "PC2") {
		t.Errorf("Kiviat incomplete:\n%s", out)
	}
}
