package report

import "repro/internal/perf"

// metricNamesForTest exposes the real Table II metric names to fixtures.
func metricNamesForTest() []string { return perf.MetricNames() }
