// Package report renders the paper's tables and figures as text: fixed-
// width tables, ASCII scatter plots (Figs. 2–3), horizontal bar charts
// (Figs. 4–5), and Kiviat-style profiles (Fig. 6). The dendrogram of
// Fig. 1 is rendered by the hier package itself.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders a fixed-width text table with a header rule.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Point is one labeled scatter point.
type Point struct {
	X, Y  float64
	Label string
	// Mark distinguishes series ('H' vs 'S' in Figs. 2–3).
	Mark byte
}

// Scatter renders points on a width×height character grid with axis
// ranges annotated. Points landing on the same cell show the later mark.
func Scatter(title, xlabel, ylabel string, points []Point, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(points) == 0 || minX == maxX {
		minX, maxX = -1, 1
	}
	if len(points) == 0 || minY == maxY {
		minY, maxY = -1, 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - y
		mark := p.Mark
		if mark == 0 {
			mark = '*'
		}
		grid[row][x] = mark
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s range [%.3g, %.3g] (vertical), %s range [%.3g, %.3g] (horizontal)\n",
		ylabel, minY, maxY, xlabel, minX, maxX)
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return b.String()
}

// Bars renders a labeled horizontal bar chart. Values may be negative;
// bars extend from a center axis. width is the half-width in characters
// for the largest |value|.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("report: %d labels for %d values", len(labels), len(values)))
	}
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (full bar = %.4g)\n", title, maxAbs)
	for i, v := range values {
		n := int(math.Abs(v) / maxAbs * float64(width))
		var bar string
		if v >= 0 {
			bar = strings.Repeat(" ", width) + "|" + strings.Repeat("#", n)
		} else {
			bar = strings.Repeat(" ", width-n) + strings.Repeat("#", n) + "|"
		}
		fmt.Fprintf(&b, "%-*s %s %9.4g\n", labelW, labels[i], bar, v)
	}
	return b.String()
}

// Kiviat renders one workload's profile over the given axes (the paper's
// Fig. 6 Kiviat diagrams, shown as a signed bar profile per axis — the
// same information radially plotted in the paper).
func Kiviat(name string, axes []string, values []float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kiviat: %s\n", name)
	b.WriteString(Bars("", axes, values, width))
	return b.String()
}
