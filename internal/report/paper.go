package report

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/sim/machine"
)

// Table1 reproduces the workload inventory (data analysis workloads with
// problem sizes, data types and software stacks).
func Table1(suite []workloads.Workload) string {
	headers := []string{"Category", "Workload", "Problem Size", "Data Type", "Software Stack"}
	seen := map[string]bool{}
	var rows [][]string
	for _, w := range suite {
		if seen[w.Algorithm] {
			continue
		}
		seen[w.Algorithm] = true
		stackPair := "Hadoop & Spark"
		if w.Category == workloads.CategoryInteractive {
			stackPair = "Hive & Shark"
		}
		rows = append(rows, []string{w.Category, w.Algorithm, w.ProblemSize, w.DataType, stackPair})
	}
	return "TABLE I. REPRESENTATIVE DATA ANALYSIS WORKLOADS\n" + Table(headers, rows)
}

// Table2 reproduces the 45-metric catalog.
func Table2() string {
	headers := []string{"Category", "No.", "Metric Name", "Description"}
	var rows [][]string
	for _, m := range perf.Catalog() {
		rows = append(rows, []string{string(m.Category), strconv.Itoa(m.No), m.Name, m.Description})
	}
	return "TABLE II. MICROARCHITECTURE LEVEL METRICS\n" + Table(headers, rows)
}

// Table3 reproduces the hardware configuration details.
func Table3(cfg machine.Config) string {
	kb := func(b int) string { return fmt.Sprintf("%d KB", b>>10) }
	rows := [][]string{
		{"CPU Type", "Simulated Intel Xeon E5645 (Westmere) model"},
		{"# Cores", fmt.Sprintf("%d cores per socket", cfg.CoresPerSocket)},
		{"# Threads per Core", "1 thread (hyperthreading disabled)"},
		{"# Sockets", strconv.Itoa(cfg.Sockets)},
		{"ITLB", fmt.Sprintf("%d-way set associative, %d entries", cfg.ITLB.Ways, cfg.ITLB.Entries)},
		{"DTLB", fmt.Sprintf("%d-way set associative, %d entries", cfg.DTLB.Ways, cfg.DTLB.Entries)},
		{"L2 Shared TLB", fmt.Sprintf("%d-way associative, %d entries", cfg.STLB.Ways, cfg.STLB.Entries)},
		{"L1 DCache", fmt.Sprintf("%s, %d-way associative, %d byte/line", kb(cfg.L1D.SizeB), cfg.L1D.Ways, cfg.L1D.LineB)},
		{"L1 ICache", fmt.Sprintf("%s, %d-way associative, %d byte/line", kb(cfg.L1I.SizeB), cfg.L1I.Ways, cfg.L1I.LineB)},
		{"L2 Cache", fmt.Sprintf("%s, %d-way associative, %d byte/line", kb(cfg.L2.SizeB), cfg.L2.Ways, cfg.L2.LineB)},
		{"L3 Cache", fmt.Sprintf("%d MB, %d-way associative, %d byte/line", cfg.L3.SizeB>>20, cfg.L3.Ways, cfg.L3.LineB)},
		{"Turbo-Boost / HT", "Disabled (not modeled)"},
	}
	return "TABLE III. DETAILS OF THE HARDWARE CONFIGURATION\n" + Table([]string{"Item", "Value"}, rows)
}

// Figure1 reproduces the similarity dendrogram of Hadoop and Spark
// workloads.
func Figure1(an *core.Analysis) string {
	return "FIGURE 1. Similarity of Hadoop (H) and Spark (S) workloads\n" +
		fmt.Sprintf("(%d PCs retaining %.2f%% variance, %s linkage)\n\n",
			an.NumPCs, an.Variance*100, "single") +
		an.Dendrogram.Render(56)
}

// scatterOf builds the PCa-vs-PCb plot.
func scatterOf(an *core.Analysis, a, b int, title string) string {
	var pts []Point
	for i, l := range an.Dataset.Labels {
		mark := byte('*')
		switch core.StackOf(l) {
		case "Hadoop":
			mark = 'H'
		case "Spark":
			mark = 'S'
		}
		pts = append(pts, Point{X: an.Scores.At(i, a), Y: an.Scores.At(i, b), Label: l, Mark: mark})
	}
	out := Scatter(title, fmt.Sprintf("PC%d", a+1), fmt.Sprintf("PC%d", b+1), pts, 64, 20)
	var coords []string
	for _, p := range pts {
		coords = append(coords, fmt.Sprintf("  %-16s PC%d=%8.3f PC%d=%8.3f", p.Label, a+1, p.X, b+1, p.Y))
	}
	return out + strings.Join(coords, "\n") + "\n"
}

// Figure2 reproduces the PC1/PC2 scatter plot.
func Figure2(an *core.Analysis) string {
	if an.NumPCs < 2 {
		return fmt.Sprintf("FIGURE 2. Skipped: only %d PC retained by Kaiser's criterion\n", an.NumPCs)
	}
	return "FIGURE 2. Workloads on the first and second principal components\n" +
		scatterOf(an, 0, 1, "H = Hadoop-based, S = Spark-based")
}

// Figure3 reproduces the PC3/PC4 scatter plot (requires ≥4 PCs; with
// fewer it reports the limitation).
func Figure3(an *core.Analysis) string {
	if an.NumPCs < 4 {
		return fmt.Sprintf("FIGURE 3. Skipped: only %d PCs retained by Kaiser's criterion\n", an.NumPCs)
	}
	return "FIGURE 3. Workloads on the third and fourth principal components\n" +
		scatterOf(an, 2, 3, "H = Hadoop-based, S = Spark-based")
}

// Figure4 reproduces the factor loadings of the first four PCs.
func Figure4(an *core.Analysis) string {
	n := an.NumPCs
	if n > 4 {
		n = 4
	}
	var b strings.Builder
	b.WriteString("FIGURE 4. Factor loadings for all workloads (first four PCs)\n\n")
	headers := []string{"Metric"}
	for pc := 0; pc < n; pc++ {
		headers = append(headers, fmt.Sprintf("PC%d", pc+1))
	}
	var rows [][]string
	for m, name := range an.Dataset.Metrics {
		row := []string{name}
		for pc := 0; pc < n; pc++ {
			row = append(row, fmt.Sprintf("%+.3f", an.PCA.Loadings.At(m, pc)))
		}
		rows = append(rows, row)
	}
	b.WriteString(Table(headers, rows))
	return b.String()
}

// Figure5 reproduces the Hadoop-vs-Spark comparison on the metrics that
// dominate the stack-separating component, Spark-normalized.
func Figure5(an *core.Analysis, obs *core.Observations) (string, error) {
	pc := an.SeparatingPC()
	rows, err := an.Fig5(obs, pc, 0.5)
	if err != nil {
		return "", err
	}
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		side := "neg"
		if !r.NegativeDominance {
			side = "pos"
		}
		labels[i] = fmt.Sprintf("%s (%s)", r.Name, side)
		values[i] = r.HadoopOverSpark
	}
	title := fmt.Sprintf("FIGURE 5. Metrics causing Hadoop and Spark to behave differently\n"+
		"(PC%d dominates the stack split; bars = Hadoop mean / Spark mean)", pc+1)
	return Bars(title, labels, values, 40), nil
}

// Table4 reproduces the K-means clustering result.
func Table4(an *core.Analysis) string {
	headers := []string{"Cluster", "Workloads", "Number"}
	var rows [][]string
	for c := 0; c < an.KBest.K; c++ {
		var members []string
		for _, i := range an.KBest.Members(c) {
			members = append(members, an.Dataset.Labels[i])
		}
		rows = append(rows, []string{strconv.Itoa(c + 1), strings.Join(members, ", "), strconv.Itoa(len(members))})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV. THE RESULT OF K-MEANS CLUSTERING ALGORITHM (K=%d by BIC)\n", an.KBest.K)
	b.WriteString(Table(headers, rows))
	b.WriteString("\nBIC scan:\n")
	for _, r := range an.KAll {
		fmt.Fprintf(&b, "  K=%2d  BIC=%10.2f\n", r.K, r.BIC)
	}
	return b.String()
}

// Table5 reproduces the representative selection under both policies.
func Table5(an *core.Analysis) string {
	headers := []string{"Approach", "Representative Workloads", "Maximal Linkage Distance"}
	fmtReps := func(reps []core.Representative) string {
		var parts []string
		for _, r := range reps {
			parts = append(parts, fmt.Sprintf("%s (%d)", r.Workload, r.ClusterSize))
		}
		return strings.Join(parts, ", ")
	}
	rows := [][]string{
		{"Nearest to Cluster Center", fmtReps(an.NearestReps), fmt.Sprintf("%.2f", an.NearestMaxLinkage)},
		{"Farthest from Cluster Center", fmtReps(an.FarthestReps), fmt.Sprintf("%.2f", an.FarthestMaxLinkage)},
	}
	return "TABLE V. REPRESENTATIVE WORKLOADS CHOSEN BY DIFFERENT APPROACHES\n" + Table(headers, rows)
}

// Figure6 reproduces the Kiviat diagrams of the representative workloads
// (farthest-from-center policy, as the paper selects).
func Figure6(an *core.Analysis) string {
	axes := make([]string, an.NumPCs)
	for i := range axes {
		axes[i] = fmt.Sprintf("PC%d", i+1)
	}
	var b strings.Builder
	b.WriteString("FIGURE 6. Kiviat diagrams of the representative workloads\n\n")
	for _, r := range an.FarthestReps {
		vals := make([]float64, an.NumPCs)
		for pc := 0; pc < an.NumPCs; pc++ {
			vals[pc] = an.Scores.At(r.Index, pc)
		}
		b.WriteString(Kiviat(r.Workload, axes, vals, 24))
		b.WriteByte('\n')
	}
	return b.String()
}

// ObservationsReport renders the §V observation statistics with the
// paper's reference values alongside.
func ObservationsReport(obs *core.Observations) string {
	rows := [][]string{
		{"Obs 1: same-stack fraction of first-iteration pairs",
			fmt.Sprintf("%.0f%%", obs.SameStackFraction*100), "80%"},
		{"Obs 2: same-algorithm cross-stack first-iteration pairs",
			strings.Join(obs.SameAlgorithmCrossStackPairs, ", "), "Projection only"},
		{"Obs 5: mean within-stack linkage distance Hadoop",
			fmt.Sprintf("%.2f", obs.MeanCopheneticHadoop), "lower than Spark"},
		{"Obs 5: mean within-stack linkage distance Spark",
			fmt.Sprintf("%.2f", obs.MeanCopheneticSpark), "higher than Hadoop"},
		{"Obs 6: Spark/Hadoop L3 miss ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopL3Miss), "≈2"},
		{"Obs 7: data STLB hit rate (Hadoop)",
			fmt.Sprintf("%.2f%%", obs.STLBHitRateHadoop*100), "61.48%"},
		{"Obs 7: data STLB hit rate (Spark)",
			fmt.Sprintf("%.2f%%", obs.STLBHitRateSpark*100), "50.80%"},
		{"Obs 7: Spark/Hadoop DTLB miss ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopDTLBMiss), ">1"},
		{"Obs 8: Hadoop/Spark L1I miss ratio",
			fmt.Sprintf("%.2f", obs.HadoopToSparkL1IMiss), "≈1.3"},
		{"Obs 8: Hadoop/Spark fetch stall ratio",
			fmt.Sprintf("%.2f", obs.HadoopToSparkFetchStall), ">1"},
		{"Obs 8: Spark/Hadoop resource stall ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopResStall), ">1"},
		{"Obs 9: Spark/Hadoop SNOOP HIT ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopSnoopHit), ">1"},
		{"Obs 9: Spark/Hadoop SNOOP HITE ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopSnoopHitE), ">1"},
		{"Obs 9: Spark/Hadoop SNOOP HITM ratio",
			fmt.Sprintf("%.2f", obs.SparkToHadoopSnoopHitM), ">1"},
	}
	return "SECTION V OBSERVATIONS (measured vs paper)\n" +
		Table([]string{"Observation", "Measured", "Paper"}, rows)
}
