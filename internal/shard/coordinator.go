package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchio"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/client"
)

// Config configures the coordinator-side executor.
type Config struct {
	// Workers is the set of bdservd base URLs the grid is sharded over.
	Workers []string
	// HTTPClient overrides the transport used for all workers. Nil uses
	// a default with a response-header timeout, so a worker that accepts
	// connections but never answers fails the attempt instead of hanging
	// it.
	HTTPClient *http.Client
	// StallTimeout bounds worker *unresponsiveness* per shard attempt:
	// after this long with no event-stream activity the coordinator
	// probes the worker's job status, and only an unanswered probe
	// abandons the attempt and fails the shard over. A shard legitimately
	// queued behind other jobs on a busy-but-healthy worker therefore
	// waits indefinitely (the probes keep succeeding), while a worker
	// that is connected but dead — SIGSTOP, network blackhole — is
	// detected within one stall period. Default 5m; negative disables.
	StallTimeout time.Duration
	// Parallelism bounds the coordinator-side analysis stage (0 =
	// GOMAXPROCS). It never affects results.
	Parallelism int
}

// Executor fans a job's grid out across bdservd workers and merges the
// shard results deterministically. Its Execute method satisfies
// service.ExecuteFunc, so a stock service.Manager (queue, dedupe, result
// cache, journal, HTTP API) becomes a coordinator by plugging it in.
type Executor struct {
	cfg     Config
	clients []*client.Client
}

// New builds an executor over the configured workers.
func New(cfg Config) (*Executor, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("shard: no workers configured")
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 5 * time.Minute
	}
	if cfg.HTTPClient == nil {
		// No overall timeout (event streams are long-lived), but bound
		// the silent phases of each request.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 30 * time.Second
		cfg.HTTPClient = &http.Client{Transport: tr}
	}
	e := &Executor{cfg: cfg}
	for _, base := range cfg.Workers {
		c := client.New(base)
		c.HTTPClient = cfg.HTTPClient
		e.clients = append(e.clients, c)
	}
	return e, nil
}

// progressAgg multiplexes per-shard cell counts into one monotone
// (done, total) pair over the full grid for the merged event stream.
type progressAgg struct {
	mu       sync.Mutex
	perShard []int
	total    int
	emitted  int
	progress core.Progress
}

// report records shard sh at done cells (monotone per shard — a failover
// restart re-counts from zero but never regresses the aggregate).
func (a *progressAgg) report(sh, done int) {
	if a.progress == nil {
		return
	}
	a.mu.Lock()
	if done > a.perShard[sh] {
		a.perShard[sh] = done
	}
	sum := 0
	for _, d := range a.perShard {
		sum += d
	}
	if sum <= a.emitted {
		a.mu.Unlock()
		return
	}
	a.emitted = sum
	a.mu.Unlock()
	a.progress(core.StageCharacterize, sum, a.total)
}

// Execute implements service.ExecuteFunc: plan → fan out → multiplex
// progress → merge → (for analyze jobs) run the statistical pipeline
// once, coordinator-side. The merged result is byte-identical to a
// single-daemon run of the same spec: per-cell seeds are functions of
// absolute grid coordinates, cells are re-assembled in canonical order,
// and the node/run reduction and analysis go through the same code path.
func (e *Executor) Execute(ctx context.Context, spec service.JobSpec, progress core.Progress) ([]byte, error) {
	spec, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	shards, err := Plan(spec, len(e.clients))
	if err != nil {
		return nil, err
	}
	suite, err := spec.ResolveSuite()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	runs, nodes := spec.Cluster.Runs, spec.Cluster.SlaveNodes

	agg := &progressAgg{
		perShard: make([]int, len(shards)),
		total:    len(names) * runs * nodes,
		progress: progress,
	}
	if progress != nil {
		progress(core.StageCharacterize, 0, 0)
	}

	// Fan out: every shard runs concurrently; the first failure cancels
	// the siblings.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	oms := make([]*core.ObservationMatrix, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oms[i], errs[i] = e.runShard(sctx, shards[i], spec, agg)
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A shard's permanent failure cancels its siblings, so their errors
	// are bare context.Canceled: report the first *causal* failure (in
	// shard order) rather than a cancellation symptom, so the job settles
	// as failed with the real reason instead of canceled.
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	om, err := merge(spec, names, runs, nodes, shards, oms)
	if err != nil {
		return nil, err
	}
	if spec.Mode == service.ModeObservations {
		return benchio.MarshalCanonical(benchio.EncodeObservations(om))
	}
	acfg := spec.Analysis
	acfg.Parallelism = e.cfg.Parallelism
	an, err := core.AnalyzeObservationsCtx(ctx, om, acfg, progress)
	if err != nil {
		return nil, err
	}
	return benchio.MarshalCanonical(benchio.EncodeAnalysis(an))
}

// runShard dispatches one shard, trying each worker at most once —
// starting at the shard's home worker (Index mod workers, which spreads
// the initial load) and failing over to the next on any error: submit
// rejection, unreachable worker, broken event stream, or worker-side job
// failure.
func (e *Executor) runShard(ctx context.Context, sh Shard, full service.JobSpec, agg *progressAgg) (*core.ObservationMatrix, error) {
	sub := sh.Spec(full)
	cells := len(sh.Workloads) * full.Cluster.Runs * sh.Nodes
	n := len(e.clients)
	var lastErr error
	for attempt := 0; attempt < n; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wi := (sh.Index + attempt) % n
		om, err := e.runShardOn(ctx, e.clients[wi], sub, sh, agg)
		if err == nil {
			agg.report(sh.Index, cells)
			return om, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = fmt.Errorf("worker %s: %w", e.cfg.Workers[wi], err)
	}
	return nil, fmt.Errorf("shard: shard %d exhausted all %d workers: %w", sh.Index, n, lastErr)
}

// shardWatch is the stall watchdog state for one shard attempt: the last
// activity timestamp plus an optional liveness probe installed once the
// worker-side job ID is known.
type shardWatch struct {
	last  atomic.Int64
	probe atomic.Value // func(context.Context) error
}

func (w *shardWatch) touch() { w.last.Store(time.Now().UnixNano()) }

// runShardOn runs one shard attempt against one worker: submit, stream
// progress events into the aggregate, fetch and decode the observation
// matrix, and sanity-check its shape against the shard plan. The whole
// attempt runs under a stall watchdog: when the worker goes silent past
// StallTimeout, its job status is probed, and only an unanswered probe
// abandons the attempt — so a healthy worker whose queue is merely busy
// is never failed over, while a dead-but-connected one is.
func (e *Executor) runShardOn(ctx context.Context, c *client.Client, sub service.JobSpec, sh Shard, agg *progressAgg) (*core.ObservationMatrix, error) {
	stall := e.cfg.StallTimeout
	if stall <= 0 {
		return e.attemptShard(ctx, c, sub, sh, agg, &shardWatch{})
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	w := &shardWatch{}
	w.touch()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := stall / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-actx.Done():
				return
			case <-t.C:
				if time.Since(time.Unix(0, w.last.Load())) <= stall {
					continue
				}
				// Silent past the bound: distinguish "busy" from "dead"
				// with a status probe before giving up on the worker.
				if p, ok := w.probe.Load().(func(context.Context) error); ok && p != nil {
					pctx, pcancel := context.WithTimeout(actx, stall/4)
					err := p(pctx)
					pcancel()
					if err == nil {
						w.touch()
						continue
					}
				}
				cancel()
				return
			}
		}
	}()

	om, err := e.attemptShard(actx, c, sub, sh, agg, w)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The watchdog (not the job) aborted the attempt. Report it as a
		// worker *failure* — deliberately not wrapping the underlying
		// context.Canceled, which would make an all-workers-stalled job
		// settle as canceled instead of failed.
		err = fmt.Errorf("worker unresponsive (no activity for %v and status probe failed): %v", stall, err)
	}
	return om, err
}

// attemptShard is the watchdog-free body of one shard attempt.
func (e *Executor) attemptShard(ctx context.Context, c *client.Client, sub service.JobSpec, sh Shard, agg *progressAgg, w *shardWatch) (*core.ObservationMatrix, error) {
	st, err := c.SubmitSpec(ctx, sub)
	if err != nil {
		return nil, err
	}
	w.touch()
	// With the job ID known, silence can be disambiguated: the watchdog
	// probes the job's status and only an unanswered probe means a dead
	// worker (a queued shard on a busy worker answers and keeps waiting).
	w.probe.Store(func(pctx context.Context) error {
		_, err := c.Job(pctx, st.ID)
		return err
	})
	switch st.State {
	case service.StateDone:
		// Cache hit on the worker: the matrix is immediately fetchable.
	case service.StateFailed, service.StateCanceled:
		return nil, fmt.Errorf("shard job %s born %s: %s", st.ID, st.State, st.Error)
	default:
		// Follow the worker's NDJSON stream, multiplexing its per-cell
		// progress into the coordinator's merged stream. The worker job
		// is deliberately NOT canceled when this attempt is abandoned:
		// worker jobs are content-addressed and deduplicated, so another
		// coordinator job (or a concurrent coordinator) may be following
		// the very same worker job, and its result lands in the worker's
		// cache either way — canceling would kill an innocent consumer's
		// shard to save already-mostly-spent compute.
		err := c.Events(ctx, st.ID, func(ev service.Event) error {
			w.touch()
			switch ev.Type {
			case "progress":
				agg.report(sh.Index, ev.Done)
			case "error":
				return fmt.Errorf("shard job %s failed: %s", st.ID, ev.Error)
			case "state":
				if ev.State == service.StateCanceled {
					return fmt.Errorf("shard job %s canceled on worker", st.ID)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	data, err := c.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	w.touch()
	var oj benchio.ObservationsJSON
	if err := json.Unmarshal(data, &oj); err != nil {
		return nil, fmt.Errorf("decoding shard result: %w", err)
	}
	om, err := oj.Observations()
	if err != nil {
		return nil, err
	}
	if len(om.Labels) != len(sh.Workloads) {
		return nil, fmt.Errorf("shard result has %d workloads, want %d", len(om.Labels), len(sh.Workloads))
	}
	for i, name := range sh.Workloads {
		if om.Labels[i] != name {
			return nil, fmt.Errorf("shard result workload %d is %q, want %q", i, om.Labels[i], name)
		}
	}
	if om.Runs() != sub.Cluster.Runs || om.Nodes() != sh.Nodes {
		return nil, fmt.Errorf("shard result extents %d runs × %d nodes, want %d×%d",
			om.Runs(), om.Nodes(), sub.Cluster.Runs, sh.Nodes)
	}
	if om.NodeOffset != sub.Cluster.NodeOffset {
		return nil, fmt.Errorf("shard result node offset %d, want %d", om.NodeOffset, sub.Cluster.NodeOffset)
	}
	return om, nil
}

// merge re-assembles the shard matrices into the full grid in canonical
// cell order — workloads in suite order, then runs, then absolute node
// index — verifying exact coverage.
func merge(spec service.JobSpec, names []string, runs, nodes int, shards []Shard, oms []*core.ObservationMatrix) (*core.ObservationMatrix, error) {
	var metrics []string
	cells := make([][][][]float64, len(names))
	for w := range cells {
		cells[w] = make([][][]float64, runs)
		for r := range cells[w] {
			cells[w][r] = make([][]float64, nodes)
		}
	}
	for si, sh := range shards {
		om := oms[si]
		if om == nil {
			return nil, fmt.Errorf("shard: shard %d produced no matrix", si)
		}
		if metrics == nil {
			metrics = om.Metrics
		} else {
			// Columns must agree exactly across shards — a mixed-version
			// fleet with reordered or renamed metrics would otherwise be
			// stitched together silently into a wrong (but confidently
			// hashed) result.
			if len(metrics) != len(om.Metrics) {
				return nil, fmt.Errorf("shard: shard %d has %d metrics, want %d", si, len(om.Metrics), len(metrics))
			}
			for mi := range metrics {
				if metrics[mi] != om.Metrics[mi] {
					return nil, fmt.Errorf("shard: shard %d metric %d is %q, want %q", si, mi, om.Metrics[mi], metrics[mi])
				}
			}
		}
		for wi := range om.Labels {
			w := sh.WorkloadOffset + wi
			if w >= len(names) || names[w] != om.Labels[wi] {
				return nil, fmt.Errorf("shard: shard %d workload %q misaligned", si, om.Labels[wi])
			}
			for r := 0; r < runs; r++ {
				for nd := 0; nd < sh.Nodes; nd++ {
					tgt := sh.NodeOffset + nd
					if tgt >= nodes || cells[w][r][tgt] != nil {
						return nil, fmt.Errorf("shard: cell [%d][%d][%d] double-covered or out of range", w, r, tgt)
					}
					cells[w][r][tgt] = om.Cells[wi][r][nd]
				}
			}
		}
	}
	for w := range cells {
		for r := range cells[w] {
			for nd := range cells[w][r] {
				if cells[w][r][nd] == nil {
					return nil, fmt.Errorf("shard: cell [%d][%d][%d] uncovered by the plan", w, r, nd)
				}
			}
		}
	}
	return &core.ObservationMatrix{
		Labels:     names,
		Metrics:    metrics,
		Cells:      cells,
		NodeOffset: spec.Cluster.NodeOffset,
	}, nil
}
