package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/cellcache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/service"
	"repro/internal/service/client"
)

// Config configures the coordinator-side executor.
type Config struct {
	// Workers seeds the fleet with bdservd base URLs at startup. Seeded
	// members are permanent (no lease); further workers may join and
	// leave at runtime through Register/Deregister (bdcoord's POST
	// /v1/workers), held by heartbeat leases. The list may be empty — an
	// all-elastic fleet — in which case jobs wait for the first
	// registration (bounded by DownGrace).
	Workers []string
	// HTTPClient overrides the transport used for all workers. Nil uses
	// a default with a response-header timeout, so a worker that accepts
	// connections but never answers fails the attempt instead of hanging
	// it.
	HTTPClient *http.Client
	// StallTimeout bounds worker *unresponsiveness* per unit attempt:
	// after this long with no event-stream activity the coordinator
	// probes the worker's job status, and only an unanswered probe
	// abandons the attempt and re-queues the unit. A unit legitimately
	// queued behind other jobs on a busy-but-healthy worker therefore
	// waits indefinitely (the probes keep succeeding), while a worker
	// that is connected but dead — SIGSTOP, network blackhole — is
	// detected within one stall period. Default 5m; negative disables.
	StallTimeout time.Duration
	// Parallelism bounds the coordinator-side analysis stage (0 =
	// GOMAXPROCS). It never affects results.
	Parallelism int

	// UnitsPerWorker is the target number of work units per worker the
	// planner splits a job into (default 4). More units than workers is
	// what makes stealing work: a fast worker naturally drains the tail
	// a slow one would otherwise stall on. Granularity is capped at one
	// unit per workload×node column, so tiny grids yield fewer units.
	UnitsPerWorker int
	// ProbeInterval is the period of the background /healthz prober
	// (default 15s; negative disables probing). A failing probe counts
	// toward the breaker threshold exactly like a failed unit, so dead
	// workers are discovered between jobs, not per unit per job. With
	// probing disabled, open breakers are re-admitted through dispatch
	// trials instead (see BreakerRetry) — never permanently.
	ProbeInterval time.Duration
	// BreakerRetry only applies when probing is disabled: how long an
	// open breaker waits before admitting one half-open *trial unit*
	// (default 15s). Without it a breaker opened under a disabled prober
	// could never close again.
	BreakerRetry time.Duration
	// ProbeTimeout bounds one health probe (default: ProbeInterval
	// capped at 5s).
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count (units + probes)
	// that opens a worker's circuit breaker (default 3). An open breaker
	// refuses dispatch until a half-open probe succeeds.
	BreakerThreshold int
	// MaxUnitAttempts bounds how often one unit may fail — across all
	// workers, transient faults included — before the job fails
	// (default 4 + 2×workers).
	MaxUnitAttempts int
	// DownGrace is how long a job tolerates *all* breakers being open
	// with units still pending before failing (default 30s). It rides
	// out a transient full-fleet outage (a probe re-admitting any worker
	// resumes dispatch) — or an empty elastic fleet waiting for its
	// first registration — without hanging forever on a dead fleet.
	DownGrace time.Duration

	// UnitCacheDir, when set, persists each finished unit's result bytes
	// on the coordinator's disk under the unit's content-addressed key.
	// Together with the manager's unit-level journal records this is
	// what makes coordinator restarts lossless: the restarted process
	// re-adopts the job, re-plans the identical tiling, loads journaled-
	// done units from this store, and re-dispatches only the remainder.
	// Empty disables unit persistence (a restart re-executes all units).
	UnitCacheDir string

	// CellCacheDir, when set, gives the coordinator a shared cell-level
	// result cache: one workload×node column (all runs) per entry, keyed
	// by the cell's content address (see cluster.CellKey). It is probed
	// before dispatch — a unit whose every column is cached is assembled
	// coordinator-side and never leaves the coordinator — and written
	// through after every unit completes, so overlapping suites submitted
	// over time pay only for the cells they add. Unlike UnitCacheDir
	// (bounded by the in-flight working set, entries dropped at merge)
	// this cache persists across jobs; Empty disables it.
	CellCacheDir string
	// CellCacheEntries bounds the cell cache's on-disk entry count
	// (0 = the cellcache package default).
	CellCacheEntries int
	// CellCacheMaxAge, when positive, garbage-collects cell-cache entries
	// whose mtime is older (bdcoord -cell-cache-max-age). 0 keeps entries
	// until the entry-count bound evicts them.
	CellCacheMaxAge time.Duration

	// Registry receives the executor's fleet metrics (per-worker unit
	// counters, breaker transitions, probe outcomes, lease events, merge
	// latency). Pass the same registry to the manager's service.Config so
	// one /metrics covers both layers. Nil uses a private registry.
	Registry *obs.Registry
	// Logger receives structured dispatch, breaker and membership log
	// lines. Nil discards them.
	Logger *slog.Logger
}

// dispatchPoll is the idle-loop tick of the dispatch workers: how often
// an idle dispatcher re-checks breaker state and the unit queue. Purely
// a liveness knob — units take orders of magnitude longer.
const dispatchPoll = 10 * time.Millisecond

// Executor fans a job's grid out across a dynamic fleet of bdservd
// workers through a work-stealing dispatch loop and merges the unit
// results deterministically. Its Execute method satisfies
// service.ExecuteFunc, so a stock service.Manager (queue, dedupe, result
// cache, journal, HTTP API) becomes a coordinator by plugging it in.
// Fleet membership lives in the registry: flag-seeded members plus
// runtime registrations under heartbeat leases; running jobs pick up
// joins and leaves within one dispatch poll tick. Close stops the
// background health prober.
type Executor struct {
	cfg   Config
	reg   *registry
	store *unitStore       // nil when UnitCacheDir is unset
	cells *cellcache.Store // nil when CellCacheDir is unset
	mx    *shardMetrics
	log   *slog.Logger

	stop context.CancelFunc
	wg   sync.WaitGroup
}

// New builds an executor, seeds the fleet from cfg.Workers and starts
// the background health prober (unless ProbeInterval is negative).
func New(cfg Config) (*Executor, error) {
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 5 * time.Minute
	}
	if cfg.UnitsPerWorker < 1 {
		cfg.UnitsPerWorker = 4
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 15 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
		if cfg.ProbeTimeout > 5*time.Second || cfg.ProbeTimeout <= 0 {
			cfg.ProbeTimeout = 5 * time.Second
		}
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerRetry <= 0 {
		cfg.BreakerRetry = 15 * time.Second
	}
	if cfg.MaxUnitAttempts < 1 {
		n := len(cfg.Workers)
		if n < 1 {
			n = 1
		}
		cfg.MaxUnitAttempts = 4 + 2*n
	}
	if cfg.DownGrace <= 0 {
		cfg.DownGrace = 30 * time.Second
	}
	if cfg.HTTPClient == nil {
		// No overall timeout (event streams are long-lived), but bound
		// the silent phases of each request.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 30 * time.Second
		cfg.HTTPClient = &http.Client{Transport: tr}
	}
	mreg := cfg.Registry
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	e := &Executor{cfg: cfg, mx: newShardMetrics(mreg), log: logger}
	e.reg = newRegistry(cfg.BreakerThreshold, func(base string) *client.Client {
		c := client.New(base)
		c.HTTPClient = cfg.HTTPClient
		return c
	}, e.mx, logger)
	mreg.GaugeFunc("bd_fleet_workers",
		"Current fleet size (seeded plus leased members, expired leases swept).",
		func() float64 { return float64(len(e.reg.snapshot())) })
	for _, base := range cfg.Workers {
		if err := e.reg.seed(base); err != nil {
			return nil, err
		}
	}
	if cfg.UnitCacheDir != "" {
		store, err := newUnitStore(cfg.UnitCacheDir)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	if cfg.CellCacheDir != "" {
		cells, err := cellcache.Open(cfg.CellCacheDir, cfg.CellCacheEntries, cfg.CellCacheMaxAge, cellcache.NewMetrics(mreg))
		if err != nil {
			return nil, err
		}
		e.cells = cells
	}
	pctx, stop := context.WithCancel(context.Background())
	e.stop = stop
	if cfg.ProbeInterval > 0 {
		e.wg.Add(1)
		go e.probeLoop(pctx)
	}
	return e, nil
}

// Close stops the background health prober. In-flight Execute calls are
// unaffected.
func (e *Executor) Close() {
	e.stop()
	e.wg.Wait()
}

// progressAgg multiplexes per-unit cell counts into one monotone
// (done, total) pair over the full grid for the merged event stream.
type progressAgg struct {
	mu       sync.Mutex
	perUnit  []int
	total    int
	emitted  int
	progress core.Progress
}

// report records unit u at done cells (monotone per unit — a re-queued
// unit re-counts from zero but never regresses the aggregate).
func (a *progressAgg) report(u, done int) {
	if a.progress == nil {
		return
	}
	a.mu.Lock()
	if done > a.perUnit[u] {
		a.perUnit[u] = done
	}
	sum := 0
	for _, d := range a.perUnit {
		sum += d
	}
	if sum <= a.emitted {
		a.mu.Unlock()
		return
	}
	a.emitted = sum
	a.mu.Unlock()
	a.progress(core.StageCharacterize, sum, a.total)
}

// unitQueue is the shared work-stealing state of one job: pending unit
// indexes, per-unit attempt accounting, and the terminal condition. The
// fleet is elastic, so attempt accounting is keyed by worker URL — a
// worker that leaves and rejoins keeps its failure history for this
// job's units, while a genuinely new worker starts fresh. All methods
// are safe for concurrent dispatchers.
type unitQueue struct {
	mu          sync.Mutex
	pending     []int
	failedOn    []map[string]bool // unit → worker URLs that failed it
	attempts    []int
	inflight    int
	completed   int
	total       int
	maxAttempts int
	err         error
	stuckSince  time.Time
	onErr       context.CancelFunc // cancels sibling attempts on permanent failure
}

// newUnitQueue builds the queue over total units; units flagged in
// preDone (recovered from the journal + unit store after a restart) are
// born completed and never dispatched.
func newUnitQueue(total, maxAttempts int, preDone []bool, onErr context.CancelFunc) *unitQueue {
	q := &unitQueue{
		failedOn:    make([]map[string]bool, total),
		attempts:    make([]int, total),
		total:       total,
		maxAttempts: maxAttempts,
		onErr:       onErr,
	}
	for u := 0; u < total; u++ {
		q.failedOn[u] = make(map[string]bool)
		if preDone != nil && preDone[u] {
			q.completed++
			continue
		}
		q.pending = append(q.pending, u)
	}
	return q
}

// settled reports whether the job is over (all units merged, or failed).
func (q *unitQueue) settled() (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.completed == q.total || q.err != nil, q.err
}

// tryTake hands the worker at url its next unit, preferring units the
// worker has not previously failed. A unit this worker already failed is
// retried only when no *other available* current fleet member could
// still take it fresh — so a flaky worker never steals a re-queued unit
// back from a healthy sibling, while a lone (or last-standing) worker
// may retry transient faults, with the per-unit attempt budget bounding
// the loop. members is the current fleet snapshot (the caller takes it
// outside q.mu). stolen marks a re-queued unit another worker failed,
// now rescued by this one. Returns ok=false when nothing is
// dispatchable right now.
func (q *unitQueue) tryTake(url string, members []*workerState) (u int, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil || len(q.pending) == 0 {
		return 0, false, false
	}
	pick := -1
	for i, u := range q.pending {
		if !q.failedOn[u][url] {
			pick = i
			break
		}
	}
	if pick < 0 {
		for i, u := range q.pending {
			fresh := false
			for _, w := range members {
				if w.url != url && !q.failedOn[u][w.url] && !w.departed() && w.available() {
					fresh = true
					break
				}
			}
			if !fresh {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return 0, false, false
	}
	u = q.pending[pick]
	q.pending = append(q.pending[:pick], q.pending[pick+1:]...)
	q.inflight++
	q.stuckSince = time.Time{}
	stolen = len(q.failedOn[u]) > 0 && !q.failedOn[u][url]
	return u, stolen, true
}

// attemptNumber is the 1-based ordinal the next attempt of unit u runs
// as: previously charged (failed) attempts plus one. Read at take time
// so the attempt attribute on a unit's spans matches the queue's
// bookkeeping — the invariant the chaostest trace property pins.
func (q *unitQueue) attemptNumber(u int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.attempts[u] + 1
}

// attemptCounts snapshots the charged (failed) attempt count per unit.
func (q *unitQueue) attemptCounts() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]int(nil), q.attempts...)
}

// complete marks a unit merged.
func (q *unitQueue) complete(u int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	q.completed++
}

// release returns a unit taken by an attempt that was aborted by job
// cancellation rather than worker failure — no attempt is charged.
func (q *unitQueue) release(u int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	q.pending = append(q.pending, u)
}

// fail charges a failed attempt to the unit and re-queues it; a unit
// exhausting its attempt budget permanently fails the job.
func (q *unitQueue) fail(u int, url string, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	q.attempts[u]++
	q.failedOn[u][url] = true
	if q.attempts[u] >= q.maxAttempts {
		if q.err == nil {
			q.err = fmt.Errorf("shard: unit %d exhausted %d attempts across %d worker(s): %w",
				u, q.attempts[u], len(q.failedOn[u]), err)
			q.onErr()
		}
		return
	}
	q.pending = append(q.pending, u)
}

// stuckCheck fails the job if every worker's breaker has refused dispatch
// — with units pending and none in flight — for longer than grace. Called
// from dispatchers idling on an unavailable worker; any successful
// dispatch or probe-driven re-admission resets the clock.
func (q *unitQueue) stuckCheck(allUnavailable func() bool, grace time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil || q.inflight > 0 || len(q.pending) == 0 || !allUnavailable() {
		q.stuckSince = time.Time{}
		return
	}
	if q.stuckSince.IsZero() {
		q.stuckSince = time.Now()
		return
	}
	if time.Since(q.stuckSince) >= grace {
		q.err = fmt.Errorf("shard: %d unit(s) exhausted dispatch: no available worker in the fleet for %v",
			len(q.pending), grace)
		q.onErr()
	}
}

// jobRun bundles the shared per-job dispatch state handed to every
// dispatcher goroutine. oms/keys entries are written only by the
// dispatcher holding that unit (a unit is held by at most one attempt at
// a time) and read after all dispatchers join.
type jobRun struct {
	id    string // job ID, tagging dispatch log lines
	q     *unitQueue
	units []Shard
	full  service.JobSpec
	agg   *progressAgg
	oms   []*core.ObservationMatrix
	keys  []string             // unit → content-addressed store key
	up    service.UnitProgress // nil without a manager journal
	tc    *obs.TraceContext    // nil when tracing is disabled
	// cellKeys holds each unit's column cell keys (flattened
	// wi*unit.Nodes+nd, "" where derivation failed), computed once at
	// probe time; nil when the executor has no cell cache or the unit
	// never reached the probe (recovered preDone).
	cellKeys [][]string
}

// Execute implements service.ExecuteFunc: plan fine-grained units → run
// the work-stealing dispatch loop over the live fleet → multiplex
// progress → merge → (for analyze jobs) run the statistical pipeline
// once, coordinator-side. The merged result is byte-identical to a
// single-daemon run of the same spec: per-cell seeds are functions of
// absolute grid coordinates, cells are re-assembled in canonical order
// regardless of which worker ran which unit, and the node/run reduction
// and analysis go through the same code path.
//
// The unit tiling is planned once per job incarnation and journaled
// (via the manager's UnitProgress): Plan is a pure function of
// (normalized spec, parts), so a restarted coordinator re-planning with
// the journaled part count reproduces the identical units no matter how
// the fleet has changed since — which is what lets it trust journaled
// unit_done indexes, load those units' bytes from the unit store, and
// dispatch only the remainder.
func (e *Executor) Execute(ctx context.Context, spec service.JobSpec, progress core.Progress) ([]byte, error) {
	spec, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	jobID, _ := spec.ID()
	up, _ := service.UnitProgressFrom(ctx)
	tc := obs.TraceFromContext(ctx)
	parts := len(e.reg.snapshot()) * e.cfg.UnitsPerWorker
	if parts < e.cfg.UnitsPerWorker {
		parts = e.cfg.UnitsPerWorker
	}
	var recovered map[int]string
	if up != nil {
		if rp, rd := up.RecoveredPlan(); rp > 0 {
			parts, recovered = rp, rd
		}
		up.RecordPlan(parts)
	}
	// The plan span covers the pure tiling plus restart recovery: units
	// re-adopted from the journal and unit store never reach dispatch, so
	// they belong to planning time, not execution time.
	planSpan := tc.StartSpan("plan")
	units, err := Plan(spec, parts)
	if err != nil {
		planSpan.EndErr(err)
		return nil, err
	}
	suite, err := spec.ResolveSuite()
	if err != nil {
		planSpan.EndErr(err)
		return nil, err
	}
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	runs, nodes := spec.Cluster.Runs, spec.Cluster.SlaveNodes

	agg := &progressAgg{
		perUnit:  make([]int, len(units)),
		total:    len(names) * runs * nodes,
		progress: progress,
	}
	if progress != nil {
		progress(core.StageCharacterize, 0, 0)
	}

	// Re-adopt units a previous incarnation journaled as done: decode and
	// re-validate their stored bytes (a missing or corrupt entry just
	// re-dispatches the unit), mark them complete before dispatch starts.
	oms := make([]*core.ObservationMatrix, len(units))
	keys := make([]string, len(units))
	preDone := make([]bool, len(units))
	if e.store != nil {
		for u, key := range recovered {
			if u < 0 || u >= len(units) {
				continue
			}
			data, ok := e.store.get(key)
			if !ok {
				continue
			}
			om, err := decodeUnitResult(data, units[u], units[u].Spec(spec))
			if err != nil {
				e.store.remove(key)
				continue
			}
			oms[u], keys[u], preDone[u] = om, key, true
			agg.report(u, len(units[u].Workloads)*runs*units[u].Nodes)
		}
	}

	// The dispatch loop: one goroutine per fleet member, each pulling its
	// next unit from the shared queue the moment the previous one
	// completes — fast workers steal the tail a slow one would otherwise
	// stall on. The supervisor polls the registry so membership changes
	// land mid-job: a joining worker gets a dispatcher (and starts
	// stealing pending units) within one poll tick; a leaving worker's
	// dispatcher context is canceled through its gone channel, releasing
	// its in-flight unit back to the queue without charging an attempt.
	// Units from failed or stalled workers are re-queued; a permanent
	// failure (attempt budget, dead fleet) cancels the siblings.
	recoveredUnits := 0
	for _, d := range preDone {
		if d {
			recoveredUnits++
		}
	}
	planSpan.SetAttr("units", strconv.Itoa(len(units)))
	planSpan.SetAttr("recovered", strconv.Itoa(recoveredUnits))
	planSpan.End()

	// Probe the shared cell cache: each remaining unit's workload×node
	// columns are looked up by content address, and a unit with every
	// column cached is assembled coordinator-side — born preDone, never
	// dispatched. Partial hits only record the keys here; the columns a
	// worker does compute are written through after the unit validates.
	var cellKeys [][]string
	cachedUnits := 0
	if e.cells != nil {
		probeSpan := tc.StartSpan("cellcache-probe")
		nmetrics := len(perf.MetricNames())
		cellKeys = make([][]string, len(units))
		hits, misses := 0, 0
		for u, unit := range units {
			if preDone[u] {
				continue
			}
			ncols := len(unit.Workloads) * unit.Nodes
			cellKeys[u] = make([]string, ncols)
			vecs := make([][][]float64, ncols)
			complete := true
			for wi := range unit.Workloads {
				for nd := 0; nd < unit.Nodes; nd++ {
					ci := wi*unit.Nodes + nd
					key, kerr := cluster.CellKey(suite[unit.WorkloadOffset+wi], spec.Cluster, unit.NodeOffset+nd)
					if kerr != nil {
						complete = false
						continue
					}
					cellKeys[u][ci] = key
					if v, ok := e.cells.GetCell(unit.Workloads[wi], key, runs, nmetrics); ok {
						vecs[ci] = v
						hits++
					} else {
						misses++
						complete = false
					}
				}
			}
			if !complete {
				continue
			}
			// Re-assemble the unit's matrix from cached columns in the
			// exact shape a worker would have returned; keys[u] stays ""
			// (there are no unit-store bytes to journal or drop).
			cells := make([][][][]float64, len(unit.Workloads))
			for wi := range cells {
				cells[wi] = make([][][]float64, runs)
				for r := range cells[wi] {
					row := make([][]float64, unit.Nodes)
					for nd := 0; nd < unit.Nodes; nd++ {
						row[nd] = vecs[wi*unit.Nodes+nd][r]
					}
					cells[wi][r] = row
				}
			}
			oms[u] = &core.ObservationMatrix{
				Labels:     append([]string(nil), unit.Workloads...),
				Metrics:    perf.MetricNames(),
				Cells:      cells,
				NodeOffset: spec.Cluster.NodeOffset + unit.NodeOffset,
			}
			preDone[u] = true
			cachedUnits++
			agg.report(u, len(unit.Workloads)*runs*unit.Nodes)
		}
		probeSpan.SetAttr("hits", strconv.Itoa(hits))
		probeSpan.SetAttr("misses", strconv.Itoa(misses))
		probeSpan.SetAttr("cached_units", strconv.Itoa(cachedUnits))
		probeSpan.End()
	}

	e.log.Info("sharded job dispatch starting", "job", jobID,
		"units", len(units), "recovered_units", recoveredUnits,
		"cached_units", cachedUnits,
		"workers", len(e.reg.snapshot()))
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	q := newUnitQueue(len(units), e.cfg.MaxUnitAttempts, preDone, cancel)
	run := &jobRun{id: jobID, q: q, units: units, full: spec, agg: agg, oms: oms, keys: keys, up: up, tc: tc, cellKeys: cellKeys}
	var wg sync.WaitGroup
	active := make(map[*workerState]bool)
	// fleet tracks membership for the trace: a join/leave instant per
	// change, so a trace read post-mortem shows which workers the job
	// could even have dispatched to at any point in its life.
	fleet := make(map[string]bool)
	for {
		if done, _ := q.settled(); done || dctx.Err() != nil {
			break
		}
		members := e.reg.snapshot()
		if tc != nil {
			seen := make(map[string]bool, len(members))
			for _, w := range members {
				seen[w.url] = true
				if !fleet[w.url] {
					fleet[w.url] = true
					tc.Instant("worker-join", map[string]string{"worker": w.url})
				}
			}
			for url := range fleet {
				if !seen[url] {
					delete(fleet, url)
					tc.Instant("worker-leave", map[string]string{"worker": url})
				}
			}
		}
		for _, w := range members {
			if active[w] || w.departed() {
				continue
			}
			active[w] = true
			wctx, wcancel := context.WithCancel(dctx)
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				defer wcancel()
				go func() {
					select {
					case <-w.gone:
						wcancel()
					case <-wctx.Done():
					}
				}()
				e.dispatch(wctx, w, run)
			}(w)
		}
		if len(members) == 0 {
			// Nobody to dispatch: only the supervisor can run the dead-
			// fleet clock.
			q.stuckCheck(e.allUnavailable, e.cfg.DownGrace)
		}
		sleepCtx(dctx, dispatchPoll)
	}
	cancel()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, qerr := q.settled(); qerr != nil {
		e.log.Warn("sharded job failed", "job", jobID, "error", qerr)
		return nil, qerr
	}
	if tc != nil {
		// One instant per settled unit carrying the queue's final attempt
		// bookkeeping: "attempts" is the charged (failed) count, so the
		// winning exec span's attempt attribute is always attempts+1 — the
		// cross-check the chaostest trace property asserts.
		for u, n := range q.attemptCounts() {
			attrs := map[string]string{
				"unit":     strconv.Itoa(u),
				"attempts": strconv.Itoa(n),
			}
			if keys[u] != "" {
				attrs["key"] = keys[u]
			}
			tc.Instant("unit-done", attrs)
		}
	}

	mergeSpan := tc.StartSpan("merge")
	mergeStart := time.Now()
	om, err := merge(spec, names, runs, nodes, units, oms)
	e.mx.mergeDuration.Observe(time.Since(mergeStart).Seconds())
	if err != nil {
		mergeSpan.EndErr(err)
		return nil, err
	}
	mergeSpan.SetAttr("units", strconv.Itoa(len(units)))
	mergeSpan.End()
	e.log.Info("sharded job units merged", "job", jobID,
		"units", len(units), "merge_duration", time.Since(mergeStart))
	var out []byte
	if spec.Mode == service.ModeObservations {
		out, err = benchio.MarshalCanonical(benchio.EncodeObservations(om))
	} else {
		acfg := spec.Analysis
		acfg.Parallelism = e.cfg.Parallelism
		var an *core.Analysis
		an, err = core.AnalyzeObservationsCtx(ctx, om, acfg, progress)
		if err == nil {
			out, err = benchio.MarshalCanonical(benchio.EncodeAnalysis(an))
		}
	}
	if err != nil {
		return nil, err
	}
	// The merged result supersedes the per-unit bytes: drop them so the
	// unit store stays bounded by the in-flight working set. (A unit key
	// shared with a concurrently running job only loses that job's
	// recovery shortcut, never its correctness.)
	if e.store != nil {
		for _, key := range keys {
			if key != "" {
				e.store.remove(key)
			}
		}
	}
	return out, nil
}

// dispatch is one worker's dispatch loop: while its breaker admits it,
// pull the next unit, run it, and report the outcome to the queue and the
// worker's breaker. It returns when the job settles (all units done or
// permanent failure), the job context is canceled, or the worker leaves
// the fleet (its gone channel cancels ctx).
func (e *Executor) dispatch(ctx context.Context, w *workerState, run *jobRun) {
	q := run.q
	for {
		if ctx.Err() != nil || w.departed() {
			return
		}
		if done, _ := q.settled(); done {
			return
		}
		admitted, trial := e.admit(w)
		if !admitted {
			q.stuckCheck(e.allUnavailable, e.cfg.DownGrace)
			sleepCtx(ctx, dispatchPoll)
			continue
		}
		u, stolen, ok := q.tryTake(w.url, e.reg.snapshot())
		if !ok {
			// Nothing dispatchable for this worker right now: siblings
			// hold the remaining units (in flight, or re-queued units
			// this worker failed that a fresh worker should retry), or
			// the job is settling.
			if trial {
				// The half-open trial found no unit to prove itself on;
				// re-open rather than wedging in half-open forever.
				w.cancelTrial()
			}
			sleepCtx(ctx, dispatchPoll)
			continue
		}
		e.mx.unitsDispatched.With(w.url).Inc()
		if stolen {
			e.mx.unitsStolen.With(w.url).Inc()
			e.log.Debug("unit rescued from failed sibling", "job", run.id, "unit", u, "worker", w.url)
		}
		attempt := q.attemptNumber(u)
		unitSpan := run.tc.StartSpan("unit")
		unitSpan.SetAttr("unit", strconv.Itoa(u))
		unitSpan.SetAttr("attempt", strconv.Itoa(attempt))
		unitSpan.SetAttr("worker", w.url)
		if stolen {
			unitSpan.SetAttr("stolen", "true")
		}
		attemptStart := time.Now()
		om, data, key, err := e.runUnitOn(ctx, w, run, u, unitSpan.ID(), attempt, stolen)
		if err == nil {
			run.oms[u], run.keys[u] = om, key
			e.storeUnitCells(run, u, om)
			w.recordSuccess()
			e.mx.unitDuration.With(w.url).Observe(time.Since(attemptStart).Seconds())
			run.agg.report(u, len(run.units[u].Workloads)*run.full.Cluster.Runs*run.units[u].Nodes)
			// Persist the unit's bytes *before* journaling it done: a
			// unit_done record must never point at bytes a restarted
			// coordinator can't load. A store failure only costs this
			// unit its recovery shortcut.
			if e.store != nil && run.up != nil {
				if perr := e.store.put(key, data); perr == nil {
					run.up.UnitDone(u, key)
				}
			}
			unitSpan.End()
			q.complete(u)
			continue
		}
		if ctx.Err() != nil || w.departed() {
			// Canceled mid-attempt — job shutdown or the worker leaving
			// the fleet. Either way the error is a symptom, not a verdict
			// on the unit: release it without charging an attempt.
			unitSpan.SetAttr("status", "released")
			unitSpan.End()
			q.release(u)
			return
		}
		unitSpan.EndErr(err)
		w.recordFailure(err)
		if run.tc != nil && !w.available() {
			// This failure tripped (or kept) the breaker open: worth a
			// marker in the trace — it explains why following units land
			// on siblings.
			run.tc.Instant("breaker-open", map[string]string{"worker": w.url})
		}
		q.fail(u, w.url, fmt.Errorf("worker %s: %w", w.url, err))
		e.log.Warn("unit attempt failed", "job", run.id, "unit", u, "worker", w.url, "error", err)
		// Brief backoff after a failure: gives a healthy sibling first
		// claim on the re-queued unit and keeps a fast-failing worker
		// (connection refused) from spinning.
		sleepCtx(ctx, dispatchPoll)
	}
}

// storeUnitCells writes a validated unit's workload×node columns through
// to the shared cell cache under the keys derived at probe time. The
// matrix has already passed validateUnitResult, so every column has the
// canonical runs×metrics shape; stores are best-effort (cellcache
// swallows write failures — the grid already holds the bytes).
func (e *Executor) storeUnitCells(run *jobRun, u int, om *core.ObservationMatrix) {
	if e.cells == nil || run.cellKeys == nil || run.cellKeys[u] == nil {
		return
	}
	unit := run.units[u]
	runs := run.full.Cluster.Runs
	for wi := range unit.Workloads {
		for nd := 0; nd < unit.Nodes; nd++ {
			key := run.cellKeys[u][wi*unit.Nodes+nd]
			if key == "" {
				continue
			}
			vecs := make([][]float64, runs)
			for r := 0; r < runs; r++ {
				vecs[r] = om.Cells[wi][r][nd]
			}
			e.cells.PutCell(unit.Workloads[wi], key, vecs)
		}
	}
}

// admit decides whether worker w may receive a unit right now. A closed
// breaker always admits. An open breaker admits nothing while the
// background prober owns re-admission; with probing disabled, an open
// breaker past its BreakerRetry cooldown admits exactly one half-open
// trial unit (trial=true) — its outcome closes or re-opens the breaker —
// so disabling the prober never strands a recovered worker permanently.
func (e *Executor) admit(w *workerState) (admitted, trial bool) {
	if w.available() {
		return true, false
	}
	if e.cfg.ProbeInterval > 0 {
		return false, false
	}
	if w.tryDispatchTrial(e.cfg.BreakerRetry) {
		return true, true
	}
	return false, false
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// unitWatch is the stall watchdog state for one unit attempt: the last
// activity timestamp plus an optional liveness probe installed once the
// worker-side job ID is known.
type unitWatch struct {
	last  atomic.Int64
	probe atomic.Value // func(context.Context) error
}

func (w *unitWatch) touch() { w.last.Store(time.Now().UnixNano()) }

// runUnitOn runs one unit attempt against one worker: submit, stream
// progress events into the aggregate, fetch and decode the observation
// matrix, and sanity-check its shape against the plan. It returns the
// decoded matrix together with the raw result bytes and the unit's
// content-addressed key (the worker-side job ID), which the caller may
// persist for crash recovery. The whole attempt runs under a stall
// watchdog: when the worker goes silent past StallTimeout, its job
// status is probed, and only an unanswered probe abandons the attempt —
// so a healthy worker whose queue is merely busy is never failed over,
// while a dead-but-connected one is.
func (e *Executor) runUnitOn(ctx context.Context, w *workerState, run *jobRun, u int, unitSpanID string, attempt int, stolen bool) (*core.ObservationMatrix, []byte, string, error) {
	stall := e.cfg.StallTimeout
	if stall <= 0 {
		return e.attemptUnit(ctx, w.client, run, u, unitSpanID, attempt, stolen, &unitWatch{})
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	uw := &unitWatch{}
	uw.touch()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := stall / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-actx.Done():
				return
			case <-t.C:
				if time.Since(time.Unix(0, uw.last.Load())) <= stall {
					continue
				}
				// Silent past the bound: distinguish "busy" from "dead"
				// with a status probe before giving up on the worker.
				if p, ok := uw.probe.Load().(func(context.Context) error); ok && p != nil {
					pctx, pcancel := context.WithTimeout(actx, stall/4)
					err := p(pctx)
					pcancel()
					if err == nil {
						uw.touch()
						continue
					}
				}
				cancel()
				return
			}
		}
	}()

	om, data, key, err := e.attemptUnit(actx, w.client, run, u, unitSpanID, attempt, stolen, uw)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		// The watchdog (not the job) aborted the attempt. Report it as a
		// worker *failure* — deliberately not wrapping the underlying
		// context.Canceled, which would make an all-workers-stalled job
		// settle as canceled instead of failed.
		err = fmt.Errorf("worker unresponsive (no activity for %v and status probe failed): %v", stall, err)
	}
	return om, data, key, err
}

// attemptUnit is the watchdog-free body of one unit attempt. The attempt
// is traced as three children of the unit span — dispatch (the submit
// RPC), exec (the worker running the unit, or a cache hit), validate
// (result fetch + decode + shape check) — and the trace context rides to
// the worker in the submission's X-BD-Trace header, so the worker's own
// stage spans join this trace and are imported under the exec span once
// the unit validates.
func (e *Executor) attemptUnit(ctx context.Context, c *client.Client, run *jobRun, u int, unitSpanID string, attempt int, stolen bool, w *unitWatch) (*core.ObservationMatrix, []byte, string, error) {
	tc := run.tc
	unit := run.units[u]
	sub := unit.Spec(run.full)
	unitAttr := strconv.Itoa(u)
	var traceParent string
	if tc != nil {
		traceParent = obs.FormatTraceParent(tc.TraceID, unitSpanID)
	}
	dispatchSpan := tc.StartChild(unitSpanID, "dispatch")
	dispatchSpan.SetAttr("unit", unitAttr)
	st, err := c.SubmitSpecTraced(ctx, sub, traceParent)
	if err != nil {
		dispatchSpan.EndErr(err)
		return nil, nil, "", err
	}
	dispatchSpan.End()
	w.touch()
	// With the job ID known, silence can be disambiguated: the watchdog
	// probes the job's status and only an unanswered probe means a dead
	// worker (a queued unit on a busy worker answers and keeps waiting).
	w.probe.Store(func(pctx context.Context) error {
		_, err := c.Job(pctx, st.ID)
		return err
	})
	execSpan := tc.StartChild(unitSpanID, "exec")
	execSpan.SetAttr("unit", unitAttr)
	execSpan.SetAttr("attempt", strconv.Itoa(attempt))
	execSpan.SetAttr("worker", c.BaseURL)
	if stolen {
		execSpan.SetAttr("stolen", "true")
	}
	switch st.State {
	case service.StateDone:
		// Cache hit on the worker: the matrix is immediately fetchable.
		execSpan.SetAttr("cache_hit", "true")
	case service.StateFailed, service.StateCanceled:
		err := fmt.Errorf("unit job %s born %s: %s", st.ID, st.State, st.Error)
		execSpan.EndErr(err)
		return nil, nil, "", err
	default:
		// Follow the worker's NDJSON stream, multiplexing its per-cell
		// progress into the coordinator's merged stream. The worker job
		// is deliberately NOT canceled when this attempt is abandoned:
		// worker jobs are content-addressed and deduplicated, so another
		// coordinator job (or a concurrent coordinator) may be following
		// the very same worker job, and its result lands in the worker's
		// cache either way — canceling would kill an innocent consumer's
		// unit to save already-mostly-spent compute.
		err := c.Events(ctx, st.ID, func(ev service.Event) error {
			w.touch()
			switch ev.Type {
			case "progress":
				run.agg.report(u, ev.Done)
			case "error":
				return fmt.Errorf("unit job %s failed: %s", st.ID, ev.Error)
			case "state":
				if ev.State == service.StateCanceled {
					return fmt.Errorf("unit job %s canceled on worker", st.ID)
				}
			}
			return nil
		})
		if err != nil {
			execSpan.EndErr(err)
			return nil, nil, "", err
		}
	}
	execSpan.End()

	validateSpan := tc.StartChild(unitSpanID, "validate")
	validateSpan.SetAttr("unit", unitAttr)
	data, err := c.Result(ctx, st.ID)
	if err != nil {
		validateSpan.EndErr(err)
		return nil, nil, "", err
	}
	w.touch()
	om, err := decodeUnitResult(data, unit, sub)
	if err != nil {
		validateSpan.EndErr(err)
		return nil, nil, "", err
	}
	validateSpan.End()
	if tc != nil {
		// Best-effort import of the worker's spans for this unit job:
		// they nest under the exec span that drove them. A worker cache
		// hit serves spans tagged with some older trace's ID — Import
		// filters those out. Failure here never fails the unit; the
		// trace just lacks the worker's interior detail.
		if export, terr := c.Trace(ctx, st.ID); terr == nil {
			tc.Import(export.Spans, execSpan.ID(), c.BaseURL, map[string]string{"unit": unitAttr})
		}
	}
	return om, data, st.ID, nil
}

// decodeUnitResult unmarshals one unit's raw result bytes and validates
// the matrix shape against the unit's plan. It serves both live attempts
// and restart recovery (re-validating bytes loaded from the unit store),
// so a corrupted store entry is caught the same way a corrupted worker
// response is.
func decodeUnitResult(data []byte, unit Shard, sub service.JobSpec) (*core.ObservationMatrix, error) {
	var oj benchio.ObservationsJSON
	if err := json.Unmarshal(data, &oj); err != nil {
		return nil, fmt.Errorf("decoding unit result: %w", err)
	}
	om, err := oj.Observations()
	if err != nil {
		return nil, err
	}
	if err := validateUnitResult(om, unit, sub); err != nil {
		return nil, err
	}
	return om, nil
}

// validateUnitResult checks a worker's observation sub-matrix against the
// unit's sub-spec: workload identity and order, run/node extents, node
// offset, and the exact canonical metric schema. Catching a wrong-shape
// response here makes it a *unit-level* failure — re-queued and retried
// on another worker — instead of a job-level merge error, and stops a
// mixed-version or corrupted worker from feeding bad cells into a
// confidently-hashed merged result.
func validateUnitResult(om *core.ObservationMatrix, unit Shard, sub service.JobSpec) error {
	if len(om.Labels) != len(unit.Workloads) {
		return fmt.Errorf("unit result has %d workloads, want %d", len(om.Labels), len(unit.Workloads))
	}
	for i, name := range unit.Workloads {
		if om.Labels[i] != name {
			return fmt.Errorf("unit result workload %d is %q, want %q", i, om.Labels[i], name)
		}
	}
	if om.Runs() != sub.Cluster.Runs || om.Nodes() != unit.Nodes {
		return fmt.Errorf("unit result extents %d runs × %d nodes, want %d×%d",
			om.Runs(), om.Nodes(), sub.Cluster.Runs, unit.Nodes)
	}
	if om.NodeOffset != sub.Cluster.NodeOffset {
		return fmt.Errorf("unit result node offset %d, want %d", om.NodeOffset, sub.Cluster.NodeOffset)
	}
	want := perf.MetricNames()
	if len(om.Metrics) != len(want) {
		return fmt.Errorf("unit result has %d metrics, want %d", len(om.Metrics), len(want))
	}
	for i, m := range want {
		if om.Metrics[i] != m {
			return fmt.Errorf("unit result metric %d is %q, want %q", i, om.Metrics[i], m)
		}
	}
	return nil
}

// merge re-assembles the unit matrices into the full grid in canonical
// cell order — workloads in suite order, then runs, then absolute node
// index — verifying exact coverage.
func merge(spec service.JobSpec, names []string, runs, nodes int, units []Shard, oms []*core.ObservationMatrix) (*core.ObservationMatrix, error) {
	var metrics []string
	cells := make([][][][]float64, len(names))
	for w := range cells {
		cells[w] = make([][][]float64, runs)
		for r := range cells[w] {
			cells[w][r] = make([][]float64, nodes)
		}
	}
	for si, sh := range units {
		om := oms[si]
		if om == nil {
			return nil, fmt.Errorf("shard: unit %d produced no matrix", si)
		}
		if metrics == nil {
			metrics = om.Metrics
		} else {
			// Columns must agree exactly across units — per-unit
			// validation enforces the canonical schema, and this is the
			// merge-time backstop against stitching mismatched matrices
			// into a wrong (but confidently hashed) result.
			if len(metrics) != len(om.Metrics) {
				return nil, fmt.Errorf("shard: unit %d has %d metrics, want %d", si, len(om.Metrics), len(metrics))
			}
			for mi := range metrics {
				if metrics[mi] != om.Metrics[mi] {
					return nil, fmt.Errorf("shard: unit %d metric %d is %q, want %q", si, mi, om.Metrics[mi], metrics[mi])
				}
			}
		}
		for wi := range om.Labels {
			w := sh.WorkloadOffset + wi
			if w >= len(names) || names[w] != om.Labels[wi] {
				return nil, fmt.Errorf("shard: unit %d workload %q misaligned", si, om.Labels[wi])
			}
			for r := 0; r < runs; r++ {
				for nd := 0; nd < sh.Nodes; nd++ {
					tgt := sh.NodeOffset + nd
					if tgt >= nodes || cells[w][r][tgt] != nil {
						return nil, fmt.Errorf("shard: cell [%d][%d][%d] double-covered or out of range", w, r, tgt)
					}
					cells[w][r][tgt] = om.Cells[wi][r][nd]
				}
			}
		}
	}
	for w := range cells {
		for r := range cells[w] {
			for nd := range cells[w][r] {
				if cells[w][r][nd] == nil {
					return nil, fmt.Errorf("shard: cell [%d][%d][%d] uncovered by the plan", w, r, nd)
				}
			}
		}
	}
	return &core.ObservationMatrix{
		Labels:     names,
		Metrics:    metrics,
		Cells:      cells,
		NodeOffset: spec.Cluster.NodeOffset,
	}, nil
}
