package shard

import (
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/custom"
	"repro/internal/bigdata/workloads"
	"repro/internal/cluster/kmeans"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/service"
	"repro/internal/sim/machine"
	"repro/internal/trace"
)

// tinySpec mirrors the service package's fast test job: 2-core node,
// shrunken caches.
func tinySpec(names ...string) service.JobSpec {
	m := machine.Westmere()
	m.Sockets, m.CoresPerSocket = 1, 2
	m.L1I.SizeB = 1 << 10
	m.L1D.SizeB = 1 << 10
	m.L2.SizeB = 4 << 10
	m.L3.SizeB = 32 << 10
	if len(names) == 0 {
		names = []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}
	}
	return service.JobSpec{
		Workloads: names,
		Suite:     workloads.Config{Seed: 11, Scale: 1 << 16},
		Cluster: cluster.Config{
			Machine:             m,
			SlaveNodes:          2,
			InstructionsPerCore: 1500,
			Slices:              8,
			Monitor:             perf.DefaultMonitor(),
			Runs:                1,
			Seed:                11,
			ExecutionJitter:     0.05,
		},
		Analysis: core.AnalysisConfig{
			KMin: 2, KMax: 2,
			KMeans: kmeans.Config{Restarts: 2, Seed: 7},
		},
	}
}

// coverage asserts a plan tiles the workload×node grid exactly once.
func coverage(t *testing.T, spec service.JobSpec, shards []Shard) {
	t.Helper()
	suite, err := spec.ResolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	covered := make([][]int, len(suite))
	for w := range covered {
		covered[w] = make([]int, spec.Cluster.SlaveNodes)
	}
	for _, sh := range shards {
		if len(sh.Workloads) == 0 || sh.Nodes < 1 {
			t.Fatalf("empty shard %+v", sh)
		}
		for wi, name := range sh.Workloads {
			w := sh.WorkloadOffset + wi
			if suite[w].Name != name {
				t.Fatalf("shard %d workload %q misaligned with suite order", sh.Index, name)
			}
			for n := sh.NodeOffset; n < sh.NodeOffset+sh.Nodes; n++ {
				covered[w][n]++
			}
		}
	}
	for w := range covered {
		for n, c := range covered[w] {
			if c != 1 {
				t.Fatalf("grid cell workload=%d node=%d covered %d times", w, n, c)
			}
		}
	}
}

func TestPlanCoversGridExactly(t *testing.T) {
	for _, tc := range []struct {
		workloads []string
		nodes     int
		workers   int
		minShards int
	}{
		{[]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1},
		{[]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 2, 2},
		{[]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 3, 3},
		{[]string{"H-Sort", "S-Sort", "H-Grep"}, 4, 3, 3},
		// Fewer workloads than workers: the node axis splits too.
		{[]string{"H-Sort", "S-Sort"}, 4, 5, 5},
		{[]string{"H-Sort"}, 4, 3, 3},
		// More workers than workload×node columns: capped at the grid.
		{[]string{"H-Sort"}, 2, 8, 2},
	} {
		spec := tinySpec(tc.workloads...)
		spec.Cluster.SlaveNodes = tc.nodes
		shards, err := Plan(spec, tc.workers)
		if err != nil {
			t.Fatalf("%v/%d nodes/%d workers: %v", tc.workloads, tc.nodes, tc.workers, err)
		}
		if len(shards) < tc.minShards || len(shards) > tc.workers {
			t.Errorf("%d workloads × %d nodes over %d workers: %d shards, want [%d,%d]",
				len(tc.workloads), tc.nodes, tc.workers, len(shards), tc.minShards, tc.workers)
		}
		coverage(t, spec, shards)
		for i, sh := range shards {
			if sh.Index != i {
				t.Errorf("shard %d carries index %d", i, sh.Index)
			}
		}
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	spec := tinySpec()
	a, err := Plan(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].WorkloadOffset != b[i].WorkloadOffset || a[i].NodeOffset != b[i].NodeOffset ||
			a[i].Nodes != b[i].Nodes || len(a[i].Workloads) != len(b[i].Workloads) {
			t.Fatalf("plan differs at shard %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// customSpec extends tinySpec with one blended custom definition, whose
// H-/S- workloads are appended after the built-in selection.
func customSpec(names ...string) service.JobSpec {
	spec := tinySpec(names...)
	spec.CustomWorkloads = []custom.Definition{{
		Name: "ScanProbe",
		Data: custom.DataSpec{PaperBytes: 4 << 30, Skew: 0.3},
		Mix: &trace.Params{
			LoadFrac: 0.32, StoreFrac: 0.08, BranchFrac: 0.18,
			DepFrac: 0.2, SeqFrac: 0.8,
		},
		ShuffleFrac: 0.1,
	}}
	return spec
}

// Custom workloads plan and tile like built-ins, and the coverage
// invariant holds over the extended suite.
func TestPlanCoversCustomWorkloads(t *testing.T) {
	spec := customSpec("H-Sort", "S-Sort", "H-ScanProbe", "S-ScanProbe")
	for _, workers := range []int{1, 2, 3, 5} {
		shards, err := Plan(spec, workers)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		coverage(t, spec, shards)
	}
}

// Sub-specs carry only the definitions their workload range references:
// a built-in-only unit of a custom-carrying job must normalize to the
// same worker job ID as the corresponding unit of a plain job, so
// worker-side caches are shared across them.
func TestShardSpecPrunesUnreferencedDefinitions(t *testing.T) {
	names := []string{"H-Sort", "S-Sort", "H-ScanProbe", "S-ScanProbe"}
	spec := customSpec(names...)
	shards, err := Plan(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("planned %d shards, want 2", len(shards))
	}
	// Shard 0 covers the built-ins, shard 1 the custom pair.
	builtinSub := shards[0].Spec(spec)
	if len(builtinSub.CustomWorkloads) != 0 {
		t.Errorf("built-in-only sub-spec retained %d definitions", len(builtinSub.CustomWorkloads))
	}
	customSub := shards[1].Spec(spec)
	if len(customSub.CustomWorkloads) != 1 || customSub.CustomWorkloads[0].Name != "ScanProbe" {
		t.Errorf("custom sub-spec definitions: %+v", customSub.CustomWorkloads)
	}

	// The plain job planned as one unit yields the same workload×node
	// range as the custom job's built-in shard.
	plain := tinySpec(names[:2]...)
	plainShards, err := Plan(plain, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := plainShards[0].Spec(plain).ID()
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := builtinSub.ID()
	if err != nil {
		t.Fatal(err)
	}
	if gotID != wantID {
		t.Errorf("built-in unit of a custom job got ID %s, plain job's unit %s — worker cache not shared", gotID, wantID)
	}

	// And the custom sub-spec must still resolve and validate.
	if _, err := customSub.Normalized(); err != nil {
		t.Errorf("custom sub-spec does not normalize: %v", err)
	}
}

func TestShardSpecIsCharacterizeOnly(t *testing.T) {
	spec := tinySpec()
	shards, err := Plan(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub := shards[1].Spec(spec)
	if sub.Mode != service.ModeObservations {
		t.Errorf("sub-spec mode %q, want observations", sub.Mode)
	}
	norm, err := sub.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Analysis != (core.AnalysisConfig{}) {
		t.Error("sub-spec retained analysis config after normalization")
	}
	if norm.Cluster.Seed != spec.Cluster.Seed {
		t.Error("sub-spec seed drifted")
	}
}
