package shard

import (
	"context"
	"fmt"
	"log/slog"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/service/client"
)

// Worker-membership sources. Flag-seeded workers are permanent fleet
// members (nothing heartbeats them, so they never expire); registered
// workers hold a TTL lease that must be renewed by heartbeat.
const (
	SourceFlag       = "flag"
	SourceRegistered = "registered"
)

// Lease bounds: a requested TTL of zero takes the default; anything
// shorter than the minimum is clamped so a typo'd TTL cannot make a
// worker flap in and out of the fleet faster than the dispatch loops
// poll membership.
const (
	DefaultLeaseTTL = 30 * time.Second
	minLeaseTTL     = time.Second
)

// registry is the coordinator's dynamic fleet membership table: one
// workerState per member, keyed by normalized base URL. Flag-seeded
// members are permanent; registered members are held by a TTL lease
// renewed by heartbeat (a repeated register call). Expired leases are
// swept lazily by snapshot(), which every consumer — the dispatch
// supervisor, the background prober, /v1/workers — calls on its own
// cadence, so a silent worker disappears from the fleet within one poll
// tick of its lease lapsing.
type registry struct {
	threshold int
	mkClient  func(string) *client.Client
	mx        *shardMetrics // nil in bare unit tests
	log       *slog.Logger  // nil in bare unit tests

	mu      sync.Mutex
	members map[string]*workerState
	order   []string // join order, for stable status listings
}

func newRegistry(threshold int, mkClient func(string) *client.Client, mx *shardMetrics, log *slog.Logger) *registry {
	return &registry{
		threshold: threshold,
		mkClient:  mkClient,
		mx:        mx,
		log:       log,
		members:   make(map[string]*workerState),
	}
}

// leaseEvent records one membership lease event on the metrics and log
// hooks (no-ops when the hooks are nil).
func (r *registry) leaseEvent(event, u string, level slog.Level, msg string, attrs ...any) {
	if r.mx != nil {
		r.mx.leaseEvents.With(event).Inc()
	}
	if r.log != nil {
		r.log.Log(context.Background(), level, msg, append([]any{"worker", u}, attrs...)...)
	}
}

// normalizeWorkerURL validates and canonicalizes a worker base URL so
// that registration, heartbeat and deregistration of the same worker
// always hit the same membership key.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("shard: worker url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("shard: worker url %q must be absolute http(s)", raw)
	}
	return raw, nil
}

// seed adds a permanent flag-configured member (no lease, never expires).
func (r *registry) seed(rawURL string) error {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[u]; ok {
		return nil
	}
	w := newWorkerState(u, r.mkClient(u), r.threshold)
	w.mx, w.log = r.mx, r.log
	w.source = SourceFlag
	w.registeredAt = time.Now()
	r.members[u] = w
	r.order = append(r.order, u)
	return nil
}

// register adds a worker under a TTL lease, or — when the worker is
// already a member — renews its lease (the heartbeat path). A renewal
// keeps the member's breaker and counter history; only a fresh join
// starts from a clean closed breaker. Flag-seeded members accept
// heartbeats too (the timestamp shows in /v1/workers) but never expire.
// Returns the member and whether this call created it.
func (r *registry) register(rawURL string, ttl time.Duration) (*workerState, bool, error) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return nil, false, err
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if ttl < minLeaseTTL {
		ttl = minLeaseTTL
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	if w, ok := r.members[u]; ok {
		w.mu.Lock()
		w.lastHeartbeat = now
		if w.source == SourceRegistered {
			w.ttl = ttl
		}
		w.mu.Unlock()
		r.leaseEvent("renew", u, slog.LevelDebug, "worker lease renewed", "ttl", ttl)
		return w, false, nil
	}
	w := newWorkerState(u, r.mkClient(u), r.threshold)
	w.mx, w.log = r.mx, r.log
	w.source = SourceRegistered
	w.registeredAt = now
	w.lastHeartbeat = now
	w.ttl = ttl
	r.members[u] = w
	r.order = append(r.order, u)
	r.leaseEvent("register", u, slog.LevelInfo, "worker joined fleet", "ttl", ttl, "fleet_size", len(r.members))
	return w, true, nil
}

// deregister removes a member immediately (an orderly leave — the worker
// releasing its own lease on shutdown, or an operator evicting it). The
// member's gone channel closes, so dispatch loops holding one of its
// in-flight units release the unit back to the queue without charging an
// attempt.
func (r *registry) deregister(rawURL string) bool {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.members[u]
	if !ok {
		return false
	}
	r.removeLocked(u, w)
	r.leaseEvent("deregister", u, slog.LevelInfo, "worker left fleet", "fleet_size", len(r.members))
	return true
}

// snapshot returns the current membership in join order, sweeping
// expired leases first. This is the single read path for every consumer,
// which is what makes lazy expiry sound: nothing acts on a member
// without passing through the sweep.
func (r *registry) snapshot() []*workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(time.Now())
	out := make([]*workerState, 0, len(r.order))
	for _, u := range r.order {
		out = append(out, r.members[u])
	}
	return out
}

// expireLocked sweeps members whose lease lapsed. Callers hold r.mu.
func (r *registry) expireLocked(now time.Time) {
	for u, w := range r.members {
		w.mu.Lock()
		expired := w.source == SourceRegistered && w.ttl > 0 && now.Sub(w.lastHeartbeat) > w.ttl
		w.mu.Unlock()
		if expired {
			r.removeLocked(u, w)
			r.leaseEvent("expire", u, slog.LevelWarn, "worker lease expired", "fleet_size", len(r.members))
		}
	}
}

// removeLocked deletes a member and closes its gone channel. Callers
// hold r.mu.
func (r *registry) removeLocked(u string, w *workerState) {
	w.depart()
	delete(r.members, u)
	for i, o := range r.order {
		if o == u {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Register adds a worker to the fleet under a TTL lease, or renews an
// existing member's lease — the body of bdcoord's POST /v1/workers, and
// the heartbeat path for bdservd -register. Running jobs pick the new
// member up within one dispatch poll tick: it immediately starts
// stealing units from their queues.
func (e *Executor) Register(rawURL string, ttl time.Duration) (WorkerStatus, error) {
	w, _, err := e.reg.register(rawURL, ttl)
	if err != nil {
		return WorkerStatus{}, err
	}
	return w.snapshot(), nil
}

// Deregister removes a worker from the fleet immediately, releasing any
// units it holds in flight back to their job queues. Reports whether the
// worker was a member.
func (e *Executor) Deregister(rawURL string) bool {
	return e.reg.deregister(rawURL)
}
