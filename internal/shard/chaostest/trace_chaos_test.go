package chaostest

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
)

// runChaoticTraced is runChaotic with an explicit trace configuration,
// returning the coordinator's trace export alongside the merged result.
func runChaoticTraced(t *testing.T, spec service.JobSpec, proxies []*Proxy, unitsPerWorker, traceBuffer int) (string, []byte, obs.TraceExport, bool) {
	t.Helper()
	urls := make([]string, len(proxies))
	for i, p := range proxies {
		urls[i] = p.URL()
	}
	exec, err := shard.New(chaosExecConfig(urls, unitsPerWorker))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	coord, err := service.New(service.Config{
		Workers:      2,
		Execute:      exec.Execute,
		TraceBuffer:  traceBuffer,
		TraceService: "bdcoord",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, coord, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("traced chaotic job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord.Result(st.ID)
	if !ok {
		t.Fatal("traced chaotic job has no result bytes")
	}
	export, traced := coord.Trace(st.ID)
	return fin.ResultHash, data, export, traced
}

// traceKillScript is the mid-stream worker-kill fault plan both trace
// variants run under: an early stream cut plus a network crash that
// heals — enough chaos to force re-queues and retries into the trace.
func traceKillScript() Script {
	return Script{
		StreamFaults:       []StreamFault{{CutAfterLines: 1}},
		CrashAfterRequests: 4,
		RestartAfter:       300 * time.Millisecond,
	}
}

// TestChaosTraceDeterminismAndAttempts pins the two tracing properties
// under a mid-stream worker kill:
//
// (a) tracing is strictly observational — with the recorder enabled or
// disabled, the merged bytes are identical to the single-daemon golden
// run;
//
// (b) the trace agrees with the coordinator's unit bookkeeping — every
// unit has a unit-done instant, and exactly one exec span carries the
// winning attempt number (charged failures + 1), with status ok.
func TestChaosTraceDeterminismAndAttempts(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)

	crashy := newProxy(t, startWorker(t).url, traceKillScript())
	steady := newProxy(t, startWorker(t).url, Script{})
	tracedHash, tracedBytes, export, traced := runChaoticTraced(t, spec, []*Proxy{crashy, steady}, 4, 4096)
	assertIdentical(t, "tracing enabled", wantHash, wantBytes, tracedHash, tracedBytes)
	if !traced {
		t.Fatal("tracing enabled but no trace exported")
	}

	crashy2 := newProxy(t, startWorker(t).url, traceKillScript())
	steady2 := newProxy(t, startWorker(t).url, Script{})
	offHash, offBytes, _, offTraced := runChaoticTraced(t, spec, []*Proxy{crashy2, steady2}, 4, -1)
	assertIdentical(t, "tracing disabled", wantHash, wantBytes, offHash, offBytes)
	if offTraced {
		t.Error("tracing disabled but a trace was exported")
	}

	// (b) cross-check the exec spans against the queue's attempt
	// accounting carried by the unit-done instants.
	attempts := map[int]int{}     // unit → charged (failed) attempts
	execByKey := map[string]int{} // "unit/attempt" → count of exec spans
	execOK := map[string]bool{}   // "unit/attempt" → some exec span ended ok
	units := -1
	for _, sp := range export.Spans {
		switch sp.Name {
		case "plan":
			if n, err := strconv.Atoi(sp.Attrs["units"]); err == nil {
				units = n
			}
		case "unit-done":
			u, err := strconv.Atoi(sp.Attrs["unit"])
			if err != nil {
				t.Fatalf("unit-done instant with bad unit attr: %+v", sp.Attrs)
			}
			if _, dup := attempts[u]; dup {
				t.Errorf("unit %d has more than one unit-done instant", u)
			}
			n, err := strconv.Atoi(sp.Attrs["attempts"])
			if err != nil {
				t.Fatalf("unit-done instant with bad attempts attr: %+v", sp.Attrs)
			}
			attempts[u] = n
		case "exec":
			if sp.Service != "bdcoord" {
				continue // a worker's imported spans never include exec
			}
			key := sp.Attrs["unit"] + "/" + sp.Attrs["attempt"]
			execByKey[key]++
			if sp.Attrs["status"] == "ok" {
				execOK[key] = true
			}
		}
	}
	if units < 1 {
		t.Fatalf("trace has no plan span with a units attribute (spans: %d)", len(export.Spans))
	}
	if len(attempts) != units {
		t.Fatalf("trace has unit-done instants for %d of %d units", len(attempts), units)
	}
	for u, n := range attempts {
		key := strconv.Itoa(u) + "/" + strconv.Itoa(n+1)
		if execByKey[key] != 1 {
			t.Errorf("unit %d: %d exec span(s) at winning attempt %d, want exactly 1", u, execByKey[key], n+1)
		}
		if !execOK[key] {
			t.Errorf("unit %d: winning exec span (attempt %d) did not end ok", u, n+1)
		}
	}

	// The chaos fleet's worker spans joined the trace: at least one
	// imported span tagged with a worker URL, proving header propagation
	// and import survive the fault script.
	imported := 0
	for _, sp := range export.Spans {
		if sp.Worker != "" && sp.Service != "bdcoord" {
			imported++
		}
	}
	if imported == 0 {
		t.Error("no worker spans were imported into the coordinator trace")
	}
}
