// Package chaostest is the in-process fault-injection harness for the
// shard coordinator: a reverse proxy wrapped around one bdservd worker
// that can inject request latency, cut NDJSON event streams mid-flight,
// corrupt result bodies into wrong-shape responses, and crash (sever the
// network, optionally swapping in a brand-new worker) and restart on a
// deterministic script. The coordinator talks to the proxy's URL exactly
// as it would to a real worker, so every injected fault exercises the
// real dispatch/retry/breaker path — and the package's property tests
// assert the work-stealing merge stays byte-identical to a single-daemon
// run under randomized grids, worker counts and fault scripts.
package chaostest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/benchio"
)

// Corrupt selects how a /result body is mangled into a wrong-shape
// response.
type Corrupt string

const (
	// CorruptNone passes the body through untouched.
	CorruptNone Corrupt = ""
	// CorruptDropWorkload removes the last cell row but keeps the label
	// list — a shape the coordinator's unit validation must reject.
	CorruptDropWorkload Corrupt = "drop-workload"
	// CorruptRenameMetric rewrites the first metric name — a
	// mixed-version-fleet simulation.
	CorruptRenameMetric Corrupt = "rename-metric"
	// CorruptNodeOffset shifts the reported node offset by one — cells
	// that would land on the wrong grid columns if merged.
	CorruptNodeOffset Corrupt = "node-offset"
	// CorruptGarbage replaces the body with non-JSON bytes.
	CorruptGarbage Corrupt = "garbage"
)

// StreamFault cuts one /events response after forwarding CutAfterLines
// NDJSON lines — a mid-stream disconnect with no terminal event.
type StreamFault struct {
	CutAfterLines int
}

// Script is one worker's deterministic fault plan. Fault lists are
// consumed in order by successive matching requests and then exhaust —
// a finite script eventually lets every request through clean, which is
// what makes randomized chaos runs convergent.
type Script struct {
	// Latency is added to every proxied request.
	Latency time.Duration
	// StreamFaults are consumed by successive /events requests.
	StreamFaults []StreamFault
	// ResultFaults are consumed by successive /result requests.
	ResultFaults []Corrupt
	// CrashAfterRequests, when positive, severs the proxy's network
	// (listener and all connections) when the Nth request arrives.
	CrashAfterRequests int
	// RestartAfter is how long a scripted crash lasts before the proxy
	// re-listens on the same address.
	RestartAfter time.Duration
}

// Proxy is one fault-injecting worker front. Create with New, point the
// coordinator at URL(), Close when done.
type Proxy struct {
	transport http.RoundTripper

	mu        sync.Mutex
	target    string
	addr      string
	srv       *http.Server
	script    Script
	requests  int
	streamIdx int
	resultIdx int
	closed    bool
	submitted []string // worker job IDs of accepted POST /v1/jobs

	// OnRestart, when set, is invoked before a scripted restart and
	// returns the target for the revived proxy — e.g. the URL of a
	// freshly booted worker, simulating a crash that lost all worker
	// state (cache, journal, in-flight jobs).
	OnRestart func() string
}

// New starts a proxy on a loopback port in front of target, applying
// script.
func New(target string, script Script) (*Proxy, error) {
	p := &Proxy{
		transport: &http.Transport{MaxIdleConnsPerHost: 4},
		target:    strings.TrimRight(target, "/"),
		script:    script,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p.addr = ln.Addr().String()
	p.serveOn(ln)
	return p, nil
}

// URL returns the proxy's base URL — what the coordinator is configured
// with in place of the real worker.
func (p *Proxy) URL() string { return "http://" + p.addr }

func (p *Proxy) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: p}
	p.mu.Lock()
	p.srv = srv
	p.mu.Unlock()
	go srv.Serve(ln)
}

// Crash severs the proxy's network presence: the listener closes and
// every active connection — including event streams — is torn down. The
// backing worker keeps running; only the network dies, exactly like
// worker.kill in the coordinator tests but reversible via Restart.
func (p *Proxy) Crash() {
	p.mu.Lock()
	srv := p.srv
	p.srv = nil
	p.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Restart re-listens on the proxy's original address. The port was just
// released by Crash, so a brief bind retry rides out the race with the
// kernel.
func (p *Proxy) Restart() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("chaostest: proxy closed")
	}
	addr := p.addr
	p.mu.Unlock()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaostest: rebinding %s: %w", addr, err)
	}
	p.serveOn(ln)
	return nil
}

// SubmittedIDs returns the worker-side job IDs of every accepted POST
// /v1/jobs that passed through the proxy, in arrival order (duplicates
// included). Unit job IDs are content-addressed, so recovery tests use
// this to assert a restarted coordinator never re-submits a unit it
// already journaled as done.
func (p *Proxy) SubmittedIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.submitted...)
}

// SetTarget repoints the proxy at a different worker (used with
// OnRestart-style fresh-worker crash simulations).
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = strings.TrimRight(target, "/")
	p.mu.Unlock()
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	srv := p.srv
	p.srv = nil
	p.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// plan consumes the script state for one incoming request.
func (p *Proxy) plan(r *http.Request) (target string, latency time.Duration, cut int, corrupt Corrupt, crash bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	target = p.target
	latency = p.script.Latency
	cut = -1
	corrupt = CorruptNone
	if p.script.CrashAfterRequests > 0 && p.requests == p.script.CrashAfterRequests {
		crash = true
		return
	}
	if strings.HasSuffix(r.URL.Path, "/events") && p.streamIdx < len(p.script.StreamFaults) {
		cut = p.script.StreamFaults[p.streamIdx].CutAfterLines
		p.streamIdx++
	}
	if strings.HasSuffix(r.URL.Path, "/result") && p.resultIdx < len(p.script.ResultFaults) {
		corrupt = p.script.ResultFaults[p.resultIdx]
		p.resultIdx++
	}
	return
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	target, latency, cut, corrupt, crash := p.plan(r)
	if crash {
		restart := p.script.RestartAfter
		go func() {
			p.Crash()
			time.Sleep(restart)
			if p.OnRestart != nil {
				p.SetTarget(p.OnRestart())
			}
			p.Restart() // error only after Close; nothing to do with it
		}()
		panic(http.ErrAbortHandler) // sever this connection uncleanly
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-r.Context().Done():
			return
		}
	}

	url := target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.transport.RoundTrip(req)
	if err != nil {
		http.Error(w, "chaostest: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	if corrupt != CorruptNone && resp.StatusCode == http.StatusOK {
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(corruptBody(body, corrupt))
		return
	}

	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/v1/jobs") &&
		(resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted) {
		// Record the accepted submission's job ID for recovery assertions,
		// then pass the body through verbatim.
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		var st struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(body, &st) == nil && st.ID != "" {
			p.mu.Lock()
			p.submitted = append(p.submitted, st.ID)
			p.mu.Unlock()
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)

	if cut >= 0 {
		// Forward NDJSON lines one by one, then sever the connection
		// mid-stream: the client sees activity followed by a dead drop
		// with no terminal event.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		lines := 0
		for lines < cut && sc.Scan() {
			w.Write(sc.Bytes())
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
			lines++
		}
		panic(http.ErrAbortHandler)
	}

	buf := make([]byte, 4<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// corruptBody mangles an ObservationsJSON body per kind; bodies that fail
// to decode fall back to garbage (the point is a broken response, not a
// faithful one).
func corruptBody(body []byte, kind Corrupt) []byte {
	if kind == CorruptGarbage {
		return []byte(`{"labels": ["H-`)
	}
	var oj benchio.ObservationsJSON
	if err := json.Unmarshal(body, &oj); err != nil {
		return []byte(`{"labels": ["H-`)
	}
	switch kind {
	case CorruptDropWorkload:
		if len(oj.Cells) > 0 {
			oj.Cells = oj.Cells[:len(oj.Cells)-1]
		}
	case CorruptRenameMetric:
		if len(oj.Metrics) > 0 {
			oj.Metrics = append([]string(nil), oj.Metrics...)
			oj.Metrics[0] = oj.Metrics[0] + "-v2"
		}
	case CorruptNodeOffset:
		oj.NodeOffset++
	}
	out, err := json.Marshal(oj)
	if err != nil {
		return []byte(`{"labels": ["H-`)
	}
	return out
}
