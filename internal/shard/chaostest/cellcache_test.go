package chaostest

// Cell-cache determinism scenarios: every merged result a coordinator
// produces with the shared cell cache in play — cold, fully warm, or
// partially warm across overlapping suites — must be byte-identical to
// the single-daemon golden run of the same spec. The warm scenario is
// the strongest form: a fresh coordinator with NO fleet at all serves
// the whole grid from cached cells.

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
)

// counterValue reads one un-labeled counter from a registry's text
// exposition (the same surface /metrics serves).
func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// cellStats is the bd_cellcache_* counter snapshot of one coordinator run.
type cellStats struct {
	hits, misses, stores float64
}

// runCellCached runs spec through a fresh coordinator (fresh executor,
// fresh manager — no result-cache or journal carry-over) whose executor
// shares cellDir, and returns the merged hash/bytes plus the run's cell
// counter deltas (the registry is fresh, so totals ARE deltas).
func runCellCached(t *testing.T, spec service.JobSpec, workers []string, cellDir string) (string, []byte, cellStats) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := chaosExecConfig(workers, 4)
	cfg.CellCacheDir = cellDir
	cfg.Registry = reg
	exec, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, coord, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("cell-cached job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord.Result(st.ID)
	if !ok {
		t.Fatal("cell-cached job has no result bytes")
	}
	return fin.ResultHash, data, cellStats{
		hits:   counterValue(t, reg, "bd_cellcache_hits_total"),
		misses: counterValue(t, reg, "bd_cellcache_misses_total"),
		stores: counterValue(t, reg, "bd_cellcache_stores_total"),
	}
}

// TestCellCacheColdWarmOverlap drives the coordinator's shared cell
// cache through its three regimes against one on-disk cache directory:
//
//   - cold: every column misses, is computed by the fleet, and is
//     written through — merged bytes equal the single-daemon golden.
//   - warm: a *fresh* coordinator with an empty fleet serves the whole
//     grid from cached cells — nothing to dispatch to, yet the merged
//     bytes still equal the golden.
//   - overlap: a suite sharing 3 of 4 workloads hits exactly the shared
//     columns, computes only the new workload's, and matches its own
//     golden.
func TestCellCacheColdWarmOverlap(t *testing.T) {
	cellDir := t.TempDir()
	const nodes = 2
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, nodes, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)

	w1, w2 := startWorker(t), startWorker(t)
	urls := []string{w1.url, w2.url}

	hash, data, st := runCellCached(t, spec, urls, cellDir)
	assertIdentical(t, "cold cell cache", wantHash, wantBytes, hash, data)
	if st.hits != 0 {
		t.Errorf("cold run: %v cell hits, want 0", st.hits)
	}
	// 4 workloads × 2 nodes = 8 columns, each stored once.
	if st.stores != 4*nodes {
		t.Errorf("cold run: %v cell stores, want %d", st.stores, 4*nodes)
	}

	// Warm: no workers at all. Every unit is assembled coordinator-side
	// from cached columns, so the job settles without a single dispatch.
	hash, data, st = runCellCached(t, spec, nil, cellDir)
	assertIdentical(t, "warm cell cache (empty fleet)", wantHash, wantBytes, hash, data)
	if st.hits != 4*nodes || st.misses != 0 {
		t.Errorf("warm run: hits=%v misses=%v, want %d/0", st.hits, st.misses, 4*nodes)
	}

	// Overlap: 3 of 4 workloads shared. Only H-WordCount's columns are
	// computed; the rest arrive from the cache the first spec populated.
	spec2 := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "H-WordCount"}, nodes, 1, 1500, 8, false)
	wantHash2, wantBytes2 := golden(t, spec2)
	hash, data, st = runCellCached(t, spec2, urls, cellDir)
	assertIdentical(t, "overlapping suite", wantHash2, wantBytes2, hash, data)
	if st.hits != 3*nodes {
		t.Errorf("overlap run: %v cell hits, want %d (3 shared workloads × %d nodes)", st.hits, 3*nodes, nodes)
	}
	if st.stores != 1*nodes {
		t.Errorf("overlap run: %v cell stores, want %d (1 new workload × %d nodes)", st.stores, nodes, nodes)
	}
}
