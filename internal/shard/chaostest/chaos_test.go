package chaostest

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/custom"
	"repro/internal/bigdata/workloads"
	"repro/internal/cluster/kmeans"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/sim/machine"
	"repro/internal/trace"
)

// chaosSpec builds a fast CI-scale job over the named workloads.
func chaosSpec(names []string, nodes, runs, instr, slices int, observations bool) service.JobSpec {
	m := machine.Westmere()
	m.Sockets, m.CoresPerSocket = 1, 2
	m.L1I.SizeB = 1 << 10
	m.L1D.SizeB = 1 << 10
	m.L2.SizeB = 4 << 10
	m.L3.SizeB = 32 << 10
	spec := service.JobSpec{
		Workloads: names,
		Suite:     workloads.Config{Seed: 11, Scale: 1 << 16},
		Cluster: cluster.Config{
			Machine:             m,
			SlaveNodes:          nodes,
			InstructionsPerCore: instr,
			Slices:              slices,
			Monitor:             perf.DefaultMonitor(),
			Runs:                runs,
			Seed:                11,
			ExecutionJitter:     0.05,
		},
		Analysis: core.AnalysisConfig{
			KMin: 2, KMax: 2,
			KMeans: kmeans.Config{Restarts: 2, Seed: 7},
		},
	}
	if observations {
		spec.Mode = service.ModeObservations
	}
	return spec
}

// chaosCustomDefs returns the custom definitions the chaos suite mixes
// in: one blended scenario (H-/S-ChaosProbe) and one raw profile
// (RawProbe) — both cheap at chaos scale.
func chaosCustomDefs() []custom.Definition {
	return []custom.Definition{
		{
			Name: "ChaosProbe",
			Data: custom.DataSpec{PaperBytes: 2 << 30, Skew: 0.35},
			Mix: &trace.Params{
				LoadFrac: 0.33, StoreFrac: 0.07, BranchFrac: 0.19,
				DepFrac: 0.25, SeqFrac: 0.45, BranchEntropy: 0.12,
			},
			ShuffleFrac: 0.15,
		},
		{
			Name: "RawProbe",
			Raw: &trace.Profile{
				Compute: trace.Params{
					LoadFrac: 0.3, StoreFrac: 0.1, UopsPerInstr: 1.3,
					CodeFootprintB: 64 << 10, DataFootprintB: 4 << 20,
					DataSkew: 0.3, SeqFrac: 0.5,
				},
			},
		},
	}
}

// worker is one in-process bdservd behind a real HTTP listener.
type worker struct {
	url string
	mgr *service.Manager
	srv *http.Server
}

func startWorker(t *testing.T) *worker {
	t.Helper()
	return startWorkerWith(t, service.Config{Workers: 2, Parallelism: 2})
}

// startWorkerWith starts an in-process worker with an explicit service
// configuration (the recovery tests throttle cells to slow workers down).
func startWorkerWith(t *testing.T, cfg service.Config) *worker {
	t.Helper()
	mgr, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &worker{url: "http://" + ln.Addr().String(), mgr: mgr, srv: srv}
}

// golden runs the spec on a plain single-daemon manager and returns the
// canonical result bytes and hash — the reference every chaotic run must
// reproduce exactly.
func golden(t *testing.T, spec service.JobSpec) (string, []byte) {
	t.Helper()
	mgr, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	st, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, mgr, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("golden job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := mgr.Result(st.ID)
	if !ok {
		t.Fatal("golden job has no result bytes")
	}
	return fin.ResultHash, data
}

func waitTerminal(t *testing.T, m *service.Manager, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == service.StateDone || st.State == service.StateFailed || st.State == service.StateCanceled {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s not terminal after %v (state %s, cells %d/%d)",
		id, timeout, st.State, st.CellsDone, st.CellsTotal)
	return service.JobStatus{}
}

// chaosExecConfig is the coordinator configuration used under fault
// injection: tight stall/probe/breaker knobs so faults are detected in
// milliseconds, and a generous attempt budget so finite fault scripts
// always drain before a unit exhausts.
func chaosExecConfig(urls []string, unitsPerWorker int) shard.Config {
	return shard.Config{
		Workers:          urls,
		Parallelism:      2,
		StallTimeout:     2 * time.Second,
		UnitsPerWorker:   unitsPerWorker,
		ProbeInterval:    50 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		BreakerThreshold: 2,
		MaxUnitAttempts:  12,
		DownGrace:        10 * time.Second,
	}
}

// runChaotic runs spec through a coordinator whose workers sit behind the
// given chaos proxies and returns the merged hash and bytes.
func runChaotic(t *testing.T, spec service.JobSpec, proxies []*Proxy, unitsPerWorker int) (string, []byte) {
	t.Helper()
	urls := make([]string, len(proxies))
	for i, p := range proxies {
		urls[i] = p.URL()
	}
	exec, err := shard.New(chaosExecConfig(urls, unitsPerWorker))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, coord, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("chaotic job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord.Result(st.ID)
	if !ok {
		t.Fatal("chaotic job has no result bytes")
	}
	return fin.ResultHash, data
}

func newProxy(t *testing.T, target string, script Script) *Proxy {
	t.Helper()
	p, err := New(target, script)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func assertIdentical(t *testing.T, scenario, wantHash string, wantBytes []byte, gotHash string, gotBytes []byte) {
	t.Helper()
	if gotHash != wantHash {
		t.Errorf("%s: merged hash %s != golden hash %s", scenario, gotHash, wantHash)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("%s: merged bytes differ from golden bytes", scenario)
	}
}

// TestChaosLatency: one worker is slow on every request; the fast worker
// steals the tail and the merged result is untouched.
func TestChaosLatency(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	fast := newProxy(t, startWorker(t).url, Script{})
	slow := newProxy(t, startWorker(t).url, Script{Latency: 150 * time.Millisecond})
	gotHash, gotBytes := runChaotic(t, spec, []*Proxy{fast, slow}, 4)
	assertIdentical(t, "latency", wantHash, wantBytes, gotHash, gotBytes)
}

// TestChaosMidStreamDisconnect: the first two event streams on one worker
// die after a single line; the re-queued units must land elsewhere (or
// retry clean) with the result intact.
func TestChaosMidStreamDisconnect(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	flaky := newProxy(t, startWorker(t).url, Script{
		StreamFaults: []StreamFault{{CutAfterLines: 1}, {CutAfterLines: 2}},
	})
	clean := newProxy(t, startWorker(t).url, Script{})
	gotHash, gotBytes := runChaotic(t, spec, []*Proxy{flaky, clean}, 3)
	assertIdentical(t, "mid-stream disconnect", wantHash, wantBytes, gotHash, gotBytes)
}

// TestChaosWrongShape: every corrupt kind is injected as a worker's first
// result responses; unit-level validation must reject each and the job
// must still converge to the golden bytes.
func TestChaosWrongShape(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	for _, kind := range []Corrupt{CorruptDropWorkload, CorruptRenameMetric, CorruptNodeOffset, CorruptGarbage} {
		t.Run(string(kind), func(t *testing.T) {
			bad := newProxy(t, startWorker(t).url, Script{
				ResultFaults: []Corrupt{kind, kind},
			})
			good := newProxy(t, startWorker(t).url, Script{})
			gotHash, gotBytes := runChaotic(t, spec, []*Proxy{bad, good}, 3)
			assertIdentical(t, string(kind), wantHash, wantBytes, gotHash, gotBytes)
		})
	}
}

// TestChaosCustomWorkloads: a spec carrying custom workload definitions
// (blended H-/S- pair plus a raw profile) runs under mid-stream
// disconnects and corrupt results on one worker; the merged bytes must
// still match the single-daemon golden run, and resubmission must be a
// cache hit with the unchanged job ID — the acceptance property for the
// open scenario registry.
func TestChaosCustomWorkloads(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "H-ChaosProbe", "S-ChaosProbe", "RawProbe"}, 2, 1, 1500, 8, false)
	spec.CustomWorkloads = chaosCustomDefs()
	wantHash, wantBytes := golden(t, spec)
	flaky := newProxy(t, startWorker(t).url, Script{
		StreamFaults: []StreamFault{{CutAfterLines: 1}},
		ResultFaults: []Corrupt{CorruptDropWorkload},
	})
	clean := newProxy(t, startWorker(t).url, Script{})
	urls := []string{flaky.URL(), clean.URL()}
	exec, err := shard.New(chaosExecConfig(urls, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, coord, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("custom chaotic job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord.Result(st.ID)
	if !ok {
		t.Fatal("custom chaotic job has no result bytes")
	}
	assertIdentical(t, "custom workloads under faults", wantHash, wantBytes, fin.ResultHash, data)

	again, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.ID != st.ID || again.ResultHash != wantHash {
		t.Errorf("resubmission not a stable cache hit: %+v", again)
	}
}

// TestChaosCrashRestart: a worker's network dies mid-job and comes back;
// the breaker opens, the half-open probe re-admits it, and the merge is
// unchanged.
func TestChaosCrashRestart(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 2500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	crashy := newProxy(t, startWorker(t).url, Script{
		CrashAfterRequests: 4,
		RestartAfter:       300 * time.Millisecond,
	})
	steady := newProxy(t, startWorker(t).url, Script{})
	gotHash, gotBytes := runChaotic(t, spec, []*Proxy{crashy, steady}, 4)
	assertIdentical(t, "crash-restart", wantHash, wantBytes, gotHash, gotBytes)
}

// TestChaosCrashFreshWorker: the crash loses the worker entirely — the
// proxy comes back pointing at a brand-new daemon with empty cache and
// no job state, the hard version of crash-and-restart.
func TestChaosCrashFreshWorker(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 2500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	crashy := newProxy(t, startWorker(t).url, Script{
		CrashAfterRequests: 4,
		RestartAfter:       300 * time.Millisecond,
	})
	crashy.OnRestart = func() string { return startWorker(t).url }
	steady := newProxy(t, startWorker(t).url, Script{})
	gotHash, gotBytes := runChaotic(t, spec, []*Proxy{crashy, steady}, 4)
	assertIdentical(t, "crash-fresh-worker", wantHash, wantBytes, gotHash, gotBytes)
}

// TestChaosPropertyMergedHashMatchesGolden is the headline property test:
// for seeded-random grids, worker counts, unit granularities and fault
// scripts (latency, mid-stream disconnects, wrong-shape results,
// crash-and-restart), the coordinator's merged result must be
// byte-identical to the single-daemon golden run. Fault scripts are
// finite by construction, so every run converges. Half the draws carry
// custom workload definitions (their names joining the selection pool),
// so the determinism property covers the open scenario registry too.
func TestChaosPropertyMergedHashMatchesGolden(t *testing.T) {
	builtins := []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep", "H-WordCount", "S-WordCount"}
	iters := 4
	if testing.Short() {
		iters = 1
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + 7*iter)))
			withCustom := rng.Intn(2) == 0
			pool := append([]string(nil), builtins...)
			if withCustom {
				// Custom names go first so the pre-shuffle window always
				// sees them; the shuffle may still trim them out, which
				// exercises definitions carried but not selected.
				pool = append([]string{"H-ChaosProbe", "S-ChaosProbe", "RawProbe"}, builtins...)
			}
			nw := 2 + rng.Intn(3) // workloads
			names := append([]string(nil), pool[:nw+2]...)
			rngShuffleTrim(rng, &names, nw)
			spec := chaosSpec(
				names,
				1+rng.Intn(3), // nodes
				1+rng.Intn(2), // runs
				1000+rng.Intn(800),
				4+rng.Intn(5),
				rng.Intn(3) == 0, // sometimes characterize-only
			)
			if withCustom {
				spec.CustomWorkloads = chaosCustomDefs()
			}
			wantHash, wantBytes := golden(t, spec)

			workers := 1 + rng.Intn(3)
			proxies := make([]*Proxy, workers)
			for i := 0; i < workers; i++ {
				proxies[i] = newProxy(t, startWorker(t).url, randomScript(rng, workers))
			}
			upw := 2 + rng.Intn(3)
			var gotHash string
			var gotBytes []byte
			if rng.Intn(3) == 0 {
				// Coordinator-crash variant: kill and restart the
				// coordinator mid-job over a journal + unit store, with a
				// clean worker joining and a seeded one leaving during
				// recovery (see recovery_test.go). The determinism property
				// must hold across coordinator incarnations too.
				extra := newProxy(t, startWorker(t).url, Script{})
				gotHash, gotBytes = runWithCoordinatorCrash(t, spec, proxies, upw, extra)
			} else {
				gotHash, gotBytes = runChaotic(t, spec, proxies, upw)
			}
			assertIdentical(t, fmt.Sprintf("iter %d", iter), wantHash, wantBytes, gotHash, gotBytes)
		})
	}
}

// rngShuffleTrim shuffles names and trims to n, preserving canonical
// suite order afterwards is NOT required — workload order is part of the
// job identity and both golden and chaotic runs see the same list.
func rngShuffleTrim(rng *rand.Rand, names *[]string, n int) {
	s := *names
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	*names = s[:n]
}

// randomScript draws one worker's fault plan. Every list is short and
// finite; crashes always restart. With a single worker the crash fault is
// kept but the restart window is shortened so the DownGrace never
// triggers.
func randomScript(rng *rand.Rand, workers int) Script {
	var s Script
	switch rng.Intn(3) {
	case 1:
		s.Latency = 20 * time.Millisecond
	case 2:
		s.Latency = 100 * time.Millisecond
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.StreamFaults = append(s.StreamFaults, StreamFault{CutAfterLines: rng.Intn(4)})
	}
	kinds := []Corrupt{CorruptDropWorkload, CorruptRenameMetric, CorruptNodeOffset, CorruptGarbage}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.ResultFaults = append(s.ResultFaults, kinds[rng.Intn(len(kinds))])
	}
	if rng.Intn(3) == 0 {
		s.CrashAfterRequests = 3 + rng.Intn(10)
		s.RestartAfter = time.Duration(100+rng.Intn(200)) * time.Millisecond
		if workers == 1 {
			s.RestartAfter = 100 * time.Millisecond
		}
	}
	return s
}
