package chaostest

// Coordinator crash-recovery chaos tests: the coordinator itself — not a
// worker — is killed mid-job and restarted over its journal + unit
// store, while the worker fleet churns (a fresh worker joins, a seeded
// one leaves). The acceptance property is twofold: the merged result
// stays byte-identical to the single-daemon golden run, and the
// restarted coordinator re-submits exactly the units it had NOT
// journaled as done — proven by counting worker-side unit submissions
// through the chaos proxies.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/shard"
)

// journalView is the unit-level progress a journal records for one job,
// parsed with the same semantics as the daemon's replay: a plan record
// with a different part count voids earlier unit_done records, and a
// terminal record clears them all.
type journalView struct {
	parts    int
	done     map[int]string // unit index → sub-result store key
	terminal bool
}

// parseJournal reads the journal NDJSON and reduces jobID's records to a
// journalView. A torn tail (partial last line) stops the scan, exactly
// like replay.
func parseJournal(t *testing.T, path, jobID string) journalView {
	t.Helper()
	v := journalView{done: map[int]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct {
			Type  string `json:"type"`
			ID    string `json:"id"`
			Parts int    `json:"parts"`
			Unit  *int   `json:"unit"`
			Key   string `json:"key"`
		}
		if json.Unmarshal([]byte(line), &rec) != nil {
			break // torn tail
		}
		if rec.ID != jobID {
			continue
		}
		switch rec.Type {
		case "plan":
			if rec.Parts > 0 && rec.Parts != v.parts {
				v.parts, v.done = rec.Parts, map[int]string{}
			}
		case "unit_done":
			if rec.Unit != nil && rec.Key != "" {
				v.done[*rec.Unit] = rec.Key
			}
		case "done", "fail", "cancel":
			v.terminal = true
			v.parts, v.done = 0, map[int]string{}
		}
	}
	return v
}

// startWorkerThrottled is startWorker with an artificial per-cell delay,
// slow enough that a coordinator killed after the first journaled
// unit_done reliably leaves work unfinished.
func startWorkerThrottled(t *testing.T, d time.Duration) *worker {
	t.Helper()
	return startWorkerWith(t, service.Config{Workers: 2, Parallelism: 2, CellDelay: d})
}

// runWithCoordinatorCrash runs spec through a journaled coordinator that
// is killed the moment its first unit_done record lands (Close with the
// job still running journals no terminal record — the crash model), then
// restarted over the same journal and unit store. During recovery the
// fleet churns: extra (if non-nil) joins via the registration path and
// the last initial proxy's worker leaves. It asserts the restarted
// coordinator re-submits exactly the units not journaled done, and
// returns the merged hash and bytes for the caller's golden comparison.
func runWithCoordinatorCrash(t *testing.T, spec service.JobSpec, proxies []*Proxy, upw int, extra *Proxy) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.ndjson")
	urls := make([]string, len(proxies))
	for i, p := range proxies {
		urls[i] = p.URL()
	}
	mkExec := func() *shard.Executor {
		cfg := chaosExecConfig(urls, upw)
		cfg.UnitCacheDir = filepath.Join(dir, "units")
		exec, err := shard.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	mkCoord := func(exec *shard.Executor) *service.Manager {
		coord, err := service.New(service.Config{
			Workers:     2,
			DataDir:     filepath.Join(dir, "data"),
			JournalPath: journal,
			Execute:     exec.Execute,
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord
	}

	// Incarnation one: submit, wait for the first journaled unit_done,
	// then die without a terminal record.
	exec1 := mkExec()
	coord1 := mkCoord(exec1)
	st, err := coord1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for len(parseJournal(t, journal, st.ID).done) == 0 {
		if cur, _ := coord1.Get(st.ID); cur.State == service.StateFailed {
			t.Fatalf("job failed before crash: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("no unit_done journaled within 60s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	coord1.Close()
	exec1.Close()

	pre := parseJournal(t, journal, st.ID)
	doneKeys := map[string]bool{}
	for _, k := range pre.done {
		doneKeys[k] = true
	}
	preCounts := make([]int, len(proxies))
	for i, p := range proxies {
		preCounts[i] = len(p.SubmittedIDs())
	}

	// Incarnation two over the same journal + unit store re-adopts the
	// job at New. Churn the fleet while it recovers: extra joins, the
	// last seeded worker leaves.
	exec2 := mkExec()
	defer exec2.Close()
	coord2 := mkCoord(exec2)
	defer coord2.Close()
	if extra != nil {
		if _, err := exec2.Register(extra.URL(), time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if len(proxies) > 1 {
		time.Sleep(50 * time.Millisecond)
		exec2.Deregister(urls[len(urls)-1])
	}
	fin := waitTerminal(t, coord2, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("recovered job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord2.Result(st.ID)
	if !ok {
		t.Fatal("recovered job has no result bytes")
	}

	if pre.terminal {
		// The job slipped to terminal between the last poll and Close —
		// nothing was left to recover; the golden comparison still holds.
		t.Logf("job completed before the crash landed; skipping re-submission accounting")
		return fin.ResultHash, data
	}

	// The restart must re-execute exactly the remainder: every distinct
	// unit submitted after the crash (unit job IDs are content-addressed,
	// so identity survives coordinator incarnations and worker moves) is
	// outside the journaled-done set, and together they cover exactly the
	// plan's complement of that set.
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	units, err := shard.Plan(norm, pre.parts)
	if err != nil {
		t.Fatal(err)
	}
	phase2 := map[string]bool{}
	for i, p := range proxies {
		for _, id := range p.SubmittedIDs()[preCounts[i]:] {
			phase2[id] = true
		}
	}
	if extra != nil {
		for _, id := range extra.SubmittedIDs() {
			phase2[id] = true
		}
	}
	for id := range phase2 {
		if doneKeys[id] {
			t.Errorf("restarted coordinator re-submitted unit %s already journaled done", id)
		}
	}
	if want := len(units) - len(pre.done); len(phase2) != want {
		t.Errorf("restart submitted %d distinct units, want %d (%d planned, %d journaled done)",
			len(phase2), want, len(units), len(pre.done))
	}
	return fin.ResultHash, data
}

// TestChaosCoordinatorCrashRecovery is the acceptance scenario: the
// coordinator is killed after its first unit_done record and restarted
// mid-job while a fresh worker joins and a seeded one leaves. The merged
// result must be byte-identical to the single-daemon golden run and only
// the units not journaled done may be re-submitted.
func TestChaosCoordinatorCrashRecovery(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	p1 := newProxy(t, startWorkerThrottled(t, 40*time.Millisecond).url, Script{})
	p2 := newProxy(t, startWorkerThrottled(t, 40*time.Millisecond).url, Script{})
	extra := newProxy(t, startWorker(t).url, Script{})
	gotHash, gotBytes := runWithCoordinatorCrash(t, spec, []*Proxy{p1, p2}, 4, extra)
	assertIdentical(t, "coordinator-crash", wantHash, wantBytes, gotHash, gotBytes)
}

// TestChaosElasticJoinLeave exercises pure membership churn, no crash: a
// job starts on a registry seeded only at runtime with one slow worker;
// a fast worker joins mid-job (and must steal units), then the slow
// seed deregisters with units in flight (they re-queue without an
// attempt charge). The merge must match golden.
func TestChaosElasticJoinLeave(t *testing.T) {
	spec := chaosSpec([]string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"}, 2, 1, 1500, 8, false)
	wantHash, wantBytes := golden(t, spec)
	slow := newProxy(t, startWorkerThrottled(t, 60*time.Millisecond).url, Script{})
	fast := newProxy(t, startWorker(t).url, Script{})

	exec, err := shard.New(chaosExecConfig(nil, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	if _, err := exec.Register(slow.URL(), time.Hour); err != nil {
		t.Fatal(err)
	}
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitSubmissions(t, slow, 1, 30*time.Second)
	if _, err := exec.Register(fast.URL(), time.Hour); err != nil {
		t.Fatal(err)
	}
	waitSubmissions(t, fast, 1, 30*time.Second)
	if !exec.Deregister(slow.URL()) {
		t.Fatal("slow worker was not a member at deregistration")
	}
	fin := waitTerminal(t, coord, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("churned job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := coord.Result(st.ID)
	if !ok {
		t.Fatal("churned job has no result bytes")
	}
	assertIdentical(t, "elastic join/leave", wantHash, wantBytes, fin.ResultHash, data)
	if len(fast.SubmittedIDs()) == 0 {
		t.Error("late-joining worker never received a unit")
	}
}

// waitSubmissions polls until the proxy has forwarded at least n
// accepted unit submissions.
func waitSubmissions(t *testing.T, p *Proxy, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for len(p.SubmittedIDs()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("proxy saw %d submissions, want ≥%d within %v", len(p.SubmittedIDs()), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
