package shard

import (
	"errors"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// gatedWorker fronts a real worker with a health toggle and a job-POST
// counter: flipping healthy=false simulates a worker that died *between*
// jobs (its /healthz fails) while still counting any unit the
// coordinator wrongly sends it.
type gatedWorker struct {
	url      string
	healthy  atomic.Bool
	jobPosts atomic.Int64
}

func startGatedWorker(t *testing.T) *gatedWorker {
	t.Helper()
	backend := startWorker(t, service.Config{Workers: 2, Parallelism: 2})
	bu, err := url.Parse(backend.url)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(bu)
	g := &gatedWorker{}
	g.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !g.healthy.Load() {
			http.Error(w, `{"error":"simulated dead worker"}`, http.StatusServiceUnavailable)
			return
		}
		proxy.ServeHTTP(w, r)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		g.jobPosts.Add(1)
		if !g.healthy.Load() {
			// A dead worker refuses work, not just probes.
			http.Error(w, `{"error":"simulated dead worker"}`, http.StatusServiceUnavailable)
			return
		}
		proxy.ServeHTTP(w, r)
	})
	mux.Handle("/", proxy)
	srv := startHTTP(t, mux)
	g.url = srv
	return g
}

// startHTTP serves h on a loopback port and returns its base URL.
func startHTTP(t *testing.T, h http.Handler) string {
	t.Helper()
	w := &http.Server{Handler: h}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return "http://" + ln.Addr().String()
}

func waitBreaker(t *testing.T, exec *Executor, wi int, want BreakerState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if exec.WorkerStatuses()[wi].Breaker == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker %d breaker never became %s (now %s)", wi, want, exec.WorkerStatuses()[wi].Breaker)
}

// TestBreakerBlocksDeadWorkerBetweenJobs is the regression test for
// proactive failure discovery: a worker that dies *between* jobs must be
// taken out of rotation by the health prober before the next job — it
// receives zero unit submissions while its breaker is open — and a
// successful half-open probe re-admits it afterwards.
func TestBreakerBlocksDeadWorkerBetweenJobs(t *testing.T) {
	flappy := startGatedWorker(t)
	steady := startWorker(t, service.Config{Workers: 2, Parallelism: 2})

	cfg := fastCoordConfig([]string{flappy.url, steady.url})
	cfg.ProbeInterval = 25 * time.Millisecond
	cfg.BreakerThreshold = 2
	exec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// Job 1: both workers healthy; the flappy one participates.
	spec := tinySpec()
	fin, _ := runToDone(t, coord, spec)
	if fin.State != service.StateDone {
		t.Fatalf("warm-up job finished %s", fin.State)
	}
	if flappy.jobPosts.Load() == 0 {
		t.Fatal("healthy flappy worker received no unit submissions")
	}

	// The worker dies between jobs: only the prober can notice.
	flappy.healthy.Store(false)
	waitBreaker(t, exec, 0, BreakerOpen, 5*time.Second)
	st := exec.WorkerStatuses()[0]
	if st.ProbeFailures == 0 || st.LastError == "" {
		t.Errorf("open breaker carries no probe-failure evidence: %+v", st)
	}

	// Job 2 (a different grid): every unit must go to the steady worker;
	// the dead one must not see a single submission.
	flappy.jobPosts.Store(0)
	spec2 := tinySpec("H-Sort", "S-Sort", "H-Grep")
	fin2, _ := runToDone(t, coord, spec2)
	if fin2.State != service.StateDone {
		t.Fatalf("job with open breaker finished %s: %s", fin2.State, fin2.Error)
	}
	if n := flappy.jobPosts.Load(); n != 0 {
		t.Errorf("worker with open breaker received %d unit submissions, want 0", n)
	}

	// Recovery: health returns, the half-open probe re-admits the worker,
	// and a fresh job uses it again.
	flappy.healthy.Store(true)
	waitBreaker(t, exec, 0, BreakerClosed, 5*time.Second)
	flappy.jobPosts.Store(0)
	spec3 := tinySpec("H-Sort", "S-Sort", "H-Grep", "S-Grep")
	spec3.Cluster.SlaveNodes = 3
	fin3, _ := runToDone(t, coord, spec3)
	if fin3.State != service.StateDone {
		t.Fatalf("post-recovery job finished %s: %s", fin3.State, fin3.Error)
	}
	if flappy.jobPosts.Load() == 0 {
		t.Error("re-admitted worker received no unit submissions")
	}
}

// TestDispatchTrialReadmitsWithoutProber: with probing disabled
// (-probe-interval < 0) an open breaker must still re-admit a recovered
// worker — via a half-open dispatch trial after the BreakerRetry
// cooldown — instead of excluding it for the coordinator's lifetime.
func TestDispatchTrialReadmitsWithoutProber(t *testing.T) {
	flappy := startGatedWorker(t)
	steady := startWorker(t, service.Config{Workers: 2, Parallelism: 2})

	cfg := fastCoordConfig([]string{flappy.url, steady.url})
	cfg.ProbeInterval = -1 // no prober: dispatch trials own re-admission
	cfg.BreakerRetry = 200 * time.Millisecond
	cfg.BreakerThreshold = 2
	exec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// Worker down from the start: the job completes on the steady worker
	// and the flappy one's breaker opens from unit failures alone.
	flappy.healthy.Store(false)
	fin, _ := runToDone(t, coord, tinySpec())
	if fin.State != service.StateDone {
		t.Fatalf("job with one dead worker finished %s: %s", fin.State, fin.Error)
	}
	if got := exec.WorkerStatuses()[0].Breaker; got != BreakerOpen {
		t.Fatalf("dead worker's breaker is %s after the job, want open", got)
	}

	// Worker recovers; past the cooldown the next job's dispatch trial
	// must use it again and close the breaker.
	flappy.healthy.Store(true)
	time.Sleep(2 * cfg.BreakerRetry)
	flappy.jobPosts.Store(0)
	fin2, _ := runToDone(t, coord, tinySpec("H-Sort", "S-Sort", "H-Grep"))
	if fin2.State != service.StateDone {
		t.Fatalf("post-recovery job finished %s: %s", fin2.State, fin2.Error)
	}
	if flappy.jobPosts.Load() == 0 {
		t.Error("recovered worker received no dispatch trial with probing disabled")
	}
	waitBreaker(t, exec, 0, BreakerClosed, 5*time.Second)
}

// TestBreakerOpensOnUnitFailures: dispatch failures alone (no probing)
// open the breaker at the configured threshold, and recordSuccess closes
// it again.
func TestBreakerOpensOnUnitFailures(t *testing.T) {
	w := newWorkerState("http://example.invalid", nil, 3)
	if !w.available() {
		t.Fatal("fresh worker not available")
	}
	err := errors.New("boom")
	w.recordFailure(err)
	w.recordFailure(err)
	if !w.available() {
		t.Fatal("breaker opened below threshold")
	}
	w.recordFailure(err)
	if w.available() {
		t.Fatal("breaker still closed at threshold")
	}
	if st := w.snapshot(); st.Breaker != BreakerOpen || st.ConsecutiveFailures != 3 || st.UnitsFailed != 3 {
		t.Fatalf("unexpected snapshot %+v", st)
	}
	w.recordSuccess()
	if !w.available() {
		t.Fatal("unit success did not close the breaker")
	}
}

// TestBreakerHalfOpenProbeCycle: a probe on an open breaker passes
// through half-open, and its outcome decides re-admission.
func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	w := newWorkerState("http://example.invalid", nil, 1)
	w.recordFailure(errors.New("down"))
	if w.available() {
		t.Fatal("breaker should be open at threshold 1")
	}
	w.beginProbe()
	if st := w.snapshot(); st.Breaker != BreakerHalfOpen {
		t.Fatalf("probe on open breaker not half-open: %s", st.Breaker)
	}
	if w.available() {
		t.Fatal("half-open breaker must not admit dispatch")
	}
	w.finishProbe(errors.New("still down"))
	if st := w.snapshot(); st.Breaker != BreakerOpen || st.ProbeFailures != 1 {
		t.Fatalf("failed half-open probe did not re-open: %+v", st)
	}
	w.beginProbe()
	w.finishProbe(nil)
	if st := w.snapshot(); st.Breaker != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("successful half-open probe did not close: %+v", st)
	}
}

// TestDispatchTrialStateMachine covers the probe-less half-open cycle:
// cooldown gating, single trial at a time, and all three trial outcomes
// (success, failure, canceled trial).
func TestDispatchTrialStateMachine(t *testing.T) {
	w := newWorkerState("http://example.invalid", nil, 1)
	w.recordFailure(errors.New("down"))
	if w.tryDispatchTrial(time.Hour) {
		t.Fatal("trial admitted inside the cooldown")
	}
	if !w.tryDispatchTrial(0) {
		t.Fatal("trial refused after the cooldown")
	}
	if w.tryDispatchTrial(0) {
		t.Fatal("second concurrent trial admitted while half-open")
	}
	w.recordFailure(errors.New("still down"))
	if st := w.snapshot(); st.Breaker != BreakerOpen {
		t.Fatalf("failed trial left breaker %s, want open", st.Breaker)
	}
	if !w.tryDispatchTrial(0) {
		t.Fatal("trial refused after a failed trial re-opened")
	}
	w.cancelTrial()
	if st := w.snapshot(); st.Breaker != BreakerOpen {
		t.Fatalf("canceled trial left breaker %s, want open", st.Breaker)
	}
	if !w.tryDispatchTrial(0) {
		t.Fatal("trial refused after a canceled trial")
	}
	w.recordSuccess()
	if st := w.snapshot(); st.Breaker != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("successful trial did not close: %+v", st)
	}
}
