package shard

import (
	"repro/internal/obs"
)

// shardMetrics bundles the coordinator executor's obs instruments.
// Per-worker families are labeled by worker base URL — cardinality is
// bounded by fleet size (series of departed workers persist as frozen
// counters, which is what an operator wants when diagnosing churn).
type shardMetrics struct {
	unitsDispatched    *obs.CounterVec // worker
	unitsDone          *obs.CounterVec // worker
	unitsFailed        *obs.CounterVec // worker
	unitsStolen        *obs.CounterVec // worker
	breakerTransitions *obs.CounterVec // worker, to
	probes             *obs.CounterVec // worker, outcome
	leaseEvents        *obs.CounterVec // event
	mergeDuration      *obs.Histogram
	unitDuration       *obs.HistogramVec // worker
}

func newShardMetrics(reg *obs.Registry) *shardMetrics {
	return &shardMetrics{
		unitsDispatched: reg.CounterVec("bd_worker_units_dispatched_total",
			"Work units handed to a worker (attempts, not distinct units).", "worker"),
		unitsDone: reg.CounterVec("bd_worker_units_done_total",
			"Work units a worker completed successfully.", "worker"),
		unitsFailed: reg.CounterVec("bd_worker_units_failed_total",
			"Work unit attempts a worker failed.", "worker"),
		unitsStolen: reg.CounterVec("bd_worker_units_stolen_total",
			"Re-queued units a worker picked up after another worker failed them.", "worker"),
		breakerTransitions: reg.CounterVec("bd_breaker_transitions_total",
			"Circuit-breaker state transitions, by worker and target state.",
			"worker", "to"),
		probes: reg.CounterVec("bd_probes_total",
			"Health-probe outcomes, by worker and outcome (ok, fail).",
			"worker", "outcome"),
		leaseEvents: reg.CounterVec("bd_lease_events_total",
			"Membership lease events (register, renew, expire, deregister).",
			"event"),
		mergeDuration: reg.Histogram("bd_merge_duration_seconds",
			"Time to re-assemble unit matrices into the full grid, per job.",
			obs.DefBuckets),
		unitDuration: reg.HistogramVec("bd_worker_unit_duration_seconds",
			"Wall-clock time of successfully completed unit attempts, by worker.",
			obs.WideBuckets, "worker"),
	}
}
