package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fsio"
)

// unitStore is the coordinator's on-disk store for per-unit observation
// results, keyed by the unit's content-addressed worker job ID. It is
// the byte-level half of crash recovery: the journal's unit_done records
// name which units finished and under which key, and this store holds
// the canonical bytes a restarted coordinator re-adopts instead of
// re-dispatching the unit. Entries are deleted once their job merges —
// the merged result supersedes them — so the store stays bounded by the
// in-flight unit working set.
type unitStore struct {
	dir string
}

func newUnitStore(dir string) (*unitStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating unit store: %w", err)
	}
	return &unitStore{dir: dir}, nil
}

// validUnitKey mirrors the service job-ID shape (32 lowercase hex
// digits). Keys come from journal records that may be torn or tampered,
// and they become file names — anything else must never reach the
// filesystem.
func validUnitKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func (s *unitStore) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// put writes one unit's canonical result bytes atomically (unique
// tmp+fsync+rename), so a crash mid-write can never leave a half-record
// behind a key the journal claims is done: the caller journals unit_done
// only after put returns, and put returns only after the bytes are
// durable.
func (s *unitStore) put(key string, data []byte) error {
	if !validUnitKey(key) {
		return fmt.Errorf("shard: invalid unit store key %q", key)
	}
	if err := fsio.WriteFileSync(s.path(key), data, 0o644); err != nil {
		return fmt.Errorf("shard: writing unit result: %w", err)
	}
	return nil
}

// get returns a stored unit's bytes, if present and addressable.
func (s *unitStore) get(key string) ([]byte, bool) {
	if !validUnitKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// remove deletes a stored unit (no-op if absent).
func (s *unitStore) remove(key string) {
	if !validUnitKey(key) {
		return
	}
	os.Remove(s.path(key))
}
