package shard

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/service"
)

// deadWorkerURL reserves a loopback port and closes it, yielding an
// address that refuses connections for the life of the test.
func deadWorkerURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

// TestFleetStatusPartialFleet: one live worker and one dead one. The
// fleet view must return a row per member, with the live worker's
// self-reported snapshot attached and the dead worker isolated to a
// StatusError row — never an error for the whole fleet.
func TestFleetStatusPartialFleet(t *testing.T) {
	live := startWorker(t, service.Config{Workers: 1, TraceService: "bdservd"})
	dead := deadWorkerURL(t)

	exec, err := New(fastCoordConfig([]string{live.url, dead}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)

	rows := exec.FleetStatus(context.Background(), 500*time.Millisecond)
	if len(rows) != 2 {
		t.Fatalf("fleet rows = %d, want 2", len(rows))
	}
	byURL := map[string]WorkerFleetStatus{}
	for _, r := range rows {
		if r.URL == "" {
			t.Fatalf("row missing coordinator-side WorkerStatus: %+v", r)
		}
		byURL[r.URL] = r
	}

	lr, ok := byURL[live.url]
	if !ok {
		t.Fatalf("live worker %s missing from fleet view: %+v", live.url, rows)
	}
	if lr.StatusError != "" {
		t.Fatalf("live worker reported error: %s", lr.StatusError)
	}
	if lr.Status == nil || lr.Status.Service != "bdservd" || lr.Status.PID == 0 {
		t.Fatalf("live worker self-status incomplete: %+v", lr.Status)
	}

	dr, ok := byURL[dead]
	if !ok {
		t.Fatalf("dead worker %s missing from fleet view: %+v", dead, rows)
	}
	if dr.Status != nil {
		t.Fatalf("dead worker has a snapshot: %+v", dr.Status)
	}
	if dr.StatusError == "" {
		t.Fatal("dead worker row carries no StatusError")
	}
}

// TestFleetStatusTimeoutIsolated: a worker that accepts connections but
// never answers within the per-worker budget becomes a StatusError row;
// the fan-out as a whole returns promptly instead of hanging on it.
func TestFleetStatusTimeoutIsolated(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and go silent
		}
	}()

	exec, err := New(fastCoordConfig([]string{"http://" + ln.Addr().String()}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)

	start := time.Now()
	rows := exec.FleetStatus(context.Background(), 300*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fan-out took %s despite 300ms per-worker timeout", elapsed)
	}
	if len(rows) != 1 || rows[0].StatusError == "" {
		t.Fatalf("silent worker not isolated: %+v", rows)
	}
}
