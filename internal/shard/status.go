package shard

import (
	"context"
	"sync"
	"time"

	"repro/internal/cellcache"
	"repro/internal/obs"
	"repro/internal/service"
)

// WorkerFleetStatus is one row of bdcoord's fleet view: the
// coordinator's own record of the worker (lease, breaker, throughput —
// the embedded WorkerStatus) alongside the worker's self-reported
// /v1/status snapshot. The two sides can disagree — that disagreement is
// the signal (a worker whose breaker is open here but which reports
// itself healthy is partitioned from the coordinator, not down).
type WorkerFleetStatus struct {
	WorkerStatus
	// Status is the worker's own GET /v1/status snapshot; nil when the
	// fetch failed (see StatusError).
	Status *service.StatusSnapshot `json:"status,omitempty"`
	// StatusError explains a nil Status: the per-worker fetch error. One
	// unreachable worker never fails the fleet view — it is reported
	// exactly like this, and every other row is unaffected.
	StatusError string `json:"status_error,omitempty"`
}

// fleetStatusConcurrency bounds concurrent per-worker status fetches.
const fleetStatusConcurrency = 8

// FleetStatus fans GET /v1/status out to every current fleet member
// (bounded concurrency, perWorkerTimeout each) and returns one row per
// member in join order. Failures are isolated per worker: an unreachable
// or slow member yields a row with StatusError set and its coordinator-
// side WorkerStatus intact, never an error for the fleet.
func (e *Executor) FleetStatus(ctx context.Context, perWorkerTimeout time.Duration) []WorkerFleetStatus {
	if perWorkerTimeout <= 0 {
		perWorkerTimeout = 2 * time.Second
	}
	// WorkerStatuses (not raw snapshots) so the rows carry the same
	// latency quantiles /v1/workers serves.
	members := e.reg.snapshot()
	statuses := e.WorkerStatuses()
	out := make([]WorkerFleetStatus, len(members))
	sem := make(chan struct{}, fleetStatusConcurrency)
	var wg sync.WaitGroup
	for i, w := range members {
		out[i].WorkerStatus = statuses[i]
		wg.Add(1)
		go func(i int, w *workerState) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			wctx, cancel := context.WithTimeout(ctx, perWorkerTimeout)
			defer cancel()
			st, err := w.client.Status(wctx)
			if err != nil {
				out[i].StatusError = err.Error()
				return
			}
			out[i].Status = &st
		}(i, w)
	}
	wg.Wait()
	return out
}

// CellCacheStats snapshots the coordinator-shared cell cache (ok=false
// when it is disabled). The coordinator's cells live here, not in the
// service.Manager, so bdcoord injects this into its /v1/status response.
func (e *Executor) CellCacheStats() (cellcache.Stats, bool) {
	if e.cells == nil {
		return cellcache.Stats{}, false
	}
	return e.cells.Stats(), true
}

// FleetSeriesDefs is the coordinator-side addition to the status
// sampler: fleet size as a level and fleet-wide unit throughput as a
// rate, both from the executor's registry families.
func FleetSeriesDefs() []obs.SeriesDef {
	return []obs.SeriesDef{
		{Name: "fleet_workers", Kind: obs.KindLevel, Family: "bd_fleet_workers"},
		{Name: "units_done_per_sec", Kind: obs.KindRate, Family: "bd_worker_units_done_total"},
	}
}
