// Package shard implements horizontal sharding of the characterization
// grid across bdservd workers: a deterministic planner that tiles a
// job's workload×node axes into many small cell-range work units, and a
// coordinator-side executor that feeds the units through a work-stealing
// dispatch loop — each worker pulls its next unit the moment the
// previous one completes, units from failed or stalled workers are
// re-queued, and per-worker circuit breakers (fed by unit outcomes and a
// background /healthz prober) keep dead workers out of the rotation.
// Per-unit progress is multiplexed into one merged event stream, and the
// unit observation matrices are re-assembled in canonical order, so the
// merged result is byte-identical to a single-daemon run no matter which
// worker ran which unit. cmd/bdcoord plugs the executor into a stock
// service.Manager, inheriting its queue, cache, journal and HTTP API.
// internal/shard/chaostest is the fault-injection harness that proves
// the determinism claim under latency, disconnect, crash-and-restart and
// wrong-shape faults.
package shard

import (
	"fmt"

	"repro/internal/bigdata/custom"
	"repro/internal/service"
)

// Shard is one dispatchable work unit of a job's measurement grid: a
// contiguous workload range (in canonical suite order) crossed with a
// contiguous node range. The dispatch loop plans several units per
// worker, so a unit is deliberately much smaller than a worker's fair
// share. The run axis is never split — runs of one cell column are cheap
// relative to workloads and nodes, and keeping them together keeps
// sub-spec configs simple.
type Shard struct {
	Index int
	// Workloads is the shard's workload selection, in canonical order.
	Workloads []string
	// WorkloadOffset is the first workload's index in the full job's
	// canonical workload order.
	WorkloadOffset int
	// NodeOffset / Nodes delimit the shard's node range relative to the
	// full job's own node axis.
	NodeOffset, Nodes int
}

// Spec materializes the shard as a characterize-only sub-spec of the
// full (normalized) job spec: same suite, seed and monitor config, the
// shard's workload subset, and the shard's node window expressed through
// cluster.Config.NodeOffset — whose per-cell seeds depend on absolute
// node indexes, making the sub-grid bit-identical to the corresponding
// cells of the full grid.
//
// Custom workload definitions are pruned to those the shard's workload
// range actually references: per-cell results are functions of workload
// names, never of what else the suite defines, so dropping unused
// definitions cannot change a byte — but it normalizes a built-in-only
// unit of a custom-carrying job to the *same worker job ID* as the
// corresponding unit of a plain job, so worker-side caches are shared
// across them.
func (s Shard) Spec(full service.JobSpec) service.JobSpec {
	sub := full
	sub.Mode = service.ModeObservations
	sub.Workloads = append([]string(nil), s.Workloads...)
	sub.CustomWorkloads = pruneDefs(full.CustomWorkloads, s.Workloads)
	sub.Cluster.NodeOffset = full.Cluster.NodeOffset + s.NodeOffset
	sub.Cluster.SlaveNodes = s.Nodes
	return sub
}

// pruneDefs keeps the definitions (in order) whose generated workload
// names intersect the shard's workload selection.
func pruneDefs(defs []custom.Definition, selected []string) []custom.Definition {
	if len(defs) == 0 {
		return nil
	}
	want := make(map[string]bool, len(selected))
	for _, n := range selected {
		want[n] = true
	}
	var out []custom.Definition
	for _, d := range defs {
		for _, n := range d.WorkloadNames() {
			if want[n] {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// Plan deterministically tiles a job's grid into at most `parts` units.
// Workloads are divided into contiguous near-equal chunks; when there
// are fewer workloads than parts the node axis is split as well, so the
// plan yields `parts` units whenever the grid has at least that many
// workload×node columns (and one unit per column otherwise). The
// coordinator plans UnitsPerWorker × workers parts, then dispatches them
// dynamically — the plan itself carries no worker assignment.
func Plan(spec service.JobSpec, parts int) ([]Shard, error) {
	workers := parts
	if workers < 1 {
		return nil, fmt.Errorf("shard: need ≥1 plan part, got %d", workers)
	}
	suite, err := spec.ResolveSuite()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	nodes := spec.Cluster.SlaveNodes
	if nodes < 1 {
		return nil, fmt.Errorf("shard: spec has %d slave nodes", nodes)
	}

	w := len(names)
	var shards []Shard
	if workers <= w {
		// Workload-axis split only: contiguous chunks, sizes differing by
		// at most one.
		for i, lo := 0, 0; i < workers; i++ {
			hi := lo + w/workers
			if i < w%workers {
				hi++
			}
			shards = append(shards, Shard{
				Workloads:      names[lo:hi],
				WorkloadOffset: lo,
				NodeOffset:     0,
				Nodes:          nodes,
			})
			lo = hi
		}
	} else {
		// Fewer workloads than workers: one chunk per workload, with each
		// workload's node axis split among its share of the workers.
		per := make([]int, w) // node-splits per workload
		for i := 0; i < w; i++ {
			per[i] = workers / w
			if i < workers%w {
				per[i]++
			}
			if per[i] > nodes {
				per[i] = nodes
			}
		}
		for i := 0; i < w; i++ {
			for p, lo := 0, 0; p < per[i]; p++ {
				hi := lo + nodes/per[i]
				if p < nodes%per[i] {
					hi++
				}
				shards = append(shards, Shard{
					Workloads:      names[i : i+1],
					WorkloadOffset: i,
					NodeOffset:     lo,
					Nodes:          hi - lo,
				})
				lo = hi
			}
		}
	}
	for i := range shards {
		shards[i].Index = i
	}
	return shards, nil
}
