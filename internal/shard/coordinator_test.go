package shard

import (
	"bytes"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bigdata/custom"
	"repro/internal/service"
)

// worker is one in-process bdservd: a real manager behind a real HTTP
// server on a loopback port, killable mid-run.
type worker struct {
	url string
	mgr *service.Manager
	srv *http.Server
}

func startWorker(t *testing.T, cfg service.Config) *worker {
	t.Helper()
	mgr, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	go srv.Serve(ln)
	w := &worker{url: "http://" + ln.Addr().String(), mgr: mgr, srv: srv}
	t.Cleanup(func() { srv.Close() })
	return w
}

// kill hard-closes the worker's HTTP server: the listener stops accepting
// and every active connection — including NDJSON event streams — is torn
// down. The manager keeps running (a real daemon's executor would too);
// only the network presence dies.
func (w *worker) kill() { w.srv.Close() }

// fastCoordConfig is the test-speed executor configuration: tight
// probe/breaker/grace knobs so failure paths settle in milliseconds
// instead of the production-scale defaults.
func fastCoordConfig(urls []string) Config {
	return Config{
		Workers:          urls,
		Parallelism:      2,
		ProbeInterval:    100 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 3,
		DownGrace:        time.Second,
	}
}

func newCoordinator(t *testing.T, urls []string) *service.Manager {
	t.Helper()
	exec, err := New(fastCoordConfig(urls))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	mgr, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr
}

func waitTerminal(t *testing.T, m *service.Manager, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == service.StateDone || st.State == service.StateFailed || st.State == service.StateCanceled {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s not terminal after %v (state %s, cells %d/%d)",
		id, timeout, st.State, st.CellsDone, st.CellsTotal)
	return service.JobStatus{}
}

func runToDone(t *testing.T, m *service.Manager, spec service.JobSpec) (service.JobStatus, []byte) {
	t.Helper()
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID, 120*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	data, ok := m.Result(st.ID)
	if !ok {
		t.Fatal("no result bytes for done job")
	}
	return fin, data
}

// TestCoordinatorHashMatchesSingleDaemon is the golden determinism test:
// the coordinator's merged result must be byte-identical — same content
// hash — to a single daemon executing the same spec, at 1, 2 and 3
// workers.
func TestCoordinatorHashMatchesSingleDaemon(t *testing.T) {
	spec := tinySpec()

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	for _, n := range []int{1, 2, 3} {
		var urls []string
		for i := 0; i < n; i++ {
			urls = append(urls, startWorker(t, service.Config{Workers: 2, Parallelism: 2}).url)
		}
		coord := newCoordinator(t, urls)
		fin, data := runToDone(t, coord, spec)
		if fin.ResultHash != ref.ResultHash {
			t.Errorf("%d workers: merged hash %s != single-daemon hash %s", n, fin.ResultHash, ref.ResultHash)
		}
		if !bytes.Equal(data, refBytes) {
			t.Errorf("%d workers: merged result bytes differ from single-daemon bytes", n)
		}
	}
}

// TestCoordinatorCustomWorkloadsMatchSingleDaemon is the acceptance test
// for the open scenario registry: a job whose spec carries custom
// workload definitions (a preset plus an ad-hoc one), fanned out across
// 2 and 3 workers, must merge byte-identical to the single-daemon run,
// and resubmitting to the coordinator must be a cache hit with the same
// job ID.
func TestCoordinatorCustomWorkloadsMatchSingleDaemon(t *testing.T) {
	spec := customSpec("H-Sort", "S-Sort", "H-MemThrash", "S-MemThrash", "H-ScanProbe", "S-ScanProbe")
	spec.CustomWorkloads = append([]custom.Definition{pickPreset(t, "MemThrash")}, spec.CustomWorkloads...)

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	for _, n := range []int{2, 3} {
		var urls []string
		for i := 0; i < n; i++ {
			urls = append(urls, startWorker(t, service.Config{Workers: 2, Parallelism: 2}).url)
		}
		coord := newCoordinator(t, urls)
		fin, data := runToDone(t, coord, spec)
		if fin.ID != ref.ID {
			t.Errorf("%d workers: job ID %s != single-daemon ID %s", n, fin.ID, ref.ID)
		}
		if fin.ResultHash != ref.ResultHash {
			t.Errorf("%d workers: merged hash %s != single-daemon hash %s", n, fin.ResultHash, ref.ResultHash)
		}
		if !bytes.Equal(data, refBytes) {
			t.Errorf("%d workers: merged custom-workload bytes differ from single-daemon bytes", n)
		}

		// Resubmission: cache hit, unchanged ID and hash.
		again, err := coord.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !again.CacheHit || again.ID != ref.ID || again.ResultHash != ref.ResultHash {
			t.Errorf("%d workers: resubmission not a stable cache hit: %+v", n, again)
		}
	}
}

func pickPreset(t *testing.T, name string) custom.Definition {
	t.Helper()
	defs, err := custom.PresetsByName([]string{name})
	if err != nil {
		t.Fatal(err)
	}
	return defs[0]
}

// TestCoordinatorFailsOverDeadWorker points the coordinator at one dead
// URL and one live worker: every shard that lands on the corpse must be
// re-dispatched, and the merged hash must still match the single-daemon
// run.
func TestCoordinatorFailsOverDeadWorker(t *testing.T) {
	spec := tinySpec()

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	// A listener that is closed immediately: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	live := startWorker(t, service.Config{Workers: 2, Parallelism: 2})
	coord := newCoordinator(t, []string{dead, live.url})
	fin, data := runToDone(t, coord, spec)
	if fin.ResultHash != ref.ResultHash {
		t.Errorf("failover hash %s != single-daemon hash %s", fin.ResultHash, ref.ResultHash)
	}
	if !bytes.Equal(data, refBytes) {
		t.Error("failover result bytes differ from single-daemon bytes")
	}
}

// TestCoordinatorFailsOverKilledWorker kills a worker while its shard is
// streaming: the broken stream must re-dispatch the shard to the
// survivor and the merged hash must still match.
func TestCoordinatorFailsOverKilledWorker(t *testing.T) {
	// A grid big enough that the kill lands mid-run.
	spec := tinySpec()
	spec.Cluster.InstructionsPerCore = 30000

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	victim := startWorker(t, service.Config{Workers: 2, Parallelism: 1})
	survivor := startWorker(t, service.Config{Workers: 2, Parallelism: 1})
	coord := newCoordinator(t, []string{victim.url, survivor.url})

	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the victim as soon as it demonstrably owns a running shard.
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		for _, js := range victim.mgr.List() {
			if js.State == service.StateRunning {
				victim.kill()
				killed = true
			}
		}
		if killed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		t.Fatal("victim worker never started a shard job")
	}

	fin := waitTerminal(t, coord, st.ID, 180*time.Second)
	if fin.State != service.StateDone {
		t.Fatalf("job finished %s after worker kill: %s", fin.State, fin.Error)
	}
	if fin.ResultHash != ref.ResultHash {
		t.Errorf("post-failover hash %s != single-daemon hash %s", fin.ResultHash, ref.ResultHash)
	}
	data, _ := coord.Result(st.ID)
	if !bytes.Equal(data, refBytes) {
		t.Error("post-failover result bytes differ from single-daemon bytes")
	}
}

// TestCoordinatorFailsOverStalledWorker: a worker that accepts the job
// but then goes silent — connected, no events, no completion — must trip
// the stall watchdog and fail the shard over to the live worker, with
// the merged hash still matching a single-daemon run.
func TestCoordinatorFailsOverStalledWorker(t *testing.T) {
	spec := tinySpec()

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	// A worker that admits every job and then streams nothing, forever.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"00000000000000000000000000000000","state":"queued"}`))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done() // silence until the client gives up
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stallSrv := &http.Server{Handler: mux}
	go stallSrv.Serve(ln)
	t.Cleanup(func() { stallSrv.Close() })

	live := startWorker(t, service.Config{Workers: 2, Parallelism: 2})
	cfg := fastCoordConfig([]string{"http://" + ln.Addr().String(), live.url})
	cfg.StallTimeout = 500 * time.Millisecond
	exec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	coord, err := service.New(service.Config{Workers: 2, Execute: exec.Execute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	fin, data := runToDone(t, coord, spec)
	if fin.ResultHash != ref.ResultHash {
		t.Errorf("post-stall-failover hash %s != single-daemon hash %s", fin.ResultHash, ref.ResultHash)
	}
	if !bytes.Equal(data, refBytes) {
		t.Error("post-stall-failover bytes differ from single-daemon bytes")
	}
}

// TestCoordinatorAllWorkersDownFailsJob: with every worker unreachable
// the job must settle as failed carrying the real shard-exhaustion error
// — not as canceled, which is what a sibling shard's cancellation
// symptom would report.
func TestCoordinatorAllWorkersDownFailsJob(t *testing.T) {
	var dead []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead = append(dead, "http://"+ln.Addr().String())
		ln.Close()
	}
	coord := newCoordinator(t, dead)
	st, err := coord.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, coord, st.ID, 60*time.Second)
	if fin.State != service.StateFailed {
		t.Fatalf("job settled %s, want failed (err %q)", fin.State, fin.Error)
	}
	if !strings.Contains(fin.Error, "exhausted") {
		t.Errorf("failure does not carry the shard-exhaustion cause: %q", fin.Error)
	}
}

// TestCoordinatorObservationsJob: a characterize-only job through the
// coordinator must be byte-identical to the same job on a single daemon
// (the merged matrix, not an analysis).
func TestCoordinatorObservationsJob(t *testing.T) {
	spec := tinySpec()
	spec.Mode = service.ModeObservations

	single, err := service.New(service.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	ref, refBytes := runToDone(t, single, spec)

	w1 := startWorker(t, service.Config{Workers: 2, Parallelism: 2})
	w2 := startWorker(t, service.Config{Workers: 2, Parallelism: 2})
	coord := newCoordinator(t, []string{w1.url, w2.url})
	fin, data := runToDone(t, coord, spec)
	if fin.ResultHash != ref.ResultHash {
		t.Errorf("observations hash %s != single-daemon %s", fin.ResultHash, ref.ResultHash)
	}
	if !bytes.Equal(data, refBytes) {
		t.Error("observations bytes differ from single-daemon bytes")
	}
}
