package shard

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service/client"
)

// throughputWindow is the sliding window over which per-worker unit
// throughput (units/sec on /v1/workers) is computed.
const throughputWindow = 60 * time.Second

// BreakerState is the circuit-breaker state of one worker.
type BreakerState string

const (
	// BreakerClosed: the worker is believed healthy and receives units.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the worker accumulated BreakerThreshold consecutive
	// failures (unit dispatch or health probes) and receives no units
	// until a probe succeeds.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the breaker was open and a re-admission probe is
	// in flight. The worker still receives no units; the probe's outcome
	// moves the breaker to closed or back to open.
	BreakerHalfOpen BreakerState = "half-open"
)

// WorkerStatus is the externally visible health snapshot of one worker,
// served on the coordinator's /v1/workers endpoint. The lease fields
// expose membership churn: how the worker joined (flag vs runtime
// registration), when it last heartbeat, and how much of its lease
// remains before it is swept from the fleet.
type WorkerStatus struct {
	URL                 string       `json:"url"`
	Breaker             BreakerState `json:"breaker"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	LastError           string       `json:"last_error,omitempty"`
	LastProbe           *time.Time   `json:"last_probe,omitempty"`
	LastTransition      *time.Time   `json:"last_transition,omitempty"`
	UnitsDone           int          `json:"units_done"`
	UnitsFailed         int          `json:"units_failed"`
	Probes              int          `json:"probes"`
	ProbeFailures       int          `json:"probe_failures"`
	// UnitsPerSecond is the worker's unit-completion throughput over the
	// trailing 60-second window — the live "who is pulling their weight"
	// signal next to the lifetime UnitsDone counter.
	UnitsPerSecond float64 `json:"units_per_second"`
	// UnitDurationP50/P95/P99 are estimated quantiles of this worker's
	// successful unit wall-clock times (from the fixed buckets of
	// bd_worker_unit_duration_seconds); zero until a unit completes.
	UnitDurationP50 float64 `json:"unit_duration_p50_seconds,omitempty"`
	UnitDurationP95 float64 `json:"unit_duration_p95_seconds,omitempty"`
	UnitDurationP99 float64 `json:"unit_duration_p99_seconds,omitempty"`

	// Source is "flag" (seeded at startup, permanent) or "registered"
	// (joined at runtime under a heartbeat lease).
	Source       string    `json:"source"`
	RegisteredAt time.Time `json:"registered_at"`
	// LastHeartbeat is the most recent lease renewal (nil for flag
	// workers that have never been POSTed a heartbeat).
	LastHeartbeat *time.Time `json:"last_heartbeat,omitempty"`
	// TTLSeconds is the lease length; 0 means the membership never
	// expires (flag workers).
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// TTLRemainingSeconds counts down to lease expiry (nil for
	// non-expiring members). Negative values never appear: an expired
	// member is swept before it can be listed.
	TTLRemainingSeconds *float64 `json:"ttl_remaining_seconds,omitempty"`
}

// workerState is the coordinator's per-worker record: the client handle
// plus breaker, counter and lease state shared between the dispatch
// loops, the background health prober and the membership registry.
type workerState struct {
	url       string
	client    *client.Client
	threshold int

	// gone closes exactly once, when the worker leaves the fleet
	// (deregistration or lease expiry). Dispatch loops watch it to
	// release in-flight units immediately instead of waiting out a
	// stall timeout.
	gone     chan struct{}
	goneOnce sync.Once

	// mx/log are the coordinator's shared observability hooks; nil (in
	// unit tests constructing bare workerStates) disables them.
	mx  *shardMetrics
	log *slog.Logger

	mu             sync.Mutex
	state          BreakerState
	consecFails    int
	lastErr        string
	lastProbe      time.Time
	lastTransition time.Time
	unitsDone      int
	unitsFailed    int
	probes         int
	probeFails     int
	doneTimes      []time.Time // unit completions inside throughputWindow

	source        string
	registeredAt  time.Time
	lastHeartbeat time.Time
	ttl           time.Duration // 0 = never expires
}

func newWorkerState(url string, c *client.Client, threshold int) *workerState {
	return &workerState{
		url: url, client: c, threshold: threshold,
		state: BreakerClosed, gone: make(chan struct{}),
	}
}

// depart marks the worker as having left the fleet; idempotent.
func (w *workerState) depart() {
	w.goneOnce.Do(func() { close(w.gone) })
}

// departed reports whether the worker has left the fleet.
func (w *workerState) departed() bool {
	select {
	case <-w.gone:
		return true
	default:
		return false
	}
}

// available reports whether the dispatch loop may hand this worker a
// unit. Open and half-open breakers both refuse: a worker is re-admitted
// only through a successful probe (or an in-flight unit completing, which
// proves the worker alive just as well).
func (w *workerState) available() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state == BreakerClosed
}

func (w *workerState) transitionLocked(s BreakerState) {
	if w.state != s {
		from := w.state
		w.state = s
		w.lastTransition = time.Now()
		if w.mx != nil {
			w.mx.breakerTransitions.With(w.url, string(s)).Inc()
		}
		if w.log != nil {
			w.log.Info("breaker transition", "worker", w.url, "from", from, "to", s, "consecutive_failures", w.consecFails, "last_error", w.lastErr)
		}
	}
}

// trimDoneTimesLocked drops completion timestamps older than the
// throughput window. Callers hold w.mu.
func (w *workerState) trimDoneTimesLocked(now time.Time) {
	cut := 0
	for cut < len(w.doneTimes) && now.Sub(w.doneTimes[cut]) > throughputWindow {
		cut++
	}
	if cut > 0 {
		w.doneTimes = append(w.doneTimes[:0], w.doneTimes[cut:]...)
	}
}

// recordSuccess notes a successfully completed unit: the worker is
// demonstrably alive, so the failure streak resets and an open breaker
// closes (an in-flight unit finishing after the breaker opened is as good
// a liveness proof as a probe).
func (w *workerState) recordSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails = 0
	w.unitsDone++
	now := time.Now()
	w.doneTimes = append(w.doneTimes, now)
	w.trimDoneTimesLocked(now)
	if w.mx != nil {
		w.mx.unitsDone.With(w.url).Inc()
	}
	w.transitionLocked(BreakerClosed)
}

// recordFailure notes a failed unit attempt; threshold consecutive
// failures open the breaker.
func (w *workerState) recordFailure(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.unitsFailed++
	w.consecFails++
	w.lastErr = err.Error()
	if w.mx != nil {
		w.mx.unitsFailed.With(w.url).Inc()
	}
	if w.state == BreakerHalfOpen || w.consecFails >= w.threshold {
		w.transitionLocked(BreakerOpen)
	}
}

// tryDispatchTrial converts an open breaker past its cooldown into a
// half-open dispatch trial (used only when the background prober is
// disabled). At most one trial runs at a time: half-open itself does not
// qualify, and the trial's outcome (recordSuccess / recordFailure /
// cancelTrial) settles the state either way.
func (w *workerState) tryDispatchTrial(cooldown time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state != BreakerOpen || time.Since(w.lastTransition) < cooldown {
		return false
	}
	w.transitionLocked(BreakerHalfOpen)
	return true
}

// cancelTrial re-opens a half-open breaker whose dispatch trial never
// secured a unit, so the state cannot wedge in half-open.
func (w *workerState) cancelTrial() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == BreakerHalfOpen {
		w.transitionLocked(BreakerOpen)
	}
}

// beginProbe marks the probe start; on an open breaker this is the
// half-open trial.
func (w *workerState) beginProbe() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probes++
	if w.state == BreakerOpen {
		w.transitionLocked(BreakerHalfOpen)
	}
}

// finishProbe applies a probe outcome: success re-admits the worker
// (closes the breaker, resets the streak); failure re-opens a half-open
// breaker and counts toward the threshold of a closed one.
func (w *workerState) finishProbe(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastProbe = time.Now()
	if w.mx != nil {
		outcome := "ok"
		if err != nil {
			outcome = "fail"
		}
		w.mx.probes.With(w.url, outcome).Inc()
	}
	if err == nil {
		w.consecFails = 0
		w.transitionLocked(BreakerClosed)
		return
	}
	w.probeFails++
	w.consecFails++
	w.lastErr = err.Error()
	if w.state == BreakerHalfOpen || w.consecFails >= w.threshold {
		w.transitionLocked(BreakerOpen)
	}
}

func (w *workerState) snapshot() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.trimDoneTimesLocked(time.Now())
	st := WorkerStatus{
		URL:                 w.url,
		Breaker:             w.state,
		ConsecutiveFailures: w.consecFails,
		LastError:           w.lastErr,
		UnitsDone:           w.unitsDone,
		UnitsFailed:         w.unitsFailed,
		Probes:              w.probes,
		ProbeFailures:       w.probeFails,
		UnitsPerSecond:      float64(len(w.doneTimes)) / throughputWindow.Seconds(),
		Source:              w.source,
		RegisteredAt:        w.registeredAt,
		TTLSeconds:          w.ttl.Seconds(),
	}
	if !w.lastProbe.IsZero() {
		t := w.lastProbe
		st.LastProbe = &t
	}
	if !w.lastTransition.IsZero() {
		t := w.lastTransition
		st.LastTransition = &t
	}
	if !w.lastHeartbeat.IsZero() {
		t := w.lastHeartbeat
		st.LastHeartbeat = &t
	}
	if w.ttl > 0 {
		rem := (w.ttl - time.Since(w.lastHeartbeat)).Seconds()
		if rem < 0 {
			rem = 0
		}
		st.TTLRemainingSeconds = &rem
	}
	return st
}

// WorkerStatuses returns the current health + lease snapshot of every
// fleet member, in join order — the body of bdcoord's GET /v1/workers
// endpoint.
func (e *Executor) WorkerStatuses() []WorkerStatus {
	// Per-worker latency quantiles come from the executor-owned histogram
	// family, keyed by the same URL label the counters use.
	durs := map[string]obs.HistogramSnapshot{}
	e.mx.unitDuration.Each(func(labels []string, snap obs.HistogramSnapshot) {
		if len(labels) == 1 && snap.Count > 0 {
			durs[labels[0]] = snap
		}
	})
	members := e.reg.snapshot()
	out := make([]WorkerStatus, len(members))
	for i, w := range members {
		out[i] = w.snapshot()
		if snap, ok := durs[out[i].URL]; ok {
			q := snap.Quantiles(0.50, 0.95, 0.99)
			out[i].UnitDurationP50, out[i].UnitDurationP95, out[i].UnitDurationP99 = q[0], q[1], q[2]
		}
	}
	return out
}

// probeLoop is the background health prober: every ProbeInterval it
// probes all workers' /healthz concurrently. A failing probe counts
// toward the breaker threshold exactly like a failed unit, so a worker
// dying *between* jobs is discovered (and its breaker opened) before any
// job dispatches units to it; a succeeding probe on an open breaker is
// the half-open trial that re-admits a recovered worker.
func (e *Executor) probeLoop(ctx context.Context) {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.probeAll(ctx)
		}
	}
}

// probeAll probes every current fleet member once, concurrently,
// bounding each probe at ProbeTimeout. The membership snapshot sweeps
// expired leases, so departed workers are never probed — and a member
// departing mid-probe just has a harmless verdict recorded on a state
// nothing dispatches to anymore.
func (e *Executor) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range e.reg.snapshot() {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			w.beginProbe()
			pctx, cancel := context.WithTimeout(ctx, e.cfg.ProbeTimeout)
			err := w.client.Health(pctx)
			cancel()
			if ctx.Err() != nil {
				return // shutting down: not a verdict on the worker
			}
			w.finishProbe(err)
		}(w)
	}
	wg.Wait()
}

// allUnavailable reports whether every current fleet member's breaker
// refuses dispatch — an empty fleet counts as unavailable — the
// condition under which a job with pending units can make no progress.
func (e *Executor) allUnavailable() bool {
	for _, w := range e.reg.snapshot() {
		if w.available() {
			return false
		}
	}
	return true
}
