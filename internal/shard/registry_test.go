package shard

import (
	"testing"
	"time"

	"repro/internal/service/client"
)

func testRegistry() *registry {
	return newRegistry(3, func(u string) *client.Client { return client.New(u) }, nil, nil)
}

func TestNormalizeWorkerURL(t *testing.T) {
	good := map[string]string{
		"http://h1:8356":     "http://h1:8356",
		"http://h1:8356/":    "http://h1:8356",
		" https://h2/ ":      "https://h2",
		"http://127.0.0.1:9": "http://127.0.0.1:9",
	}
	for in, want := range good {
		got, err := normalizeWorkerURL(in)
		if err != nil || got != want {
			t.Errorf("normalizeWorkerURL(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "h1:8356", "ftp://h1", "http://", "/just/a/path"} {
		if got, err := normalizeWorkerURL(bad); err == nil {
			t.Errorf("normalizeWorkerURL(%q) = %q, want error", bad, got)
		}
	}
}

// TestRegistrySeedAndRegister: flag-seeded members are permanent and
// keep join order alongside registered ones; registering an existing
// member renews rather than replaces it (breaker history survives a
// heartbeat).
func TestRegistrySeedAndRegister(t *testing.T) {
	r := testRegistry()
	if err := r.seed("http://flag:1/"); err != nil {
		t.Fatal(err)
	}
	w, created, err := r.register("http://reg:2", 0)
	if err != nil || !created {
		t.Fatalf("register = created %v, err %v; want fresh member", created, err)
	}
	if w.source != SourceRegistered || w.ttl != DefaultLeaseTTL {
		t.Fatalf("registered member: source %q ttl %v; want %q %v", w.source, w.ttl, SourceRegistered, DefaultLeaseTTL)
	}
	// Heartbeat: same member back, TTL re-clamped up from a too-short ask.
	w2, created, err := r.register("http://reg:2/", 10*time.Millisecond)
	if err != nil || created || w2 != w {
		t.Fatalf("heartbeat returned created=%v err=%v same=%v; want renewal of the same member", created, err, w2 == w)
	}
	if w.ttl != minLeaseTTL {
		t.Fatalf("heartbeat ttl = %v, want clamped %v", w.ttl, minLeaseTTL)
	}
	snap := r.snapshot()
	if len(snap) != 2 || snap[0].url != "http://flag:1" || snap[1].url != "http://reg:2" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	// A heartbeat on a flag member records the timestamp but never makes
	// it expirable.
	if _, created, err := r.register("http://flag:1", time.Millisecond); err != nil || created {
		t.Fatalf("flag heartbeat: created %v err %v", created, err)
	}
	if snap[0].ttl != 0 {
		t.Fatalf("flag member gained ttl %v, must stay permanent", snap[0].ttl)
	}
}

// TestRegistryLeaseExpiry: a registered member whose heartbeat lapses
// is swept by the next snapshot and its gone channel closes, releasing
// in-flight units; flag members never expire.
func TestRegistryLeaseExpiry(t *testing.T) {
	r := testRegistry()
	if err := r.seed("http://flag:1"); err != nil {
		t.Fatal(err)
	}
	w, _, err := r.register("http://reg:2", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Backdate the heartbeat past the lease instead of sleeping.
	w.mu.Lock()
	w.lastHeartbeat = time.Now().Add(-2 * time.Second)
	w.mu.Unlock()
	snap := r.snapshot()
	if len(snap) != 1 || snap[0].url != "http://flag:1" {
		t.Fatalf("expired member still present: %+v", snap)
	}
	if !w.departed() {
		t.Fatal("expired member's gone channel not closed")
	}
	// A lapsed worker registering again is a fresh join with fresh state.
	w2, created, err := r.register("http://reg:2", time.Second)
	if err != nil || !created || w2 == w {
		t.Fatalf("post-expiry register: created %v err %v same-state %v; want a fresh member", created, err, w2 == w)
	}
}

// TestRegistryDeregister: an orderly leave removes the member at once,
// closes gone, and reports membership truthfully.
func TestRegistryDeregister(t *testing.T) {
	r := testRegistry()
	w, _, err := r.register("http://reg:2", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !r.deregister("http://reg:2/") {
		t.Fatal("deregister of a member returned false")
	}
	if !w.departed() {
		t.Fatal("deregistered member's gone channel not closed")
	}
	if r.deregister("http://reg:2") {
		t.Fatal("deregister of a non-member returned true")
	}
	if len(r.snapshot()) != 0 {
		t.Fatal("fleet not empty after deregistration")
	}
}

// TestWorkerStatusLeaseFields: /v1/workers surfaces the lease (source,
// registration time, heartbeat, TTL and clamped remaining seconds).
func TestWorkerStatusLeaseFields(t *testing.T) {
	r := testRegistry()
	if err := r.seed("http://flag:1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.register("http://reg:2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	snap := r.snapshot()
	flag, reg := snap[0].snapshot(), snap[1].snapshot()
	if flag.Source != SourceFlag || flag.TTLSeconds != 0 || flag.TTLRemainingSeconds != nil {
		t.Errorf("flag status has lease fields: %+v", flag)
	}
	if reg.Source != SourceRegistered || reg.TTLSeconds != 5 ||
		reg.LastHeartbeat == nil || reg.TTLRemainingSeconds == nil {
		t.Fatalf("registered status missing lease fields: %+v", reg)
	}
	if rem := *reg.TTLRemainingSeconds; rem <= 0 || rem > 5 {
		t.Errorf("ttl remaining %v out of (0, 5]", rem)
	}
	// A lapsed lease reports zero remaining, not negative — the status
	// listing is for operators, sweep timing is snapshot's.
	snap[1].mu.Lock()
	snap[1].lastHeartbeat = time.Now().Add(-time.Minute)
	snap[1].mu.Unlock()
	if rem := *snap[1].snapshot().TTLRemainingSeconds; rem != 0 {
		t.Errorf("lapsed lease remaining = %v, want 0", rem)
	}
}
