// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md §6 for the experiment index):
//
//	BenchmarkTable1_WorkloadInventory   Table I    workload inventory
//	BenchmarkTable2_MetricCatalog       Table II   45-metric catalog
//	BenchmarkTable3_MachineConfig       Table III  hardware configuration
//	BenchmarkFigure1_Dendrogram         Fig. 1     similarity dendrogram
//	BenchmarkFigure2_PC12Scatter        Fig. 2     PC1/PC2 scatter
//	BenchmarkFigure3_PC34Scatter        Fig. 3     PC3/PC4 scatter
//	BenchmarkFigure4_FactorLoadings     Fig. 4     factor loadings
//	BenchmarkFigure5_StackRatios        Fig. 5     Hadoop/Spark metric ratios
//	BenchmarkTable4_KMeansClusters      Table IV   BIC-driven K-means clusters
//	BenchmarkTable5_Representatives     Table V    representative selection
//	BenchmarkFigure6_Kiviat             Fig. 6     representative Kiviat profiles
//
// plus ablation benches for the design choices DESIGN.md §7 calls out.
// The artifact bodies are printed once per run with -v (go test -bench
// -benchtime=1x -v) and written to bench_artifacts/ so the series can be
// compared against the paper (EXPERIMENTS.md).
//
// Benchmarks run at a reduced simulation scale (2 nodes, 12k instructions
// per core) so the full harness completes in minutes; the shape of every
// result is preserved. Use cmd/report for the full-scale run.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/cluster/hier"
	"repro/internal/core"
	"repro/internal/num/pca"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/sim/event"
	"repro/internal/sim/machine"
)

// benchScale is the reduced-cost characterization used by the harness.
func benchClusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.SlaveNodes = 2
	cfg.InstructionsPerCore = 12000
	cfg.Slices = 60
	return cfg
}

var (
	benchOnce sync.Once
	benchDS   *core.Dataset
	benchAn   *core.Analysis
	benchObs  *core.Observations
	benchErr  error
)

// benchData characterizes the full 32-workload suite once per process.
func benchData(b *testing.B) (*core.Dataset, *core.Analysis, *core.Observations) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = core.Characterize(workloads.DefaultConfig(), benchClusterConfig())
		if benchErr != nil {
			return
		}
		benchAn, benchErr = core.Analyze(benchDS, core.DefaultAnalysis())
		if benchErr != nil {
			return
		}
		benchObs, benchErr = benchAn.Observe()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchAn, benchObs
}

// emit writes an artifact body to bench_artifacts/<name>.txt and logs it.
var emitted sync.Map

func emit(b *testing.B, name, body string) {
	b.Helper()
	if _, dup := emitted.LoadOrStore(name, true); dup {
		return
	}
	if err := os.MkdirAll("bench_artifacts", 0o755); err == nil {
		_ = os.WriteFile(fmt.Sprintf("bench_artifacts/%s.txt", name), []byte(body), 0o644)
	}
	b.Logf("%s:\n%s", name, body)
}

func BenchmarkTable1_WorkloadInventory(b *testing.B) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Table1(suite)
	}
	emit(b, "table1", out)
}

func BenchmarkTable2_MetricCatalog(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table2()
	}
	emit(b, "table2", out)
}

func BenchmarkTable3_MachineConfig(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table3(machine.Westmere())
	}
	emit(b, "table3", out)
}

func BenchmarkFigure1_Dendrogram(b *testing.B) {
	ds, _, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := core.Analyze(ds, core.DefaultAnalysis())
		if err != nil {
			b.Fatal(err)
		}
		out = report.Figure1(an)
	}
	emit(b, "figure1", out)
}

func BenchmarkFigure2_PC12Scatter(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure2(an)
	}
	emit(b, "figure2", out)
}

func BenchmarkFigure3_PC34Scatter(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure3(an)
	}
	emit(b, "figure3", out)
}

func BenchmarkFigure4_FactorLoadings(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure4(an)
	}
	emit(b, "figure4", out)
}

func BenchmarkFigure5_StackRatios(b *testing.B) {
	_, an, obs := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = report.Figure5(an, obs)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, "figure5", out)
}

func BenchmarkTable4_KMeansClusters(b *testing.B) {
	ds, _, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := core.Analyze(ds, core.DefaultAnalysis())
		if err != nil {
			b.Fatal(err)
		}
		out = report.Table4(an)
	}
	emit(b, "table4", out)
}

func BenchmarkTable5_Representatives(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Table5(an)
	}
	emit(b, "table5", out)
}

func BenchmarkFigure6_Kiviat(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = report.Figure6(an)
	}
	emit(b, "figure6", out)
}

func BenchmarkObservations(b *testing.B) {
	_, an, _ := benchData(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := an.Observe()
		if err != nil {
			b.Fatal(err)
		}
		out = report.ObservationsReport(obs)
	}
	emit(b, "observations", out)
}

// BenchmarkCharacterizeWorkload measures the cost of one workload's full
// measurement path (trace → machine → PMC → 45 metrics).
func BenchmarkCharacterizeWorkload(b *testing.B) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	w, err := workloads.ByName(suite, "H-Sort")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchClusterConfig()
	cfg.SlaveNodes = 1
	cfg.InstructionsPerCore = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunWorkload(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblation_Linkage compares linkage strategies: the paper's
// single linkage versus complete, average and Ward, reporting how the
// same-stack first-iteration fraction (Observation 1) holds up.
func BenchmarkAblation_Linkage(b *testing.B) {
	ds, _, _ := benchData(b)
	for _, l := range []hier.Linkage{hier.Single, hier.Complete, hier.Average, hier.Ward} {
		l := l
		b.Run(l.String(), func(b *testing.B) {
			cfg := core.DefaultAnalysis()
			cfg.Linkage = l
			var frac float64
			for i := 0; i < b.N; i++ {
				an, err := core.Analyze(ds, cfg)
				if err != nil {
					b.Fatal(err)
				}
				obs, err := an.Observe()
				if err != nil {
					b.Fatal(err)
				}
				frac = obs.SameStackFraction
			}
			emit(b, "ablation_linkage_"+l.String(),
				fmt.Sprintf("linkage=%s same-stack first-iteration fraction=%.2f\n", l, frac))
		})
	}
}

// BenchmarkAblation_PCSelection compares Kaiser's criterion against a
// fixed 90 % variance threshold.
func BenchmarkAblation_PCSelection(b *testing.B) {
	ds, _, _ := benchData(b)
	for _, sel := range []struct {
		name string
		sel  core.PCSelection
	}{{"kaiser", core.Kaiser}, {"variance90", core.VarianceThreshold}} {
		sel := sel
		b.Run(sel.name, func(b *testing.B) {
			cfg := core.DefaultAnalysis()
			cfg.PCSelection = sel.sel
			var pcs int
			var variance float64
			for i := 0; i < b.N; i++ {
				an, err := core.Analyze(ds, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pcs, variance = an.NumPCs, an.Variance
			}
			emit(b, "ablation_pc_"+sel.name,
				fmt.Sprintf("selection=%s PCs=%d variance=%.4f\n", sel.name, pcs, variance))
		})
	}
}

// BenchmarkAblation_Seeding compares k-means++ multi-restart stability
// against single-restart seeding via the chosen K across seeds.
func BenchmarkAblation_Seeding(b *testing.B) {
	ds, _, _ := benchData(b)
	for _, restarts := range []int{1, 16} {
		restarts := restarts
		b.Run(fmt.Sprintf("restarts-%d", restarts), func(b *testing.B) {
			var ks []int
			for i := 0; i < b.N; i++ {
				ks = ks[:0]
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := core.DefaultAnalysis()
					cfg.KMeans.Restarts = restarts
					cfg.KMeans.Seed = seed
					an, err := core.Analyze(ds, cfg)
					if err != nil {
						b.Fatal(err)
					}
					ks = append(ks, an.KBest.K)
				}
			}
			emit(b, fmt.Sprintf("ablation_seeding_restarts%d", restarts),
				fmt.Sprintf("restarts=%d chosen K across 3 seeds=%v\n", restarts, ks))
		})
	}
}

// BenchmarkAblation_RepresentativePolicy quantifies the paper's §VI-B
// claim: the boundary (farthest) policy covers more linkage distance.
func BenchmarkAblation_RepresentativePolicy(b *testing.B) {
	_, an, _ := benchData(b)
	var near, far float64
	for i := 0; i < b.N; i++ {
		near, far = an.NearestMaxLinkage, an.FarthestMaxLinkage
	}
	emit(b, "ablation_policy",
		fmt.Sprintf("nearest max linkage=%.2f farthest max linkage=%.2f (farthest ≥ nearest: %v)\n",
			near, far, far >= near))
}

// BenchmarkAblation_Multiplexing compares multiplexed PMC collection
// against exact counting: the mean relative metric error it introduces.
func BenchmarkAblation_Multiplexing(b *testing.B) {
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	w, err := workloads.ByName(suite, "H-Sort")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchClusterConfig()
	cfg.SlaveNodes = 1
	var meanErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Monitor.Multiplex = true
		muxed, err := cluster.RunWorkload(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Monitor.Multiplex = false
		exact, err := cluster.RunWorkload(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for j := range exact.Metrics {
			if exact.Metrics[j] != 0 {
				d := (muxed.Metrics[j] - exact.Metrics[j]) / exact.Metrics[j]
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
		meanErr = sum / float64(n)
	}
	emit(b, "ablation_multiplexing",
		fmt.Sprintf("mean relative metric error from PMC multiplexing=%.4f\n", meanErr))
}

// BenchmarkAblation_SubsetQuality compares the two representative
// policies on subset quality: how well the weighted subset predicts the
// full suite's mean metrics, and how far workloads sit from their
// representatives.
func BenchmarkAblation_SubsetQuality(b *testing.B) {
	_, an, _ := benchData(b)
	var qn, qf *core.SubsetQuality
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		qn, err = an.EvaluateSubset(an.NearestReps)
		if err != nil {
			b.Fatal(err)
		}
		qf, err = an.EvaluateSubset(an.FarthestReps)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, "ablation_subset_quality", fmt.Sprintf(
		"policy   weighted-mean-error  mean-approx-dist  max-approx-dist\n"+
			"nearest  %.4f               %.3f             %.3f\n"+
			"farthest %.4f               %.3f             %.3f\n",
		qn.WeightedMeanError, qn.MeanApproximationDistance, qn.MaxApproximationDistance,
		qf.WeightedMeanError, qf.MeanApproximationDistance, qf.MaxApproximationDistance))
}

// BenchmarkAblation_HierarchicalVsKMeans selects 7 representatives by
// cutting the dendrogram (the paper's §VI-B alternative reading of
// Fig. 1) and compares the pick against the K-means route.
func BenchmarkAblation_HierarchicalVsKMeans(b *testing.B) {
	_, an, _ := benchData(b)
	var reps []core.Representative
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		reps, err = an.HierarchicalRepresentatives(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	var names []string
	for _, r := range reps {
		names = append(names, fmt.Sprintf("%s(%d)", r.Workload, r.ClusterSize))
	}
	emit(b, "ablation_hier_vs_kmeans", fmt.Sprintf(
		"hierarchical cut at K=7 boundary reps: %v\nk-means (BIC K=%d) boundary reps: %v\n",
		names, an.KBest.K, an.SubsetNames()))
}

// --- Substrate microbenchmarks ---

// BenchmarkPCA45Metrics measures the statistical core (z-score +
// covariance + Jacobi eigendecomposition + scores) on the 32×45 matrix.
func BenchmarkPCA45Metrics(b *testing.B) {
	ds, _, _ := benchData(b)
	m := ds.Matrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fit, err := pca.Fit(m)
		if err != nil {
			b.Fatal(err)
		}
		_ = fit.KaiserComponents()
	}
}

// BenchmarkMetricVector measures deriving the 45 Table II metrics from a
// raw event-count vector.
func BenchmarkMetricVector(b *testing.B) {
	var c event.Counts
	for i := range c {
		c[i] = uint64(i * 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = perf.MetricVector(&c)
	}
}

// BenchmarkHierarchicalClustering measures the agglomerative clustering of
// the 32 workloads on their PC scores.
func BenchmarkHierarchicalClustering(b *testing.B) {
	_, an, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hier.Cluster(an.Scores, hier.Single); err != nil {
			b.Fatal(err)
		}
	}
}
