// Command bdbench characterizes the 32 BigDataBench workloads (or a named
// subset) on the simulated five-node cluster and writes the workload×45
// metric matrix as CSV — the data-collection stage of the paper (§IV).
//
// Usage:
//
//	bdbench [-out metrics.csv] [-workloads H-Sort,S-Sort] [-nodes 4]
//	        [-instructions 60000] [-scale 4096] [-seed 20140901]
//	        [-runs 1] [-no-multiplex] [-jitter 0.06]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "", "output CSV path (default stdout)")
		sel         = flag.String("workloads", "", "comma-separated workload names (default all 32)")
		nodes       = flag.Int("nodes", 4, "slave nodes to measure")
		instr       = flag.Int("instructions", 60000, "instructions per core per node")
		scale       = flag.Float64("scale", 4096, "divisor applied to the paper's dataset sizes")
		seed        = flag.Uint64("seed", 20140901, "seed for all stochastic components")
		runs        = flag.Int("runs", 1, "measurement repetitions to average")
		noMultiplex = flag.Bool("no-multiplex", false, "disable PMC time multiplexing (exact counts)")
		jitter      = flag.Float64("jitter", 0.06, "node/run execution variation sigma")
	)
	flag.Parse()

	suiteCfg := workloads.Config{Seed: *seed, Scale: *scale}
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return err
	}
	if *sel != "" {
		var picked []workloads.Workload
		for _, name := range strings.Split(*sel, ",") {
			w, err := workloads.ByName(suite, strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, w)
		}
		suite = picked
	}

	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = *nodes
	ccfg.InstructionsPerCore = *instr
	ccfg.Seed = *seed
	ccfg.Runs = *runs
	ccfg.ExecutionJitter = *jitter
	ccfg.Monitor.Multiplex = !*noMultiplex

	fmt.Fprintf(os.Stderr, "characterizing %d workloads on %d nodes (%d instr/core, %d run(s))...\n",
		len(suite), *nodes, *instr, *runs)
	ds, err := core.CharacterizeSuite(suite, ccfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}
