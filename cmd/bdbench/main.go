// Command bdbench characterizes workloads on the simulated five-node
// cluster and writes the workload×45 metric matrix as CSV — the
// data-collection stage of the paper (§IV). The workload registry is
// open: alongside the 32 built-ins it holds the embedded preset scenario
// families (StreamIngest, PointLookup, MLTrain, ETLScan, MemThrash,
// Stencil — each with H-/S- variants) and any custom definitions loaded
// from a -workload-file JSON (see DESIGN.md §8 for the schema).
//
// Usage:
//
//	bdbench [-out metrics.csv] [-workloads H-Sort,S-MemThrash,...]
//	        [-workload-file defs.json] [-list-workloads] [-nodes 4]
//	        [-instructions 60000] [-scale 4096] [-seed 20140901]
//	        [-runs 1] [-no-multiplex] [-jitter 0.06] [-parallelism 0]
//	        [-trace-out trace.json]
//
// With no -workloads selection the run covers the built-ins plus every
// -workload-file definition; presets join a run when named in
// -workloads. -list-workloads prints the full registry and exits.
//
// With -bench, bdbench instead times the full pipeline (characterize +
// analyze) once sequentially and once with parallel worker pools, checks
// both produce the identical analysis, and writes the comparison to
// BENCH_pipeline.json (see EXPERIMENTS.md §3).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/custom"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(1)
	}
}

// options collects every flag so validation and config assembly are unit
// testable without going through the flag package or os.Exit.
type options struct {
	out           string
	workloads     string
	workloadFile  string
	listWorkloads bool
	nodes         int
	instr         int
	scale         float64
	seed          uint64
	runs          int
	slices        int
	noMultiplex   bool
	jitter        float64
	par           int
	bench         bool
	benchReps     int
	traceOut      string
}

// validate rejects bad flag combinations up front, before any simulation
// work, with messages that name the offending flag.
func (o options) validate() error {
	if o.runs < 1 {
		return fmt.Errorf("-runs must be ≥1, got %d", o.runs)
	}
	if o.nodes < 1 {
		return fmt.Errorf("-nodes must be ≥1, got %d", o.nodes)
	}
	if o.instr < 1000 {
		return fmt.Errorf("-instructions must be ≥1000, got %d", o.instr)
	}
	if o.scale <= 0 {
		return fmt.Errorf("-scale must be >0, got %v", o.scale)
	}
	if o.slices < 0 {
		return fmt.Errorf("-slices must be ≥0, got %d", o.slices)
	}
	if o.jitter < 0 || o.jitter > 0.5 {
		return fmt.Errorf("-jitter must be in [0,0.5], got %v", o.jitter)
	}
	if o.par < 0 {
		return fmt.Errorf("-parallelism must be ≥0, got %d", o.par)
	}
	if o.benchReps < 1 {
		return fmt.Errorf("-bench-reps must be ≥1, got %d", o.benchReps)
	}
	if o.bench && o.out != "" {
		return fmt.Errorf("-bench writes BENCH_pipeline.json; -out is only for CSV mode")
	}
	if o.bench && o.traceOut != "" {
		return fmt.Errorf("-trace-out traces a CSV-mode run; -bench times untraced code")
	}
	return nil
}

// fileDefs loads the -workload-file definitions (nil without the flag).
func (o options) fileDefs() ([]custom.Definition, error) {
	if o.workloadFile == "" {
		return nil, nil
	}
	defs, err := custom.LoadFile(o.workloadFile)
	if err != nil {
		return nil, fmt.Errorf("-workload-file: %w", err)
	}
	return defs, nil
}

// registry synthesizes the full name-resolvable workload registry —
// built-ins, then embedded presets, then -workload-file definitions —
// plus the source tag of every name. Preset and file definitions share
// one collision namespace, so a file redefining a preset name errors
// instead of silently shadowing it.
func (o options) registry(fileDefs []custom.Definition) ([]workloads.Workload, map[string]string, error) {
	cfg := workloads.Config{Seed: o.seed, Scale: o.scale}
	suite, err := workloads.Suite(cfg)
	if err != nil {
		return nil, nil, err
	}
	source := make(map[string]string, len(suite))
	for _, w := range suite {
		source[w.Name] = "built-in"
	}
	tag := func(defs []custom.Definition, label string) error {
		ws, err := custom.Build(defs, cfg)
		if err != nil {
			return err
		}
		for _, w := range ws {
			source[w.Name] = label
		}
		suite = append(suite, ws...)
		return nil
	}
	// One NormalizeAll over presets+file catches cross-source collisions;
	// building per source keeps the tags.
	if _, err := custom.NormalizeAll(append(append([]custom.Definition(nil), custom.Presets()...), fileDefs...)); err != nil {
		return nil, nil, err
	}
	if err := tag(custom.Presets(), "preset"); err != nil {
		return nil, nil, err
	}
	if err := tag(fileDefs, "file"); err != nil {
		return nil, nil, err
	}
	return suite, source, nil
}

// resolveSuite builds the workloads the invocation will run. With no
// -workloads selection: the built-ins plus every -workload-file
// definition (presets stay opt-in by name). With a selection: the named
// workloads, resolved against the full registry so preset names work
// without any file.
func (o options) resolveSuite() ([]workloads.Workload, error) {
	fileDefs, err := o.fileDefs()
	if err != nil {
		return nil, err
	}
	reg, source, err := o.registry(fileDefs)
	if err != nil {
		return nil, err
	}
	if o.workloads == "" {
		picked := make([]workloads.Workload, 0, len(reg))
		for _, w := range reg {
			if source[w.Name] != "preset" {
				picked = append(picked, w)
			}
		}
		return picked, nil
	}
	picked, err := workloads.Select(reg, strings.Split(o.workloads, ","))
	if err != nil {
		// The remedy for an unknown name is the registry listing itself:
		// the same table -list-workloads prints, on stderr.
		fmt.Fprintln(os.Stderr, "valid workloads:")
		writeWorkloadTable(os.Stderr, reg, source)
		return nil, fmt.Errorf("-workloads: %w", err)
	}
	return picked, nil
}

// writeWorkloadTable renders the registry with category/stack columns —
// shared by -list-workloads and the unknown-workload error path.
func writeWorkloadTable(w io.Writer, suite []workloads.Workload, source map[string]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tCATEGORY\tSTACK\tPROBLEM SIZE\tSOURCE")
	for _, wl := range suite {
		stackName := wl.Stack.Name
		if stackName == "" {
			stackName = "raw profile"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			wl.Name, wl.Category, stackName, wl.ProblemSize, source[wl.Name])
	}
	tw.Flush()
}

// clusterConfig assembles the cluster configuration from validated flags.
func (o options) clusterConfig() cluster.Config {
	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = o.nodes
	ccfg.InstructionsPerCore = o.instr
	ccfg.Seed = o.seed
	ccfg.Runs = o.runs
	ccfg.ExecutionJitter = o.jitter
	ccfg.Monitor.Multiplex = !o.noMultiplex
	ccfg.Parallelism = o.par
	if o.slices > 0 {
		ccfg.Slices = o.slices
	}
	return ccfg
}

func run() error {
	var o options
	flag.StringVar(&o.out, "out", "", "output CSV path (default stdout)")
	flag.StringVar(&o.workloads, "workloads", "", "comma-separated workload names (default: built-ins + -workload-file definitions)")
	flag.StringVar(&o.workloadFile, "workload-file", "", "JSON file of custom workload definitions (DESIGN.md §8)")
	flag.BoolVar(&o.listWorkloads, "list-workloads", false, "print the workload registry (built-ins, presets, file definitions) and exit")
	flag.IntVar(&o.nodes, "nodes", 4, "slave nodes to measure")
	flag.IntVar(&o.instr, "instructions", 60000, "instructions per core per node")
	flag.Float64Var(&o.scale, "scale", 4096, "divisor applied to the paper's dataset sizes")
	flag.Uint64Var(&o.seed, "seed", 20140901, "seed for all stochastic components")
	flag.IntVar(&o.runs, "runs", 1, "measurement repetitions to average")
	flag.IntVar(&o.slices, "slices", 0, "PMC scheduling slices per run (0 = default)")
	flag.BoolVar(&o.noMultiplex, "no-multiplex", false, "disable PMC time multiplexing (exact counts)")
	flag.Float64Var(&o.jitter, "jitter", 0.06, "node/run execution variation sigma")
	flag.IntVar(&o.par, "parallelism", 0, "bound on concurrent node simulations (0 = GOMAXPROCS)")
	flag.BoolVar(&o.bench, "bench", false, "time the end-to-end pipeline (sequential vs parallel) and write BENCH_pipeline.json")
	flag.IntVar(&o.benchReps, "bench-reps", 1, "pipeline repetitions per -bench variant")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace_event JSON of this run's pipeline stages (open in chrome://tracing or Perfetto)")
	flag.Parse()

	if err := o.validate(); err != nil {
		return err
	}
	if o.listWorkloads {
		fileDefs, err := o.fileDefs()
		if err != nil {
			return err
		}
		reg, source, err := o.registry(fileDefs)
		if err != nil {
			return err
		}
		writeWorkloadTable(os.Stdout, reg, source)
		return nil
	}
	suite, err := o.resolveSuite()
	if err != nil {
		return err
	}
	ccfg := o.clusterConfig()

	if o.bench {
		return runPipelineBench(suite, ccfg, o.benchReps)
	}

	fmt.Fprintf(os.Stderr, "characterizing %d workloads on %d nodes (%d instr/core, %d run(s))...\n",
		len(suite), o.nodes, o.instr, o.runs)
	var (
		rec      *obs.FlightRecorder
		root     *obs.SpanHandle
		timer    *core.StageTimer
		progress core.Progress
	)
	// -trace-out runs the same pipeline under a local flight recorder: a
	// root job span with per-stage child spans from the stage timer —
	// the single-process sibling of a daemon's /v1/jobs/{id}/trace.
	const traceKey = "bdbench"
	if o.traceOut != "" {
		rec = obs.NewFlightRecorder(traceKey, 1, 4096)
		root = rec.StartSpan(traceKey, traceKey, "", "job")
		tc := &obs.TraceContext{Rec: rec, JobID: traceKey, TraceID: traceKey, Root: root.ID()}
		timer = core.NewStageTimer(nil, nil)
		timer.OnSpan(func(stage core.Stage, start, end time.Time) {
			tc.RecordInterval("", string(stage), start, end,
				map[string]string{"kind": "stage", "status": "ok"})
		})
		progress = timer.Progress
	}
	ds, err := core.CharacterizeSuiteCtx(context.Background(), suite, ccfg, progress)
	if timer != nil {
		timer.Finish()
		root.EndErr(err)
	}
	if err != nil {
		return err
	}
	if o.traceOut != "" {
		export, _ := rec.Export(traceKey)
		data, err := obs.ChromeTrace(export)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans → %s\n", len(export.Spans), o.traceOut)
	}

	w := os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}

// runPipelineBench times the end-to-end pipeline on the given suite, once
// with Parallelism=1 and once at GOMAXPROCS, verifies both runs produce
// the identical analysis, and writes BENCH_pipeline.json via the shared
// internal/benchio emitter.
func runPipelineBench(suite []workloads.Workload, ccfg cluster.Config, reps int) error {
	if reps < 1 {
		reps = 1
	}
	variants := []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	}
	results := map[string]benchio.Variant{}
	for _, v := range variants {
		c := ccfg
		c.Parallelism = v.par
		acfg := core.DefaultAnalysis()
		acfg.Parallelism = v.par
		fmt.Fprintf(os.Stderr, "bench %s: %d workloads × %d nodes × %d run(s), parallelism %d, %d rep(s)...\n",
			v.name, len(suite), c.SlaveNodes, c.Runs, v.par, reps)
		var an *core.Analysis
		start := time.Now()
		for i := 0; i < reps; i++ {
			ds, err := core.CharacterizeSuite(suite, c)
			if err != nil {
				return err
			}
			an, err = core.Analyze(ds, acfg)
			if err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		results[v.name] = benchio.Variant{
			SecondsPerOp: elapsed.Seconds() / float64(reps),
			Iterations:   reps,
			Parallelism:  v.par,
			BestK:        an.KBest.K,
			Subset:       an.SubsetNames(),
		}
	}

	seq, par := results["sequential"], results["parallel"]
	if err := benchio.Write(
		fmt.Sprintf("core pipeline end-to-end (%d workloads)", len(suite)),
		fmt.Sprintf("%d nodes, %d instr/core, %d slices", ccfg.SlaveNodes, ccfg.InstructionsPerCore, ccfg.Slices),
		seq, par); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sequential %.3fs parallel %.3fs speedup %.2fx → BENCH_pipeline.json\n",
		seq.SecondsPerOp, par.SecondsPerOp, seq.SecondsPerOp/par.SecondsPerOp)
	return nil
}
