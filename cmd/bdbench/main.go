// Command bdbench characterizes the 32 BigDataBench workloads (or a named
// subset) on the simulated five-node cluster and writes the workload×45
// metric matrix as CSV — the data-collection stage of the paper (§IV).
//
// Usage:
//
//	bdbench [-out metrics.csv] [-workloads H-Sort,S-Sort] [-nodes 4]
//	        [-instructions 60000] [-scale 4096] [-seed 20140901]
//	        [-runs 1] [-no-multiplex] [-jitter 0.06] [-parallelism 0]
//
// With -bench, bdbench instead times the full pipeline (characterize +
// analyze) once sequentially and once with parallel worker pools, checks
// both produce the identical analysis, and writes the comparison to
// BENCH_pipeline.json (see EXPERIMENTS.md §3).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(1)
	}
}

// options collects every flag so validation and config assembly are unit
// testable without going through the flag package or os.Exit.
type options struct {
	out         string
	workloads   string
	nodes       int
	instr       int
	scale       float64
	seed        uint64
	runs        int
	slices      int
	noMultiplex bool
	jitter      float64
	par         int
	bench       bool
	benchReps   int
}

// validate rejects bad flag combinations up front, before any simulation
// work, with messages that name the offending flag.
func (o options) validate() error {
	if o.runs < 1 {
		return fmt.Errorf("-runs must be ≥1, got %d", o.runs)
	}
	if o.nodes < 1 {
		return fmt.Errorf("-nodes must be ≥1, got %d", o.nodes)
	}
	if o.instr < 1000 {
		return fmt.Errorf("-instructions must be ≥1000, got %d", o.instr)
	}
	if o.scale <= 0 {
		return fmt.Errorf("-scale must be >0, got %v", o.scale)
	}
	if o.slices < 0 {
		return fmt.Errorf("-slices must be ≥0, got %d", o.slices)
	}
	if o.jitter < 0 || o.jitter > 0.5 {
		return fmt.Errorf("-jitter must be in [0,0.5], got %v", o.jitter)
	}
	if o.par < 0 {
		return fmt.Errorf("-parallelism must be ≥0, got %d", o.par)
	}
	if o.benchReps < 1 {
		return fmt.Errorf("-bench-reps must be ≥1, got %d", o.benchReps)
	}
	if o.bench && o.out != "" {
		return fmt.Errorf("-bench writes BENCH_pipeline.json; -out is only for CSV mode")
	}
	return nil
}

// resolveSuite builds the (possibly filtered) workload suite via the
// shared selection helper. Unknown names error with the full list of
// valid ones.
func (o options) resolveSuite() ([]workloads.Workload, error) {
	suite, err := workloads.Suite(workloads.Config{Seed: o.seed, Scale: o.scale})
	if err != nil {
		return nil, err
	}
	if o.workloads == "" {
		return suite, nil
	}
	picked, err := workloads.Select(suite, strings.Split(o.workloads, ","))
	if err != nil {
		return nil, fmt.Errorf("-workloads: %w", err)
	}
	return picked, nil
}

// clusterConfig assembles the cluster configuration from validated flags.
func (o options) clusterConfig() cluster.Config {
	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = o.nodes
	ccfg.InstructionsPerCore = o.instr
	ccfg.Seed = o.seed
	ccfg.Runs = o.runs
	ccfg.ExecutionJitter = o.jitter
	ccfg.Monitor.Multiplex = !o.noMultiplex
	ccfg.Parallelism = o.par
	if o.slices > 0 {
		ccfg.Slices = o.slices
	}
	return ccfg
}

func run() error {
	var o options
	flag.StringVar(&o.out, "out", "", "output CSV path (default stdout)")
	flag.StringVar(&o.workloads, "workloads", "", "comma-separated workload names (default all 32)")
	flag.IntVar(&o.nodes, "nodes", 4, "slave nodes to measure")
	flag.IntVar(&o.instr, "instructions", 60000, "instructions per core per node")
	flag.Float64Var(&o.scale, "scale", 4096, "divisor applied to the paper's dataset sizes")
	flag.Uint64Var(&o.seed, "seed", 20140901, "seed for all stochastic components")
	flag.IntVar(&o.runs, "runs", 1, "measurement repetitions to average")
	flag.IntVar(&o.slices, "slices", 0, "PMC scheduling slices per run (0 = default)")
	flag.BoolVar(&o.noMultiplex, "no-multiplex", false, "disable PMC time multiplexing (exact counts)")
	flag.Float64Var(&o.jitter, "jitter", 0.06, "node/run execution variation sigma")
	flag.IntVar(&o.par, "parallelism", 0, "bound on concurrent node simulations (0 = GOMAXPROCS)")
	flag.BoolVar(&o.bench, "bench", false, "time the end-to-end pipeline (sequential vs parallel) and write BENCH_pipeline.json")
	flag.IntVar(&o.benchReps, "bench-reps", 1, "pipeline repetitions per -bench variant")
	flag.Parse()

	if err := o.validate(); err != nil {
		return err
	}
	suite, err := o.resolveSuite()
	if err != nil {
		return err
	}
	ccfg := o.clusterConfig()

	if o.bench {
		return runPipelineBench(suite, ccfg, o.benchReps)
	}

	fmt.Fprintf(os.Stderr, "characterizing %d workloads on %d nodes (%d instr/core, %d run(s))...\n",
		len(suite), o.nodes, o.instr, o.runs)
	ds, err := core.CharacterizeSuite(suite, ccfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}

// runPipelineBench times the end-to-end pipeline on the given suite, once
// with Parallelism=1 and once at GOMAXPROCS, verifies both runs produce
// the identical analysis, and writes BENCH_pipeline.json via the shared
// internal/benchio emitter.
func runPipelineBench(suite []workloads.Workload, ccfg cluster.Config, reps int) error {
	if reps < 1 {
		reps = 1
	}
	variants := []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	}
	results := map[string]benchio.Variant{}
	for _, v := range variants {
		c := ccfg
		c.Parallelism = v.par
		acfg := core.DefaultAnalysis()
		acfg.Parallelism = v.par
		fmt.Fprintf(os.Stderr, "bench %s: %d workloads × %d nodes × %d run(s), parallelism %d, %d rep(s)...\n",
			v.name, len(suite), c.SlaveNodes, c.Runs, v.par, reps)
		var an *core.Analysis
		start := time.Now()
		for i := 0; i < reps; i++ {
			ds, err := core.CharacterizeSuite(suite, c)
			if err != nil {
				return err
			}
			an, err = core.Analyze(ds, acfg)
			if err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		results[v.name] = benchio.Variant{
			SecondsPerOp: elapsed.Seconds() / float64(reps),
			Iterations:   reps,
			Parallelism:  v.par,
			BestK:        an.KBest.K,
			Subset:       an.SubsetNames(),
		}
	}

	seq, par := results["sequential"], results["parallel"]
	if err := benchio.Write(
		fmt.Sprintf("core pipeline end-to-end (%d workloads)", len(suite)),
		fmt.Sprintf("%d nodes, %d instr/core, %d slices", ccfg.SlaveNodes, ccfg.InstructionsPerCore, ccfg.Slices),
		seq, par); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sequential %.3fs parallel %.3fs speedup %.2fx → BENCH_pipeline.json\n",
		seq.SecondsPerOp, par.SecondsPerOp, seq.SecondsPerOp/par.SecondsPerOp)
	return nil
}
