// Command bdbench characterizes the 32 BigDataBench workloads (or a named
// subset) on the simulated five-node cluster and writes the workload×45
// metric matrix as CSV — the data-collection stage of the paper (§IV).
//
// Usage:
//
//	bdbench [-out metrics.csv] [-workloads H-Sort,S-Sort] [-nodes 4]
//	        [-instructions 60000] [-scale 4096] [-seed 20140901]
//	        [-runs 1] [-no-multiplex] [-jitter 0.06] [-parallelism 0]
//
// With -bench, bdbench instead times the full pipeline (characterize +
// analyze) once sequentially and once with parallel worker pools, checks
// both produce the identical analysis, and writes the comparison to
// BENCH_pipeline.json (see EXPERIMENTS.md §3).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "", "output CSV path (default stdout)")
		sel         = flag.String("workloads", "", "comma-separated workload names (default all 32)")
		nodes       = flag.Int("nodes", 4, "slave nodes to measure")
		instr       = flag.Int("instructions", 60000, "instructions per core per node")
		scale       = flag.Float64("scale", 4096, "divisor applied to the paper's dataset sizes")
		seed        = flag.Uint64("seed", 20140901, "seed for all stochastic components")
		runs        = flag.Int("runs", 1, "measurement repetitions to average")
		slices      = flag.Int("slices", 0, "PMC scheduling slices per run (0 = default)")
		noMultiplex = flag.Bool("no-multiplex", false, "disable PMC time multiplexing (exact counts)")
		jitter      = flag.Float64("jitter", 0.06, "node/run execution variation sigma")
		par         = flag.Int("parallelism", 0, "bound on concurrent node simulations (0 = GOMAXPROCS)")
		bench       = flag.Bool("bench", false, "time the end-to-end pipeline (sequential vs parallel) and write BENCH_pipeline.json")
		benchReps   = flag.Int("bench-reps", 1, "pipeline repetitions per -bench variant")
	)
	flag.Parse()

	suiteCfg := workloads.Config{Seed: *seed, Scale: *scale}
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return err
	}
	if *sel != "" {
		var picked []workloads.Workload
		for _, name := range strings.Split(*sel, ",") {
			w, err := workloads.ByName(suite, strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, w)
		}
		suite = picked
	}

	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = *nodes
	ccfg.InstructionsPerCore = *instr
	ccfg.Seed = *seed
	ccfg.Runs = *runs
	ccfg.ExecutionJitter = *jitter
	ccfg.Monitor.Multiplex = !*noMultiplex
	ccfg.Parallelism = *par
	if *slices > 0 {
		ccfg.Slices = *slices
	}

	if *bench {
		return runPipelineBench(suite, ccfg, *benchReps)
	}

	fmt.Fprintf(os.Stderr, "characterizing %d workloads on %d nodes (%d instr/core, %d run(s))...\n",
		len(suite), *nodes, *instr, *runs)
	ds, err := core.CharacterizeSuite(suite, ccfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}

// runPipelineBench times the end-to-end pipeline on the given suite, once
// with Parallelism=1 and once at GOMAXPROCS, verifies both runs produce
// the identical analysis, and writes BENCH_pipeline.json via the shared
// internal/benchio emitter.
func runPipelineBench(suite []workloads.Workload, ccfg cluster.Config, reps int) error {
	if reps < 1 {
		reps = 1
	}
	variants := []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	}
	results := map[string]benchio.Variant{}
	for _, v := range variants {
		c := ccfg
		c.Parallelism = v.par
		acfg := core.DefaultAnalysis()
		acfg.Parallelism = v.par
		fmt.Fprintf(os.Stderr, "bench %s: %d workloads × %d nodes × %d run(s), parallelism %d, %d rep(s)...\n",
			v.name, len(suite), c.SlaveNodes, c.Runs, v.par, reps)
		var an *core.Analysis
		start := time.Now()
		for i := 0; i < reps; i++ {
			ds, err := core.CharacterizeSuite(suite, c)
			if err != nil {
				return err
			}
			an, err = core.Analyze(ds, acfg)
			if err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		results[v.name] = benchio.Variant{
			SecondsPerOp: elapsed.Seconds() / float64(reps),
			Iterations:   reps,
			Parallelism:  v.par,
			BestK:        an.KBest.K,
			Subset:       an.SubsetNames(),
		}
	}

	seq, par := results["sequential"], results["parallel"]
	if err := benchio.Write(
		fmt.Sprintf("core pipeline end-to-end (%d workloads)", len(suite)),
		fmt.Sprintf("%d nodes, %d instr/core, %d slices", ccfg.SlaveNodes, ccfg.InstructionsPerCore, ccfg.Slices),
		seq, par); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sequential %.3fs parallel %.3fs speedup %.2fx → BENCH_pipeline.json\n",
		seq.SecondsPerOp, par.SecondsPerOp, seq.SecondsPerOp/par.SecondsPerOp)
	return nil
}
