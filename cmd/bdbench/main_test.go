package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validOptions mirrors the flag defaults.
func validOptions() options {
	return options{
		nodes: 4, instr: 60000, scale: 4096, seed: 20140901,
		runs: 1, jitter: 0.06, benchReps: 1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validOptions().validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestValidateRejectsBadFlagCombinations(t *testing.T) {
	cases := map[string]struct {
		mutate func(*options)
		want   string // flag name the error must mention
	}{
		"runs zero":          {func(o *options) { o.runs = 0 }, "-runs"},
		"runs negative":      {func(o *options) { o.runs = -3 }, "-runs"},
		"nodes zero":         {func(o *options) { o.nodes = 0 }, "-nodes"},
		"instructions small": {func(o *options) { o.instr = 999 }, "-instructions"},
		"scale zero":         {func(o *options) { o.scale = 0 }, "-scale"},
		"scale negative":     {func(o *options) { o.scale = -4096 }, "-scale"},
		"slices negative":    {func(o *options) { o.slices = -1 }, "-slices"},
		"jitter negative":    {func(o *options) { o.jitter = -0.1 }, "-jitter"},
		"jitter huge":        {func(o *options) { o.jitter = 0.75 }, "-jitter"},
		"parallelism neg":    {func(o *options) { o.par = -2 }, "-parallelism"},
		"bench reps zero":    {func(o *options) { o.benchReps = 0 }, "-bench-reps"},
		"bench with out":     {func(o *options) { o.bench = true; o.out = "x.csv" }, "-out"},
	}
	for name, tc := range cases {
		o := validOptions()
		tc.mutate(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", name, err, tc.want)
		}
	}
}

func TestResolveSuiteSelectsInOrder(t *testing.T) {
	o := validOptions()
	o.workloads = "S-Sort, H-Grep"
	suite, err := o.resolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "S-Sort" || suite[1].Name != "H-Grep" {
		names := make([]string, len(suite))
		for i, w := range suite {
			names[i] = w.Name
		}
		t.Fatalf("selected %v, want [S-Sort H-Grep]", names)
	}

	full, err := validOptions().resolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 32 {
		t.Fatalf("full suite has %d workloads, want 32", len(full))
	}
}

func TestResolveSuiteUnknownNameListsValidNames(t *testing.T) {
	o := validOptions()
	o.workloads = "H-Sort,H-Bogus"
	_, err := o.resolveSuite()
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"H-Bogus"`) {
		t.Errorf("error does not name the unknown workload: %v", err)
	}
	// The remedy: the full valid-name list.
	for _, known := range []string{"H-Sort", "S-Sort", "H-PageRank", "S-Aggregation"} {
		if !strings.Contains(msg, known) {
			t.Errorf("error does not list valid name %s: %v", known, err)
		}
	}
}

func TestResolveSuiteRejectsEmptyAndDuplicateNames(t *testing.T) {
	o := validOptions()
	o.workloads = "H-Sort,,S-Sort"
	if _, err := o.resolveSuite(); err == nil {
		t.Error("empty workload name accepted")
	}
	o.workloads = "H-Sort,H-Sort"
	if _, err := o.resolveSuite(); err == nil {
		t.Error("duplicate workload name accepted")
	}
}

// writeDefs writes a one-definition workload file and returns its path.
func writeDefs(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "defs.json")
	body := `[{"name":"` + name + `","data":{"paper_bytes":1073741824,"skew":0.3},
		"mix":{"LoadFrac":0.3,"StoreFrac":0.1,"SeqFrac":0.6},"shuffle_frac":0.1}]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveSuitePresetByName(t *testing.T) {
	o := validOptions()
	o.workloads = "H-MemThrash,S-StreamIngest"
	suite, err := o.resolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 || suite[0].Name != "H-MemThrash" || suite[1].Name != "S-StreamIngest" {
		t.Fatalf("preset selection resolved to %+v", suite)
	}
}

func TestResolveSuiteWorkloadFile(t *testing.T) {
	o := validOptions()
	o.workloadFile = writeDefs(t, "Probe")

	// No selection: built-ins + the file's H-/S- pair.
	suite, err := o.resolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 34 {
		t.Fatalf("default run with a workload file has %d workloads, want 34", len(suite))
	}
	if suite[32].Name != "H-Probe" || suite[33].Name != "S-Probe" {
		t.Errorf("file workloads not appended: %s, %s", suite[32].Name, suite[33].Name)
	}

	// Named selection mixing built-in, preset and file workloads.
	o.workloads = "S-Probe,H-Sort,H-Stencil"
	suite, err = o.resolveSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 3 || suite[0].Name != "S-Probe" || suite[2].Name != "H-Stencil" {
		t.Fatalf("mixed selection resolved to %+v", suite)
	}
}

func TestRegistryRejectsFilePresetCollision(t *testing.T) {
	o := validOptions()
	o.workloadFile = writeDefs(t, "StreamIngest")
	if _, err := o.resolveSuite(); err == nil {
		t.Error("file definition shadowing a preset accepted")
	}
}

func TestWorkloadTableListsRegistry(t *testing.T) {
	o := validOptions()
	o.workloadFile = writeDefs(t, "Probe")
	defs, err := o.fileDefs()
	if err != nil {
		t.Fatal(err)
	}
	reg, source, err := o.registry(defs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 32+12+2 {
		t.Fatalf("registry has %d workloads, want 46", len(reg))
	}
	var sb strings.Builder
	writeWorkloadTable(&sb, reg, source)
	out := sb.String()
	for _, want := range []string{"NAME", "CATEGORY", "STACK", "SOURCE",
		"H-Sort", "built-in", "H-MemThrash", "preset", "H-Probe", "file"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestClusterConfigMapsFlags(t *testing.T) {
	o := validOptions()
	o.nodes = 2
	o.instr = 12000
	o.runs = 3
	o.slices = 30
	o.noMultiplex = true
	o.jitter = 0.1
	o.par = 5
	ccfg := o.clusterConfig()
	if ccfg.SlaveNodes != 2 || ccfg.InstructionsPerCore != 12000 || ccfg.Runs != 3 ||
		ccfg.Slices != 30 || ccfg.Monitor.Multiplex || ccfg.ExecutionJitter != 0.1 ||
		ccfg.Parallelism != 5 {
		t.Errorf("flag mapping wrong: %+v", ccfg)
	}
	if err := ccfg.Validate(); err != nil {
		t.Errorf("mapped config invalid: %v", err)
	}

	// slices=0 keeps the package default.
	o.slices = 0
	if got := o.clusterConfig().Slices; got != 120 {
		t.Errorf("default slices = %d, want 120", got)
	}
}
